"""Supplemental-campaign throughput: serial vs parallel vs warm cache.

Not a paper table — this benchmarks the infrastructure that makes the
Section 6-7 analyses affordable.  One reactive campaign over the nine
Table-4 networks is timed four ways on the same seeded world: the
serial per-network loop, a 4-worker process pool, a cold cache fill and
a warm cache replay.  All four must produce bit-identical datasets;
the interesting output is the seconds column and the speedup ratios.

The window defaults to seven measured days and can be shrunk for smoke
runs (CI uses ``REPRO_CAMPAIGN_BENCH_DAYS=3``).  The parallel speedup
assertion only runs on hosts with >= 4 CPUs; on smaller hosts the
never-slower cap (:func:`repro.scan.campaign_parallel.effective_campaign_workers`)
degrades the pool down to the serial loop, which the benchmark asserts
directly.
"""

import datetime as dt
import os
import time

from repro.netsim.internet import WorldScale, build_world
from repro.reporting import TextTable
from repro.scan.cache import CampaignCache
from repro.scan.campaign import SupplementalCampaign

SEED = 42
BENCH_DAYS = int(os.environ.get("REPRO_CAMPAIGN_BENCH_DAYS", "7"))
START = dt.date(2021, 11, 1)
END = START + dt.timedelta(days=BENCH_DAYS)
PARALLEL_WORKERS = 4


def _timed_run(*, workers=1, cache=None):
    # A fresh world per mode: no shared memoisation between timings.
    world = build_world(seed=SEED, scale=WorldScale.small())
    campaign = SupplementalCampaign(world)
    started = time.perf_counter()
    dataset = campaign.run(START, END, workers=workers, cache=cache)
    return dataset, time.perf_counter() - started, campaign.last_metrics


def render_throughput(rows):
    table = TextTable(
        ["Mode", "Workers", "Observations", "Seconds", "Speedup vs serial"],
        aligns=["<", ">", ">", ">", ">"],
    )
    serial_seconds = rows[0][3]
    for mode, workers, observations, seconds in rows:
        table.add_row(
            [
                mode,
                workers,
                f"{observations:,}",
                f"{seconds:.2f}",
                f"{serial_seconds / seconds:.1f}x" if seconds > 0 else "inf",
            ]
        )
    return table.render()


def assert_identical(left, right):
    assert list(left.icmp) == list(right.icmp)
    assert list(left.rdns) == list(right.rdns)
    assert left.icmp_stats() == right.icmp_stats()
    assert left.rdns_stats() == right.rdns_stats()
    assert left.table4_rows() == right.table4_rows()


def test_campaign_throughput(tmp_path_factory, write_artifact):
    cache = CampaignCache(tmp_path_factory.mktemp("campaign-cache"))

    serial, serial_seconds, serial_metrics = _timed_run()
    parallel, parallel_seconds, parallel_metrics = _timed_run(workers=PARALLEL_WORKERS)
    cold, cold_seconds, cold_metrics = _timed_run(cache=cache)
    warm, warm_seconds, warm_metrics = _timed_run(cache=cache)

    # Correctness first: every mode is bit-identical to serial.
    assert_identical(serial, parallel)
    assert_identical(serial, cold)
    assert_identical(serial, warm)
    assert serial_metrics.effective_workers == 1
    assert parallel_metrics.workers == PARALLEL_WORKERS
    assert 1 <= parallel_metrics.effective_workers <= min(
        PARALLEL_WORKERS, os.cpu_count() or 1
    )
    assert cold_metrics.cache_stored and not cold_metrics.cache_hit
    assert warm_metrics.cache_hit

    rows = [
        ("serial", 1, serial_metrics.observations, serial_seconds),
        (
            "parallel",
            parallel_metrics.effective_workers,
            parallel_metrics.observations,
            parallel_seconds,
        ),
        ("cache (cold)", 1, cold_metrics.observations, cold_seconds),
        ("cache (warm)", 1, warm_metrics.observations, warm_seconds),
    ]
    write_artifact(
        "campaign_throughput",
        f"Supplemental campaign throughput ({BENCH_DAYS} days, 9 networks, "
        f"{os.cpu_count()} CPU(s))",
        render_throughput(rows),
    )

    # A warm cache skips the simulation entirely: >= 2x faster than the
    # serial run (in practice far more).
    assert warm_seconds < serial_seconds / 2

    # Requesting workers must never lose badly to serial: the effective
    # cap degrades the pool to the serial loop when cores are short
    # (the 1.5x margin absorbs timing noise).
    assert parallel_seconds < serial_seconds * 1.5

    # The pool only pays off with real cores behind it.
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        assert parallel_seconds < serial_seconds / 2
