"""Figure 3: device terms co-appearing with given names.

Shape targets from Section 5.2: terms such as iphone, ipad, android and
galaxy frequently co-appear with given names — "a strong indication
that DHCP clients on a variety of mobile devices send the name of the
device to the DHCP server" — with laptop/desktop terms present too.
"""

from repro.datasets import DEVICE_TERMS
from repro.reporting import TextTable


def test_figure3_device_terms(benchmark, study, leak_report, write_artifact):
    report = leak_report

    def totals():
        all_total = sum(report.all_device_term_counts.get(term, 0) for term in DEVICE_TERMS)
        filtered_total = sum(
            report.filtered_device_term_counts.get(term, 0) for term in DEVICE_TERMS
        )
        return all_total, filtered_total

    all_total, filtered_total = benchmark(totals)

    table = TextTable(["Keyword", "All matches", "Filtered matches"], aligns=["<", ">", ">"])
    table.add_row(["total", all_total, filtered_total])
    for term in DEVICE_TERMS:
        table.add_row(
            [
                term,
                report.all_device_term_counts.get(term, 0),
                report.filtered_device_term_counts.get(term, 0),
            ]
        )
    write_artifact(
        "figure3_device_terms",
        "Figure 3: device terms in hostnames alongside given names",
        table.render(),
    )

    assert all_total > 0 and filtered_total > 0
    # Phone-family terms are the strongest signal.
    phone_terms = ["iphone", "android", "galaxy", "phone"]
    phone_total = sum(report.filtered_device_term_counts.get(term, 0) for term in phone_terms)
    assert phone_total > 0
    assert report.filtered_device_term_counts.get("iphone", 0) > 0
    # Laptop/desktop-class terms appear as well.
    assert any(
        report.filtered_device_term_counts.get(term, 0) > 0
        for term in ("laptop", "mbp", "dell", "desktop", "macbook", "lenovo", "air")
    )
    for term in DEVICE_TERMS:
        assert report.filtered_device_term_counts.get(term, 0) <= report.all_device_term_counts.get(term, 0)
