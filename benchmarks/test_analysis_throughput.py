"""Analysis-plane throughput: columnar decode + dynamicity vs the dict baseline.

Not a paper table — this benchmarks the columnar analysis plane that
makes warm-cache reruns affordable.  One seeded daily series is
analysed four ways over identical data:

* warm-cache decode: the legacy v2 ``{day: {prefix: count}}`` payload
  vs the v3 delta-encoded columnar payload (``json.loads`` +
  ``SnapshotSeries.from_payload``, i.e. exactly what a cache hit pays);
* dynamicity: :class:`DictReferenceAnalyzer` (the retained
  row-oriented oracle) vs the columnar :class:`DynamicityAnalyzer`,
  plus the :class:`IncrementalDynamicityAnalyzer` fed one day at a
  time; and
* leak sampling: the single shared ``sample_records`` pass the leak
  stage now runs.

Every mode must stay bit-identical before anything is timed.  Results
land in ``results/analysis_throughput.txt`` (human table) and
``results/BENCH_analysis.json`` (machine-readable: days/s, prefixes/s,
warm-decode seconds, speedup ratios).  The committed JSON doubles as a
regression baseline: when the configuration matches, a rerun must not
lose more than half of the recorded combined speedup — ratios compare
across hosts, absolute seconds do not.

Environment knobs for CI smoke runs: ``REPRO_ANALYSIS_BENCH_DAYS``
(default 90) and ``REPRO_ANALYSIS_BENCH_SCALE`` (``default`` |
``small``).  The >= 3x combined-speedup gate only applies at the full
default configuration; shrunken smoke runs just assert the columnar
plane never loses.
"""

import datetime as dt
import json
import os
import pathlib
import time

from repro.core import (
    DictReferenceAnalyzer,
    DynamicityAnalyzer,
    IncrementalDynamicityAnalyzer,
)
from repro.netsim.internet import WorldScale, build_world
from repro.reporting import TextTable
from repro.scan.snapshot import SnapshotCollector, SnapshotSeries, legacy_dict_payload

SEED = 42
START = dt.date(2021, 1, 1)
BENCH_DAYS = int(os.environ.get("REPRO_ANALYSIS_BENCH_DAYS", "90"))
BENCH_SCALE = os.environ.get("REPRO_ANALYSIS_BENCH_SCALE", "default")
TIMING_REPS = 7
RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_analysis.json"

#: At the full configuration the columnar plane must clear 3x; smoke
#: runs (fewer days, small world) only assert it never loses.
FULL_CONFIG = BENCH_SCALE == "default" and BENCH_DAYS >= 90


def _best_of(fn, reps=TIMING_REPS):
    """Best-of-N wall time: the least-interfered-with run."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _assert_reports_identical(left, right):
    assert left.total_observed == right.total_observed
    assert left.cadence_days == right.cadence_days
    assert left.prefixes == right.prefixes
    assert left.dynamic_prefixes() == right.dynamic_prefixes()


def test_analysis_throughput(write_artifact):
    scale = WorldScale() if BENCH_SCALE == "default" else WorldScale.small()
    world = build_world(seed=SEED, scale=scale)
    collector = SnapshotCollector.openintel_style(world.internet)
    series = collector.collect(START, START + dt.timedelta(days=BENCH_DAYS))
    internet = series._internet

    # What a cache file holds in each format, bytes on disk included.
    v3_text = json.dumps(series.to_payload())
    legacy_text = json.dumps(legacy_dict_payload(series))

    # Correctness first: both payloads rebuild the identical series ...
    from_legacy = SnapshotSeries.from_payload(json.loads(legacy_text), internet)
    from_v3 = SnapshotSeries.from_payload(json.loads(v3_text), internet)
    for rebuilt in (from_legacy, from_v3):
        assert rebuilt.days == series.days
        assert rebuilt.stats() == series.stats()

    # ... and all three analyzers agree bit-for-bit.
    reference_report = DictReferenceAnalyzer().analyze(series)
    columnar_report = DynamicityAnalyzer().analyze(series)
    incremental = IncrementalDynamicityAnalyzer()
    for day in series.days:
        incremental.ingest(day, series.counts_view(day))
    _assert_reports_identical(columnar_report, reference_report)
    _assert_reports_identical(incremental.report(), reference_report)

    # Warm-cache decode: JSON parse + payload -> series, per format.
    legacy_decode_s = _best_of(
        lambda: SnapshotSeries.from_payload(json.loads(legacy_text), internet)
    )
    v3_decode_s = _best_of(
        lambda: SnapshotSeries.from_payload(json.loads(v3_text), internet)
    )

    # Dynamicity: the dict oracle vs the columnar core, plus the
    # incremental analyzer's report() on already-ingested state.
    reference_s = _best_of(lambda: DictReferenceAnalyzer().analyze(series))
    columnar_s = _best_of(lambda: DynamicityAnalyzer().analyze(series))
    incremental_report_s = _best_of(incremental.report)

    # The leak stage's single shared derivation pass.
    sample_days = series.days[-min(7, len(series.days)) :]
    leak_sample_s = _best_of(lambda: series.sample_records(sample_days), reps=3)
    sample_metrics = series.last_sample_metrics

    decode_speedup = legacy_decode_s / v3_decode_s
    analyze_speedup = reference_s / columnar_s
    combined_speedup = (legacy_decode_s + reference_s) / (v3_decode_s + columnar_s)
    prefix_count = len(series.prefix_table())

    table = TextTable(
        ["Stage", "Baseline (s)", "Columnar (s)", "Speedup", "Throughput"],
        aligns=["<", ">", ">", ">", ">"],
    )
    table.add_row(
        [
            "warm-cache decode",
            f"{legacy_decode_s:.4f}",
            f"{v3_decode_s:.4f}",
            f"{decode_speedup:.1f}x",
            f"{len(series) / v3_decode_s:.0f} days/s",
        ]
    )
    table.add_row(
        [
            "dynamicity",
            f"{reference_s:.4f}",
            f"{columnar_s:.4f}",
            f"{analyze_speedup:.1f}x",
            f"{prefix_count / columnar_s:.0f} prefixes/s",
        ]
    )
    table.add_row(
        [
            "incremental report",
            "-",
            f"{incremental_report_s:.4f}",
            "-",
            f"{prefix_count / incremental_report_s:.0f} prefixes/s",
        ]
    )
    table.add_row(
        [
            "leak sample (1 pass)",
            "-",
            f"{leak_sample_s:.4f}",
            "-",
            f"{sample_metrics.raw_records / leak_sample_s:.0f} records/s",
        ]
    )
    table.add_row(
        [
            "decode + dynamicity",
            f"{legacy_decode_s + reference_s:.4f}",
            f"{v3_decode_s + columnar_s:.4f}",
            f"{combined_speedup:.1f}x",
            "-",
        ]
    )
    body = table.render() + (
        f"\n\npayload bytes: legacy={len(legacy_text)} v3={len(v3_text)}"
        f" ({len(legacy_text) / len(v3_text):.1f}x smaller)"
        f"\nworld: scale={BENCH_SCALE} days={BENCH_DAYS}"
        f" prefixes={prefix_count} seed={SEED}"
    )
    write_artifact(
        "analysis_throughput",
        f"Analysis-plane throughput ({BENCH_DAYS} days, {BENCH_SCALE} scale)",
        body,
    )

    config = {"days": BENCH_DAYS, "scale": BENCH_SCALE, "seed": SEED}
    # Regression guard: speedup ratios are host-independent, so a rerun
    # at the same configuration must retain at least half the committed
    # combined speedup before the baseline is overwritten.
    if BENCH_JSON.exists():
        baseline = json.loads(BENCH_JSON.read_text())
        if baseline.get("config") == config:
            floor = baseline["combined_speedup"] / 2
            assert combined_speedup >= floor, (
                f"columnar analysis plane regressed: combined speedup "
                f"{combined_speedup:.2f}x fell below {floor:.2f}x "
                f"(half the committed {baseline['combined_speedup']:.2f}x)"
            )

    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "config": config,
                "warm_decode": {
                    "legacy_seconds": legacy_decode_s,
                    "v3_seconds": v3_decode_s,
                    "days_per_second": len(series) / v3_decode_s,
                    "speedup": decode_speedup,
                },
                "dynamicity": {
                    "reference_seconds": reference_s,
                    "columnar_seconds": columnar_s,
                    "incremental_report_seconds": incremental_report_s,
                    "prefixes_per_second": prefix_count / columnar_s,
                    "speedup": analyze_speedup,
                },
                "leak_sample": {
                    "seconds": leak_sample_s,
                    "days": sample_metrics.days,
                    "records_per_second": sample_metrics.raw_records / leak_sample_s,
                },
                "combined_speedup": combined_speedup,
                "payload_bytes": {"legacy": len(legacy_text), "v3": len(v3_text)},
            },
            indent=2,
        )
        + "\n"
    )

    # The columnar plane must never lose to the baseline it replaces;
    # at the full benchmark configuration it must clear 3x combined.
    assert combined_speedup > 1.0
    if FULL_CONFIG:
        assert combined_speedup >= 3.0, (
            f"combined warm-decode + dynamicity speedup {combined_speedup:.2f}x "
            f"is below the 3x floor at the full benchmark configuration"
        )
