"""Table 3: supplemental measurement statistics.

Paper values (nine networks, 2021-10-25..2021-12-05): ICMP 45,496,201
responses over 80,738 unique addresses; rDNS 11,731,348 responses over
54,456 addresses and 180,614 unique PTRs.  Shape targets: the ICMP
instrument produces far more responses than the reactive rDNS one, and
rDNS observes fewer unique addresses than ICMP targets but a rich PTR
universe.
"""

from repro.reporting import TextTable


def test_table3_supplemental_statistics(benchmark, supplemental, write_artifact):
    def compute():
        return supplemental.icmp_stats(), supplemental.rdns_stats()

    (icmp_total, icmp_unique), (rdns_total, rdns_unique, rdns_ptrs) = benchmark(compute)

    table = TextTable(
        ["Instrument", "Start", "End", "Total # responses", "# unique IPs", "# unique PTRs"],
        aligns=["<", "<", "<", ">", ">", ">"],
    )
    table.add_row(["ICMP", str(supplemental.start), str(supplemental.end), icmp_total, icmp_unique, "-"])
    table.add_row(["rDNS", str(supplemental.start), str(supplemental.end), rdns_total, rdns_unique, rdns_ptrs])
    write_artifact("table3_supplemental", "Table 3: supplemental measurement statistics", table.render())

    assert icmp_total > rdns_total  # pings dominate the probe volume
    assert icmp_unique > 0 and rdns_unique > 0
    # Reactive rDNS follows at least the ICMP-visible population.
    assert rdns_unique >= icmp_unique * 0.8
    # Multiple distinct PTR values per address over time (device churn).
    assert rdns_ptrs > 0
    benchmark.extra_info.update(
        icmp_responses=icmp_total,
        rdns_responses=rdns_total,
        unique_ptrs=rdns_ptrs,
    )
