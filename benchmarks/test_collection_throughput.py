"""Collection-layer throughput: serial vs parallel vs warm cache.

Not a paper table — this benchmarks the infrastructure that makes the
paper-scale tables affordable.  One 60-day daily collection is timed
three ways over the same seeded world: single-process, fanned out over
a 4-worker process pool, and replayed from a warm on-disk cache.  All
three must produce bit-identical series; the interesting output is the
days/second column and the speedup ratios.

The parallel speedup assertion only runs on hosts with >= 4 CPUs.  On
smaller hosts the never-slower cap
(:func:`repro.scan.parallel.effective_workers`) shrinks the pool — down
to the plain serial loop on one core — so requesting ``--workers`` can
no longer lose to serial; the benchmark asserts that too.
"""

import datetime as dt
import os
import time

from repro.netsim.internet import WorldScale, build_world
from repro.reporting import TextTable
from repro.scan.cache import SnapshotCache
from repro.scan.snapshot import SnapshotCollector

SEED = 42
START, END = dt.date(2021, 3, 1), dt.date(2021, 4, 30)  # 60 days
PARALLEL_WORKERS = 4


def _timed_collect(world, *, workers=1, cache=None):
    collector = SnapshotCollector.openintel_style(world.internet)
    started = time.perf_counter()
    series = collector.collect(START, END, workers=workers, cache=cache)
    return series, time.perf_counter() - started, collector.last_metrics


def render_throughput(rows):
    table = TextTable(
        ["Mode", "Workers", "Days", "Seconds", "Days/s", "Speedup vs serial"],
        aligns=["<", ">", ">", ">", ">", ">"],
    )
    serial_seconds = rows[0][2]
    for mode, workers, seconds, days in rows:
        table.add_row(
            [
                mode,
                workers,
                days,
                f"{seconds:.2f}",
                f"{days / seconds:.1f}" if seconds > 0 else "inf",
                f"{serial_seconds / seconds:.1f}x" if seconds > 0 else "inf",
            ]
        )
    return table.render()


def test_collection_throughput(tmp_path_factory, write_artifact):
    cache = SnapshotCache(tmp_path_factory.mktemp("snapshot-cache"))

    serial_world = build_world(seed=SEED, scale=WorldScale.small())
    serial, serial_seconds, _ = _timed_collect(serial_world)

    parallel_world = build_world(seed=SEED, scale=WorldScale.small())
    parallel, parallel_seconds, parallel_metrics = _timed_collect(
        parallel_world, workers=PARALLEL_WORKERS
    )

    # Cold pass fills the cache; the warm pass replays it.
    cache_world = build_world(seed=SEED, scale=WorldScale.small())
    _, cold_seconds, cold_metrics = _timed_collect(cache_world, cache=cache)
    warm, warm_seconds, warm_metrics = _timed_collect(cache_world, cache=cache)

    # Correctness first: every mode is bit-identical to serial.
    for series in (parallel, warm):
        assert series.days == serial.days
        assert series.stats() == serial.stats()
        for day in serial.days:
            assert series.counts_by_slash24(day) == serial.counts_by_slash24(day)
    assert parallel_metrics.workers == PARALLEL_WORKERS
    assert 1 <= parallel_metrics.effective_workers <= min(
        PARALLEL_WORKERS, os.cpu_count() or 1
    )
    assert cold_metrics.cache_stored and not cold_metrics.cache_hit
    assert warm_metrics.cache_hit

    rows = [
        ("serial", 1, serial_seconds, len(serial)),
        ("parallel", parallel_metrics.effective_workers, parallel_seconds, len(parallel)),
        ("cache (cold)", 1, cold_seconds, len(serial)),
        ("cache (warm)", 1, warm_seconds, len(warm)),
    ]
    write_artifact(
        "collection_throughput",
        f"Snapshot collection throughput ({len(serial)} days, "
        f"{os.cpu_count()} CPU(s))",
        render_throughput(rows),
    )

    # A warm cache skips simulation entirely: >= 10x faster than cold.
    assert warm_seconds < cold_seconds / 10

    # Requesting workers must never lose badly to serial: the effective
    # cap degrades the pool to the serial loop when cores or days are
    # short (the 1.5x margin absorbs timing noise).
    assert parallel_seconds < serial_seconds * 1.5

    # The pool only pays off with real cores behind it.
    if (os.cpu_count() or 1) >= PARALLEL_WORKERS:
        assert parallel_seconds < serial_seconds / 2
