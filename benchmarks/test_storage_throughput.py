"""Storage throughput: warm-decode v4 (blockfile) vs v3 (inline JSON).

Not a paper table — this benchmarks the zero-copy columnar backbone
(dataset format v4, :mod:`repro.scan.blockfile`).  One
:func:`~repro.netsim.worldplan.synthetic_plan` world of
``REPRO_STORAGE_BENCH_SLASH16S`` /16s (default 200) is collected over
``REPRO_STORAGE_BENCH_DAYS`` days (default 90) and stored twice — as a
v3 self-contained JSON document and as a v4 JSON+blockfile pair — and
the *warm decode* path (cache load → usable series → counts read) is
timed best-of-N for each.  Bit-identity is asserted before anything is
timed: both decoded series must re-serialise to the exact reference
payload bytes.

A second leg measures the shared-memory worker transport: a pooled
collection (2 workers, forced past the single-core fallback) must stay
byte-identical to serial while moving its results as packed columnar
blobs, and the blob volume is recorded.

Results land in ``results/storage_throughput.txt`` (human table) and
``results/BENCH_storage.json`` (machine-readable).  The committed JSON
doubles as the CI regression baseline: at the full configuration
(90 days × 200 /16s), v4 warm decode must beat v3 by
``SPEEDUP_FLOOR`` (4x); smaller smoke configurations record
``gate.skip_reason`` instead of silently passing.  Peak RSS is always
recorded, and ``REPRO_STORAGE_BENCH_RSS_MB`` (when set, as in the CI
smoke job) turns it into a hard ceiling.

Environment knobs for CI smoke runs: ``REPRO_STORAGE_BENCH_DAYS``
(default 90), ``REPRO_STORAGE_BENCH_SLASH16S`` (default 200) and
``REPRO_STORAGE_BENCH_RSS_MB`` (unset → no ceiling).
"""

import datetime as dt
import json
import os
import pathlib
import resource
import time

from repro.netsim.worldplan import synthetic_plan
from repro.reporting import TextTable
from repro.scan.cache import SnapshotCache
from repro.scan.sharded import ShardedCollector
from repro.scan.snapshot import SnapshotSeries
from repro.scan.storage import COLUMNAR_PAYLOAD_VERSION, DATASET_FORMAT_VERSION

SEED = 42
START = dt.date(2021, 1, 1)

BENCH_DAYS = int(os.environ.get("REPRO_STORAGE_BENCH_DAYS", "90"))
SLASH16S = int(os.environ.get("REPRO_STORAGE_BENCH_SLASH16S", "200"))
PEOPLE = 12
RSS_CEILING_MB = os.environ.get("REPRO_STORAGE_BENCH_RSS_MB")

SPEEDUP_FLOOR = 4.0
TIMING_REPS = 7
TRANSPORT_WORKERS = 2

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_storage.json"
BENCH_TXT = RESULTS_DIR / "storage_throughput.txt"

FULL_CONFIG = BENCH_DAYS >= 90 and SLASH16S >= 200


def _best_of(fn, reps=TIMING_REPS):
    """Best-of-N wall time: the least-interfered-with run."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _peak_rss_mb() -> float:
    """Peak RSS in MB across this process and its (pool) children."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return round(max(own, children) / 1024.0, 1)


def _decode_probe(payload) -> int:
    """Warm decode: payload → series → counts actually read."""
    series = SnapshotSeries.from_payload(payload, None)
    matrix = series.count_matrix()
    total = sum(matrix.totals)
    total += sum(series.counts_view(series.days[-1]).values())
    return total


def test_storage_throughput(tmp_path):
    plan = synthetic_plan(seed=SEED, slash16s=SLASH16S, people=PEOPLE)
    end = START + dt.timedelta(days=BENCH_DAYS)
    series = ShardedCollector(plan, shards=1).collect(START, end)
    reference_bytes = json.dumps(series.to_payload(), sort_keys=True)

    # -- store both representations --------------------------------------
    v3_cache = SnapshotCache(tmp_path / "v3")
    v4_cache = SnapshotCache(tmp_path / "v4")
    key = "storage-bench"
    v3_payload = series.to_payload()
    assert v3_payload["version"] == COLUMNAR_PAYLOAD_VERSION
    v3_cache.store(key, v3_payload)
    v4_cache.store_series(key, series)

    v3_bytes = v3_cache.path_for(key).stat().st_size
    v4_doc_bytes = v4_cache.path_for(key).stat().st_size
    v4_sidecar_bytes = v4_cache.blockfile_path_for(key).stat().st_size
    v4_bytes = v4_doc_bytes + v4_sidecar_bytes

    # -- bit-identity first: nothing is timed until this holds ------------
    for cache in (v3_cache, v4_cache):
        decoded = SnapshotSeries.from_payload(cache.load(key), None)
        assert json.dumps(decoded.to_payload(), sort_keys=True) == reference_bytes, (
            f"decode from {cache.root.name} diverged from the reference"
        )
    assert json.loads(v4_cache.path_for(key).read_text())[
        "version"
    ] == DATASET_FORMAT_VERSION

    # -- warm-decode timings ----------------------------------------------
    v3_seconds = _best_of(lambda: _decode_probe(v3_cache.load(key)))
    v4_seconds = _best_of(lambda: _decode_probe(v4_cache.load(key)))
    speedup = v3_seconds / v4_seconds if v4_seconds else 0.0
    v3_mb_s = v3_bytes / 1e6 / v3_seconds if v3_seconds else 0.0
    v4_mb_s = v4_bytes / 1e6 / v4_seconds if v4_seconds else 0.0

    # -- worker transport: pooled run is byte-identical, blobs counted ----
    pooled_collector = ShardedCollector(plan, shards=TRANSPORT_WORKERS)
    os.environ["REPRO_MAX_WORKERS"] = str(TRANSPORT_WORKERS)
    try:
        pooled = pooled_collector.collect(START, end, workers=TRANSPORT_WORKERS)
    finally:
        os.environ.pop("REPRO_MAX_WORKERS", None)
    pool_metrics = pooled_collector.last_metrics
    assert json.dumps(pooled.to_payload(), sort_keys=True) == reference_bytes, (
        "pooled collection diverged from serial"
    )
    assert pool_metrics.transport_bytes > 0, "pool results did not use the transport"

    peak_rss_mb = _peak_rss_mb()
    skip_reason = None if FULL_CONFIG else (
        f"smoke configuration ({BENCH_DAYS} days × {SLASH16S} /16s below "
        f"90 × 200): speedup recorded, not gated"
    )

    results = {
        "benchmark": "storage_throughput",
        "config": {
            "seed": SEED,
            "days": BENCH_DAYS,
            "slash16s": SLASH16S,
            "people": PEOPLE,
            "prefixes": len(series.count_matrix().prefixes),
            "plan_fingerprint": plan.fingerprint(),
        },
        "formats": {
            "v3_inline_bytes": v3_bytes,
            "v4_document_bytes": v4_doc_bytes,
            "v4_blockfile_bytes": v4_sidecar_bytes,
            "v4_total_bytes": v4_bytes,
        },
        "warm_decode": {
            "v3_seconds": round(v3_seconds, 5),
            "v4_seconds": round(v4_seconds, 5),
            "v3_mb_per_second": round(v3_mb_s, 1),
            "v4_mb_per_second": round(v4_mb_s, 1),
            "speedup_v4_vs_v3": round(speedup, 2),
        },
        "transport": {
            "workers": TRANSPORT_WORKERS,
            "transport_bytes": pool_metrics.transport_bytes,
            "spill_bytes": pool_metrics.spill_bytes,
        },
        "memory": {
            "peak_rss_mb": peak_rss_mb,
            "ceiling_mb": float(RSS_CEILING_MB) if RSS_CEILING_MB else None,
        },
        "gate": {
            "speedup_floor": SPEEDUP_FLOOR,
            "applied": FULL_CONFIG,
            "skip_reason": skip_reason,
        },
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    table = TextTable(
        ["format", "stored bytes", "decode s", "MB/s"], aligns=["<", ">", ">", ">"]
    )
    table.add_row(["v3 inline JSON", v3_bytes, f"{v3_seconds:.4f}", f"{v3_mb_s:.1f}"])
    table.add_row(["v4 blockfile", v4_bytes, f"{v4_seconds:.4f}", f"{v4_mb_s:.1f}"])
    BENCH_TXT.write_text(
        f"Storage throughput — {BENCH_DAYS} days, {SLASH16S} /16s, "
        f"{results['config']['prefixes']} prefixes\n\n"
        + table.render()
        + f"\n\nwarm-decode speedup v4 vs v3: {speedup:.2f}x"
        + f" (gate {'applied' if FULL_CONFIG else 'skipped'}: floor {SPEEDUP_FLOOR}x"
        + (f", {skip_reason}" if skip_reason else "")
        + f")\ntransport bytes at {TRANSPORT_WORKERS} workers: "
        + f"{pool_metrics.transport_bytes}"
        + f" (spilled: {pool_metrics.spill_bytes})\n"
        + f"peak RSS: {peak_rss_mb} MB"
        + (f" (ceiling {RSS_CEILING_MB} MB)" if RSS_CEILING_MB else "")
        + "\n"
    )
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")

    # -- the regression gates ---------------------------------------------
    if FULL_CONFIG:
        assert speedup >= SPEEDUP_FLOOR, (
            f"v4 warm-decode speedup regressed: {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"(v3 {v3_seconds:.4f}s, v4 {v4_seconds:.4f}s)"
        )
    if RSS_CEILING_MB:
        assert peak_rss_mb <= float(RSS_CEILING_MB), (
            f"peak RSS {peak_rss_mb} MB exceeds the "
            f"{RSS_CEILING_MB} MB ceiling"
        )
