"""Table 2: the reactive measurement back-off schedule.

This is configuration rather than a result, but the harness verifies
the implemented schedule is exactly the paper's: 12x5min, 6x10min,
3x20min, 2x30min, then hourly until the client goes offline.
"""

from repro.netsim.simtime import HOUR, MINUTE
from repro.reporting import TextTable
from repro.scan.reactive import TABLE2_SCHEDULE


def test_table2_backoff_schedule(benchmark, write_artifact):
    intervals = benchmark(lambda: list(TABLE2_SCHEDULE.intervals(max_tail=1)))

    table = TextTable(["Phase", "Probes", "Interval"], aligns=["<", ">", ">"])
    for index, (count, interval) in enumerate(TABLE2_SCHEDULE.steps, start=1):
        table.add_row([f"hour {index}", count, f"{interval // MINUTE} min"])
    table.add_row(["until offline", "-", f"{TABLE2_SCHEDULE.tail_interval // MINUTE} min"])
    write_artifact("table2_backoff", "Table 2: reactive measurement back-off schedule", table.render())

    assert intervals[:12] == [5 * MINUTE] * 12
    assert intervals[12:18] == [10 * MINUTE] * 6
    assert intervals[18:21] == [20 * MINUTE] * 3
    assert intervals[21:23] == [30 * MINUTE] * 2
    assert intervals[23] == 60 * MINUTE
    # Each fixed phase spans exactly one hour; four hours total.
    assert TABLE2_SCHEDULE.total_scheduled_duration() == 4 * HOUR
    for count, interval in TABLE2_SCHEDULE.steps:
        assert count * interval == HOUR
