"""Figure 9: longitudinal rDNS presence through the COVID-19 pandemic.

Shape targets from Section 7.2: Academic-A's entries drop sharply when
moderate/high campus risk is reported and rebound after low-risk
reports; Academic-B dips in the first lockdown and returns to
pre-pandemic levels by September 2021; Enterprise-B and Enterprise-C
show significant decreases in March/April 2021, Enterprise-B with a
partial recovery around May 2021.
"""

import datetime as dt

from repro.core import relative_daily_presence
from repro.reporting import render_time_series

CASE_NETWORKS = ["Academic-A", "Academic-B", "Academic-C", "Enterprise-B", "Enterprise-C"]


def weekly_mean(presence, start):
    values = [presence.get(start + dt.timedelta(days=offset)) for offset in range(7)]
    values = [value for value in values if value is not None]
    return sum(values) / len(values)


def test_figure9_work_from_home(benchmark, world, openintel_series, write_artifact):
    def compute():
        return {
            name: relative_daily_presence(
                openintel_series, [str(world.internet.network(name).prefix)]
            )
            for name in CASE_NETWORKS
        }

    presence = benchmark(compute)

    write_artifact(
        "figure9_wfh",
        "Figure 9: rDNS entry presence relative to each network's maximum",
        render_time_series(presence, samples=30),
    )

    # Academic-A: high-risk reporting periods suppress presence.
    academic_a = presence["Academic-A"]
    pre_pandemic = weekly_mean(academic_a, dt.date(2020, 2, 17))
    lockdown = weekly_mean(academic_a, dt.date(2020, 4, 13))
    recovered = weekly_mean(academic_a, dt.date(2021, 10, 4))
    assert lockdown < pre_pandemic * 0.7
    assert recovered > lockdown * 1.4

    # Academic-B: first-lockdown dip, back to ~pre-pandemic by fall 2021.
    academic_b = presence["Academic-B"]
    b_pre = weekly_mean(academic_b, dt.date(2020, 2, 17))
    b_lockdown = weekly_mean(academic_b, dt.date(2020, 4, 13))
    b_fall21 = weekly_mean(academic_b, dt.date(2021, 10, 4))
    assert b_lockdown < b_pre * 0.8
    assert b_fall21 > b_pre * 0.85

    # Enterprises: the March/April-2021 measures bite hard...
    for name in ("Enterprise-B", "Enterprise-C"):
        series = presence[name]
        before = weekly_mean(series, dt.date(2021, 2, 1))
        during = weekly_mean(series, dt.date(2021, 3, 15))
        assert during < before * 0.7, name
    # ...with Enterprise-B partially recovering around May 2021.
    enterprise_b = presence["Enterprise-B"]
    assert weekly_mean(enterprise_b, dt.date(2021, 5, 24)) > weekly_mean(
        enterprise_b, dt.date(2021, 3, 15)
    )
