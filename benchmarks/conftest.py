"""Shared fixtures for the benchmark harness.

Every paper table and figure is regenerated here from one seeded world.
Expensive simulations (the six-week supplemental campaign, the
multi-year snapshot series) run once per session; each benchmark then
times the *analysis* step — the paper's contribution — and writes the
reproduced table or figure to ``results/``.
"""

import datetime as dt
import pathlib
import sys

import pytest

_SRC = pathlib.Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core.grouping import GroupBuilder  # noqa: E402
from repro.core.pipeline import ReproductionStudy, StudyConfig  # noqa: E402
from repro.scan.cache import CampaignCache, SnapshotCache  # noqa: E402
from repro.scan.snapshot import SnapshotCollector  # noqa: E402

SEED = 42

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"

#: The paper's full-space measurement windows (Table 1).
RAPID7_START, RAPID7_END = dt.date(2019, 10, 1), dt.date(2021, 1, 1)
OPENINTEL_START, OPENINTEL_END = dt.date(2020, 2, 17), dt.date(2021, 12, 1)


@pytest.fixture(scope="session")
def study():
    """One paper-configuration study shared by every benchmark.

    The six-week supplemental campaign replays from the on-disk
    campaign cache (default root) after the first benchmark session;
    entries are keyed on the world fingerprint, so a changed seed never
    hits.
    """
    config = StudyConfig(seed=SEED)
    config.campaign_cache = CampaignCache()
    return ReproductionStudy(config)


@pytest.fixture(scope="session")
def world(study):
    return study.world


@pytest.fixture(scope="session")
def dynamicity_report(study):
    return study.dynamicity()


@pytest.fixture(scope="session")
def leak_report(study):
    return study.leaks()


@pytest.fixture(scope="session")
def supplemental(study):
    """The six-week supplemental campaign (Sections 6-7)."""
    return study.supplemental()


@pytest.fixture(scope="session")
def groups(study):
    return study.groups()


@pytest.fixture(scope="session")
def group_builder():
    return GroupBuilder()


@pytest.fixture(scope="session")
def usable_groups(study):
    return study.usable_groups()


@pytest.fixture(scope="session")
def snapshot_cache():
    """On-disk snapshot cache shared across benchmark sessions.

    Lives at the default cache root (``$REPRO_SNAPSHOT_CACHE`` or
    ``~/.cache/repro-rdns/snapshots``), so the multi-year series below
    are simulated once and replayed on every later run; entries are
    keyed on the world fingerprint, so a changed seed never hits.
    """
    return SnapshotCache()


@pytest.fixture(scope="session")
def openintel_series(world, snapshot_cache):
    """Daily full-space snapshots over the paper's OpenINTEL window."""
    collector = SnapshotCollector.openintel_style(world.internet)
    return collector.collect(OPENINTEL_START, OPENINTEL_END, cache=snapshot_cache)


@pytest.fixture(scope="session")
def rapid7_series(world, snapshot_cache):
    """Weekly full-space snapshots over the paper's Rapid7 window."""
    collector = SnapshotCollector.rapid7_style(world.internet)
    return collector.collect(RAPID7_START, RAPID7_END, cache=snapshot_cache)


@pytest.fixture(scope="session")
def write_artifact():
    """Write a reproduced table/figure under results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _write(name: str, title: str, body: str) -> pathlib.Path:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(f"{title}\n{'=' * len(title)}\n\n{body}\n")
        return path

    return _write
