"""Figure 4: type breakdown of the identified networks.

Paper values: 61.9% academic, 15.2% ISP, 11.2% other, 9% enterprise,
3% government over 197 networks.  Shape targets: academic networks are
the clear majority, ISPs second, with enterprise/other present and
government a small sliver.
"""

from repro.core import NetworkTypeClassifier
from repro.netsim.network import NetworkType
from repro.reporting import TextTable


def test_figure4_network_type_breakdown(benchmark, leak_report, write_artifact):
    classifier = NetworkTypeClassifier()
    breakdown = benchmark(classifier.breakdown_percent, leak_report.identified)

    table = TextTable(["Type", "Share %"], aligns=["<", ">"])
    order = [
        NetworkType.ACADEMIC,
        NetworkType.ISP,
        NetworkType.OTHER,
        NetworkType.ENTERPRISE,
        NetworkType.GOVERNMENT,
    ]
    for net_type in order:
        table.add_row([net_type.value, round(breakdown[net_type], 1)])
    write_artifact(
        "figure4_network_types",
        f"Figure 4: type breakdown of the {len(leak_report.identified)} identified networks",
        table.render(),
    )

    assert len(leak_report.identified) >= 20
    # Academic networks dominate (paper: 61.9%).
    assert breakdown[NetworkType.ACADEMIC] > 45
    assert breakdown[NetworkType.ACADEMIC] == max(breakdown.values())
    # ISPs are the second-largest class (paper: 15.2%).
    non_academic = {k: v for k, v in breakdown.items() if k is not NetworkType.ACADEMIC}
    assert breakdown[NetworkType.ISP] == max(non_academic.values())
    # Enterprise, government and other all appear.
    assert breakdown[NetworkType.ENTERPRISE] > 0
    assert breakdown[NetworkType.GOVERNMENT] > 0
    assert breakdown[NetworkType.OTHER] > 0
    assert sum(breakdown.values()) == pytest_approx_100(breakdown)


def pytest_approx_100(breakdown):
    total = sum(breakdown.values())
    assert abs(total - 100.0) < 1e-6
    return total
