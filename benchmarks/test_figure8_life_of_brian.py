"""Figure 8: six weeks in the Life of Brian(s).

Shape targets from Section 7.1: five Brian-named device hostnames on
Academic-A; weekday-regular patterns for the office devices
(brians-phone, brians-mbp — the latter "a couple of hours around noon,
every day"); all devices absent over the Thanksgiving weekend; and
brians-galaxy-note9 first appearing "in the afternoon on Cyber Monday".
"""

import datetime as dt

from repro.core import DeviceTracker
from repro.netsim.calendar import cyber_monday, thanksgiving
from repro.netsim.personas import BRIAN_HOSTNAME_LABELS
from repro.netsim.simtime import date_of, hour_of_day


def render_matrix(matrix, start):
    lines = [f"Weeks starting {start} (# = device observed that day)"]
    for label in BRIAN_HOSTNAME_LABELS:
        days = matrix.get(label, [])
        cells = "".join("#" if present else "." for present in days)
        lines.append(f"{label:22s} {cells}")
    return "\n".join(lines)


def test_figure8_life_of_brian(benchmark, supplemental, write_artifact):
    tracker = DeviceTracker(supplemental.rdns)
    start = supplemental.start
    days = (supplemental.end - supplemental.start).days + 1

    matrix = benchmark(
        tracker.presence_matrix,
        "brian",
        start,
        days,
        network="Academic-A",
        labels=BRIAN_HOSTNAME_LABELS,
    )

    write_artifact(
        "figure8_life_of_brian",
        "Figure 8: six weeks in the Life of Brian(s) on Academic-A",
        render_matrix(matrix, start),
    )

    # All five tracked hostnames were observed.
    for label in BRIAN_HOSTNAME_LABELS:
        assert any(matrix[label]), f"{label} never observed"

    def index_of(day):
        return (day - start).days

    # Thanksgiving (Thursday) through Sunday: everyone is gone.  On the
    # Thursday itself, records of Wednesday-evening silent leavers may
    # smear past midnight until their lease expires, so that day is
    # checked from 06:00 onward (the same boundary effect a real
    # measurement would see).
    holiday = thanksgiving(2021)
    devices = tracker.track("brian", network="Academic-A")
    for label in BRIAN_HOSTNAME_LABELS:
        for at, _ in devices[label].sightings:
            day = date_of(at)
            if holiday <= day <= holiday + dt.timedelta(days=3):
                assert day == holiday and hour_of_day(at) < 6, (
                    f"{label} observed at {day} hour {hour_of_day(at)}"
                )

    # The Galaxy Note 9 first appears on Cyber Monday, in the afternoon.
    monday = cyber_monday(2021)
    note9 = matrix["brians-galaxy-note9"]
    assert not any(note9[: index_of(monday)])
    assert note9[index_of(monday)]
    appearances = dict(tracker.new_device_appearances("brian", network="Academic-A"))
    first_seen = appearances["brians-galaxy-note9"]
    assert date_of(first_seen) == monday
    assert hour_of_day(first_seen) >= 12

    # Office devices follow a weekday pattern: present most weekdays,
    # absent on weekends.
    for label in ("brians-phone", "brians-mbp"):
        weekdays = [
            matrix[label][offset]
            for offset in range(days)
            if (start + dt.timedelta(days=offset)).weekday() < 5
            and not thanksgiving(2021) <= start + dt.timedelta(days=offset) <= thanksgiving(2021) + dt.timedelta(days=3)
        ]
        weekends = [
            matrix[label][offset]
            for offset in range(days)
            if (start + dt.timedelta(days=offset)).weekday() >= 5
        ]
        assert sum(weekdays) / len(weekdays) > 0.8
        assert sum(weekends) == 0

    # The mbp's sessions cluster around noon (Section 7.1's pattern).
    devices = tracker.track("brian", network="Academic-A")
    mbp_hours = [hour_of_day(at) for at, _ in devices["brians-mbp"].sightings]
    assert sum(1 for hour in mbp_hours if 10 <= hour <= 15) / len(mbp_hours) > 0.9
