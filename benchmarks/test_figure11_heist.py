"""Figure 11: when to stage a heist.

Shape targets from Section 7.3: Academic-A shows a clear diurnal
pattern — "most activity during the day and into the evening, while the
least activity is at night and early in the morning"; "on weekdays the
data hint at approximately 6AM as a good time"; rDNS- and ICMP-based
activity largely agree; and absolute rDNS counts sit below ICMP counts
(the rDNS measurement is reactive).
"""

import datetime as dt

from repro.core import HeistPlanner, hourly_activity
from repro.reporting import TextTable


def test_figure11_heist_timing(benchmark, supplemental, write_artifact):
    planner = HeistPlanner(supplemental, "Academic-A")
    window = (dt.date(2021, 11, 1), dt.date(2021, 11, 7))

    plan = benchmark(
        planner.plan, source="rdns", weekdays_only=True, start=window[0], end=window[1]
    )
    icmp_plan = planner.plan(source="icmp", weekdays_only=True, start=window[0], end=window[1])

    table = TextTable(["Hour of day", "Avg rDNS activity", "Avg ICMP activity"], aligns=[">", ">", ">"])
    for hour in range(24):
        table.add_row(
            [
                hour,
                round(plan.activity_by_hour.get(hour, 0.0), 1),
                round(icmp_plan.activity_by_hour.get(hour, 0.0), 1),
            ]
        )
    write_artifact(
        "figure11_heist",
        f"Figure 11: Academic-A hourly activity, week of {window[0]} (recommended hour: {plan.hour_of_day}:00)",
        table.render(),
    )

    # The quiet hour falls in the early morning (the paper's example
    # lands at ~6 AM; ours sits in the same pre-work trough).  The
    # ICMP series is nearly flat through the night (always-on dorm
    # devices answer pings while their owners sleep), so for it we
    # only require a night-time recommendation.
    assert 3 <= plan.hour_of_day <= 9
    assert icmp_plan.hour_of_day <= 9
    # Diurnal shape: mid-afternoon is several times busier than the
    # recommended hour.
    afternoon = max(plan.activity_by_hour[hour] for hour in (13, 14, 15, 16))
    assert afternoon > 3 * max(plan.activity_by_hour[plan.hour_of_day], 0.5)
    # The reactive rDNS counts pan out lower than the ICMP counts.
    icmp_hours, rdns_hours = hourly_activity(supplemental, "Academic-A")
    assert sum(rdns_hours.values()) < sum(icmp_hours.values())
    benchmark.extra_info["recommended_hour"] = plan.hour_of_day
