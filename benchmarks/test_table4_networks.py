"""Table 4: the nine supplemental networks and their ICMP visibility.

Paper values: Academic-A 48.0%, Academic-B two hosts (0.0%),
Academic-C 33.0%, Enterprise-A 58.7%, Enterprise-B and Enterprise-C
0.0% (ping-blocking), ISP-A 34.9%, ISP-B 0.3%, ISP-C 1.7%.  Shape
targets: the ordering and the zeros.
"""

from repro.reporting import TextTable


def test_table4_network_visibility(benchmark, supplemental, write_artifact):
    rows = benchmark(supplemental.table4_rows)

    table = TextTable(
        ["Network", "Type", "Targeted space", "Addresses observed", "Percent observed"],
        aligns=["<", "<", "<", ">", ">"],
    )
    for name, net_type, targets, observed, percent in rows:
        table.add_row([name, net_type, targets, observed, round(percent, 1)])
    write_artifact("table4_networks", "Table 4: supplemental networks and ICMP responsiveness", table.render())

    by_name = {row[0]: row for row in rows}
    assert len(rows) == 9
    # Ping-blocking enterprises are invisible to ICMP.
    assert by_name["Enterprise-B"][3] == 0
    assert by_name["Enterprise-C"][3] == 0
    # Academic-B shows exactly the two allow-listed appliances.
    assert by_name["Academic-B"][3] == 2
    # Open academic and enterprise networks are broadly visible...
    assert by_name["Academic-A"][4] > 20
    assert by_name["Academic-C"][4] > 20
    assert by_name["Enterprise-A"][4] > 20
    # ...while CPE-heavy ISPs respond poorly (ISP-B/C under 2%).
    assert by_name["ISP-A"][4] > 10
    assert by_name["ISP-B"][4] < 2
    assert by_name["ISP-C"][4] < 2
    # Orderings from the paper's table.
    assert by_name["Enterprise-A"][4] > by_name["Academic-C"][4]
    assert by_name["Academic-A"][4] > by_name["ISP-A"][4]
