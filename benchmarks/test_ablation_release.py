"""Ablation: DHCP RELEASE behaviour vs PTR lingering (future work, §10).

The paper closes asking whether *not* sending DHCP releases is "a
possible defense mechanism": without releases, the PTR only disappears
when the lease expires, so an outside observer's estimate of departure
time blurs by up to a full lease period.  This bench runs the same
population twice — all clients releasing vs none — and compares the
lingering-time distributions.
"""

import datetime as dt

from repro.core import GroupBuilder, lingering_analysis
from repro.ipam import CarryOverPolicy
from repro.netsim.engine import SimulationEngine
from repro.netsim.finegrained import NetworkRuntime
from repro.netsim.network import Network, NetworkType, Subnet, SubnetRole
from repro.netsim.person import PersonGenerator
from repro.netsim.population import _take_devices
from repro.netsim.rng import RngStreams
from repro.netsim.simtime import DAY, from_date
from repro.reporting import TextTable
from repro.scan.campaign import SupplementalDataset
from repro.scan.icmp import IcmpScanner
from repro.scan.rdns import RdnsLookupEngine
from repro.scan.reactive import ReactiveMonitor

START, DAYS = dt.date(2021, 11, 1), 5
SUFFIX = "corp.release-ablation.com"


def run_variant(sends_release: bool):
    rngs = RngStreams(7)
    generator = PersonGenerator(rngs.stream("population", "rel"))
    people = generator.make_population(40, id_prefix="rel")
    devices = _take_devices(people)
    for device in devices:
        device.sends_release = sends_release
        device.icmp_responds = True
    network = Network(
        "rel-net", NetworkType.ENTERPRISE, "10.0.0.0/16", SUFFIX, lease_time=3600, rngs=rngs
    )
    network.add_subnet(
        Subnet(
            "10.0.10.0/24",
            SubnetRole.DYNAMIC_CLIENTS,
            devices=devices,
            policy=CarryOverPolicy(SUFFIX),
        )
    )
    engine = SimulationEngine(start=from_date(START))
    runtime = NetworkRuntime(network, engine)
    runtime.start(START, START + dt.timedelta(days=DAYS - 1))
    resolver = network.server  # direct authoritative path
    from repro.dns.resolver import StubResolver

    stub = StubResolver()
    stub.delegate(resolver)
    monitor = ReactiveMonitor(engine, IcmpScanner({"rel-net": runtime}), RdnsLookupEngine(stub))
    end = from_date(START) + DAYS * DAY - 1
    monitor.start({"rel-net": ["10.0.10.0/24"]}, end=end)
    engine.run_until(end)
    dataset = SupplementalDataset(
        start=START,
        end=START + dt.timedelta(days=DAYS - 1),
        icmp=monitor.icmp_observations,
        rdns=monitor.rdns_observations,
        targets_by_network={"rel-net": ["10.0.10.0/24"]},
        network_types={"rel-net": NetworkType.ENTERPRISE},
    )
    builder = GroupBuilder()
    groups = builder.build(dataset)
    return lingering_analysis(builder.usable(groups))


def test_ablation_release_behaviour(benchmark, write_artifact):
    def run_both():
        return run_variant(True), run_variant(False)

    releasing, silent = benchmark.pedantic(run_both, rounds=1, iterations=1)

    table = TextTable(
        ["Variant", "Usable groups", "Median linger (min)", "Within 15 min %", "Within 60 min %"],
        aligns=["<", ">", ">", ">", ">"],
    )
    for label, analysis in (("all clients release", releasing), ("no client releases", silent)):
        table.add_row(
            [
                label,
                analysis.count,
                round(analysis.quantile(0.5), 1),
                round(100 * analysis.fraction_within(15), 1),
                round(100 * analysis.fraction_within(60), 1),
            ]
        )
    write_artifact(
        "ablation_release",
        "Ablation: DHCP release behaviour vs PTR lingering",
        table.render(),
    )

    assert releasing.count > 20 and silent.count > 20
    # Releases make removals near-immediate (what remains is ICMP
    # detection latency); silence defers them to lease expiry — the
    # "possible defense mechanism" of Section 10.
    assert releasing.quantile(0.5) + 15 <= silent.quantile(0.5)
    assert releasing.fraction_within(60) > 0.9
    assert silent.fraction_within(60) < 0.6
    assert releasing.fraction_within(30) > silent.fraction_within(30) + 0.2
