"""Table 1: statistics of the Rapid7 and OpenINTEL rDNS datasets.

Paper values (full Internet): Rapid7 Sonar 2019-10-01..2021-01-01,
77G responses, 1,381M unique PTRs; OpenINTEL 2020-02-17..2021-12-01,
396G responses, 1,356M unique PTRs.  At simulator scale the absolute
volumes shrink; the *shape* targets are (a) the daily collector gathers
several times more responses than the weekly one and (b) both see a
similar unique-PTR universe.
"""

from repro.reporting import TextTable


def render_table1(rapid7_stats, openintel_stats):
    table = TextTable(
        ["Dataset", "Start date", "End date", "Snapshots", "Total # responses", "# unique PTRs"],
        aligns=["<", "<", "<", ">", ">", ">"],
    )
    for stats in (rapid7_stats, openintel_stats):
        table.add_row(
            [
                stats.name,
                str(stats.start_date),
                str(stats.end_date),
                stats.snapshots,
                stats.total_responses,
                stats.unique_ptrs,
            ]
        )
    return table.render()


def test_table1_dataset_statistics(benchmark, rapid7_series, openintel_series, write_artifact):
    rapid7_stats = rapid7_series.stats()
    openintel_stats = benchmark(openintel_series.stats)

    rendered = render_table1(rapid7_stats, openintel_stats)
    write_artifact("table1_datasets", "Table 1: full-address-space rDNS dataset statistics", rendered)

    # Daily cadence gathers far more responses over a comparable span.
    assert openintel_series.cadence_days == 1
    assert rapid7_series.cadence_days == 7
    assert openintel_stats.total_responses > 3 * rapid7_stats.total_responses
    # Both instruments observe PTR universes of the same order.
    ratio = openintel_stats.unique_ptrs / rapid7_stats.unique_ptrs
    assert 0.5 < ratio < 2.5
    benchmark.extra_info["openintel_responses"] = openintel_stats.total_responses
    benchmark.extra_info["rapid7_responses"] = rapid7_stats.total_responses
