"""Figure 2: given-name matches in rDNS, all vs filtered.

Shape targets from Section 5.2: "given names are generally more common
in prefixes that show dynamic behavior" and the popularity ordering of
the SSA ranking shows through (more-popular names match more records).
The filtered (identified-networks-only) series sits clearly below the
all-matches series.
"""

from repro.core import GivenNameMatcher, LeakIdentifier
from repro.datasets import TOP_GIVEN_NAMES
from repro.reporting import TextTable, render_bar_chart


def test_figure2_given_name_matches(benchmark, study, leak_report, write_artifact):
    report = leak_report

    # Time one single-day identification pass (the repeatable unit of
    # the Section 5.1 pipeline).
    series = study.daily_series()
    last_day = series.days[-1]
    dynamic = set(study.dynamicity().dynamic_prefixes())
    identifier = LeakIdentifier(GivenNameMatcher(), study.config.leak_thresholds)
    benchmark(lambda: identifier.identify(series.records_on(last_day), dynamic))

    table = TextTable(["Name", "All matches", "Filtered matches"], aligns=["<", ">", ">"])
    for name in TOP_GIVEN_NAMES:
        table.add_row(
            [name, report.all_name_counts.get(name, 0), report.filtered_name_counts.get(name, 0)]
        )
    chart = render_bar_chart(
        {name: report.all_name_counts.get(name, 0) for name in TOP_GIVEN_NAMES[:20]},
        log_note=True,
    )
    write_artifact(
        "figure2_given_names",
        "Figure 2: given-name matches in reverse DNS (all vs filtered)",
        table.render() + "\n\nTop-20 all-matches profile:\n" + chart,
    )

    all_total = sum(report.all_name_counts.values())
    filtered_total = sum(report.filtered_name_counts.values())
    assert all_total > 0 and filtered_total > 0
    # Filtering strictly reduces matches, for every name; the paper's
    # log-scale figure shows a gap approaching an order of magnitude.
    assert filtered_total < all_total
    assert all_total > 3 * filtered_total
    for name in TOP_GIVEN_NAMES:
        assert report.filtered_name_counts.get(name, 0) <= report.all_name_counts.get(name, 0)
    # Popularity ordering shows through: the top-10 names out-match the
    # bottom-10 in aggregate.
    head = sum(report.all_name_counts.get(name, 0) for name in TOP_GIVEN_NAMES[:10])
    tail = sum(report.all_name_counts.get(name, 0) for name in TOP_GIVEN_NAMES[-10:])
    assert head > tail
    benchmark.extra_info["all_matches"] = all_total
    benchmark.extra_info["filtered_matches"] = filtered_total
