"""Figure 1: fraction of dynamic /24s per announced covering prefix.

Shape targets from Section 4.2: "generally speaking, only a small
subset of the prefixes that make up a network exhibit dynamic
behavior" — medians are low, and larger announced prefixes show smaller
dynamic fractions.
"""

from repro.core import AnnouncedPrefixMap, dynamic_fraction_summary
from repro.reporting import TextTable


def test_figure1_dynamic_fraction_distribution(
    benchmark, study, dynamicity_report, write_artifact
):
    prefix_map = study.announced_prefix_map()
    dynamic_24s = dynamicity_report.dynamic_prefixes()

    summaries = benchmark(dynamic_fraction_summary, prefix_map, dynamic_24s)

    table = TextTable(
        ["Announced size", "# prefixes", "Min %", "Median %", "Max %"],
        aligns=["<", ">", ">", ">", ">"],
    )
    for summary in summaries:
        table.add_row(
            [
                f"/{summary.prefixlen}",
                summary.prefixes,
                round(100 * summary.minimum, 3),
                round(100 * summary.median, 3),
                round(100 * summary.maximum, 3),
            ]
        )
    write_artifact(
        "figure1_dynamic_fraction",
        "Figure 1: dynamic /24 fraction per announced prefix size",
        table.render(),
    )

    assert summaries, "no announced prefix contains dynamic /24s"
    by_size = {summary.prefixlen: summary for summary in summaries}
    # Multiple announced sizes are represented.
    assert len(by_size) >= 5
    # Larger (shorter-prefix) announcements dilute their dynamic /24s.
    small_sizes = [s for s in by_size.values() if s.prefixlen <= 12]
    large_sizes = [s for s in by_size.values() if s.prefixlen >= 20]
    if small_sizes and large_sizes:
        assert max(s.median for s in small_sizes) <= min(s.median for s in large_sizes)
    # Dynamic space is a small subset of announced space overall.
    assert all(summary.median <= 0.5 for summary in summaries if summary.prefixlen <= 16)
