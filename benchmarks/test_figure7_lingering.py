"""Figure 7: how long PTR records linger after a client leaves.

Shape targets from Section 6.2: "in about 9 of 10 cases, the rDNS
entries reverted within 60 minutes" (Figure 7b); the histogram shows a
peak near the five-minute mark (clean DHCP releases) and mass near
lease-expiry times (Figure 7a); the long-lease network (our Academic-A)
lags the other academics.
"""

from repro.core import lingering_analysis
from repro.core.stats import lingering_summary
from repro.reporting import TextTable, render_cdf


def test_figure7_lingering_times(benchmark, usable_groups, write_artifact):
    analysis = benchmark(lingering_analysis, usable_groups)

    histogram = analysis.histogram(bin_minutes=5, max_minutes=180)
    table = TextTable(["Minutes bin", "Groups"], aligns=["<", ">"])
    for bin_start in sorted(histogram):
        table.add_row([f"{bin_start}-{bin_start + 5}", histogram[bin_start]])

    cdfs = {network: analysis.cdf(network) for network in analysis.networks()}
    rendered_cdf = render_cdf(cdfs, checkpoints=(5, 15, 30, 60, 120))
    write_artifact(
        "figure7_lingering",
        "Figure 7: minutes between last ICMP sample and PTR removal",
        table.render() + "\n\nPer-network CDF (Figure 7b):\n" + rendered_cdf,
    )

    assert analysis.count > 500
    # Headline: ~9 in 10 records revert within the hour.
    within_60 = analysis.fraction_within(60)
    assert within_60 > 0.75
    # The histogram has early mass (releases) and no negative bins.
    early = sum(histogram.get(b, 0) for b in (0, 5, 10, 15))
    assert early > 0.05 * analysis.count
    # Multiple networks contribute, and the long-lease Academic-A
    # lingers more than the short-lease Academic-C.
    assert len(analysis.networks()) >= 4
    if {"Academic-A", "Academic-C"} <= set(analysis.networks()):
        assert analysis.fraction_within(60, "Academic-A") <= analysis.fraction_within(60, "Academic-C")
    benchmark.extra_info["fraction_within_60min"] = round(within_60, 3)
    # Attach uncertainty to the headline number (Wilson interval): the
    # paper's "about 9 in 10" should be statistically firm at our scale.
    summary = lingering_summary(analysis, within_minutes=60)
    interval = summary["fraction_within_60m"]
    assert interval.high - interval.low < 0.05  # tight at n>500
    benchmark.extra_info["fraction_within_60min_ci"] = str(interval)
