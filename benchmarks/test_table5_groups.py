"""Table 5: the activity-group funnel.

Paper values: 6,297,080 groups, of which 9.3% have successful
responses; of those 99.9% show the PTR reverted; of those 72.1% have
reliable timing alignment, leaving 419,453 usable groups.  Shape
targets: a strictly narrowing funnel, a high reverted share among
successful groups, and roughly three quarters surviving the
reliability filter (the paper's "about 1 out of 4" loss).
"""

from repro.reporting import TextTable


def test_table5_group_funnel(benchmark, supplemental, group_builder, groups, write_artifact):
    funnel = benchmark(group_builder.funnel, groups)

    table = TextTable(["Category", "# groups", "Fraction of parent %"], aligns=["<", ">", ">"])
    for label, count, fraction in funnel.rows():
        table.add_row([label, count, round(fraction, 1)])
    write_artifact("table5_groups", "Table 5: supplemental measurement group funnel", table.render())

    assert funnel.all_groups > 1000
    assert funnel.all_groups >= funnel.successful >= funnel.reverted >= funnel.reliable > 0
    # Among successful groups, reversion is the norm (paper: 99.9%).
    assert funnel.reverted / funnel.successful > 0.8
    # Roughly a quarter of reverted groups fail timing alignment
    # (paper: 72.1% survive).
    reliable_share = funnel.reliable / funnel.reverted
    assert 0.55 < reliable_share < 0.95
    benchmark.extra_info.update(
        all_groups=funnel.all_groups,
        usable_groups=funnel.reliable,
        reliable_share=round(reliable_share, 3),
    )
