"""Shard scaling: the multi-/16 world model under the sharded engines.

Not a paper table — this benchmarks the sharded collection plane that
lets a study span address space no single process could hold.  A
:func:`~repro.netsim.worldplan.synthetic_plan` world of
``REPRO_SHARD_BENCH_SLASH16S`` /16s (default 400 → 102 400 /24-sized
prefixes spanned) runs through :class:`ShardedCollector` at several
shard counts, and every multi-shard payload is checked **byte-identical**
to the single-shard run before anything is timed.

Timed legs:

* serial reference: ``shards=1`` on one worker;
* sharded serial: ``shards=4`` on one worker (partitioning overhead);
* sharded parallel: ``shards=4`` on 4 workers — the leg the speedup
  gate watches.

Results land in ``results/shard_scaling.txt`` (human table) and
``results/BENCH_shards.json`` (machine-readable).  The committed JSON
doubles as the CI regression baseline: on a >= 4-core host at the full
configuration, the 4-worker leg must clear ``SPEEDUP_FLOOR`` (1.8x) —
single-core hosts still verify bit-identity and record timings, but
cannot meaningfully gate a multi-core speedup.  Peak RSS (self +
children) is recorded so memory-boundedness regressions show up in
review diffs.

When the speedup gate cannot apply — a smoke configuration or a
single-core host — the reason is recorded in ``gate.skip_reason`` and
printed, so a green run on an undersized host can never be mistaken
for a gated one.  Peak RSS is part of the gate: set
``REPRO_SHARD_BENCH_RSS_MB`` to turn the recorded figure into a hard
ceiling (the CI smoke job does).

Environment knobs for CI smoke runs: ``REPRO_SHARD_BENCH_SLASH16S``
(default 400), ``REPRO_SHARD_BENCH_DAYS`` (default 12),
``REPRO_SHARD_BENCH_PEOPLE`` (default 4) and
``REPRO_SHARD_BENCH_RSS_MB`` (unset → no ceiling).
"""

import datetime as dt
import json
import os
import pathlib
import resource
import time

from repro.netsim.worldplan import synthetic_plan
from repro.reporting import TextTable
from repro.scan.sharded import ShardedCollector

SEED = 42
START = dt.date(2021, 1, 1)

SLASH16S = int(os.environ.get("REPRO_SHARD_BENCH_SLASH16S", "400"))
BENCH_DAYS = int(os.environ.get("REPRO_SHARD_BENCH_DAYS", "12"))
PEOPLE = int(os.environ.get("REPRO_SHARD_BENCH_PEOPLE", "4"))
RSS_CEILING_MB = os.environ.get("REPRO_SHARD_BENCH_RSS_MB")

#: Shard counts to verify byte-identity at (1 is the reference).
SHARD_COUNTS = (1, 2, 4, 8)
GATED_WORKERS = 4
SPEEDUP_FLOOR = 1.8
TIMING_REPS = 3

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_shards.json"
BENCH_TXT = RESULTS_DIR / "shard_scaling.txt"

FULL_CONFIG = SLASH16S >= 400 and BENCH_DAYS >= 12
MULTI_CORE = (os.cpu_count() or 1) >= GATED_WORKERS


def _best_of(fn, reps=TIMING_REPS):
    """Best-of-N wall time: the least-interfered-with run."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _peak_rss_mb() -> float:
    """Peak RSS in MB across this process and its (pool) children."""
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return round(max(own, children) / 1024.0, 1)


def test_shard_scaling():
    plan = synthetic_plan(seed=SEED, slash16s=SLASH16S, people=PEOPLE)
    end = START + dt.timedelta(days=BENCH_DAYS)
    prefixes_spanned = SLASH16S * 256

    # -- bit-identity first: nothing is timed until this holds ------------
    reference = ShardedCollector(plan, shards=1).collect(START, end)
    reference_bytes = json.dumps(reference.to_payload(), sort_keys=True)
    identical_at = []
    for shards in SHARD_COUNTS[1:]:
        series = ShardedCollector(plan, shards=shards).collect(START, end)
        assert (
            json.dumps(series.to_payload(), sort_keys=True) == reference_bytes
        ), f"shards={shards} diverged from the single-shard run"
        identical_at.append(shards)

    # -- timings ----------------------------------------------------------
    serial_seconds = _best_of(
        lambda: ShardedCollector(plan, shards=1).collect(START, end, workers=1)
    )
    sharded_serial_seconds = _best_of(
        lambda: ShardedCollector(plan, shards=GATED_WORKERS).collect(
            START, end, workers=1
        )
    )
    parallel_seconds = _best_of(
        lambda: ShardedCollector(plan, shards=GATED_WORKERS).collect(
            START, end, workers=GATED_WORKERS
        )
    )
    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    day_networks = BENCH_DAYS * SLASH16S

    # A skipped gate must say why — a green run on a 1-CPU host or a
    # smoke configuration is *ungated*, and the JSON should show it.
    skip_reason = None
    if not FULL_CONFIG:
        skip_reason = (
            f"smoke configuration ({SLASH16S} /16s × {BENCH_DAYS} days below "
            f"400 × 12): speedup recorded, not gated"
        )
    elif not MULTI_CORE:
        skip_reason = (
            f"single-core host ({os.cpu_count() or 1} cpu(s) < {GATED_WORKERS}): "
            f"speedup recorded, not gated"
        )

    results = {
        "benchmark": "shard_scaling",
        "config": {
            "seed": SEED,
            "slash16s": SLASH16S,
            "prefixes_spanned": prefixes_spanned,
            "days": BENCH_DAYS,
            "people": PEOPLE,
            "plan_fingerprint": plan.fingerprint(),
        },
        "host": {"cpus": os.cpu_count() or 1, "multi_core": MULTI_CORE},
        "identity": {
            "reference_shards": 1,
            "byte_identical_at": identical_at,
        },
        "timings": {
            "serial_seconds": round(serial_seconds, 4),
            "sharded_serial_seconds": round(sharded_serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "parallel_workers": GATED_WORKERS,
            "speedup_at_4_workers": round(speedup, 2),
            "serial_day_networks_per_second": round(day_networks / serial_seconds, 1),
            "parallel_day_networks_per_second": round(
                day_networks / parallel_seconds, 1
            ),
        },
        "memory": {
            "peak_rss_mb": _peak_rss_mb(),
            "ceiling_mb": float(RSS_CEILING_MB) if RSS_CEILING_MB else None,
        },
        "gate": {
            "speedup_floor": SPEEDUP_FLOOR,
            "applied": bool(FULL_CONFIG and MULTI_CORE),
            "skip_reason": skip_reason,
        },
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    table = TextTable(["leg", "shards", "workers", "seconds"], aligns=["<", ">", ">", ">"])
    table.add_row(["serial reference", 1, 1, f"{serial_seconds:.3f}"])
    table.add_row(["sharded serial", GATED_WORKERS, 1, f"{sharded_serial_seconds:.3f}"])
    table.add_row(["sharded parallel", GATED_WORKERS, GATED_WORKERS, f"{parallel_seconds:.3f}"])
    BENCH_TXT.write_text(
        f"Shard scaling — {SLASH16S} /16s ({prefixes_spanned} prefixes spanned), "
        f"{BENCH_DAYS} days, byte-identical at shards={identical_at}\n\n"
        + table.render()
        + f"\n\nspeedup at {GATED_WORKERS} workers: {speedup:.2f}x"
        + f" (gate {'applied' if results['gate']['applied'] else 'skipped'}:"
        + f" floor {SPEEDUP_FLOOR}x"
        + (f", {skip_reason}" if skip_reason else "")
        + f")\npeak RSS: {results['memory']['peak_rss_mb']} MB"
        + (f" (ceiling {RSS_CEILING_MB} MB)" if RSS_CEILING_MB else "")
        + "\n"
    )
    BENCH_JSON.write_text(json.dumps(results, indent=2) + "\n")
    if skip_reason:
        print(f"\nshard-scaling gate skipped: {skip_reason}")

    # -- the regression gate ---------------------------------------------
    # Partitioning alone must never cost more than a few percent.
    assert sharded_serial_seconds < serial_seconds * 1.5, (
        f"sharding overhead blew up: {sharded_serial_seconds:.3f}s sharded-serial "
        f"vs {serial_seconds:.3f}s serial"
    )
    if FULL_CONFIG and MULTI_CORE:
        assert speedup > SPEEDUP_FLOOR, (
            f"4-worker speedup regressed: {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"(serial {serial_seconds:.3f}s, parallel {parallel_seconds:.3f}s)"
        )
    if RSS_CEILING_MB:
        assert results["memory"]["peak_rss_mb"] <= float(RSS_CEILING_MB), (
            f"peak RSS {results['memory']['peak_rss_mb']} MB exceeds the "
            f"{RSS_CEILING_MB} MB ceiling"
        )
