"""Figure 10: Academic-C's education buildings vs student housing.

Shape targets from Section 7.2: "In March [2020] a crossover between
PTR records for educational buildings and student housing is clearly
visible"; the weekly Rapid7 series extends visibility into late 2019
and "largely overlay[s] and confirm[s]" the daily OpenINTEL
observations; holiday dips (Christmas, and Carnaval in late February
2020) appear.
"""

import datetime as dt

from repro.core import subnet_presence_split
from repro.core.occupancy import crossover_dates
from repro.netsim.calendar import carnaval_monday
from repro.netsim.network import SubnetRole
from repro.reporting import render_time_series


def subnet_groups(world):
    network = world.internet.network("Academic-C")
    return {
        "Educational buildings": [
            str(subnet.prefix) for subnet in network.subnets if subnet.role is SubnetRole.EDUCATION
        ],
        "Student housing": [
            str(subnet.prefix) for subnet in network.subnets if subnet.role is SubnetRole.HOUSING
        ],
    }


def weekly_mean(series, start):
    values = [series.get(start + dt.timedelta(days=offset)) for offset in range(7)]
    values = [value for value in values if value is not None]
    return sum(values) / len(values) if values else 0.0


def test_figure10_education_housing_crossover(
    benchmark, world, openintel_series, rapid7_series, write_artifact
):
    groups = subnet_groups(world)

    daily_split = benchmark(subnet_presence_split, openintel_series, groups)
    weekly_split = subnet_presence_split(rapid7_series, groups)

    rendered = render_time_series(
        {
            "Educational buildings (OpenINTEL)": daily_split["Educational buildings"],
            "Student housing (OpenINTEL)": daily_split["Student housing"],
        },
        samples=24,
    )
    write_artifact(
        "figure10_crossover",
        "Figure 10: Academic-C education vs housing presence (daily + weekly sources)",
        rendered,
    )

    education = daily_split["Educational buildings"]
    housing = daily_split["Student housing"]

    # The March-2020 crossover: education above housing before, below
    # during the lockdown.
    pre = dt.date(2020, 2, 17)
    lockdown = dt.date(2020, 4, 13)
    assert weekly_mean(education, pre) > weekly_mean(housing, pre)
    assert weekly_mean(education, lockdown) < weekly_mean(housing, lockdown)
    crossings = crossover_dates(education, housing)
    assert any(dt.date(2020, 2, 15) <= day <= dt.date(2020, 4, 1) for day in crossings)

    # The weekly Rapid7 series confirms the pre-lockdown ordering and
    # extends into 2019.
    weekly_education = weekly_split["Educational buildings"]
    assert min(weekly_education) < dt.date(2020, 1, 1)
    assert weekly_mean(weekly_education, dt.date(2019, 11, 4)) > 50

    # Christmas 2019 dip visible in the weekly (Rapid7) data.
    december_baseline = weekly_mean(weekly_education, dt.date(2019, 12, 2))
    christmas = weekly_mean(weekly_education, dt.date(2019, 12, 23))
    assert christmas < december_baseline

    # Carnaval (late February 2020) dips the education series; the
    # OpenINTEL window starts 2020-02-17, so the pre-Carnaval baseline
    # comes from the weekly Rapid7 data — mixing sources exactly as the
    # paper's Figure 10 does.
    carnaval = carnaval_monday(2020)
    carnaval_days = {carnaval + dt.timedelta(days=offset) for offset in range(-2, 3)}
    carnaval_samples = [
        value for day, value in weekly_education.items() if day in carnaval_days
    ]
    baseline_samples = [
        value
        for day, value in weekly_education.items()
        if dt.date(2020, 1, 27) <= day <= dt.date(2020, 2, 18) and day not in carnaval_days
        and day.weekday() < 5
    ]
    assert carnaval_samples and baseline_samples
    assert min(carnaval_samples) < sum(baseline_samples) / len(baseline_samples)
