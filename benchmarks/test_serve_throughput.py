"""Query-service throughput: cold vs warm request latency over a real socket.

Not a paper table — this benchmarks the :mod:`repro.serve` HTTP API.
One quick-configuration world is collected and served from a
:class:`~repro.serve.http.ServerThread`; every request below travels
the full asyncio socket path (``http.client`` on a keep-alive
connection), so the numbers include framing, dispatch, obs wiring and
JSON encoding — what a deployment actually pays per call.

* cold: the first request per GET endpoint — report caches are empty,
  so ``/leaks`` pays leak identification and ``/occupancy`` the
  daily-totals scan;
* warm: ``REPRO_SERVE_BENCH_REQUESTS`` (default 400) round-robin
  requests across the same endpoints — every report is memoised, so
  this is steady-state service latency (p50/p99, requests/s); and
* ingest: one ``POST /ingest/day`` extending the series by a day —
  the O(prefixes) incremental path, report caches invalidated.

Results land in ``results/serve_throughput.txt`` (human table) and
``results/BENCH_serve.json`` (machine-readable).  The committed JSON
doubles as a regression baseline: absolute seconds do not compare
across hosts, but the cold/warm ratio does — when the configuration
matches, a rerun must retain at least half the recorded warm speedup.
"""

import http.client
import json
import os
import pathlib
import time

from repro.core.pipeline import StudyConfig
from repro.netsim.internet import build_world
from repro.obs import Observability
from repro.reporting import TextTable
from repro.scan.snapshot import SnapshotCollector
from repro.serve import (
    CampaignRepository,
    ServeApp,
    ServeServices,
    ServerThread,
    SnapshotRepository,
)

SEED = 1
WARM_REQUESTS = int(os.environ.get("REPRO_SERVE_BENCH_REQUESTS", "400"))
RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_serve.json"


def build_quick_app() -> ServeApp:
    config = StudyConfig.quick(SEED)
    world = build_world(seed=config.seed, scale=config.scale)
    collector = SnapshotCollector.openintel_style(world.internet)
    series = collector.collect(config.dynamicity_start, config.dynamicity_end)
    obs = Observability()
    snapshots = SnapshotRepository(series)
    campaigns = CampaignRepository(
        world, start=config.supplemental_start, end=config.supplemental_end
    )
    services = ServeServices.build(
        snapshots,
        campaigns,
        dynamicity_thresholds=config.dynamicity_thresholds,
        leak_thresholds=config.leak_thresholds,
        leak_sample_days=config.leak_sample_days,
        obs=obs,
    )
    return ServeApp(services, obs=obs)


def timed_request(connection, method, target, body=None):
    headers = {"Content-Type": "application/json"} if body else {}
    started = time.perf_counter()
    connection.request(method, target, body=body, headers=headers)
    response = connection.getresponse()
    payload = response.read()
    elapsed = time.perf_counter() - started
    assert response.status == 200, f"{method} {target} -> {response.status}: {payload}"
    return elapsed


def percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


def test_serve_throughput(write_artifact):
    app = build_quick_app()
    prefix = app.services.dynamicity.report().dynamic_prefixes()[0]
    endpoints = [
        f"/prefix/{prefix.replace('/', '%2F')}/dynamicity",
        "/leaks",
        "/names?top=10",
        "/occupancy",
    ]

    with ServerThread(app) as server:
        connection = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            # Cold: first hit per endpoint fills the report caches.
            cold = {
                target: timed_request(connection, "GET", target)
                for target in endpoints
            }

            # Warm: steady-state round-robin over memoised reports.
            warm = []
            for index in range(WARM_REQUESTS):
                target = endpoints[index % len(endpoints)]
                warm.append(timed_request(connection, "GET", target))

            # Incremental ingest: one day appended over the socket.
            next_day = app.services.dynamicity.snapshots.next_day
            ingest_seconds = timed_request(
                connection,
                "POST",
                "/ingest/day",
                body=json.dumps({"day": next_day.isoformat()}),
            )
        finally:
            connection.close()

    warm.sort()
    cold_mean = sum(cold.values()) / len(cold)
    warm_p50 = percentile(warm, 0.50)
    warm_p99 = percentile(warm, 0.99)
    requests_per_second = len(warm) / sum(warm)
    warm_speedup = cold_mean / warm_p50
    prefix_count = len(app.services.dynamicity.snapshots.prefix_table())

    table = TextTable(
        ["Path", "Requests", "p50 (ms)", "p99 (ms)", "Requests/s"],
        aligns=["<", ">", ">", ">", ">"],
    )
    cold_sorted = sorted(cold.values())
    table.add_row(
        [
            "cold (first hit)",
            len(cold),
            f"{percentile(cold_sorted, 0.50) * 1000:.2f}",
            f"{cold_sorted[-1] * 1000:.2f}",
            "-",
        ]
    )
    table.add_row(
        [
            "warm (memoised)",
            len(warm),
            f"{warm_p50 * 1000:.2f}",
            f"{warm_p99 * 1000:.2f}",
            f"{requests_per_second:.0f}",
        ]
    )
    table.add_row(
        ["ingest (1 day)", 1, f"{ingest_seconds * 1000:.2f}", "-", "-"]
    )
    body = table.render() + (
        f"\n\nwarm speedup over cold: {warm_speedup:.1f}x"
        f"\nworld: quick scale, seed={SEED},"
        f" prefixes={prefix_count}, warm requests={WARM_REQUESTS}"
    )
    write_artifact(
        "serve_throughput",
        f"Query-service throughput ({WARM_REQUESTS} warm requests, quick scale)",
        body,
    )

    config = {"seed": SEED, "scale": "quick", "warm_requests": WARM_REQUESTS}
    # Regression guard: the cold/warm ratio is host-independent — a
    # rerun at the same configuration must retain at least half the
    # committed warm speedup before the baseline is overwritten.
    if BENCH_JSON.exists():
        baseline = json.loads(BENCH_JSON.read_text())
        if baseline.get("config") == config:
            floor = baseline["warm_speedup"] / 2
            assert warm_speedup >= floor, (
                f"serve warm path regressed: speedup {warm_speedup:.2f}x "
                f"fell below {floor:.2f}x (half the committed "
                f"{baseline['warm_speedup']:.2f}x)"
            )

    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "config": config,
                "cold": {
                    "per_endpoint_seconds": {
                        target: seconds for target, seconds in sorted(cold.items())
                    },
                    "mean_seconds": cold_mean,
                },
                "warm": {
                    "requests": len(warm),
                    "p50_seconds": warm_p50,
                    "p99_seconds": warm_p99,
                    "requests_per_second": requests_per_second,
                },
                "ingest": {"seconds": ingest_seconds, "prefixes": prefix_count},
                "warm_speedup": warm_speedup,
            },
            indent=2,
        )
        + "\n"
    )

    # Warm requests ride the report memos, so they must beat the cold
    # first hit; the service must also clear an interactive floor.
    assert warm_speedup > 1.0
    assert warm_p99 < 1.0, f"warm p99 {warm_p99:.3f}s is not interactive"
