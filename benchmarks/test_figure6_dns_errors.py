"""Figure 6: DNS errors observed during the supplemental measurement.

Shape targets from Section 6.2: "the number of errors is low relatively
to the number of queries performed", with NXDOMAIN the nuanced
non-error (often the removal signal itself), and name-server failures
and timeouts rare.
"""

from repro.reporting import TextTable


def test_figure6_dns_errors(benchmark, supplemental, write_artifact):
    rows = benchmark(supplemental.error_rows)

    table = TextTable(
        ["Day", "Total lookups", "NXDOMAIN", "Nameserver failure", "Timeout"],
        aligns=["<", ">", ">", ">", ">"],
    )
    for day, total, nxdomain, servfail, timeout in rows:
        table.add_row([str(day), total, nxdomain, servfail, timeout])
    write_artifact(
        "figure6_dns_errors",
        "Figure 6: per-day DNS lookup outcomes during supplemental measurement",
        table.render(),
    )

    assert len(rows) >= 40  # one row per measured day
    totals = sum(row[1] for row in rows)
    nxdomains = sum(row[2] for row in rows)
    servfails = sum(row[3] for row in rows)
    timeouts = sum(row[4] for row in rows)
    assert totals > 0
    # Hard errors are rare relative to query volume.
    assert (servfails + timeouts) / totals < 0.05
    # NXDOMAIN occurs routinely (it doubles as the removal signal) but
    # stays a minority of responses.
    assert 0 < nxdomains / totals < 0.6
    benchmark.extra_info.update(
        lookups=totals, nxdomain=nxdomains, servfail=servfails, timeout=timeouts
    )
