"""Observability overhead: the disabled path must be (near) free.

Not a paper table — this guards the ``repro.obs`` design contract: with
no ``--metrics-out``/``--trace`` flag every instrumented hot path runs
against the shared :data:`~repro.obs.NULL_OBS` handle, whose registry
hands out no-op metric singletons and whose tracer yields a no-op span.
The same supplemental campaign is timed with observability off and on;
the disabled run must not be measurably slower than an enabled one
beyond noise, and a micro-benchmark pins the per-operation cost of the
null registry itself.

Wall-clock assertions are tolerant (median of several rounds, generous
bound) so the benchmark stays meaningful on loaded CI hosts; CI fails
the job when the disabled-path overhead regresses past the bound.
"""

import datetime as dt
import os
import time

from repro.netsim.internet import WorldScale, build_world
from repro.obs import NULL_OBS, Observability
from repro.reporting import TextTable
from repro.scan.campaign import SupplementalCampaign

SEED = 42
BENCH_DAYS = int(os.environ.get("REPRO_OBS_BENCH_DAYS", "3"))
START = dt.date(2021, 11, 1)
END = START + dt.timedelta(days=BENCH_DAYS)
ROUNDS = 3

#: Maximum tolerated slowdown of the disabled path relative to the
#: enabled path.  The disabled path should win outright; 1.05 (5%)
#: leaves head-room for scheduler noise on shared runners.
MAX_DISABLED_OVERHEAD = 1.05


def _timed_run(obs=None):
    # A fresh world per round: no shared memoisation between timings.
    world = build_world(seed=SEED, scale=WorldScale.small())
    campaign = SupplementalCampaign(world, obs=obs)
    started = time.perf_counter()
    dataset = campaign.run(START, END)
    return dataset, time.perf_counter() - started


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_disabled_observability_overhead(write_artifact):
    disabled_seconds, enabled_seconds = [], []
    baseline = None
    for _ in range(ROUNDS):
        dataset, seconds = _timed_run(obs=None)
        disabled_seconds.append(seconds)
        obs = Observability()
        enabled_dataset, seconds = _timed_run(obs=obs)
        enabled_seconds.append(seconds)
        # Same world, same window: observability must never change the
        # measurement results themselves.
        if baseline is None:
            baseline = dataset
        assert list(enabled_dataset.icmp) == list(baseline.icmp)
        assert list(enabled_dataset.rdns) == list(baseline.rdns)

    disabled = _median(disabled_seconds)
    enabled = _median(enabled_seconds)
    ratio = disabled / enabled if enabled > 0 else 0.0

    table = TextTable(
        ["Mode", "Median seconds", "vs enabled"],
        aligns=["<", ">", ">"],
    )
    table.add_row(["observability off", f"{disabled:.3f}", f"{ratio:.3f}x"])
    table.add_row(["observability on", f"{enabled:.3f}", "1.000x"])
    write_artifact(
        "obs_overhead",
        f"Observability overhead ({BENCH_DAYS}-day campaign, median of {ROUNDS})",
        table.render(),
    )

    assert ratio <= MAX_DISABLED_OVERHEAD, (
        f"disabled-path campaign ran {ratio:.3f}x the enabled time "
        f"(bound {MAX_DISABLED_OVERHEAD}x); the no-op handle is no longer free"
    )


def test_null_registry_operations_are_cheap():
    """A counter inc through NULL_OBS costs one lookup and a no-op call."""
    iterations = 200_000

    started = time.perf_counter()
    for _ in range(iterations):
        pass
    empty_loop = time.perf_counter() - started

    counter = NULL_OBS.metrics.counter("bench_total")
    started = time.perf_counter()
    for _ in range(iterations):
        counter.inc()
        NULL_OBS.metrics.counter("bench_total").labels(k="v").inc()
    null_loop = time.perf_counter() - started

    per_op = (null_loop - empty_loop) / (2 * iterations)
    # Sub-microsecond per operation: generous enough for any host, tight
    # enough to catch an accidental real registry behind the null handle.
    assert per_op < 5e-6, f"null metric op costs {per_op * 1e9:.0f}ns"
    assert NULL_OBS.metrics.snapshot()["counters"] == {}
