"""Ablation: DNS-update policies as mitigations (Section 8).

The paper's mitigation discussion maps onto the four
:mod:`repro.ipam.policy` implementations.  This bench quantifies, for
an otherwise-identical network, what an outside observer can still
learn under each policy:

* carry-over      -> identities leak and dynamics are observable;
* hashed          -> identities gone, dynamics still observable
                     (the paper's nuance: hashing fixes the content
                     leak only);
* static-template -> no identities, no observable dynamics;
* no-update       -> nothing published at all.
"""

import datetime as dt

import pytest

from repro.core import DynamicityAnalyzer, DynamicityThresholds, GivenNameMatcher
from repro.ipam import CarryOverPolicy, HashedPolicy, NoUpdatePolicy, StaticTemplatePolicy
from repro.netsim.network import Network, NetworkType, Subnet, SubnetRole
from repro.netsim.person import PersonGenerator
from repro.netsim.population import _take_devices
from repro.netsim.rng import RngStreams
from repro.reporting import TextTable

SUFFIX = "campus.ablation.edu"
WINDOW = (dt.date(2021, 1, 1), dt.date(2021, 3, 31))

POLICIES = {
    "carry-over": lambda: CarryOverPolicy(SUFFIX),
    "hashed": lambda: HashedPolicy(SUFFIX, key=b"zone-key"),
    "static-template": lambda: StaticTemplatePolicy(SUFFIX),
    "no-update": lambda: NoUpdatePolicy(SUFFIX),
}


def build_network(policy_name):
    rngs = RngStreams(99)
    generator = PersonGenerator(rngs.stream("population", "ablation"))
    people = generator.make_population(60, id_prefix="abl")
    network = Network("ablation", NetworkType.ACADEMIC, "10.0.0.0/16", SUFFIX, rngs=rngs)
    subnet = Subnet(
        "10.0.10.0/24",
        SubnetRole.DYNAMIC_CLIENTS,
        devices=_take_devices(people),
        policy=POLICIES[policy_name](),
    )
    network.add_subnet(subnet)
    return network


def observe(policy_name):
    """What the outside observer sees under one policy."""
    network = build_network(policy_name)
    matcher = GivenNameMatcher()
    day = WINDOW[0]
    counts = {}
    names = set()
    while day <= WINDOW[1]:
        day_counts = network.counts_by_slash24(day, at_offset=43200)
        counts[day] = day_counts
        if day.weekday() == 2:  # sample Wednesdays (office hours)
            for _, hostname in network.records_on(day, at_offset=43200):
                names.update(matcher.match(hostname))
        day += dt.timedelta(days=1)
    report = DynamicityAnalyzer(DynamicityThresholds()).analyze(counts)
    return {
        "dynamic_24s": report.dynamic_count,
        "unique_names": len(names),
        "peak_records": max(sum(c.values()) for c in counts.values()),
    }


@pytest.mark.parametrize("policy_name", list(POLICIES))
def test_ablation_policy(benchmark, policy_name, write_artifact):
    result = benchmark.pedantic(observe, args=(policy_name,), rounds=1, iterations=1)

    table = TextTable(["Metric", "Value"], aligns=["<", ">"])
    for key, value in result.items():
        table.add_row([key, value])
    write_artifact(
        f"ablation_policy_{policy_name.replace('-', '_')}",
        f"Mitigation ablation: {policy_name} policy",
        table.render(),
    )

    if policy_name == "carry-over":
        assert result["dynamic_24s"] == 1
        assert result["unique_names"] >= 5
    elif policy_name == "hashed":
        # Hashing removes identities but NOT the dynamics (Section 8's
        # nuance: "record presence in itself provides insights").
        assert result["dynamic_24s"] == 1
        assert result["unique_names"] == 0
    elif policy_name == "static-template":
        # Records exist for the whole pool, but never change: the
        # dynamicity heuristic stays silent (the paper's validation
        # found 83 such prefixes and correctly skipped them).
        assert result["dynamic_24s"] == 0
        assert result["peak_records"] > 200
        assert result["unique_names"] == 0
    else:  # no-update
        assert result["peak_records"] == 0
        assert result["unique_names"] == 0
