"""Ablation: DNS-update policies as mitigations (Section 8).

The paper's mitigation discussion maps onto the four
:mod:`repro.ipam.policy` implementations.  This bench quantifies, for
an otherwise-identical network, what an outside observer can still
learn under each policy:

* carry-over      -> identities leak and dynamics are observable;
* hashed          -> identities gone, dynamics still observable
                     (the paper's nuance: hashing fixes the content
                     leak only);
* static-template -> no identities, no observable dynamics;
* no-update       -> nothing published at all.

Each policy runs as one cell of the :mod:`repro.eval` evaluation
matrix — the same collection + campaign + scoring pipeline behind
``repro evaluate`` — over the single-campus :func:`ablation_plan`
world, whose only records are policy-driven.
"""

import datetime as dt

import pytest

from repro.eval import MatrixSpec, ablation_plan, run_matrix
from repro.ipam import POLICY_NAMES
from repro.reporting import TextTable

WINDOW = (dt.date(2021, 1, 1), dt.date(2021, 4, 1))


def ablation_spec(policy_name):
    """A one-cell matrix: the ablation campus under one policy.

    ``leak_sample_days`` spans the whole collection window, so the
    name count is cumulative over every observed day (the paper's
    observer reads the zone daily, not once).
    """
    return MatrixSpec(
        worlds={"ablation": ablation_plan(99)},
        policies=(policy_name,),
        faults=("none",),
        dynamicity_start=WINDOW[0],
        dynamicity_end=WINDOW[1],
        supplemental_start=dt.date(2021, 11, 1),
        supplemental_end=dt.date(2021, 11, 4),
        leak_sample_days=(WINDOW[1] - WINDOW[0]).days,
    ).validate()


def observe(policy_name):
    """What the outside observer sees under one policy."""
    result = run_matrix(ablation_spec(policy_name))
    score = result.results[0].score
    return {
        "dynamic_24s": score.dynamic_24s,
        "unique_names": score.unique_names,
        "peak_records": score.peak_records,
    }


@pytest.mark.parametrize("policy_name", list(POLICY_NAMES))
def test_ablation_policy(benchmark, policy_name, write_artifact):
    result = benchmark.pedantic(observe, args=(policy_name,), rounds=1, iterations=1)

    table = TextTable(["Metric", "Value"], aligns=["<", ">"])
    for key, value in result.items():
        table.add_row([key, value])
    write_artifact(
        f"ablation_policy_{policy_name.replace('-', '_')}",
        f"Mitigation ablation: {policy_name} policy",
        table.render(),
    )

    if policy_name == "carry-over":
        assert result["dynamic_24s"] == 1
        assert result["unique_names"] >= 5
    elif policy_name == "hashed":
        # Hashing removes identities but NOT the dynamics (Section 8's
        # nuance: "record presence in itself provides insights").
        assert result["dynamic_24s"] == 1
        assert result["unique_names"] == 0
    elif policy_name == "static-template":
        # Records exist for the whole pool, but never change: the
        # dynamicity heuristic stays silent (the paper's validation
        # found 83 such prefixes and correctly skipped them).
        assert result["dynamic_24s"] == 0
        assert result["peak_records"] > 200
        assert result["unique_names"] == 0
    else:  # no-update
        assert result["peak_records"] == 0
        assert result["unique_names"] == 0
