"""World-generation throughput: calendar engine + batched sweeps vs the
per-event baseline.

Not a paper table — this benchmarks the event engine and measurement
plane that generate the supplemental campaign's world (Section 6.1).
Three stages, each checked bit-identical before anything is timed:

* event engine: a campaign-shaped schedule (periodic lease-expiry and
  renewal streams plus midnight day-generators scattering one-shot
  session events) run on the retained binary-heap
  :class:`ReferenceEngine` oracle vs the calendar-queue
  :class:`SimulationEngine`;
* discovery sweep: the Section 6.1 setup step — finding "the address
  space which contains the most dynamically assigned hosts" by sweeping
  each network's whole announced prefix — via the pre-batching
  per-address probe loop (kept verbatim below) vs
  :meth:`IcmpScanner.sweep`'s batched segments, whose occupancy-order
  scan replaces one probe per address with one dict walk per segment;
* campaign build: the full per-network reactive campaign (engine +
  DHCP/IPAM churn + hourly sweeps + rDNS follows) on the reference
  path vs the batched path, plus the production
  :func:`run_network_campaign` wrapper for absolute network-days/s.

Results land in ``results/worldgen_throughput.txt`` (human table) and
``results/BENCH_worldgen.json`` (machine-readable).  The committed JSON
doubles as a regression baseline: when the configuration matches, a
rerun must not lose more than half of the recorded combined speedup —
ratios compare across hosts, absolute seconds do not.

Environment knobs for CI smoke runs: ``REPRO_WORLDGEN_BENCH_DAYS``
(default 2; sizes both the engine schedule and the campaign window),
``REPRO_WORLDGEN_BENCH_SWEEPS`` (default 8 discovery sweeps per timing
rep) and ``REPRO_WORLDGEN_BENCH_SCALE`` (``default`` | ``small``).
The >= 3x combined-speedup gate only applies at the full default
configuration; shrunken smoke runs just assert the new plane never
loses.
"""

import datetime as dt
import json
import os
import pathlib
import time

from repro.netsim.engine import ReferenceEngine, SimulationEngine
from repro.netsim.finegrained import build_runtimes
from repro.netsim.internet import WorldScale, build_world
from repro.netsim.simtime import DAY, HOUR, from_date
from repro.reporting import TextTable
from repro.scan.campaign import run_network_campaign
from repro.scan.icmp import IcmpScanner
from repro.scan.observations import IcmpObservation
from repro.scan.ratelimit import TokenBucket
from repro.scan.rdns import RdnsLookupEngine
from repro.scan.reactive import ReactiveMonitor

SEED = 42
START = dt.date(2021, 3, 1)
BENCH_DAYS = int(os.environ.get("REPRO_WORLDGEN_BENCH_DAYS", "2"))
BENCH_SWEEPS = int(os.environ.get("REPRO_WORLDGEN_BENCH_SWEEPS", "8"))
BENCH_SCALE = os.environ.get("REPRO_WORLDGEN_BENCH_SCALE", "default")
TIMING_REPS = 7
#: The slow baseline legs (per-address discovery sweeps, whole-campaign
#: builds) get fewer repetitions to bound wall time; best-of semantics
#: are unchanged.
SLOW_REPS = 3
RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_worldgen.json"

#: At the full configuration the combined engine + batched-sweep plane
#: must clear 3x; smoke runs only assert it never loses.
FULL_CONFIG = BENCH_SCALE == "default" and BENCH_DAYS >= 2 and BENCH_SWEEPS >= 8


def _scale() -> WorldScale:
    return WorldScale() if BENCH_SCALE == "default" else WorldScale.small()


def _best_of(fn, reps=TIMING_REPS):
    """Best-of-N wall time: the least-interfered-with run."""
    best = None
    for _ in range(reps):
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


# -- stage 1: the event engine ------------------------------------------------


def _engine_workload(engine, days):
    """A campaign-shaped schedule at multi-network density.

    Mirrors what :class:`NetworkRuntime` feeds the engine: short-period
    expiry sweeps, thousands of half-lease renewal streams, an hourly
    monitor sweep, and a midnight day-generator that scatters the day's
    one-shot join/leave events (the multiplicative-hash offsets stand in
    for session schedules).  The live queue peaks in the tens of
    thousands, as it does mid-campaign.
    """
    executed = [0]

    def tick() -> None:
        executed[0] += 1

    horizon = days * DAY
    for _ in range(64):
        engine.schedule_every(300, tick, until=horizon)
    for stream in range(4000):
        engine.schedule_every(1800 + (stream % 7) * 60, tick, until=horizon)
    engine.schedule_every(HOUR, tick, until=horizon)

    def day_generator(day_start):
        def generate() -> None:
            for k in range(40000):
                at = day_start + (k * 2654435761) % DAY
                if at >= engine.now:
                    engine.schedule(at, tick)

        return generate

    for day in range(days):
        engine.schedule(day * DAY, day_generator(day * DAY))
    engine.run_until(horizon)
    return executed[0], engine.events_run, engine.queue_high_water, engine.now


# -- stage 2: the discovery sweep ---------------------------------------------


class _PerAddressScanner(IcmpScanner):
    """The pre-batching sweep loop, kept verbatim as the timing oracle."""

    def sweep(self, targets, at, *, network=""):
        observations = []
        check_block = self._has_blocklist
        for target in targets:
            for runtime, addresses in self._target_plan(target):
                for address in addresses:
                    if check_block and self.is_blocked(address):
                        self.probes_suppressed += 1
                        continue
                    if self.rate_limit is not None and not self.rate_limit.acquire(at):
                        self.probes_suppressed += 1
                        continue
                    self.probes_sent += 1
                    if runtime is not None and self._echo(runtime, address, at):
                        observations.append(
                            IcmpObservation(address, at, network or runtime.network.name)
                        )
        return observations


def _discovery_world():
    """A half-day-old world plus its announced /16 target list."""
    world = build_world(seed=SEED, scale=_scale())
    names = list(world.supplemental)
    engine = SimulationEngine(start=from_date(START))
    runtimes = build_runtimes([world.supplemental[name] for name in names], engine)
    for name in names:
        runtimes[name].start(START, START)
    at = from_date(START) + 12 * HOUR
    engine.run_until(at)
    announced = [str(world.supplemental[name].prefix) for name in names]
    return runtimes, announced, at


# -- stage 3: the campaign build ----------------------------------------------


def _campaign_fingerprint(engine_cls, scanner_cls, days):
    """Run a full reactive campaign; (elapsed, per-network fingerprints).

    A fresh world per call keeps repeated runs bit-identical (the
    authoritative zones accumulate PTR state otherwise); the world
    build is excluded from the timing.
    """
    world = build_world(seed=SEED, scale=_scale())
    last = START + dt.timedelta(days=days - 1)
    fingerprints = []
    started = time.perf_counter()
    for name in world.supplemental:
        engine = engine_cls(start=from_date(START))
        runtimes = build_runtimes([world.supplemental[name]], engine)
        runtimes[name].start(START, last)
        scanner = scanner_cls(runtimes)
        rdns = RdnsLookupEngine(
            world.internet.resolver(), rate_limit=TokenBucket(50.0, 500.0)
        )
        end_ts = from_date(last) + DAY - 1
        monitor = ReactiveMonitor(engine, scanner, rdns)
        targets = {
            name: [str(subnet.prefix) for subnet in world.supplemental_targets(name)]
        }
        monitor.start(targets, end=end_ts)
        engine.run_until(end_ts)
        fingerprints.append(
            (
                name,
                len(monitor.icmp_observations),
                len(monitor.rdns_observations),
                scanner.probes_sent,
                rdns.lookups_performed,
                engine.events_run,
            )
        )
    return time.perf_counter() - started, fingerprints


def _production_campaign(days):
    """The shipping :func:`run_network_campaign`; (elapsed, fingerprints)."""
    world = build_world(seed=SEED, scale=_scale())
    end = START + dt.timedelta(days=days)
    fingerprints = []
    started = time.perf_counter()
    for name in world.supplemental:
        result = run_network_campaign(world, name, START, end)
        fingerprints.append(
            (name, len(result.icmp), len(result.rdns), result.events_run)
        )
    return time.perf_counter() - started, fingerprints


def _best_campaign(runner, *args, reps=SLOW_REPS):
    best_elapsed = None
    fingerprints = None
    for _ in range(reps):
        elapsed, current = runner(*args)
        if fingerprints is None:
            fingerprints = current
        else:
            assert current == fingerprints, "campaign rerun diverged"
        best_elapsed = elapsed if best_elapsed is None else min(best_elapsed, elapsed)
    return best_elapsed, fingerprints


def test_worldgen_throughput(write_artifact):
    # -- event engine: bit-identity, then timing -------------------------
    reference_run = _engine_workload(ReferenceEngine(), BENCH_DAYS)
    calendar_run = _engine_workload(SimulationEngine(), BENCH_DAYS)
    assert calendar_run == reference_run, "calendar queue diverged from heap oracle"
    events = reference_run[1]
    high_water = reference_run[2]

    engine_reference_s = _best_of(lambda: _engine_workload(ReferenceEngine(), BENCH_DAYS))
    engine_calendar_s = _best_of(lambda: _engine_workload(SimulationEngine(), BENCH_DAYS))
    engine_speedup = engine_reference_s / engine_calendar_s

    # -- discovery sweep: bit-identity, then timing ----------------------
    runtimes, announced, sweep_at = _discovery_world()
    batched = IcmpScanner(runtimes)
    per_address = _PerAddressScanner(runtimes)
    batched_observations = batched.sweep(announced, sweep_at)
    per_address_observations = per_address.sweep(announced, sweep_at)
    assert batched_observations == per_address_observations
    assert batched.probes_sent == per_address.probes_sent
    assert batched.probes_suppressed == per_address.probes_suppressed
    probes_per_sweep = batched.probes_sent
    responders = len(batched_observations)

    def _sweeps(scanner):
        for _ in range(BENCH_SWEEPS):
            scanner.sweep(announced, sweep_at)

    sweep_batched_s = _best_of(lambda: _sweeps(batched))
    sweep_per_address_s = _best_of(lambda: _sweeps(per_address), reps=SLOW_REPS)
    sweep_speedup = sweep_per_address_s / sweep_batched_s
    probes_timed = probes_per_sweep * BENCH_SWEEPS

    # -- campaign build: bit-identity, then throughput -------------------
    campaign_reference_s, reference_fps = _best_campaign(
        _campaign_fingerprint, ReferenceEngine, _PerAddressScanner, BENCH_DAYS
    )
    campaign_batched_s, batched_fps = _best_campaign(
        _campaign_fingerprint, SimulationEngine, IcmpScanner, BENCH_DAYS
    )
    assert batched_fps == reference_fps, "batched campaign diverged from reference path"
    campaign_speedup = campaign_reference_s / campaign_batched_s

    production_s, production_fps = _best_campaign(_production_campaign, BENCH_DAYS)
    # The production wrapper must agree with the replica on everything
    # it reports (observation volumes and events run per network).
    assert production_fps == [
        (name, icmp, rdns, events_run)
        for name, icmp, rdns, _, _, events_run in batched_fps
    ]

    network_days = BENCH_DAYS * len(batched_fps)
    combined_speedup = (engine_reference_s + sweep_per_address_s) / (
        engine_calendar_s + sweep_batched_s
    )

    table = TextTable(
        ["Stage", "Baseline (s)", "Batched (s)", "Speedup", "Throughput"],
        aligns=["<", ">", ">", ">", ">"],
    )
    table.add_row(
        [
            "event engine",
            f"{engine_reference_s:.4f}",
            f"{engine_calendar_s:.4f}",
            f"{engine_speedup:.2f}x",
            f"{events / engine_calendar_s:.0f} events/s",
        ]
    )
    table.add_row(
        [
            "discovery sweep",
            f"{sweep_per_address_s:.4f}",
            f"{sweep_batched_s:.4f}",
            f"{sweep_speedup:.1f}x",
            f"{probes_timed / sweep_batched_s / 1e6:.1f} Mprobe/s",
        ]
    )
    table.add_row(
        [
            "campaign build",
            f"{campaign_reference_s:.4f}",
            f"{campaign_batched_s:.4f}",
            f"{campaign_speedup:.2f}x",
            f"{network_days / campaign_batched_s:.1f} net-days/s",
        ]
    )
    table.add_row(
        [
            "campaign (production)",
            "-",
            f"{production_s:.4f}",
            "-",
            f"{network_days / production_s:.1f} net-days/s",
        ]
    )
    table.add_row(
        [
            "engine + sweeps",
            f"{engine_reference_s + sweep_per_address_s:.4f}",
            f"{engine_calendar_s + sweep_batched_s:.4f}",
            f"{combined_speedup:.1f}x",
            "-",
        ]
    )
    body = table.render() + (
        f"\n\nengine: {events} events, queue high-water {high_water}"
        f"\nsweeps: {BENCH_SWEEPS} x {probes_per_sweep} probes over"
        f" {len(announced)} announced prefixes, {responders} responders"
        f"\nworld: scale={BENCH_SCALE} days={BENCH_DAYS}"
        f" networks={len(batched_fps)} seed={SEED}"
    )
    write_artifact(
        "worldgen_throughput",
        f"World-generation throughput ({BENCH_DAYS} days, {BENCH_SCALE} scale)",
        body,
    )

    config = {
        "days": BENCH_DAYS,
        "sweeps": BENCH_SWEEPS,
        "scale": BENCH_SCALE,
        "seed": SEED,
    }
    # Regression guard: speedup ratios are host-independent, so a rerun
    # at the same configuration must retain at least half the committed
    # combined speedup before the baseline is overwritten.
    if BENCH_JSON.exists():
        baseline = json.loads(BENCH_JSON.read_text())
        if baseline.get("config") == config:
            floor = baseline["combined_speedup"] / 2
            assert combined_speedup >= floor, (
                f"world-generation plane regressed: combined speedup "
                f"{combined_speedup:.2f}x fell below {floor:.2f}x "
                f"(half the committed {baseline['combined_speedup']:.2f}x)"
            )

    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_JSON.write_text(
        json.dumps(
            {
                "config": config,
                "engine": {
                    "reference_seconds": engine_reference_s,
                    "calendar_seconds": engine_calendar_s,
                    "speedup": engine_speedup,
                    "events": events,
                    "queue_high_water": high_water,
                    "events_per_second": events / engine_calendar_s,
                    "days_per_second": BENCH_DAYS / engine_calendar_s,
                },
                "discovery_sweep": {
                    "per_address_seconds": sweep_per_address_s,
                    "batched_seconds": sweep_batched_s,
                    "speedup": sweep_speedup,
                    "probes_per_sweep": probes_per_sweep,
                    "probes_per_second": probes_timed / sweep_batched_s,
                },
                "campaign": {
                    "reference_seconds": campaign_reference_s,
                    "batched_seconds": campaign_batched_s,
                    "speedup": campaign_speedup,
                    "production_seconds": production_s,
                    "network_days": network_days,
                    "network_days_per_second": network_days / campaign_batched_s,
                },
                "combined_speedup": combined_speedup,
            },
            indent=2,
        )
        + "\n"
    )

    # The batched plane must never lose to the baselines it replaces; at
    # the full benchmark configuration it must clear 3x combined.
    assert combined_speedup > 1.0
    assert campaign_speedup > 0.9  # end-to-end must at least hold steady
    if FULL_CONFIG:
        assert combined_speedup >= 3.0, (
            f"combined engine + batched-sweep speedup {combined_speedup:.2f}x "
            f"is below the 3x floor at the full benchmark configuration"
        )
