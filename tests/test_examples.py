"""Smoke tests: the fast example scripts run end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestFastExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        output = capsys.readouterr().out
        assert "brians-iphone.campus.example.edu" in output
        assert "NXDOMAIN" in output

    def test_mitigation_audit(self, capsys):
        run_example("mitigation_audit.py")
        output = capsys.readouterr().out
        assert "carry-over (status quo)" in output
        assert "hashed" in output
        assert "Takeaways" in output

    def test_examples_exist_and_have_docstrings(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            text = script.read_text()
            assert text.lstrip().startswith(("#!/usr/bin/env python3", '"""')), script.name
            assert '"""' in text
