"""Equivalence tests: columnar and incremental analyzers vs the dict oracle.

The columnar rewrite is only allowed to change *how* the Section 4.1
heuristic is computed, never *what* it reports — these property tests
pin :class:`DynamicityAnalyzer` (two-sweep columnar core) and
:class:`IncrementalDynamicityAnalyzer` (running maxima + sorted deltas,
binary-searched) against :class:`DictReferenceAnalyzer`, the retained
row-oriented implementation.
"""

import datetime as dt
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DictReferenceAnalyzer,
    DynamicityAnalyzer,
    DynamicityThresholds,
    IncrementalDynamicityAnalyzer,
)

START = dt.date(2021, 1, 1)

PREFIXES = [f"10.0.{index}.0/24" for index in range(6)]

# Day dicts over a small prefix pool; absent prefixes model /24s whose
# records disappeared entirely, and counts straddle the min-size (10)
# and the 10%-change boundary.
day_counts = st.dictionaries(
    st.sampled_from(PREFIXES),
    st.integers(min_value=1, max_value=120),
    max_size=len(PREFIXES),
)
series_strategy = st.lists(day_counts, min_size=1, max_size=25)


def mapping_from(day_dicts, cadence_days=1):
    return {
        START + dt.timedelta(days=offset * cadence_days): counts
        for offset, counts in enumerate(day_dicts)
    }


def assert_reports_equal(left, right):
    assert left.total_observed == right.total_observed
    assert left.cadence_days == right.cadence_days
    assert (
        left.effective_min_change_transitions == right.effective_min_change_transitions
    )
    assert left.prefixes == right.prefixes
    assert left.dynamic_prefixes() == right.dynamic_prefixes()


class TestColumnarMatchesReference:
    @given(series_strategy)
    @settings(max_examples=60)
    def test_daily_cadence(self, day_dicts):
        series = mapping_from(day_dicts)
        columnar = DynamicityAnalyzer().analyze(series)
        reference = DictReferenceAnalyzer().analyze(series)
        assert_reports_equal(columnar, reference)

    @given(series_strategy)
    @settings(max_examples=30)
    def test_weekly_cadence(self, day_dicts):
        series = mapping_from(day_dicts, cadence_days=7)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            columnar = DynamicityAnalyzer().analyze(series, allow_coarse_cadence=True)
            reference = DictReferenceAnalyzer().analyze(
                series, allow_coarse_cadence=True
            )
        assert_reports_equal(columnar, reference)

    @given(series_strategy)
    @settings(max_examples=30)
    def test_tight_thresholds(self, day_dicts):
        thresholds = DynamicityThresholds(
            min_daily_addresses=1, change_percent=25.0, min_change_days=2
        )
        series = mapping_from(day_dicts)
        assert_reports_equal(
            DynamicityAnalyzer(thresholds).analyze(series),
            DictReferenceAnalyzer(thresholds).analyze(series),
        )

    def test_boundary_change_stays_exclusive(self):
        # Exactly-10% transitions must not count in either implementation.
        series = mapping_from([{"10.0.0.0/24": 100}, {"10.0.0.0/24": 90}] * 10)
        columnar = DynamicityAnalyzer().analyze(series)
        assert columnar.prefixes["10.0.0.0/24"].change_days == 0
        assert_reports_equal(columnar, DictReferenceAnalyzer().analyze(series))

    @given(series_strategy)
    @settings(max_examples=30)
    def test_stdlib_fallback_matches_reference(self, day_dicts):
        # Hosts without NumPy take _scan_columns' pure-Python branch;
        # it must agree with the vectorised path bit-for-bit.
        import repro.core.dynamicity as dynamicity_module

        series = mapping_from(day_dicts)
        saved = dynamicity_module.np
        try:
            dynamicity_module.np = None
            fallback = DynamicityAnalyzer().analyze(series)
        finally:
            dynamicity_module.np = saved
        assert_reports_equal(fallback, DictReferenceAnalyzer().analyze(series))

    def test_snapshot_series_input(self):
        from repro.netsim.internet import WorldScale, build_world
        from repro.scan import SnapshotCollector

        world = build_world(seed=4, scale=WorldScale.small())
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=12)
        )
        assert_reports_equal(
            DynamicityAnalyzer().analyze(series),
            DictReferenceAnalyzer().analyze(series),
        )


class TestIncrementalMatchesBatch:
    @given(series_strategy)
    @settings(max_examples=60)
    def test_full_report(self, day_dicts):
        series = mapping_from(day_dicts)
        incremental = IncrementalDynamicityAnalyzer()
        for day in sorted(series):
            incremental.ingest(day, series[day])
        assert_reports_equal(
            incremental.report(), DictReferenceAnalyzer().analyze(series)
        )

    @given(series_strategy)
    @settings(max_examples=30)
    def test_weekly_cadence(self, day_dicts):
        series = mapping_from(day_dicts, cadence_days=7)
        incremental = IncrementalDynamicityAnalyzer(
            cadence_days=7, allow_coarse_cadence=True
        )
        for day in sorted(series):
            incremental.ingest(day, series[day])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", UserWarning)
            assert_reports_equal(
                incremental.report(),
                # cadence passed explicitly: a single-snapshot series
                # gives inference nothing to measure the spacing from.
                DictReferenceAnalyzer().analyze(
                    series, cadence_days=7, allow_coarse_cadence=True
                ),
            )

    @given(series_strategy, st.integers(min_value=1, max_value=30))
    @settings(max_examples=60)
    def test_rolling_window_matches_batch_over_window(self, day_dicts, window):
        """report(window=k) == a batch run over just the last k days."""
        series = mapping_from(day_dicts)
        incremental = IncrementalDynamicityAnalyzer()
        for day in sorted(series):
            incremental.ingest(day, series[day])
        window_days = sorted(series)[-window:]
        # The reference sees the windowed days as the dynamicity plane
        # would: only prefixes with records present (day_counts drops
        # zero-count entries).
        windowed = {day: series[day] for day in window_days}
        assert_reports_equal(
            incremental.report(window=window),
            DictReferenceAnalyzer().analyze(windowed, cadence_days=1),
        )

    def test_report_after_each_day_matches_batch_prefix(self):
        history = [{"10.0.0.0/24": count} for count in (100, 50, 100, 50, 100)]
        incremental = IncrementalDynamicityAnalyzer()
        for offset, counts in enumerate(history):
            day = START + dt.timedelta(days=offset)
            incremental.ingest(day, counts)
            batch = DynamicityAnalyzer().analyze(
                mapping_from(history[: offset + 1])
            )
            assert_reports_equal(incremental.report(), batch)

    def test_ingest_enforces_order_and_cadence(self):
        incremental = IncrementalDynamicityAnalyzer()
        incremental.ingest(START, {"10.0.0.0/24": 20})
        with pytest.raises(ValueError, match="not after"):
            incremental.ingest(START, {"10.0.0.0/24": 20})
        with pytest.raises(ValueError, match="cadence"):
            incremental.ingest(START + dt.timedelta(days=3), {"10.0.0.0/24": 20})

    def test_report_on_empty_state_rejected(self):
        with pytest.raises(ValueError):
            IncrementalDynamicityAnalyzer().report()


class TestCadenceInference:
    def test_mixed_cadence_mapping_rejected(self):
        # Regression: the old inference took the *minimum* gap, so a
        # daily series with one missing day was silently analysed as
        # regular.  Mixed spacing must now raise.
        series = {
            START: {"10.0.0.0/24": 100},
            START + dt.timedelta(days=1): {"10.0.0.0/24": 50},
            # day 2 missing
            START + dt.timedelta(days=3): {"10.0.0.0/24": 100},
        }
        with pytest.raises(ValueError, match="mixed snapshot spacing"):
            DynamicityAnalyzer().analyze(series)

    def test_explicit_cadence_bypasses_inference(self):
        series = {
            START: {"10.0.0.0/24": 100},
            START + dt.timedelta(days=1): {"10.0.0.0/24": 50},
            START + dt.timedelta(days=3): {"10.0.0.0/24": 100},
        }
        report = DynamicityAnalyzer().analyze(series, cadence_days=1)
        assert report.cadence_days == 1

    def test_uniform_weekly_mapping_still_inferred(self):
        series = mapping_from([{"10.0.0.0/24": 100}, {"10.0.0.0/24": 50}], 7)
        with pytest.warns(UserWarning, match="rescaled"):
            report = DynamicityAnalyzer().analyze(series, allow_coarse_cadence=True)
        assert report.cadence_days == 7
