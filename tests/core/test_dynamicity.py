"""Tests for the Section 4.1 dynamicity heuristic."""

import datetime as dt

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DynamicityAnalyzer, DynamicityThresholds

START = dt.date(2021, 1, 1)


def series_from(history_by_prefix):
    """Build a {date: {prefix: count}} mapping from count lists."""
    days = max(len(history) for history in history_by_prefix.values())
    series = {}
    for offset in range(days):
        day = START + dt.timedelta(days=offset)
        series[day] = {
            prefix: history[offset]
            for prefix, history in history_by_prefix.items()
            if offset < len(history) and history[offset] > 0
        }
    return series


class TestThresholds:
    def test_paper_defaults(self):
        thresholds = DynamicityThresholds()
        assert thresholds.min_daily_addresses == 10
        assert thresholds.change_percent == 10.0
        assert thresholds.min_change_days == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicityThresholds(min_daily_addresses=0)
        with pytest.raises(ValueError):
            DynamicityThresholds(change_percent=0)
        with pytest.raises(ValueError):
            DynamicityThresholds(change_percent=150)
        with pytest.raises(ValueError):
            DynamicityThresholds(min_change_days=0)


class TestStepOne:
    def test_small_prefixes_discarded(self):
        # Never more than 10 addresses: dropped in step 1.
        series = series_from({"10.0.0.0/24": [10, 5, 10, 5] * 10})
        report = DynamicityAnalyzer().analyze(series)
        assert report.prefixes == {}
        assert report.total_observed == 1

    def test_exceeding_minimum_once_is_enough_to_consider(self):
        series = series_from({"10.0.0.0/24": [11] + [5] * 30})
        report = DynamicityAnalyzer().analyze(series)
        assert "10.0.0.0/24" in report.prefixes
        assert report.prefixes["10.0.0.0/24"].max_daily == 11


class TestStepTwoAndThree:
    def test_static_prefix_not_dynamic(self):
        series = series_from({"10.0.0.0/24": [100] * 30})
        report = DynamicityAnalyzer().analyze(series)
        info = report.prefixes["10.0.0.0/24"]
        assert info.change_days == 0
        assert not info.is_dynamic

    def test_dynamic_prefix_detected(self):
        # Alternating 100/50: 50% change on every transition.
        series = series_from({"10.0.0.0/24": [100, 50] * 10})
        report = DynamicityAnalyzer().analyze(series)
        assert report.is_dynamic("10.0.0.0/24")
        assert report.dynamic_prefixes() == ["10.0.0.0/24"]
        assert report.dynamic_count == 1

    def test_six_change_days_is_not_enough(self):
        # Exactly 6 days with >10% change: below Y=7.
        history = [100] * 30
        for index in range(1, 13, 2):  # 6 dips
            history[index] = 80
        series = series_from({"10.0.0.0/24": history})
        report = DynamicityAnalyzer().analyze(series)
        assert report.prefixes["10.0.0.0/24"].change_days == 12  # each dip: down and up
        history = [100] * 30
        history[1] = 80
        history[3] = 80
        history[5] = 80
        series = series_from({"10.0.0.0/24": history})
        report = DynamicityAnalyzer().analyze(series)
        assert report.prefixes["10.0.0.0/24"].change_days == 6
        assert not report.is_dynamic("10.0.0.0/24")

    def test_seven_change_days_is_dynamic(self):
        # Three isolated dips (2 change days each) plus a final-day dip
        # (1 change day, no recovery observed) = exactly 7.
        history = [100] * 30
        for index in (1, 3, 5, 29):
            history[index] = 80
        series = series_from({"10.0.0.0/24": history})
        report = DynamicityAnalyzer().analyze(series)
        assert report.prefixes["10.0.0.0/24"].change_days == 7
        assert report.is_dynamic("10.0.0.0/24")

    def test_change_percent_relative_to_max(self):
        # Max is 1000, daily swing 50 = 5%: not a change day at X=10.
        series = series_from({"10.0.0.0/24": [1000, 950] * 10})
        report = DynamicityAnalyzer().analyze(series)
        assert report.prefixes["10.0.0.0/24"].change_days == 0

    def test_disappearing_prefix_counts_as_zero(self):
        # Present one day, absent the next: 100% change.
        series = series_from({"10.0.0.0/24": [100, 0] * 10})
        report = DynamicityAnalyzer().analyze(series)
        assert report.is_dynamic("10.0.0.0/24")

    def test_boundary_change_is_exclusive(self):
        # Exactly 10% change must NOT count (the paper: "exceeds X%").
        series = series_from({"10.0.0.0/24": [100, 90] * 15})
        report = DynamicityAnalyzer().analyze(series)
        assert report.prefixes["10.0.0.0/24"].change_days == 0


def weekly_series_from(history):
    """A {date: {prefix: count}} mapping spaced 7 days apart."""
    return {
        START + dt.timedelta(days=7 * offset): {"10.0.0.0/24": count}
        for offset, count in enumerate(history)
        if count > 0
    }


class TestCadence:
    def test_coarse_cadence_rejected_without_opt_in(self):
        # Regression: weekly snapshots used to be judged against the
        # daily Y=7 threshold as if each transition spanned one day.
        series = weekly_series_from([100, 50] * 6)
        with pytest.raises(ValueError, match="cadence"):
            DynamicityAnalyzer().analyze(series)

    def test_opt_in_rescales_threshold_and_warns(self):
        series = weekly_series_from([100, 50, 100])  # 2 transitions
        with pytest.warns(UserWarning, match="rescaled"):
            report = DynamicityAnalyzer().analyze(series, allow_coarse_cadence=True)
        assert report.cadence_days == 7
        assert report.effective_min_change_transitions == 1  # ceil(7/7)
        assert report.is_dynamic("10.0.0.0/24")

    def test_weekly_snapshot_series_carries_cadence(self):
        from repro.netsim.internet import WorldScale, build_world
        from repro.scan import SnapshotCollector

        world = build_world(seed=4, scale=WorldScale.small())
        series = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=28)
        )
        with pytest.warns(UserWarning):
            report = DynamicityAnalyzer().analyze(series, allow_coarse_cadence=True)
        assert report.cadence_days == 7

    def test_explicit_cadence_overrides_inference(self):
        series = series_from({"10.0.0.0/24": [100, 50] * 10})
        with pytest.warns(UserWarning):
            report = DynamicityAnalyzer().analyze(
                series, cadence_days=2, allow_coarse_cadence=True
            )
        assert report.cadence_days == 2
        assert report.effective_min_change_transitions == 4  # ceil(7/2)

    def test_daily_report_defaults(self):
        series = series_from({"10.0.0.0/24": [100, 50] * 10})
        report = DynamicityAnalyzer().analyze(series)
        assert report.cadence_days == 1
        assert report.effective_min_change_transitions == 7

    def test_observed_days_is_calendar_span(self):
        # 5 weekly snapshots cover 29 calendar days, not 5.
        series = weekly_series_from([100, 50, 100, 50, 100])
        with pytest.warns(UserWarning):
            report = DynamicityAnalyzer().analyze(series, allow_coarse_cadence=True)
        assert report.prefixes["10.0.0.0/24"].observed_days == 29

    def test_observed_days_daily(self):
        series = series_from({"10.0.0.0/24": [100, 50] * 10})
        report = DynamicityAnalyzer().analyze(series)
        assert report.prefixes["10.0.0.0/24"].observed_days == 20


class TestInputHandling:
    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            DynamicityAnalyzer().analyze({})

    def test_multiple_prefixes_independent(self):
        series = series_from(
            {
                "10.0.0.0/24": [100, 50] * 10,
                "10.0.1.0/24": [100] * 20,
                "10.0.2.0/24": [5] * 20,
            }
        )
        report = DynamicityAnalyzer().analyze(series)
        assert report.dynamic_prefixes() == ["10.0.0.0/24"]
        assert report.total_observed == 3

    @given(
        st.lists(st.integers(min_value=0, max_value=200), min_size=10, max_size=60)
    )
    def test_dynamic_requires_large_max_property(self, history):
        report = DynamicityAnalyzer().analyze(series_from({"10.0.0.0/24": history}))
        if max(history) <= 10:
            assert report.prefixes == {}
        elif report.is_dynamic("10.0.0.0/24"):
            info = report.prefixes["10.0.0.0/24"]
            assert info.change_days >= 7
            assert info.max_daily > 10
