"""Tests for the statistical support module."""

import numpy as np
import pytest

from repro.core.stats import (
    Interval,
    bootstrap_ci,
    compare_networks,
    lingering_summary,
    proportion_ci,
)
from repro.core.timing import LingeringAnalysis


def make_analysis():
    analysis = LingeringAnalysis()
    fast = [float(5 + (i % 10)) for i in range(200)]       # ~5-14 min
    slow = [float(60 + (i % 60)) for i in range(200)]      # ~60-119 min
    analysis.by_network["fast-net"] = fast
    analysis.by_network["slow-net"] = slow
    analysis.minutes = fast + slow
    return analysis


class TestBootstrapCi:
    def test_interval_contains_estimate(self):
        interval = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0] * 20, np.median, seed=1)
        assert interval.low <= interval.estimate <= interval.high
        assert interval.estimate in interval

    def test_narrow_for_constant_sample(self):
        interval = bootstrap_ci([7.0] * 50)
        assert interval.low == interval.high == interval.estimate == 7.0

    def test_deterministic_given_seed(self):
        sample = [float(i) for i in range(30)]
        assert bootstrap_ci(sample, seed=3) == bootstrap_ci(sample, seed=3)

    def test_empty_sample_degenerate(self):
        interval = bootstrap_ci([])
        assert interval.degenerate
        assert np.isnan(interval.estimate)
        assert np.isnan(interval.low) and np.isnan(interval.high)
        assert 0.0 not in interval

    def test_single_sample_zero_width_degenerate(self):
        interval = bootstrap_ci([42.0])
        assert interval.degenerate
        assert interval.low == interval.estimate == interval.high == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.5)

    def test_custom_statistic(self):
        interval = bootstrap_ci([1.0, 2.0, 3.0] * 30, np.mean, seed=2)
        assert 1.5 < interval.estimate < 2.5


class TestProportionCi:
    def test_half(self):
        interval = proportion_ci(50, 100)
        assert interval.estimate == pytest.approx(0.5)
        assert interval.low < 0.5 < interval.high
        assert 0.0 <= interval.low and interval.high <= 1.0

    def test_wilson_never_degenerate_at_extremes(self):
        zero = proportion_ci(0, 20)
        full = proportion_ci(20, 20)
        assert zero.high > 0.0
        assert full.low < 1.0

    def test_larger_samples_tighter(self):
        small = proportion_ci(9, 10)
        large = proportion_ci(900, 1000)
        assert (large.high - large.low) < (small.high - small.low)

    def test_no_trials_degenerate(self):
        interval = proportion_ci(0, 0)
        assert interval.degenerate
        assert np.isnan(interval.estimate)
        assert interval.low == 0.0 and interval.high == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_ci(1, 0)
        with pytest.raises(ValueError):
            proportion_ci(5, 3)
        with pytest.raises(ValueError):
            proportion_ci(0, -1)

    def test_str_rendering(self):
        assert "@" in str(proportion_ci(5, 10))
        assert "degenerate" in str(proportion_ci(0, 0))


class TestCompareNetworks:
    def test_distinct_distributions_distinguishable(self):
        analysis = make_analysis()
        comparison = compare_networks(analysis, "fast-net", "slow-net")
        assert comparison.statistic > 0.8
        assert comparison.distinguishable()

    def test_identical_distributions_not_distinguishable(self):
        analysis = LingeringAnalysis()
        analysis.by_network["a"] = [float(i % 30) for i in range(100)]
        analysis.by_network["b"] = [float(i % 30) for i in range(100)]
        comparison = compare_networks(analysis, "a", "b")
        assert not comparison.distinguishable()

    def test_missing_network_rejected(self):
        with pytest.raises(ValueError):
            compare_networks(make_analysis(), "fast-net", "nope")


class TestLingeringSummary:
    def test_headline_numbers(self):
        summary = lingering_summary(make_analysis(), within_minutes=60)
        assert isinstance(summary["median_minutes"], Interval)
        fraction = summary["fraction_within_60m"]
        # Half the synthetic sample is fast (and 60.0 itself counts).
        assert 0.45 < fraction.estimate < 0.56

    def test_per_network(self):
        summary = lingering_summary(make_analysis(), network="fast-net")
        assert summary["fraction_within_60m"].estimate == 1.0

    def test_empty_analysis_degenerate(self):
        summary = lingering_summary(LingeringAnalysis())
        assert summary["median_minutes"].degenerate
        assert summary["fraction_within_60m"].degenerate

    def test_unknown_network_degenerate(self):
        summary = lingering_summary(make_analysis(), network="missing-net")
        assert summary["median_minutes"].degenerate
