"""Tests for term extraction, suffixes, router filtering, name matching."""

import pytest

from repro.core import GivenNameMatcher, extract_terms, hostname_suffix, is_router_level
from repro.core.terms import count_terms


class TestExtractTerms:
    def test_paper_style_hostname(self):
        assert extract_terms("brians-galaxy-note9.campus.example.edu") == [
            "brians",
            "galaxy",
            "note",
            "campus",
            "example",
            "edu",
        ]

    def test_lowercases(self):
        assert extract_terms("Brians-iPhone") == ["brians", "iphone"]

    def test_min_length_filter(self):
        # The paper considers terms of three or more characters ("hp"
        # adds a lot of noise).
        assert extract_terms("hp-laptop-ab12", min_length=3) == ["laptop"]

    def test_numeric_only_hostname(self):
        assert extract_terms("192-0-2-1") == []


class TestHostnameSuffix:
    def test_paper_example(self):
        assert hostname_suffix("client1.someisp.com") == "someisp.com"
        assert hostname_suffix("client2.someisp.com") == "someisp.com"

    def test_multi_label_public_suffix(self):
        assert hostname_suffix("host.campus.techuni.ac.nl") == "techuni.ac.nl"

    def test_extra_levels(self):
        assert hostname_suffix("a.campus.stateu.edu", extra_levels=2) == "campus.stateu.edu"

    def test_short_names(self):
        assert hostname_suffix("localhost") == "localhost"
        assert hostname_suffix("example.com") == "example.com"

    def test_trailing_dot_ignored(self):
        assert hostname_suffix("a.b.example.com.") == "example.com"


class TestRouterLevel:
    def test_compass_terms_are_router_level(self):
        assert is_router_level("xe-0-0-0.core1.north.isp.net")
        assert is_router_level("gw1.south.example.com")

    def test_interface_terms(self):
        assert is_router_level("ae1.border1.denver.as6400.example.net")

    def test_client_hostnames_are_not(self):
        assert not is_router_level("brians-iphone.campus.stateu.edu")
        assert not is_router_level("emmas-galaxy-s10.dyn.metronet.net")

    def test_generic_word_in_suffix_does_not_exclude(self):
        # 'dyn' sits in the network suffix, not the host prefix.
        assert not is_router_level("jacobs-mbp.dyn.metronet.net")

    def test_bare_suffix_is_not_router_level(self):
        assert not is_router_level("example.com")


class TestCountTerms:
    def test_counts_unique_per_hostname(self):
        counter = count_terms(["iphone-iphone.example.com", "ipad.example.com"])
        assert counter["iphone"] == 1  # deduplicated within one hostname
        assert counter["ipad"] == 1
        assert counter["example"] == 2

    def test_three_character_minimum(self):
        counter = count_terms(["hp-box.example.com"])
        assert "hp" not in counter
        assert counter["box"] == 1


class TestGivenNameMatcher:
    def test_matches_paper_hostnames(self):
        matcher = GivenNameMatcher()
        assert matcher.match("brians-iphone.campus.stateu.edu") == {"brian"}
        assert matcher.matches("emmas-galaxy-s10.dyn.metronet.net")

    def test_city_confounds_match_too(self):
        # Jackson/Jacksonville style collisions are intentionally
        # matched; the suffix thresholds absorb them later.
        matcher = GivenNameMatcher()
        assert "jackson" in matcher.match("jacksonville.core1.isp.net")
        assert "madison" in matcher.match("ae1.madison.isp.net")

    def test_non_matching_hostname(self):
        matcher = GivenNameMatcher()
        assert matcher.match("client-10-0-0-1.pool.example.net") == set()
        assert matcher.first_match("client-10-0-0-1.pool.example.net") is None

    def test_first_match_prefers_longest(self):
        matcher = GivenNameMatcher(["jack", "jackson"])
        assert matcher.first_match("jacksonville.example.com") == "jackson"

    def test_short_names_dropped(self):
        matcher = GivenNameMatcher(["al", "bo", "brian"])
        assert len(matcher) == 1
        assert "brian" in matcher

    def test_all_short_names_rejected(self):
        with pytest.raises(ValueError):
            GivenNameMatcher(["al", "bo"])

    def test_count_matches(self):
        matcher = GivenNameMatcher()
        counter = matcher.count_matches(
            [
                "brians-iphone.a.edu",
                "brians-mbp.a.edu",
                "emmas-ipad.a.edu",
            ]
        )
        assert counter["brian"] == 2
        assert counter["emma"] == 1

    def test_contains_and_case(self):
        matcher = GivenNameMatcher()
        assert matcher.match("BRIANS-IPHONE.A.EDU") == {"brian"}
