"""Tests for announced-prefix mapping and Figure 1 fractions."""

import ipaddress

import pytest

from repro.core import AnnouncedPrefixMap, dynamic_fraction_summary


@pytest.fixture
def prefix_map():
    return AnnouncedPrefixMap(
        [
            ("10.0.0.0/8", "wide-isp"),
            ("10.1.0.0/16", "campus"),
            ("10.1.2.0/24", "lab"),
            ("192.0.0.0/12", "other"),
        ]
    )


class TestCovering:
    def test_most_specific_wins(self, prefix_map):
        network, holder = prefix_map.covering("10.1.2.0/24")
        assert holder == "lab"
        network, holder = prefix_map.covering("10.1.3.0/24")
        assert holder == "campus"
        network, holder = prefix_map.covering("10.200.0.0/24")
        assert holder == "wide-isp"

    def test_uncovered_returns_none(self, prefix_map):
        assert prefix_map.covering("172.16.0.0/24") is None

    def test_duplicate_announcement_rejected(self):
        with pytest.raises(ValueError):
            AnnouncedPrefixMap([("10.0.0.0/8", "a"), ("10.0.0.0/8", "b")])

    def test_more_specific_than_24_rejected(self):
        with pytest.raises(ValueError):
            AnnouncedPrefixMap([("10.0.0.0/25", "a")])

    def test_len(self, prefix_map):
        assert len(prefix_map) == 4


class TestFractions:
    def test_fraction_counts_per_announced_prefix(self, prefix_map):
        fractions = prefix_map.dynamic_fractions(["10.1.2.0/24", "10.1.5.0/24", "10.1.6.0/24"])
        lab = ipaddress.IPv4Network("10.1.2.0/24")
        campus = ipaddress.IPv4Network("10.1.0.0/16")
        assert fractions[lab] == 1.0  # the /24 itself
        assert fractions[campus] == pytest.approx(2 / 256)

    def test_prefixes_without_dynamics_absent(self, prefix_map):
        fractions = prefix_map.dynamic_fractions(["10.1.5.0/24"])
        assert ipaddress.IPv4Network("192.0.0.0/12") not in fractions

    def test_uncovered_dynamic_24s_ignored(self, prefix_map):
        assert prefix_map.dynamic_fractions(["172.16.0.0/24"]) == {}


class TestSummary:
    def test_summary_shape(self):
        prefix_map = AnnouncedPrefixMap(
            [
                ("10.0.0.0/16", "a"),
                ("11.0.0.0/16", "b"),
                ("12.0.0.0/20", "c"),
            ]
        )
        dynamic = ["10.0.1.0/24", "10.0.2.0/24", "11.0.1.0/24", "12.0.1.0/24"]
        summaries = dynamic_fraction_summary(prefix_map, dynamic)
        by_size = {summary.prefixlen: summary for summary in summaries}
        assert by_size[16].prefixes == 2
        assert by_size[16].minimum == pytest.approx(1 / 256)
        assert by_size[16].maximum == pytest.approx(2 / 256)
        assert by_size[20].median == pytest.approx(1 / 16)

    def test_larger_prefixes_have_smaller_fractions(self):
        # One dynamic /24 inside a /8 vs inside a /20: Figure 1's
        # overall shape (bigger announced prefix, smaller fraction).
        prefix_map = AnnouncedPrefixMap([("10.0.0.0/8", "big"), ("12.0.0.0/20", "small")])
        summaries = dynamic_fraction_summary(prefix_map, ["10.0.1.0/24", "12.0.1.0/24"])
        by_size = {summary.prefixlen: summary for summary in summaries}
        assert by_size[8].maximum < by_size[20].minimum
