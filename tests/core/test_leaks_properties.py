"""Property-based tests for the leak-identification pipeline."""

import ipaddress

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GivenNameMatcher, LeakIdentifier, LeakThresholds
from repro.datasets.names import TOP_GIVEN_NAMES

label = st.from_regex(r"[a-z][a-z0-9-]{0,12}[a-z0-9]", fullmatch=True)
name = st.sampled_from(TOP_GIVEN_NAMES)
suffix = st.sampled_from(["alpha.edu", "beta.net", "gamma.com", "delta.example"])


@st.composite
def record(draw):
    address = ipaddress.IPv4Address(draw(st.integers(min_value=0, max_value=2**32 - 1)))
    if draw(st.booleans()):
        host_label = f"{draw(name)}s-{draw(label)}"
    else:
        host_label = draw(label)
    return (address, f"{host_label}.{draw(suffix)}")


records_strategy = st.lists(record(), max_size=60)


def dynamic_set_for(records, draw_all):
    if draw_all:
        return {f"{ipaddress.ip_network((int(a) & ~0xFF, 24))}" for a, _ in records}
    return set()


class TestLeakInvariants:
    @given(records_strategy, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_filtered_never_exceeds_all(self, records, all_dynamic):
        identifier = LeakIdentifier(GivenNameMatcher(), LeakThresholds(min_unique_names=1, min_ratio=0.01))
        report = identifier.identify(records, dynamic_set_for(records, all_dynamic))
        for key, count in report.filtered_name_counts.items():
            assert count <= report.all_name_counts[key]
        for key, count in report.filtered_device_term_counts.items():
            assert count <= report.all_device_term_counts[key]

    @given(records_strategy)
    @settings(max_examples=40, deadline=None)
    def test_no_dynamic_space_no_identification(self, records):
        identifier = LeakIdentifier(GivenNameMatcher(), LeakThresholds(min_unique_names=1, min_ratio=0.01))
        report = identifier.identify(records, set())
        assert report.identified == []
        assert report.suffix_stats == {}
        assert sum(report.filtered_name_counts.values()) == 0

    @given(records_strategy)
    @settings(max_examples=40, deadline=None)
    def test_identified_suffixes_meet_thresholds(self, records):
        thresholds = LeakThresholds(min_unique_names=2, min_ratio=0.1)
        identifier = LeakIdentifier(GivenNameMatcher(), thresholds)
        report = identifier.identify(records, dynamic_set_for(records, True))
        for suffix_key in report.identified:
            stats = report.stats_for(suffix_key)
            assert stats.unique_name_count >= 2
            assert stats.ratio >= 0.1

    @given(records_strategy)
    @settings(max_examples=40, deadline=None)
    def test_ratio_bounded(self, records):
        identifier = LeakIdentifier(GivenNameMatcher(), LeakThresholds(min_unique_names=1, min_ratio=0.01))
        report = identifier.identify(records, dynamic_set_for(records, True))
        for stats in report.suffix_stats.values():
            assert 0 < stats.ratio <= len(TOP_GIVEN_NAMES)
            assert stats.unique_name_count <= stats.records * 10  # sanity

    @given(records_strategy, st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_identification_is_deterministic(self, records, all_dynamic):
        identifier = LeakIdentifier(GivenNameMatcher(), LeakThresholds(min_unique_names=1, min_ratio=0.01))
        dynamic = dynamic_set_for(records, all_dynamic)
        first = identifier.identify(list(records), set(dynamic))
        second = identifier.identify(list(records), set(dynamic))
        assert first.identified == second.identified
        assert first.all_name_counts == second.all_name_counts
