"""Tests for the operator-facing exposure auditor."""

import datetime as dt
import ipaddress

import pytest

from repro.core.exposure import ExposureAuditor, audit_by_network
from repro.dns.resolver import ResolutionStatus
from repro.netsim.simtime import HOUR, from_date
from repro.scan.observations import RdnsObservation

DAY0 = dt.date(2021, 11, 1)


def obs(day, hour, address, hostname, network="net-a", ok=True):
    return RdnsObservation(
        ipaddress.IPv4Address(address),
        from_date(DAY0 + dt.timedelta(days=day)) + hour * HOUR,
        ResolutionStatus.NOERROR if ok else ResolutionStatus.NXDOMAIN,
        hostname if ok else "",
        network,
    )


def leaky_window():
    """Three days of a carry-over network: names, churn, stable pairs."""
    rows = []
    for day in range(3):
        rows.append(obs(day, 9, "10.0.0.10", "brians-iphone.campus.example.edu"))
        rows.append(obs(day, 10, "10.0.0.11", "emmas-galaxy-s10.campus.example.edu"))
        if day == 1:  # a device present on one day only: churn
            rows.append(obs(day, 11, "10.0.0.12", "jacobs-mbp.campus.example.edu"))
    return rows


def boring_window():
    """Three days of fixed-form records: no names, no churn."""
    rows = []
    for day in range(3):
        for last in (10, 11, 12):
            rows.append(obs(day, 9, f"10.0.0.{last}", f"host-10-0-0-{last}.pool.example.net"))
    return rows


class TestExposureAuditor:
    def test_leaky_network_scores_high(self):
        report = ExposureAuditor().audit(leaky_window())
        assert report.identity_score == 1.0
        assert report.dynamics_score > 0.2
        assert report.trackability_score > 0.5
        assert report.grade() in ("D", "F")
        assert "brians-iphone.campus.example.edu" in report.named_hostnames

    def test_fixed_form_network_scores_low_identity(self):
        report = ExposureAuditor().audit(boring_window())
        assert report.identity_score == 0.0
        assert report.dynamics_score == 0.0
        assert report.named_hostnames == ()

    def test_empty_window(self):
        report = ExposureAuditor().audit([])
        assert report.records_observed == 0
        assert report.overall == 0.0
        assert report.grade() == "A"

    def test_failed_lookups_ignored(self):
        report = ExposureAuditor().audit([obs(0, 9, "10.0.0.1", "", ok=False)])
        assert report.records_observed == 0

    def test_router_records_not_identity(self):
        rows = [obs(d, 9, "10.0.0.1", "xe-0-0-0.core1.jackson.isp.example.net") for d in range(3)]
        report = ExposureAuditor().audit(rows)
        assert report.identity_score == 0.0

    def test_device_terms_count_as_identity(self):
        rows = [obs(0, 9, "10.0.0.1", "galaxy-s10.guest.example.org")]
        report = ExposureAuditor().audit(rows)
        assert report.identity_score == 1.0
        assert report.device_term_hostnames

    def test_single_day_window_has_no_dynamics_signal(self):
        rows = [obs(0, 9, "10.0.0.1", "brians-iphone.x.example")]
        assert ExposureAuditor().audit(rows).dynamics_score == 0.0

    def test_summary_and_grades_monotone(self):
        leaky = ExposureAuditor().audit(leaky_window())
        boring = ExposureAuditor().audit(boring_window())
        assert leaky.overall > boring.overall
        assert "exposure grade" in leaky.summary()

    def test_sample_limit(self):
        rows = [
            obs(0, 9, f"10.0.0.{i}", f"jacobs-box-{i}.x.example") for i in range(10, 40)
        ]
        report = ExposureAuditor(sample_limit=5).audit(rows)
        assert len(report.named_hostnames) == 5


class TestAuditByNetwork:
    def test_networks_audited_separately(self):
        rows = leaky_window() + [
            obs(day, 9, "10.1.0.10", "host-10-1-0-10.pool.example.net", network="net-b")
            for day in range(3)
        ]
        reports = audit_by_network(rows)
        assert set(reports) == {"net-a", "net-b"}
        assert reports["net-a"].identity_score > reports["net-b"].identity_score
