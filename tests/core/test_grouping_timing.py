"""Tests for activity grouping (Table 5) and lingering analysis (Fig. 7)."""

import datetime as dt
import ipaddress

import pytest

from repro.core import GroupBuilder, lingering_analysis
from repro.dns.resolver import ResolutionStatus
from repro.netsim.simtime import HOUR, MINUTE, from_date
from repro.scan.campaign import SupplementalDataset
from repro.scan.observations import IcmpObservation, RdnsObservation

DAY0 = from_date(dt.date(2021, 11, 1))
IP = ipaddress.IPv4Address("20.0.10.10")
IP2 = ipaddress.IPv4Address("20.0.10.11")
HOSTNAME = "brians-iphone.campus.stateu.edu"


def icmp(at, address=IP, network="Academic-A"):
    return IcmpObservation(address, at, network)


def rdns(at, status=ResolutionStatus.NOERROR, hostname=HOSTNAME, address=IP, network="Academic-A"):
    return RdnsObservation(address, at, status, hostname if status is ResolutionStatus.NOERROR else "", network)


def dataset(icmp_obs, rdns_obs):
    return SupplementalDataset(
        start=dt.date(2021, 11, 1),
        end=dt.date(2021, 11, 2),
        icmp=list(icmp_obs),
        rdns=list(rdns_obs),
        targets_by_network={"Academic-A": ["20.0.10.0/24"]},
        network_types={},
    )


def clean_session(start, end, removal_offset=5 * MINUTE, step=5 * MINUTE):
    """A fully usable session: dense pings, PTR present, then removed."""
    pings = [icmp(t) for t in range(start, end + 1, step)]
    lookups = [rdns(start)]  # spot lookup at detection
    lookups.append(rdns(end + removal_offset, ResolutionStatus.NXDOMAIN))
    return pings, lookups


class TestGroupConstruction:
    def test_single_run_single_group(self):
        pings, lookups = clean_session(DAY0 + 9 * HOUR, DAY0 + 11 * HOUR)
        groups = GroupBuilder().build(dataset(pings, lookups))
        assert len(groups) == 1
        group = groups[0]
        assert group.start == DAY0 + 9 * HOUR
        assert group.end == DAY0 + 11 * HOUR
        assert group.address == IP

    def test_gap_splits_runs(self):
        morning = [icmp(DAY0 + 9 * HOUR), icmp(DAY0 + 9 * HOUR + 30 * MINUTE)]
        evening = [icmp(DAY0 + 15 * HOUR), icmp(DAY0 + 15 * HOUR + 30 * MINUTE)]
        groups = GroupBuilder().build(dataset(morning + evening, []))
        assert len(groups) == 2

    def test_small_gap_does_not_split(self):
        pings = [icmp(DAY0 + 9 * HOUR), icmp(DAY0 + 10 * HOUR)]  # hourly sweep only
        groups = GroupBuilder().build(dataset(pings, []))
        assert len(groups) == 1

    def test_addresses_grouped_independently(self):
        pings = [icmp(DAY0 + 9 * HOUR), icmp(DAY0 + 9 * HOUR, address=IP2)]
        groups = GroupBuilder().build(dataset(pings, []))
        assert len(groups) == 2
        assert {group.address for group in groups} == {IP, IP2}

    def test_rdns_window_clamped_at_next_group(self):
        # The removal lookup after group 1 must not leak into group 2's
        # window, and group 2 must not steal group 1's removal.
        pings1, lookups1 = clean_session(DAY0 + 9 * HOUR, DAY0 + 10 * HOUR)
        pings2, lookups2 = clean_session(DAY0 + 20 * HOUR, DAY0 + 21 * HOUR)
        groups = GroupBuilder().build(dataset(pings1 + pings2, lookups1 + lookups2))
        assert len(groups) == 2
        first, second = sorted(groups, key=lambda g: g.start)
        assert first.removal_time() == DAY0 + 10 * HOUR + 5 * MINUTE
        assert second.removal_time() == DAY0 + 21 * HOUR + 5 * MINUTE

    def test_builder_validates_thresholds(self):
        with pytest.raises(ValueError):
            GroupBuilder(gap_threshold=0)


class TestFunnelClassification:
    def test_clean_group_survives_funnel(self):
        pings, lookups = clean_session(DAY0 + 9 * HOUR, DAY0 + 11 * HOUR)
        builder = GroupBuilder()
        groups = builder.build(dataset(pings, lookups))
        funnel = builder.funnel(groups)
        assert funnel.all_groups == funnel.successful == funnel.reverted == funnel.reliable == 1
        assert builder.usable(groups) == groups

    def test_missing_phase1_lookup_fails_successful(self):
        pings = [icmp(DAY0 + 9 * HOUR), icmp(DAY0 + 10 * HOUR)]
        lookups = [rdns(DAY0 + 10 * HOUR + 5 * MINUTE, ResolutionStatus.NXDOMAIN)]
        builder = GroupBuilder()
        groups = builder.build(dataset(pings, lookups))
        assert not groups[0].successful

    def test_servfail_in_follow_fails_successful(self):
        pings, lookups = clean_session(DAY0 + 9 * HOUR, DAY0 + 11 * HOUR)
        lookups.insert(1, rdns(DAY0 + 11 * HOUR + 2 * MINUTE, ResolutionStatus.SERVFAIL))
        builder = GroupBuilder()
        groups = builder.build(dataset(pings, lookups))
        assert not groups[0].successful

    def test_lingering_record_is_successful_but_not_reverted(self):
        pings = [icmp(DAY0 + 9 * HOUR + offset) for offset in range(0, 2 * HOUR + 1, 5 * MINUTE)]
        lookups = [rdns(DAY0 + 9 * HOUR)]
        lookups += [rdns(DAY0 + 11 * HOUR + offset) for offset in (5 * MINUTE, HOUR)]
        builder = GroupBuilder()
        groups = builder.build(dataset(pings, lookups))
        group = groups[0]
        assert group.successful
        assert not group.reverted
        assert group.removal_time() is None

    def test_hostname_change_counts_as_reverted(self):
        # Static-template networks revert to the fixed-form name.
        pings, _ = clean_session(DAY0 + 9 * HOUR, DAY0 + 11 * HOUR)
        lookups = [
            rdns(DAY0 + 9 * HOUR),
            rdns(DAY0 + 11 * HOUR + 5 * MINUTE, hostname="host-20-0-10-10.dynamic.stateu.edu"),
        ]
        builder = GroupBuilder()
        groups = builder.build(dataset(pings, lookups))
        group = groups[0]
        assert group.reverted
        assert group.removal_time() == DAY0 + 11 * HOUR + 5 * MINUTE

    def test_sparse_icmp_sampling_is_unreliable(self):
        # Departure detected from hour-spaced probes only: sloppy.
        pings = [icmp(DAY0 + 9 * HOUR), icmp(DAY0 + 10 * HOUR)]
        lookups = [
            rdns(DAY0 + 9 * HOUR),
            rdns(DAY0 + 10 * HOUR + 30 * MINUTE, ResolutionStatus.NXDOMAIN),
        ]
        builder = GroupBuilder()
        groups = builder.build(dataset(pings, lookups))
        group = groups[0]
        assert group.successful and group.reverted
        assert not group.reliable()
        funnel = builder.funnel(groups)
        assert funnel.reverted == 1
        assert funnel.reliable == 0

    def test_funnel_rows_layout(self):
        pings, lookups = clean_session(DAY0 + 9 * HOUR, DAY0 + 11 * HOUR)
        builder = GroupBuilder()
        funnel = builder.funnel(builder.build(dataset(pings, lookups)))
        rows = funnel.rows()
        assert [row[0] for row in rows] == [
            "All groups",
            "Successful responses",
            "PTR reverted",
            "Reliable timing alignment",
        ]
        assert all(row[2] == 100.0 for row in rows)


class TestLingeringAnalysis:
    def build_usable_groups(self, removal_offsets):
        pings, lookups = [], []
        for index, offset in enumerate(removal_offsets):
            address = ipaddress.IPv4Address(int(IP) + index)
            start = DAY0 + 9 * HOUR
            end = DAY0 + 10 * HOUR
            pings += [
                icmp(t, address=address) for t in range(start, end + 1, 5 * MINUTE)
            ]
            lookups.append(rdns(start, address=address))
            lookups.append(rdns(end + offset, ResolutionStatus.NXDOMAIN, address=address))
        builder = GroupBuilder()
        groups = builder.build(dataset(pings, lookups))
        return builder.usable(groups)

    def test_lingering_minutes(self):
        groups = self.build_usable_groups([5 * MINUTE, 60 * MINUTE])
        analysis = lingering_analysis(groups)
        assert sorted(analysis.minutes) == [5.0, 60.0]
        assert analysis.count == 2

    def test_fraction_within(self):
        groups = self.build_usable_groups([5 * MINUTE] * 9 + [120 * MINUTE])
        analysis = lingering_analysis(groups)
        assert analysis.fraction_within(60) == pytest.approx(0.9)

    def test_histogram_bins(self):
        groups = self.build_usable_groups([5 * MINUTE, 7 * MINUTE, 61 * MINUTE])
        histogram = lingering_analysis(groups).histogram(bin_minutes=5)
        assert histogram[5] == 2
        assert histogram[60] == 1

    def test_cdf_monotonic(self):
        groups = self.build_usable_groups([5 * MINUTE, 30 * MINUTE, 55 * MINUTE])
        points = lingering_analysis(groups).cdf("Academic-A")
        fractions = [fraction for _, fraction in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_per_network_split(self):
        groups = self.build_usable_groups([5 * MINUTE])
        analysis = lingering_analysis(groups)
        assert analysis.networks() == ["Academic-A"]
        assert analysis.fraction_within(10, "Academic-A") == 1.0

    def test_quantile(self):
        groups = self.build_usable_groups([5 * MINUTE, 30 * MINUTE, 60 * MINUTE, 90 * MINUTE])
        analysis = lingering_analysis(groups)
        assert analysis.quantile(0.5) in (30.0, 60.0)
        with pytest.raises(ValueError):
            analysis.quantile(1.5)
