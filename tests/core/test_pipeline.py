"""Integration tests: the full reproduction pipeline on a small world."""

import datetime as dt

import pytest

from repro.core.pipeline import ReproductionStudy, StudyConfig
from repro.netsim.network import NetworkType


@pytest.fixture(scope="module")
def study():
    return ReproductionStudy(StudyConfig.quick(seed=1))


class TestDynamicityStage:
    def test_flags_client_subnets(self, study):
        dynamic = set(study.dynamicity().dynamic_prefixes())
        assert "20.0.10.0/24" in dynamic  # Academic-A education
        assert "40.0.10.0/24" in dynamic  # ISP-A access

    def test_static_space_not_flagged(self, study):
        dynamic = set(study.dynamicity().dynamic_prefixes())
        assert "20.0.1.0/24" not in dynamic  # Academic-A servers

    def test_small_fraction_of_observed_is_dynamic(self, study):
        # Paper: 134,451 of 6,151,219 /24s (2.2%); our scaled world is
        # denser, but dynamic space stays a clear minority.
        report = study.dynamicity()
        assert 0 < report.dynamic_count < report.total_observed * 0.6

    def test_caching(self, study):
        assert study.dynamicity() is study.dynamicity()


class TestLeakStage:
    def test_carry_over_networks_identified(self, study):
        identified = study.leaks().identified
        assert "stateu.edu" in identified
        assert "techuni.ac.nl" in identified
        assert "metronet.net" in identified

    def test_fixed_form_isps_not_identified(self, study):
        # ISP-B/C are identified (they carry names); the background
        # count-backed space with template names is not.
        identified = study.leaks().identified
        assert not any(suffix.startswith("as6") for suffix in identified)

    def test_filtered_counts_below_all_counts(self, study):
        report = study.leaks()
        assert sum(report.filtered_name_counts.values()) <= sum(report.all_name_counts.values())
        assert report.all_name_counts["jacob"] >= report.filtered_name_counts.get("jacob", 0)

    def test_type_breakdown_includes_academic_majority(self, study):
        breakdown = study.type_breakdown()
        assert breakdown[NetworkType.ACADEMIC] >= max(
            value for key, value in breakdown.items() if key is not NetworkType.ACADEMIC
        )

    def test_single_derivation_pass(self, monkeypatch):
        # The leak stage must build its sample in one shared pass, not
        # re-walk records_on once per sample day.
        from repro.scan.snapshot import SnapshotSeries

        fresh = ReproductionStudy(StudyConfig.quick(seed=1))
        series = fresh.daily_series()
        calls = []
        original = SnapshotSeries.records_on
        monkeypatch.setattr(
            SnapshotSeries,
            "records_on",
            lambda self, day: calls.append(day) or original(self, day),
        )
        fresh.leaks()
        assert calls == []
        metrics = series.last_sample_metrics
        assert metrics is not None
        assert metrics.days == fresh.config.leak_sample_days
        assert metrics.unique_records <= metrics.raw_records

    def test_leak_report_identical_with_workers(self, study):
        parallel = ReproductionStudy(StudyConfig.quick(seed=1))
        parallel.config.snapshot_workers = 4
        assert parallel.leaks() == study.leaks()


class TestSupplementalStage:
    def test_groups_and_funnel_consistent(self, study):
        funnel = study.funnel()
        assert funnel.all_groups >= funnel.successful >= funnel.reverted >= funnel.reliable
        assert funnel.all_groups == len(study.groups())
        assert funnel.reliable == len(study.usable_groups())

    def test_lingering_dominated_by_first_hour(self, study):
        lingering = study.lingering()
        assert lingering.count > 0
        assert lingering.fraction_within(60) > 0.5

    def test_announced_prefix_map_covers_dynamic_24s(self, study):
        prefix_map = study.announced_prefix_map()
        covered = [
            prefix_map.covering(prefix) is not None
            for prefix in study.dynamicity().dynamic_prefixes()
        ]
        assert all(covered)


class TestConfig:
    def test_default_dates_match_paper(self):
        # Windows are half-open [start, end): the exclusive ends place
        # the last measured days at 2021-03-31 and 2021-12-05, the
        # paper's periods.
        config = StudyConfig()
        assert config.dynamicity_start == dt.date(2021, 1, 1)
        assert config.dynamicity_end == dt.date(2021, 4, 1)
        assert config.supplemental_start == dt.date(2021, 10, 25)
        assert config.supplemental_end == dt.date(2021, 12, 6)

    def test_world_injection(self, study):
        clone = ReproductionStudy(study.config, world=study.world)
        assert clone.world is study.world
