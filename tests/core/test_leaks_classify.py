"""Tests for the leak-identification pipeline and type classification."""

import ipaddress

import pytest

from repro.core import (
    GivenNameMatcher,
    LeakIdentifier,
    LeakThresholds,
    NetworkTypeClassifier,
)
from repro.netsim.network import NetworkType


def records_for(prefix, hostnames):
    base = ipaddress.IPv4Network(prefix).network_address
    return [
        (ipaddress.IPv4Address(int(base) + 10 + index), hostname)
        for index, hostname in enumerate(hostnames)
    ]


CAMPUS = records_for(
    "10.0.10.0/24",
    [
        "brians-iphone.campus.stateu.edu",
        "emmas-ipad.campus.stateu.edu",
        "jacobs-mbp.campus.stateu.edu",
        "olivias-dell-laptop.campus.stateu.edu",
        "noahs-android.campus.stateu.edu",
        "desktop-a1b2c3.campus.stateu.edu",
    ],
)

ROUTER_FARM = records_for(
    "11.0.1.0/24",
    [
        "xe-0-0-0.core1.jackson.bigisp.net",
        "xe-0-0-1.core1.jackson.bigisp.net",
        "ae1.edge1.madison.bigisp.net",
        "ge-0-1-0.border1.tyler.bigisp.net",
    ],
)

STATIC_VANITY = records_for(
    "12.0.1.0/24",
    ["brian-pc.smallcorp.com", "emma-ws.smallcorp.com"],
)


def identify(records, dynamic, min_unique=3, min_ratio=0.1):
    identifier = LeakIdentifier(
        GivenNameMatcher(),
        LeakThresholds(min_unique_names=min_unique, min_ratio=min_ratio),
    )
    return identifier.identify(records, dynamic)


class TestIdentification:
    def test_leaking_network_identified(self):
        report = identify(CAMPUS, {"10.0.10.0/24"})
        assert report.identified == ["stateu.edu"]
        stats = report.stats_for("stateu.edu")
        assert stats.unique_names == {"brian", "emma", "jacob", "olivia", "noah"}
        assert stats.records == 5  # the generic desktop record matches no name

    def test_static_network_not_identified(self):
        # Same name-rich records, but the /24 was never flagged dynamic.
        report = identify(STATIC_VANITY + CAMPUS, {"10.0.10.0/24"})
        assert report.identified == ["stateu.edu"]
        assert "smallcorp.com" not in report.suffix_stats

    def test_router_level_records_excluded(self):
        report = identify(ROUTER_FARM, {"11.0.1.0/24"})
        assert report.identified == []
        assert "bigisp.net" not in report.suffix_stats

    def test_city_confound_fails_ratio(self):
        # A non-router city-name farm: many records, one unique name.
        farm = records_for(
            "11.0.2.0/24", [f"host{i}.jackson.bigisp.net" for i in range(30)]
        )
        report = identify(farm, {"11.0.2.0/24"}, min_unique=1, min_ratio=0.1)
        stats = report.suffix_stats["bigisp.net"]
        assert stats.unique_name_count == 1
        assert stats.ratio < 0.1
        assert report.identified == []

    def test_unique_name_threshold(self):
        report = identify(CAMPUS, {"10.0.10.0/24"}, min_unique=6)
        assert report.identified == []


class TestFigureSeries:
    def test_all_matches_include_static_space(self):
        report = identify(CAMPUS + STATIC_VANITY, {"10.0.10.0/24"})
        assert report.all_name_counts["brian"] == 2  # campus + vanity
        assert report.filtered_name_counts["brian"] == 1  # campus only

    def test_filtered_counts_subset_of_all(self):
        report = identify(CAMPUS + STATIC_VANITY + ROUTER_FARM, {"10.0.10.0/24"})
        for name, count in report.filtered_name_counts.items():
            assert count <= report.all_name_counts[name]

    def test_device_terms_counted(self):
        report = identify(CAMPUS, {"10.0.10.0/24"})
        assert report.filtered_device_term_counts["iphone"] == 1
        assert report.filtered_device_term_counts["ipad"] == 1
        assert report.filtered_device_term_counts["dell"] == 1
        assert report.filtered_device_term_counts["laptop"] == 1
        assert report.filtered_device_term_counts["android"] == 1

    def test_multi_token_device_terms(self):
        records = records_for("10.0.10.0/24", ["brians-galaxy-note9.x.stateu.edu"] * 2)
        report = identify(records, {"10.0.10.0/24"}, min_unique=1)
        assert report.all_device_term_counts["galaxy"] == 2


class TestThresholdValidation:
    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            LeakThresholds(min_unique_names=0)
        with pytest.raises(ValueError):
            LeakThresholds(min_ratio=0)
        with pytest.raises(ValueError):
            LeakThresholds(min_ratio=1.5)


class TestClassifier:
    @pytest.fixture
    def classifier(self):
        return NetworkTypeClassifier()

    def test_academic_suffixes(self, classifier):
        assert classifier.classify("stateu.edu") is NetworkType.ACADEMIC
        assert classifier.classify("techuni.ac.nl") is NetworkType.ACADEMIC
        assert classifier.classify("campus-portal.example") is NetworkType.ACADEMIC

    def test_government(self, classifier):
        assert classifier.classify("state.gov") is NetworkType.GOVERNMENT
        assert classifier.classify("agency.gov.uk") is NetworkType.GOVERNMENT

    def test_isp(self, classifier):
        assert classifier.classify("metronet.net") is NetworkType.ISP
        assert classifier.classify("valley-isp.net") is NetworkType.ISP
        assert classifier.classify("coastal-broadband.net") is NetworkType.ISP

    def test_enterprise(self, classifier):
        assert classifier.classify("initech.com") is NetworkType.ENTERPRISE
        assert classifier.classify("big-corp.example") is NetworkType.ENTERPRISE

    def test_other(self, classifier):
        assert classifier.classify("club00.example") is NetworkType.OTHER

    def test_breakdown_percentages_sum_to_100(self, classifier):
        suffixes = ["stateu.edu", "initech.com", "metronet.net", "club.example"]
        percents = classifier.breakdown_percent(suffixes)
        assert sum(percents.values()) == pytest.approx(100.0)
        assert percents[NetworkType.ACADEMIC] == pytest.approx(25.0)

    def test_breakdown_empty(self, classifier):
        assert all(v == 0 for v in classifier.breakdown_percent([]).values())
