"""Tests for device tracking (Fig. 8) and occupancy analyses (Figs. 9-11)."""

import datetime as dt
import ipaddress

import pytest

from repro.core import DeviceTracker, HeistPlanner, relative_daily_presence
from repro.core.occupancy import crossover_dates, hourly_activity, subnet_presence_split
from repro.dns.resolver import ResolutionStatus
from repro.netsim.simtime import HOUR, from_date
from repro.scan.campaign import SupplementalDataset
from repro.scan.observations import IcmpObservation, RdnsObservation

DAY0 = dt.date(2021, 11, 1)


def sighting(day_offset, hour, label="brians-mbp", address="20.0.10.10", ok=True, network="Academic-A"):
    at = from_date(DAY0 + dt.timedelta(days=day_offset)) + hour * HOUR
    status = ResolutionStatus.NOERROR if ok else ResolutionStatus.NXDOMAIN
    return RdnsObservation(
        ipaddress.IPv4Address(address),
        at,
        status,
        f"{label}.campus.stateu.edu" if ok else "",
        network,
    )


class TestDeviceTracker:
    def test_track_selects_name_carrying_labels(self):
        observations = [
            sighting(0, 12),
            sighting(0, 13, label="emmas-ipad", address="20.0.10.11"),
        ]
        devices = DeviceTracker(observations).track("brian")
        assert set(devices) == {"brians-mbp"}
        assert devices["brians-mbp"].sightings

    def test_failed_lookups_ignored(self):
        devices = DeviceTracker([sighting(0, 12, ok=False)]).track("brian")
        assert devices == {}

    def test_network_filter(self):
        observations = [
            sighting(0, 12),
            sighting(0, 12, network="Academic-C", address="22.0.10.10"),
        ]
        devices = DeviceTracker(observations).track("brian", network="Academic-A")
        assert len(devices["brians-mbp"].sightings) == 1

    def test_presence_matrix_shape(self):
        observations = [sighting(0, 12), sighting(2, 12)]
        matrix = DeviceTracker(observations).presence_matrix("brian", DAY0, 4)
        assert matrix["brians-mbp"] == [True, False, True, False]

    def test_presence_matrix_with_fixed_labels(self):
        matrix = DeviceTracker([sighting(0, 12)]).presence_matrix(
            "brian", DAY0, 2, labels=["brians-mbp", "brians-phone"]
        )
        assert matrix["brians-phone"] == [False, False]

    def test_stable_address_tracking(self):
        observations = [sighting(0, 12), sighting(1, 12), sighting(2, 12, address="20.0.10.99")]
        device = DeviceTracker(observations).track("brian")["brians-mbp"]
        assert [str(a) for a in device.addresses()] == ["20.0.10.10", "20.0.10.99"]

    def test_new_device_appearances_ordered(self):
        observations = [
            sighting(0, 12, label="brians-mbp"),
            sighting(3, 15, label="brians-galaxy-note9", address="20.0.10.30"),
        ]
        appearances = DeviceTracker(observations).new_device_appearances("brian")
        assert [label for label, _ in appearances] == ["brians-mbp", "brians-galaxy-note9"]
        assert appearances[1][1] == from_date(DAY0 + dt.timedelta(days=3)) + 15 * HOUR


class FakeSeries:
    """A minimal SnapshotSeries stand-in for occupancy tests."""

    def __init__(self, counts_by_day):
        self._counts = counts_by_day

    @property
    def days(self):
        return sorted(self._counts)

    def counts_by_slash24(self, day):
        return self._counts[day]


class TestRelativePresence:
    def test_percent_of_max(self):
        series = FakeSeries(
            {
                DAY0: {"20.0.10.0/24": 100},
                DAY0 + dt.timedelta(days=1): {"20.0.10.0/24": 50},
            }
        )
        presence = relative_daily_presence(series, ["20.0.0.0/16"])
        assert presence[DAY0] == 100.0
        assert presence[DAY0 + dt.timedelta(days=1)] == 50.0

    def test_prefix_filtering(self):
        series = FakeSeries({DAY0: {"20.0.10.0/24": 100, "30.0.10.0/24": 900}})
        presence = relative_daily_presence(series, ["20.0.0.0/16"])
        assert presence[DAY0] == 100.0

    def test_empty_series(self):
        series = FakeSeries({DAY0: {}})
        assert relative_daily_presence(series, ["20.0.0.0/16"]) == {DAY0: 0.0}

    def test_subnet_split_normalises_per_group(self):
        series = FakeSeries(
            {
                DAY0: {"22.0.10.0/24": 200, "22.0.20.0/24": 40},
                DAY0 + dt.timedelta(days=1): {"22.0.10.0/24": 100, "22.0.20.0/24": 80},
            }
        )
        split = subnet_presence_split(
            series,
            {"education": ["22.0.10.0/24"], "housing": ["22.0.20.0/24"]},
        )
        assert split["education"][DAY0] == 100.0
        assert split["housing"][DAY0 + dt.timedelta(days=1)] == 100.0

    def test_crossover_detection(self):
        d1, d2, d3 = DAY0, DAY0 + dt.timedelta(days=1), DAY0 + dt.timedelta(days=2)
        education = {d1: 100.0, d2: 60.0, d3: 40.0}
        housing = {d1: 70.0, d2: 65.0, d3: 90.0}
        crossings = crossover_dates(education, housing)
        assert crossings == [d2]


def heist_dataset():
    icmp, rdns = [], []
    for day_offset in range(3):  # Mon-Wed
        day_ts = from_date(DAY0 + dt.timedelta(days=day_offset))
        for hour in range(24):
            # Diurnal: busy at 14:00, quiet at 06:00.
            active = 2 if hour == 6 else (20 if hour == 14 else 8)
            for index in range(active):
                address = ipaddress.IPv4Address(f"20.0.10.{10 + index}")
                at = day_ts + hour * HOUR + 60
                icmp.append(IcmpObservation(address, at, "Academic-A"))
                rdns.append(
                    RdnsObservation(
                        address, at, ResolutionStatus.NOERROR,
                        f"host{index}.campus.stateu.edu", "Academic-A",
                    )
                )
    return SupplementalDataset(
        start=DAY0,
        end=DAY0 + dt.timedelta(days=3),
        icmp=icmp,
        rdns=rdns,
        targets_by_network={"Academic-A": ["20.0.10.0/24"]},
        network_types={},
    )


class TestHeistPlanner:
    def test_hourly_activity_counts_distinct_addresses(self):
        dataset = heist_dataset()
        icmp_hours, rdns_hours = hourly_activity(dataset, "Academic-A")
        noon_peak = from_date(DAY0) + 14 * HOUR
        assert icmp_hours[noon_peak] == 20
        assert rdns_hours[noon_peak] == 20

    def test_recommends_quietest_hour(self):
        planner = HeistPlanner(heist_dataset(), "Academic-A")
        plan = planner.plan(source="rdns")
        assert plan.hour_of_day == 6
        assert plan.average_activity == pytest.approx(2.0)

    def test_icmp_source_agrees(self):
        planner = HeistPlanner(heist_dataset(), "Academic-A")
        assert planner.plan(source="icmp").hour_of_day == 6

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            HeistPlanner(heist_dataset(), "Academic-A").plan(source="carrier-pigeon")

    def test_missing_network_raises(self):
        with pytest.raises(ValueError):
            HeistPlanner(heist_dataset(), "Enterprise-B").plan()

    def test_activity_by_hour_complete(self):
        plan = HeistPlanner(heist_dataset(), "Academic-A").plan()
        assert set(plan.activity_by_hour) == set(range(24))


class TestCrossNetworkTracking:
    def test_label_seen_in_two_networks_detected(self):
        observations = [
            sighting(0, 12, label="brians-galaxy-note9", network="Academic-A"),
            sighting(1, 20, label="brians-galaxy-note9", address="40.0.10.30", network="ISP-A"),
            sighting(0, 9, label="brians-mbp", network="Academic-A"),
        ]
        tracker = DeviceTracker(observations)
        cross = tracker.cross_network_sightings("brian")
        assert set(cross) == {"brians-galaxy-note9"}
        assert set(cross["brians-galaxy-note9"]) == {"Academic-A", "ISP-A"}

    def test_single_network_labels_excluded(self):
        tracker = DeviceTracker([sighting(0, 12), sighting(1, 12)])
        assert tracker.cross_network_sightings("brian") == {}

    def test_sightings_sorted_within_network(self):
        observations = [
            sighting(2, 12, label="brians-air", network="Academic-A"),
            sighting(0, 12, label="brians-air", network="Academic-A"),
            sighting(1, 12, label="brians-air", address="40.0.10.9", network="ISP-A"),
        ]
        cross = DeviceTracker(observations).cross_network_sightings("brian")
        times = [at for at, _ in cross["brians-air"]["Academic-A"].sightings]
        assert times == sorted(times)
