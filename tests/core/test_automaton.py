"""Aho-Corasick matcher: equivalence with the naive substring loop."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.automaton import AhoCorasick, naive_find_unique
from repro.core.names import GivenNameMatcher
from repro.datasets.names import TOP_GIVEN_NAMES

pattern = st.text(alphabet="abcdef-", min_size=1, max_size=8)
text = st.text(alphabet="abcdef-.0123456789", max_size=40)


class TestAutomatonBasics:
    def test_single_pattern(self):
        automaton = AhoCorasick(["brian"])
        assert automaton.find_unique("brians-iphone.campus.edu") == {"brian"}
        assert automaton.find_unique("no-match-here") == set()

    def test_overlapping_and_nested_patterns(self):
        # The paper's confound: 'jacksonville' contains both names.
        automaton = AhoCorasick(["jackson", "jack", "ville"])
        assert automaton.find_unique("jacksonville") == {"jackson", "jack", "ville"}

    def test_duplicate_patterns_deduplicated(self):
        automaton = AhoCorasick(["ann", "ann"])
        assert automaton.patterns == ("ann",)
        assert automaton.find_unique("joanne") == {"ann"}

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            AhoCorasick(["ok", ""])
        with pytest.raises(ValueError):
            AhoCorasick([])

    def test_contains_any_early_exit(self):
        automaton = AhoCorasick(["xyz", "abc"])
        assert automaton.contains_any("zzabczz")
        assert not automaton.contains_any("zz-bc-zz")

    def test_iter_matches_reports_positions(self):
        automaton = AhoCorasick(["ana"])
        # Overlapping occurrences are all reported.
        assert list(automaton.iter_matches("banana")) == [(3, "ana"), (5, "ana")]

    def test_pattern_sharing_prefixes(self):
        automaton = AhoCorasick(["brian", "bri", "ian", "an"])
        assert automaton.find_unique("brian") == {"brian", "bri", "ian", "an"}


class TestNaiveEquivalence:
    @given(patterns=st.lists(pattern, min_size=1, max_size=20), haystack=text)
    @settings(max_examples=300, deadline=None)
    def test_matches_naive_on_random_inputs(self, patterns, haystack):
        automaton = AhoCorasick(patterns)
        assert automaton.find_unique(haystack) == set(naive_find_unique(patterns, haystack))
        assert automaton.contains_any(haystack) == bool(naive_find_unique(patterns, haystack))

    def test_matches_naive_on_random_hostnames_full_name_list(self):
        rng = random.Random(20220901)
        names = [name.lower() for name in TOP_GIVEN_NAMES if len(name) >= 3]
        automaton = AhoCorasick(names)
        pieces = names + ["laptop", "iphone", "router", "dyn", "rev", "x1"]
        for _ in range(200):
            hostname = "-".join(rng.sample(pieces, rng.randint(1, 4))) + ".campus.example.edu"
            assert automaton.find_unique(hostname) == set(naive_find_unique(names, hostname))


class TestGivenNameMatcherSemantics:
    def test_jacksonville_longest_first(self):
        matcher = GivenNameMatcher(["jack", "jackson", "ville"])
        assert matcher.match("jacksonville.city.example.net") == {"jack", "jackson", "ville"}
        assert matcher.first_match("jacksonville.city.example.net") == "jackson"

    def test_full_name_list_unchanged_vs_naive(self):
        matcher = GivenNameMatcher()
        hostnames = [
            "brians-iphone.campus.stateu.edu",
            "jacksonville-gw.router.example.net",
            "marias-macbook-pro.office.globex.com",
            "DESKTOP-A1B2C3.corp.initech.com",
            "christophers-galaxy-note9.dorm.college.edu",
            "no-names-at-all.example",
        ]
        for hostname in hostnames:
            naive = set(naive_find_unique(matcher.names, hostname.lower()))
            assert matcher.match(hostname) == naive
            assert matcher.matches(hostname) == bool(naive)
        counted = matcher.count_matches(hostnames)
        assert counted["brian"] == 1
        assert counted["jackson"] == 1

    def test_first_match_deterministic_on_length_ties(self):
        matcher = GivenNameMatcher(["dana", "anna"])
        # Both four-letter names occur; the alphabetical tiebreak wins.
        assert matcher.first_match("dananna-box") == "anna"
