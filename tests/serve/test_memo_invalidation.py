"""Memo invalidation on ingest (regression).

Every derived report is memoised against the series length
(``day_count``); ``POST /ingest/day`` grows the series, so *all four*
read surfaces — per-prefix dynamicity, ``/leaks``, ``/names``,
``/occupancy`` — must recompute on the next GET.  A memo keyed on
anything that does not change with ingest (object identity,
wall-clock, thresholds) would serve the pre-ingest payload here.
"""

import json


def get(app, path, query=None):
    status, payload = app.dispatch("GET", path, query=query)
    assert status == 200
    return payload


def ingest_next_day(app):
    day = app.services.dynamicity.snapshots.next_day
    status, payload = app.dispatch(
        "POST", "/ingest/day", body=json.dumps({"day": day.isoformat()}).encode()
    )
    assert status == 200
    return day, payload


def some_prefix(app):
    return next(iter(app.services.dynamicity.snapshots.prefix_table()))


class TestIngestInvalidatesEveryMemo:
    def test_all_read_endpoints_reflect_the_new_day(self, app):
        before_days = app.services.dynamicity.snapshots.day_count
        prefix = some_prefix(app)
        before = {
            "dynamicity": get(app, f"/prefix/{prefix}/dynamicity"),
            "leaks": get(app, "/leaks"),
            "names": get(app, "/names"),
            "occupancy": get(app, "/occupancy"),
        }
        assert before["dynamicity"]["days"] == before_days

        day, ingest_payload = ingest_next_day(app)
        assert ingest_payload["days"] == before_days + 1

        after = {
            "dynamicity": get(app, f"/prefix/{prefix}/dynamicity"),
            "leaks": get(app, "/leaks"),
            "names": get(app, "/names"),
            "occupancy": get(app, "/occupancy"),
        }

        # Day-count bookkeeping advanced everywhere it is reported.
        assert after["dynamicity"]["days"] == before_days + 1

        # The leak/name sample window slid onto the ingested day.
        assert after["leaks"]["sample_days"][-1] == day.isoformat()
        assert before["leaks"]["sample_days"][-1] != day.isoformat()
        assert after["names"]["sample_days"][-1] == day.isoformat()

        # Occupancy gained exactly the ingested day.
        assert after["occupancy"]["days"][-1] == day.isoformat()
        assert day.isoformat() not in before["occupancy"]["days"]
        assert len(after["occupancy"]["days"]) == before_days + 1

    def test_three_consecutive_ingests_never_serve_stale_days(self, app):
        prefix = some_prefix(app)
        for _ in range(3):
            before = app.services.dynamicity.snapshots.day_count
            day, _ = ingest_next_day(app)
            assert get(app, f"/prefix/{prefix}/dynamicity")["days"] == before + 1
            assert get(app, "/leaks")["sample_days"][-1] == day.isoformat()
            assert get(app, "/names")["sample_days"][-1] == day.isoformat()
            assert get(app, "/occupancy")["days"][-1] == day.isoformat()

    def test_healthz_day_count_tracks_ingest(self, app):
        before = get(app, "/healthz")
        day, _ = ingest_next_day(app)
        after = get(app, "/healthz")
        assert after["days"] == before["days"] + 1
        assert after["last_day"] == day.isoformat()
