"""The incremental-ingest contract (acceptance criterion).

``POST /ingest/day`` responses must be bit-identical to a full
recompute via :class:`~repro.core.dynamicity.DynamicityAnalyzer` over
the extended series — both rendered through the same
:func:`~repro.serve.services.dynamicity_summary` and compared as
sorted-key JSON, so "bit-identical" means identical response bytes.
"""

import datetime as dt
import json

from repro.core.dynamicity import DynamicityAnalyzer
from repro.scan.snapshot import SnapshotCollector, derive_day
from repro.serve.services import dynamicity_summary


def batch_summary(world, config, end_exclusive):
    collector = SnapshotCollector.openintel_style(world.internet)
    extended = collector.collect(config.dynamicity_start, end_exclusive)
    report = DynamicityAnalyzer(config.dynamicity_thresholds).analyze(extended)
    return extended, dynamicity_summary(report)


class TestIngestParity:
    def test_three_ingested_days_match_batch_recompute(
        self, app, quick_world, quick_config
    ):
        for _ in range(3):
            day = app.services.dynamicity.snapshots.next_day
            status, payload = app.dispatch(
                "POST",
                "/ingest/day",
                body=json.dumps({"day": day.isoformat()}).encode(),
            )
            assert status == 200

            extended, expected = batch_summary(
                quick_world, quick_config, day + dt.timedelta(days=1)
            )
            assert json.dumps(payload["dynamicity"], sort_keys=True) == json.dumps(
                expected, sort_keys=True
            )
            assert payload["days"] == len(extended)
            assert payload["day_responses"] == extended.daily_totals()[day]

    def test_prefix_verdicts_match_batch_after_ingest(
        self, app, quick_world, quick_config
    ):
        day = app.services.dynamicity.snapshots.next_day
        app.dispatch(
            "POST", "/ingest/day", body=json.dumps({"day": day.isoformat()}).encode()
        )
        extended, _ = batch_summary(quick_world, quick_config, day + dt.timedelta(days=1))
        batch = DynamicityAnalyzer(quick_config.dynamicity_thresholds).analyze(extended)
        for prefix, info in batch.prefixes.items():
            status, payload = app.dispatch(
                "GET", f"/prefix/{prefix}/dynamicity", query=None
            )
            assert status == 200
            assert payload["is_dynamic"] == info.is_dynamic
            assert payload["change_days"] == info.change_days
            assert payload["max_daily"] == info.max_daily

    def test_explicit_counts_match_derived_ingest(
        self, quick_world, quick_config, series_payload
    ):
        from repro.scan.snapshot import SnapshotSeries
        from tests.serve.conftest import build_quick_app

        def pristine_series():
            return SnapshotSeries.from_payload(series_payload, quick_world.internet)

        derived_app = build_quick_app(quick_world, pristine_series(), quick_config)
        day = derived_app.services.dynamicity.snapshots.next_day
        status, derived = derived_app.dispatch(
            "POST", "/ingest/day", body=json.dumps({"day": day.isoformat()}).encode()
        )
        assert status == 200

        counts, _ = derive_day(quick_world.internet, None, day, 12 * 3600)
        explicit_app = build_quick_app(quick_world, pristine_series(), quick_config)
        status, explicit = explicit_app.dispatch(
            "POST",
            "/ingest/day",
            body=json.dumps({"day": day.isoformat(), "counts": counts}).encode(),
        )
        assert status == 200
        assert json.dumps(explicit["dynamicity"], sort_keys=True) == json.dumps(
            derived["dynamicity"], sort_keys=True
        )
