"""End-to-end tests over a real socket (ServerThread + http.client)."""

import http.client
import json

import pytest

from repro.serve import ServerThread


@pytest.fixture
def server(app):
    with ServerThread(app) as thread:
        yield thread


def request(server, method, target, body=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        connection.request(method, target, body=body, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["days"] == 21
        assert payload["next_day"] == "2021-01-22"

    def test_prefix_dynamicity_with_encoded_slash(self, app, server):
        prefix = app.services.dynamicity.snapshots.prefix_table().values[0]
        encoded = prefix.replace("/", "%2F")
        status, payload = request(server, "GET", f"/prefix/{encoded}/dynamicity")
        assert status == 200
        assert payload["prefix"] == prefix
        # The literal-slash spelling resolves to the same verdict.
        status2, payload2 = request(server, "GET", f"/prefix/{prefix}/dynamicity")
        assert status2 == 200
        assert payload2 == payload

    def test_leaks(self, server):
        status, payload = request(server, "GET", "/leaks")
        assert status == 200
        assert "stateu.edu" in payload["identified"]
        status, payload = request(server, "GET", "/leaks?suffix=stateu.edu")
        assert status == 200
        assert payload["identified"] is True

    def test_names(self, server):
        status, payload = request(server, "GET", "/names?top=5")
        assert status == 200
        assert len(payload["names"]["all"]) == 5
        assert payload["device_terms"]["all"]

    def test_occupancy_daily_and_hourly(self, server):
        status, payload = request(server, "GET", "/occupancy")
        assert status == 200
        assert payload["scope"] == "daily"
        assert len(payload["totals"]) == 21
        status, payload = request(
            server, "GET", "/occupancy?network=Academic-C&source=rdns"
        )
        assert status == 200
        assert payload["scope"] == "hourly"
        assert payload["hours"]

    def test_ingest_day_extends_window(self, server):
        body = json.dumps({"day": "2021-01-22"})
        status, payload = request(server, "POST", "/ingest/day", body)
        assert status == 200
        assert payload["days"] == 22
        status, payload = request(server, "GET", "/healthz")
        assert payload["days"] == 22
        assert payload["next_day"] == "2021-01-23"

    def test_metrics_manifest_shape(self, server):
        request(server, "GET", "/leaks")
        status, payload = request(server, "GET", "/metrics")
        assert status == 200
        counters = payload["metrics"]["counters"]
        assert "serve_requests_total" in counters
        assert any(
            name.startswith("serve_request_seconds_")
            for name in payload["metrics"]["histograms"]
        )
        assert "serve_inflight_high_water" in payload["metrics"]["gauges"]


class TestErrorPaths:
    def test_unknown_route_is_404(self, server):
        status, payload = request(server, "GET", "/nope")
        assert status == 404
        assert "error" in payload

    def test_wrong_method_is_405(self, server):
        status, payload = request(server, "POST", "/leaks")
        assert status == 405
        assert "GET" in payload["error"]

    def test_bad_prefix_is_400(self, server):
        status, payload = request(server, "GET", "/prefix/banana/dynamicity")
        assert status == 400

    def test_unobserved_prefix_is_404(self, server):
        status, payload = request(server, "GET", "/prefix/203.0.113.0/dynamicity")
        assert status == 404

    def test_ingest_bad_json_is_400(self, server):
        status, payload = request(server, "POST", "/ingest/day", "{torn")
        assert status == 400

    def test_ingest_missing_day_is_400(self, server):
        status, payload = request(server, "POST", "/ingest/day", "{}")
        assert status == 400

    def test_ingest_wrong_cadence_is_409(self, server):
        body = json.dumps({"day": "2021-02-15"})
        status, payload = request(server, "POST", "/ingest/day", body)
        assert status == 409
        assert payload["expected_day"] == "2021-01-22"


class TestKeepAlive:
    def test_two_requests_on_one_connection(self, server):
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request("GET", "/healthz")
            first = connection.getresponse()
            assert first.status == 200
            first.read()
            connection.request("GET", "/leaks")
            second = connection.getresponse()
            assert second.status == 200
            second.read()
        finally:
            connection.close()

    def test_request_counter_labels_by_endpoint_and_status(self, app, server):
        request(server, "GET", "/healthz")
        request(server, "GET", "/nope")
        metrics = app.obs.metrics
        assert metrics.value(
            "serve_requests_total", {"endpoint": "healthz", "status": "200"}
        ) >= 1
        assert metrics.value(
            "serve_requests_total", {"endpoint": "unknown", "status": "404"}
        ) >= 1
