"""Blockfile-backed serve mode: boot write, parity, append-on-ingest.

With ``blockfile_path`` set, :class:`SnapshotRepository` re-homes the
series onto an mmap-backed blockfile at boot and extends it on every
``POST /ingest/day``.  Reads must stay byte-identical to the in-memory
repository before *and* after ingest, the file must strictly grow
(append-only, no rewrite), and the sidecar must stay fully verifiable.
"""

import json

from repro.scan.blockfile import BlockFileReader
from repro.scan.snapshot import SnapshotSeries
from repro.serve import SnapshotRepository
from tests.serve.conftest import build_quick_app


def build_blockfile_app(world, series, config, path):
    app = build_quick_app(world, series, config)
    # Re-home the freshly built repository onto the blockfile: same
    # wiring as ``build_app(config.serve_blockfile)``, without a second
    # campaign replay.
    snapshots = app.services.dynamicity.snapshots
    snapshots._attach_blockfile(path)
    return app


def dispatch_json(app, method, route, body=None):
    status, payload = app.dispatch(
        method, route, body=json.dumps(body).encode() if body is not None else None
    )
    assert status == 200
    return payload


READ_ROUTES = ["/healthz", "/leaks", "/names", "/occupancy"]


class TestBlockfileMode:
    def test_boot_writes_verifiable_blockfile(
        self, quick_world, fresh_series, quick_config, tmp_path
    ):
        path = tmp_path / "serve.rbf"
        app = build_blockfile_app(quick_world, fresh_series, quick_config, path)
        snapshots = app.services.dynamicity.snapshots
        assert snapshots.blockfile_path == path
        with BlockFileReader.open(path) as reader:
            reader.verify()
            assert reader.days == [day.toordinal() for day in fresh_series.days]
        # The live matrix is the mapped view, not the heap original.
        assert fresh_series.count_matrix()._source is not None

    def test_read_parity_with_in_memory_mode(
        self, quick_world, series_payload, quick_config, tmp_path
    ):
        def series():
            return SnapshotSeries.from_payload(series_payload, quick_world.internet)

        memory_app = build_quick_app(quick_world, series(), quick_config)
        mapped_app = build_blockfile_app(
            quick_world, series(), quick_config, tmp_path / "serve.rbf"
        )
        for route in READ_ROUTES:
            expected = dispatch_json(memory_app, "GET", route)
            actual = dispatch_json(mapped_app, "GET", route)
            assert json.dumps(actual, sort_keys=True) == json.dumps(
                expected, sort_keys=True
            ), route

    def test_ingest_appends_and_stays_in_parity(
        self, quick_world, series_payload, quick_config, tmp_path
    ):
        def series():
            return SnapshotSeries.from_payload(series_payload, quick_world.internet)

        path = tmp_path / "serve.rbf"
        memory_app = build_quick_app(quick_world, series(), quick_config)
        mapped_app = build_blockfile_app(quick_world, series(), quick_config, path)

        sizes = [path.stat().st_size]
        for _ in range(2):
            day = mapped_app.services.dynamicity.snapshots.next_day
            body = {"day": day.isoformat()}
            expected = dispatch_json(memory_app, "POST", "/ingest/day", body)
            actual = dispatch_json(mapped_app, "POST", "/ingest/day", body)
            assert json.dumps(actual, sort_keys=True) == json.dumps(
                expected, sort_keys=True
            )
            sizes.append(path.stat().st_size)

        # Append-only: the file strictly grows by whole segments.
        assert sizes == sorted(set(sizes))
        with BlockFileReader.open(path) as reader:
            reader.verify()
            assert len(reader.days) == len(
                mapped_app.services.dynamicity.snapshots.days
            )

        # Post-ingest reads still match the in-memory app.
        for route in READ_ROUTES:
            expected = dispatch_json(memory_app, "GET", route)
            actual = dispatch_json(mapped_app, "GET", route)
            assert json.dumps(actual, sort_keys=True) == json.dumps(
                expected, sort_keys=True
            ), route

    def test_repository_remap_closes_previous_reader(
        self, quick_world, fresh_series, quick_config, tmp_path
    ):
        path = tmp_path / "serve.rbf"
        repo = SnapshotRepository(fresh_series, blockfile_path=path)
        first_reader = repo._reader
        day = repo.next_day
        repo.append_derived_day(day)
        assert repo._reader is not first_reader
        assert first_reader._mmap is None  # closed by the remap
