"""Unit tests for the serve repositories and services."""

import datetime as dt

import pytest

from repro.core.dynamicity import DynamicityAnalyzer
from repro.serve import (
    SnapshotRepository,
    ServiceError,
    dynamicity_summary,
    normalise_slash24,
)


class TestNormaliseSlash24:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("192.0.2.0", "192.0.2.0/24"),
            ("192.0.2.0/24", "192.0.2.0/24"),
            ("192.0.2.177", "192.0.2.0/24"),
            (" 10.1.2.3 ", "10.1.2.0/24"),
        ],
    )
    def test_accepts_addresses_and_prefixes(self, text, expected):
        assert normalise_slash24(text) == expected

    @pytest.mark.parametrize("text", ["192.0.2.0/23", "192.0.2.0/25", "nope", ""])
    def test_rejects_non_slash24(self, text):
        with pytest.raises(ValueError):
            normalise_slash24(text)


class TestSnapshotRepository:
    def test_window_properties(self, fresh_series):
        repo = SnapshotRepository(fresh_series)
        assert repo.day_count == len(fresh_series)
        assert repo.cadence_days == 1
        assert repo.next_day == repo.days[-1] + dt.timedelta(days=1)

    def test_history_matches_counts(self, fresh_series):
        repo = SnapshotRepository(fresh_series)
        prefix = repo.prefix_table().values[0]
        history = repo.history(prefix)
        assert len(history) == repo.day_count
        expected = [repo.counts_view(day).get(prefix, 0) for day in repo.days]
        assert history == expected

    def test_history_of_unknown_prefix_is_none(self, fresh_series):
        repo = SnapshotRepository(fresh_series)
        assert repo.history("203.0.113.0/24") is None


class TestDynamicityService:
    def test_summary_matches_batch_analyzer(self, app, fresh_series, quick_config):
        batch = DynamicityAnalyzer(quick_config.dynamicity_thresholds).analyze(
            fresh_series
        )
        assert app.services.dynamicity.summary() == dynamicity_summary(batch)

    def test_prefix_payload_carries_verdict(self, app, quick_config):
        report = app.services.dynamicity.report()
        dynamic = report.dynamic_prefixes()
        assert dynamic, "quick world should flag dynamic prefixes"
        payload = app.services.dynamicity.prefix_payload(dynamic[0])
        assert payload["is_dynamic"] is True
        assert payload["eligible"] is True
        assert payload["change_days"] >= report.effective_min_change_transitions

    def test_prefix_payload_includes_history_on_request(self, app):
        prefix = app.services.dynamicity.snapshots.prefix_table().values[0]
        payload = app.services.dynamicity.prefix_payload(prefix, include_history=True)
        assert len(payload["history"]["counts"]) == payload["days"]
        assert payload["history"]["days"][0] == "2021-01-01"

    def test_unknown_prefix_is_404_with_detail(self, app):
        with pytest.raises(ServiceError) as excinfo:
            app.services.dynamicity.prefix_payload("203.0.113.0/24")
        assert excinfo.value.status == 404
        assert "observed_prefixes" in excinfo.value.detail

    def test_report_is_memoised_until_ingest(self, app):
        metrics = app.obs.metrics
        app.services.dynamicity.report()
        app.services.dynamicity.report()
        assert metrics.value(
            "serve_report_cache_total", {"report": "dynamicity", "outcome": "miss"}
        ) == 1
        assert metrics.value(
            "serve_report_cache_total", {"report": "dynamicity", "outcome": "hit"}
        ) == 1
        day = app.services.dynamicity.snapshots.next_day
        app.services.dynamicity.ingest(day)
        app.services.dynamicity.report()
        assert metrics.value(
            "serve_report_cache_total", {"report": "dynamicity", "outcome": "miss"}
        ) == 2

    def test_ingest_rejects_cadence_gap_without_mutating(self, app):
        service = app.services.dynamicity
        before = service.snapshots.day_count
        bad_day = service.snapshots.next_day + dt.timedelta(days=5)
        with pytest.raises(ServiceError) as excinfo:
            service.ingest(bad_day)
        assert excinfo.value.status == 409
        assert service.snapshots.day_count == before
        # The analyzer did not diverge either: the next valid ingest works.
        summary = service.ingest(service.snapshots.next_day)
        assert summary["days"] == before + 1

    def test_ingest_rejects_negative_counts(self, app):
        service = app.services.dynamicity
        with pytest.raises(ServiceError) as excinfo:
            service.ingest(service.snapshots.next_day, {"192.0.2.0/24": -1})
        assert excinfo.value.status == 400


class TestLeakService:
    def test_payload_identifies_quick_world_leaks(self, app):
        payload = app.services.leaks.payload()
        assert "stateu.edu" in payload["identified"]
        stats = payload["suffixes"]["stateu.edu"]
        assert stats["identified"] is True
        assert stats["unique_names"] >= 3

    def test_suffix_drilldown_and_404(self, app):
        payload = app.services.leaks.payload(suffix="stateu.edu")
        assert payload["suffix"] == "stateu.edu"
        assert payload["identified"] is True
        with pytest.raises(ServiceError) as excinfo:
            app.services.leaks.payload(suffix="never.example")
        assert excinfo.value.status == 404

    def test_sample_window_is_trailing_days(self, app, quick_config):
        window = app.services.leaks.sample_window()
        assert len(window) == quick_config.leak_sample_days
        assert window[-1] == "2021-01-21"


class TestNamesService:
    def test_top_truncates_rankings(self, app):
        payload = app.services.names.payload(top=3)
        assert len(payload["names"]["all"]) == 3
        full = app.services.names.payload()
        assert payload["names"]["all"] == full["names"]["all"][:3]

    def test_rankings_sorted_by_count_then_name(self, app):
        ranked = app.services.names.payload()["names"]["all"]
        keys = [(-count, name) for name, count in ranked]
        assert keys == sorted(keys)

    def test_rejects_non_positive_top(self, app):
        with pytest.raises(ServiceError):
            app.services.names.payload(top=0)


class TestOccupancyService:
    def test_daily_totals_match_series(self, app, fresh_series):
        payload = app.services.occupancy.daily_payload()
        totals = fresh_series.daily_totals()
        assert payload["totals"] == [totals[day] for day in sorted(totals)]
        assert payload["peak"] == max(totals.values())
        assert max(payload["relative_percent"]) == 100.0

    def test_prefix_scoped_daily(self, app):
        prefix = app.services.occupancy.snapshots.prefix_table().values[0]
        payload = app.services.occupancy.daily_payload(prefix=prefix)
        assert payload["prefix"] == prefix
        assert payload["totals"] == app.services.occupancy.snapshots.history(prefix)

    def test_hourly_unknown_network_is_404(self, app):
        with pytest.raises(ServiceError) as excinfo:
            app.services.occupancy.hourly_payload("No-Such-Network")
        assert excinfo.value.status == 404
        assert excinfo.value.detail["networks"]

    def test_hourly_bad_source_is_400(self, app):
        with pytest.raises(ServiceError) as excinfo:
            app.services.occupancy.hourly_payload("Academic-C", source="sonar")
        assert excinfo.value.status == 400
