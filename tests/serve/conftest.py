"""Shared fixtures for the query-service tests.

The quick world and its collected dynamicity window are expensive
relative to a unit test, so they are built once per session; each test
that mutates service state (ingest) gets a *fresh* series rebuilt from
the cached payload — `SnapshotSeries.from_payload` is cheap and
bit-identical to the original collection.
"""

import pytest

from repro.core.pipeline import StudyConfig
from repro.netsim.internet import build_world
from repro.obs import Observability
from repro.scan.snapshot import SnapshotCollector, SnapshotSeries
from repro.serve import (
    CampaignRepository,
    ServeApp,
    ServeServices,
    SnapshotRepository,
)


@pytest.fixture(scope="session")
def quick_config():
    return StudyConfig.quick(1)


@pytest.fixture(scope="session")
def quick_world(quick_config):
    return build_world(seed=quick_config.seed, scale=quick_config.scale)


@pytest.fixture(scope="session")
def series_payload(quick_world, quick_config):
    collector = SnapshotCollector.openintel_style(quick_world.internet)
    series = collector.collect(
        quick_config.dynamicity_start, quick_config.dynamicity_end
    )
    return series.to_payload()


@pytest.fixture
def fresh_series(quick_world, series_payload):
    return SnapshotSeries.from_payload(series_payload, quick_world.internet)


def build_quick_app(world, series, config, *, obs=None) -> ServeApp:
    obs = obs or Observability()
    snapshots = SnapshotRepository(series)
    campaigns = CampaignRepository(
        world, start=config.supplemental_start, end=config.supplemental_end
    )
    services = ServeServices.build(
        snapshots,
        campaigns,
        dynamicity_thresholds=config.dynamicity_thresholds,
        leak_thresholds=config.leak_thresholds,
        leak_sample_days=config.leak_sample_days,
        obs=obs,
    )
    return ServeApp(services, obs=obs)


@pytest.fixture
def app(quick_world, fresh_series, quick_config):
    return build_quick_app(quick_world, fresh_series, quick_config)
