"""Concurrent legacy→v4 cache migration (two readers, one entry).

The collector migrates a legacy (v2 dict-shaped or v3 inline-columnar)
cache entry in place on read: decode, then rewrite as a v4 blockfile
pair.  Two processes can race that rewrite on a shared cache root;
because both halves of the store path are
write-temp-then-``os.replace`` (sidecar first, JSON as the commit
point), both readers must decode correctly and the root must end up
with exactly one valid v4 pair — no torn rewrite, no leaked ``*.tmp``.
"""

import datetime as dt
import threading

from repro.netsim.internet import WorldScale, build_world
from repro.scan.cache import SnapshotCache
from repro.scan.snapshot import SnapshotCollector, legacy_dict_payload

START = dt.date(2021, 1, 1)
END = dt.date(2021, 1, 8)
SEED = 7


def collect(world, cache=None):
    collector = SnapshotCollector.openintel_style(world.internet)
    series = collector.collect(START, END, cache=cache)
    return collector, series


def seed_legacy_entry(root, version=2) -> str:
    """Write an authentic pre-v4 payload under the key a collection uses.

    ``version=2`` plants the dict-shaped legacy payload, ``version=3``
    the self-contained inline-columnar document — the two migration
    sources the reader must handle.
    """
    world = build_world(seed=SEED, scale=WorldScale.small())
    collector, series = collect(world)
    cache = SnapshotCache(root)
    key = SnapshotCache.key_for(
        world_token=world.internet.cache_token(),
        name=collector.name,
        networks=None,
        start=START,
        end=END,
        cadence_days=collector.cadence_days,
        at_offset=collector.at_offset,
    )
    payload = legacy_dict_payload(series) if version == 2 else series.to_payload()
    assert payload.get("version", 2) == version
    cache.store(key, payload)
    return key


class TestConcurrentMigration:
    def _race_two_readers(self, tmp_path, key):
        """Race two readers over one legacy entry; assert one v4 pair."""
        barrier = threading.Barrier(2)
        results = {}
        errors = []

        def reader(slot):
            try:
                # Each reader owns its world and cache object (same
                # seed → same cache token and key); only the files on
                # disk are shared, which is the real contention point.
                world = build_world(seed=SEED, scale=WorldScale.small())
                cache = SnapshotCache(tmp_path)
                barrier.wait(timeout=30)
                collector, series = collect(world, cache=cache)
                results[slot] = (collector.last_metrics, series)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append((slot, error))

        threads = [threading.Thread(target=reader, args=(slot,)) for slot in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, f"reader(s) failed: {errors}"
        assert set(results) == {0, 1}

        # Both readers decoded the legacy entry correctly: their series
        # equal a fresh, uncached collection.
        reference_world = build_world(seed=SEED, scale=WorldScale.small())
        _, reference = collect(reference_world)
        for metrics, series in results.values():
            assert metrics.cache_hit is True
            assert series.days == reference.days
            assert series.count_matrix() == reference.count_matrix()
            assert series.stats() == reference.stats()

        # Exactly one valid cache pair, no torn rewrite, no tmp leak.
        json_files = sorted(tmp_path.glob("*.json"))
        assert [path.stem for path in json_files] == [key]
        assert [path.stem for path in sorted(tmp_path.glob("*.rbf"))] == [key]
        assert list(tmp_path.glob("*.tmp")) == []

        # The rewritten entry is a v4 blockfile pair whose sidecar
        # passes a full integrity sweep and decodes to the same series.
        final = SnapshotCache(tmp_path)
        payload = final.load(key)
        assert payload is not None, "entry must not be corrupt"
        assert payload["version"] == 4

        from repro.scan.blockfile import BlockFileReader
        from repro.scan.snapshot import SnapshotSeries

        with BlockFileReader.open(final.blockfile_path_for(key)) as reader:
            reader.verify()

        decoded = SnapshotSeries.from_payload(payload, reference_world.internet)
        assert decoded.days == reference.days
        assert decoded.count_matrix() == reference.count_matrix()

        # At least one reader performed the migration; a reader that
        # lost the race may still report it (idempotent rewrite).
        assert any(metrics.cache_migrated for metrics, _ in results.values())

    def test_two_readers_one_valid_v4_pair_from_v2(self, tmp_path):
        self._race_two_readers(tmp_path, seed_legacy_entry(tmp_path, version=2))

    def test_two_readers_one_valid_v4_pair_from_v3(self, tmp_path):
        self._race_two_readers(tmp_path, seed_legacy_entry(tmp_path, version=3))
