"""Tests for the ICMP sweeper and rDNS lookup engine."""

import datetime as dt

import pytest

from repro.dns.resolver import ResolutionStatus, StubResolver
from repro.ipam import CarryOverPolicy
from repro.netsim.behavior import ScriptedProfile, Session
from repro.netsim.device import Device, DeviceNaming, model_by_key
from repro.netsim.engine import SimulationEngine
from repro.netsim.finegrained import NetworkRuntime
from repro.netsim.network import IcmpPolicy, Network, NetworkType, Subnet, SubnetRole
from repro.netsim.rng import RngStreams
from repro.netsim.simtime import DAY, HOUR, from_date
from repro.scan import IcmpScanner, RdnsLookupEngine, TokenBucket

START = dt.date(2021, 11, 1)


def always_on_device(device_id="d1", icmp=True):
    return Device(
        device_id=device_id,
        model=model_by_key("iphone"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name="brian",
        owner_id=device_id,
        profile=ScriptedProfile(lambda day: [Session(0, DAY)]),
        icmp_responds=icmp,
    )


@pytest.fixture
def running_network():
    network = Network(
        "testnet",
        NetworkType.ACADEMIC,
        "10.0.0.0/16",
        "campus.example.edu",
        rngs=RngStreams(0),
    )
    network.add_subnet(
        Subnet(
            "10.0.10.0/24",
            SubnetRole.EDUCATION,
            devices=[always_on_device("d1"), always_on_device("d2", icmp=False)],
            policy=CarryOverPolicy("campus.example.edu"),
        )
    )
    engine = SimulationEngine(start=from_date(START))
    runtime = NetworkRuntime(network, engine)
    runtime.start(START, START)
    engine.run_until(from_date(START) + 12 * HOUR)
    return network, engine, runtime


class TestIcmpScanner:
    def test_sweep_reports_responders_only(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        observations = scanner.sweep(["10.0.10.0/24"], engine.now)
        assert len(observations) == 1  # d2 does not respond to pings
        assert observations[0].network == "testnet"

    def test_blocklist_suppresses_probes(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime}, blocklist=["10.0.10.0/24"])
        assert scanner.sweep(["10.0.10.0/24"], engine.now) == []
        assert scanner.probes_sent == 0
        assert scanner.probes_suppressed == 256

    def test_blocklist_single_address(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        online = runtime.online_addresses()[0]
        scanner.add_to_blocklist(str(online))
        assert scanner.sweep(["10.0.10.0/24"], engine.now) == []

    def test_probe_single_address(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        online = runtime.online_addresses()[0]
        observation = scanner.probe(online, engine.now)
        assert observation is not None
        assert observation.address == online
        assert scanner.probe("10.0.10.200", engine.now) is None

    def test_rate_limit_suppresses(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner(
            {"testnet": runtime}, rate_limit=TokenBucket(rate=0.001, burst=10)
        )
        scanner.sweep(["10.0.10.0/24"], engine.now)
        assert scanner.probes_sent == 10
        assert scanner.probes_suppressed == 246

    def test_unknown_space_is_silent(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        assert scanner.sweep(["192.168.1.0/30"], engine.now) == []


class TestRdnsLookupEngine:
    def make_engine(self, running_network, **kwargs):
        network, engine, runtime = running_network
        resolver = StubResolver()
        resolver.delegate(network.server)
        return network, engine, runtime, RdnsLookupEngine(resolver, **kwargs)

    def test_lookup_live_record(self, running_network):
        network, engine, runtime, rdns = self.make_engine(running_network)
        online = runtime.online_addresses()[0]
        observation = rdns.lookup(online, engine.now, network="testnet")
        assert observation.ok
        assert observation.hostname.endswith("campus.example.edu")
        assert rdns.lookups_performed == 1

    def test_lookup_missing_record(self, running_network):
        network, engine, runtime, rdns = self.make_engine(running_network)
        observation = rdns.lookup("10.0.10.200", engine.now)
        assert observation.status is ResolutionStatus.NXDOMAIN

    def test_status_counting_and_error_rate(self, running_network):
        network, engine, runtime, rdns = self.make_engine(running_network)
        online = runtime.online_addresses()[0]
        rdns.lookup(online, engine.now)
        rdns.lookup("10.0.10.200", engine.now)
        assert rdns.status_counts[ResolutionStatus.NOERROR] == 1
        assert rdns.status_counts[ResolutionStatus.NXDOMAIN] == 1
        assert rdns.error_rate == pytest.approx(0.5)

    def test_rate_limited_lookup_returns_none(self, running_network):
        network, engine, runtime, rdns = self.make_engine(
            running_network, rate_limit=TokenBucket(rate=0.001, burst=1)
        )
        assert rdns.lookup("10.0.10.200", engine.now) is not None
        assert rdns.lookup("10.0.10.201", engine.now) is None
        assert rdns.lookups_suppressed == 1

    def test_zero_lookups_zero_error_rate(self, running_network):
        _, _, _, rdns = self.make_engine(running_network)
        assert rdns.error_rate == 0.0
