"""Tests for the ICMP sweeper and rDNS lookup engine."""

import datetime as dt
import ipaddress

import pytest

from repro.dns.resolver import ResolutionStatus, StubResolver
from repro.ipam import CarryOverPolicy
from repro.netsim.behavior import ScriptedProfile, Session
from repro.netsim.device import Device, DeviceNaming, model_by_key
from repro.netsim.engine import SimulationEngine
from repro.netsim.finegrained import NetworkRuntime
from repro.netsim.network import IcmpPolicy, Network, NetworkType, Subnet, SubnetRole
from repro.netsim.rng import RngStreams
from repro.netsim.simtime import DAY, HOUR, from_date
from repro.scan import IcmpScanner, RdnsLookupEngine, TokenBucket

START = dt.date(2021, 11, 1)


def always_on_device(device_id="d1", icmp=True):
    return Device(
        device_id=device_id,
        model=model_by_key("iphone"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name="brian",
        owner_id=device_id,
        profile=ScriptedProfile(lambda day: [Session(0, DAY)]),
        icmp_responds=icmp,
    )


@pytest.fixture
def running_network():
    network = Network(
        "testnet",
        NetworkType.ACADEMIC,
        "10.0.0.0/16",
        "campus.example.edu",
        rngs=RngStreams(0),
    )
    network.add_subnet(
        Subnet(
            "10.0.10.0/24",
            SubnetRole.EDUCATION,
            devices=[always_on_device("d1"), always_on_device("d2", icmp=False)],
            policy=CarryOverPolicy("campus.example.edu"),
        )
    )
    engine = SimulationEngine(start=from_date(START))
    runtime = NetworkRuntime(network, engine)
    runtime.start(START, START)
    engine.run_until(from_date(START) + 12 * HOUR)
    return network, engine, runtime


class TestIcmpScanner:
    def test_sweep_reports_responders_only(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        observations = scanner.sweep(["10.0.10.0/24"], engine.now)
        assert len(observations) == 1  # d2 does not respond to pings
        assert observations[0].network == "testnet"

    def test_blocklist_suppresses_probes(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime}, blocklist=["10.0.10.0/24"])
        assert scanner.sweep(["10.0.10.0/24"], engine.now) == []
        assert scanner.probes_sent == 0
        assert scanner.probes_suppressed == 256

    def test_blocklist_single_address(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        online = runtime.online_addresses()[0]
        scanner.add_to_blocklist(str(online))
        assert scanner.sweep(["10.0.10.0/24"], engine.now) == []

    def test_probe_single_address(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        online = runtime.online_addresses()[0]
        observation = scanner.probe(online, engine.now)
        assert observation is not None
        assert observation.address == online
        assert scanner.probe("10.0.10.200", engine.now) is None

    def test_rate_limit_suppresses(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner(
            {"testnet": runtime}, rate_limit=TokenBucket(rate=0.001, burst=10)
        )
        scanner.sweep(["10.0.10.0/24"], engine.now)
        assert scanner.probes_sent == 10
        assert scanner.probes_suppressed == 246

    def test_unknown_space_is_silent(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        assert scanner.sweep(["192.168.1.0/30"], engine.now) == []


class TestBlocklistPrefixes:
    def test_large_prefix_not_materialised(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        scanner.add_to_blocklist("10.0.0.0/8")  # 16M addresses
        assert len(scanner._blocked_addresses) == 0
        assert scanner._blocked_ranges == [(int(ipaddress.IPv4Address("10.0.0.0")), int(ipaddress.IPv4Address("10.255.255.255")))]

    def test_is_blocked_covers_addresses_and_prefixes(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime}, blocklist=["10.0.10.0/25", "10.0.10.200"])
        assert scanner.is_blocked("10.0.10.0")
        assert scanner.is_blocked("10.0.10.127")
        assert not scanner.is_blocked("10.0.10.128")
        assert scanner.is_blocked("10.0.10.200")
        assert not scanner.is_blocked("10.0.11.1")

    def test_sweep_and_probe_agree_with_is_blocked(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime}, blocklist=["10.0.10.0/25"])
        observations = scanner.sweep(["10.0.10.0/24"], engine.now)
        assert all(not scanner.is_blocked(obs.address) for obs in observations)
        assert scanner.probes_suppressed == 128
        for address in ("10.0.10.5", "10.0.10.100"):
            before = scanner.probes_suppressed
            assert scanner.probe(address, engine.now) is None
            assert scanner.probes_suppressed == before + 1

    def test_prefix_blocklist_suppresses_whole_sweep(self, running_network):
        network, engine, runtime = running_network
        scanner = IcmpScanner({"testnet": runtime})
        scanner.add_to_blocklist("10.0.0.0/8")
        assert scanner.sweep(["10.0.10.0/24"], engine.now) == []
        assert scanner.probes_sent == 0


class TestTargetPlanRuntimes:
    def make_runtime(self, name, prefix, subnet_prefix, start_engine=True):
        network = Network(
            name,
            NetworkType.ACADEMIC,
            prefix,
            f"{name}.example.edu",
            rngs=RngStreams(0),
        )
        network.add_subnet(
            Subnet(
                subnet_prefix,
                SubnetRole.EDUCATION,
                devices=[always_on_device(f"{name}-d1")],
                policy=CarryOverPolicy(f"{name}.example.edu"),
            )
        )
        engine = SimulationEngine(start=from_date(START))
        runtime = NetworkRuntime(network, engine)
        runtime.start(START, START)
        engine.run_until(from_date(START) + 12 * HOUR)
        return runtime, engine

    def test_target_spanning_two_networks_attributes_each_correctly(self):
        """Regression: one cached runtime per target credited every
        address in a multi-network target to the first network."""
        rt_a, engine = self.make_runtime("neta", "10.1.0.0/24", "10.1.0.0/25")
        rt_b, _ = self.make_runtime("netb", "10.1.1.0/24", "10.1.1.0/25")
        scanner = IcmpScanner({"neta": rt_a, "netb": rt_b})
        # One ZMap-style target covering both networks' space.
        observations = scanner.sweep(["10.1.0.0/23"], engine.now)
        networks_seen = {obs.network for obs in observations}
        assert networks_seen == {"neta", "netb"}
        for obs in observations:
            expected = "neta" if obs.address in rt_a.network.prefix else "netb"
            assert obs.network == expected

    def test_plan_segments_group_consecutive_runtimes(self):
        rt_a, _ = self.make_runtime("neta", "10.1.0.0/24", "10.1.0.0/25")
        rt_b, _ = self.make_runtime("netb", "10.1.1.0/24", "10.1.1.0/25")
        scanner = IcmpScanner({"neta": rt_a, "netb": rt_b})
        plan = scanner._target_plan("10.1.0.0/23")
        assert [segment[0] for segment in plan] == [rt_a, rt_b]
        assert sum(len(segment[1]) for segment in plan) == 512


class TestRetryBudget:
    def test_lost_echo_is_retried_within_budget(self, running_network):
        from repro.netsim.faults import FaultPlan, NetworkFaultProfile

        network, engine, runtime = running_network
        runtime.fault_plan = FaultPlan(
            default_profile=NetworkFaultProfile(icmp_loss_rate=1.0),
            icmp_retry_budget=4,
        )
        try:
            scanner = IcmpScanner({"testnet": runtime}, retries=4)
            observations = scanner.sweep(["10.0.10.0/24"], engine.now)
            # Total loss: the one online responder burns the whole
            # budget (4 retries on top of the first probe), every
            # attempt is counted lost, and no observation results.
            assert observations == []
            assert scanner.probes_sent == 256 + 4
            assert scanner.retries_sent == 4
            assert scanner.echoes_lost == 5
        finally:
            runtime.fault_plan = None

    def test_zero_budget_never_retries(self, running_network):
        from repro.netsim.faults import FaultPlan, NetworkFaultProfile

        network, engine, runtime = running_network
        runtime.fault_plan = FaultPlan(
            default_profile=NetworkFaultProfile(icmp_loss_rate=1.0)
        )
        try:
            scanner = IcmpScanner({"testnet": runtime})
            assert scanner.sweep(["10.0.10.0/24"], engine.now) == []
            assert scanner.probes_sent == 256
            assert scanner.retries_sent == 0
            assert scanner.echoes_lost == 1  # only the online, responding device
        finally:
            runtime.fault_plan = None

    def test_negative_budget_rejected(self, running_network):
        network, engine, runtime = running_network
        with pytest.raises(ValueError):
            IcmpScanner({"testnet": runtime}, retries=-1)


class TestRdnsLookupEngine:
    def make_engine(self, running_network, **kwargs):
        network, engine, runtime = running_network
        resolver = StubResolver()
        resolver.delegate(network.server)
        return network, engine, runtime, RdnsLookupEngine(resolver, **kwargs)

    def test_lookup_live_record(self, running_network):
        network, engine, runtime, rdns = self.make_engine(running_network)
        online = runtime.online_addresses()[0]
        observation = rdns.lookup(online, engine.now, network="testnet")
        assert observation.ok
        assert observation.hostname.endswith("campus.example.edu")
        assert rdns.lookups_performed == 1

    def test_lookup_missing_record(self, running_network):
        network, engine, runtime, rdns = self.make_engine(running_network)
        observation = rdns.lookup("10.0.10.200", engine.now)
        assert observation.status is ResolutionStatus.NXDOMAIN

    def test_status_counting_and_error_rate(self, running_network):
        network, engine, runtime, rdns = self.make_engine(running_network)
        online = runtime.online_addresses()[0]
        rdns.lookup(online, engine.now)
        rdns.lookup("10.0.10.200", engine.now)
        assert rdns.status_counts[ResolutionStatus.NOERROR] == 1
        assert rdns.status_counts[ResolutionStatus.NXDOMAIN] == 1
        assert rdns.error_rate == pytest.approx(0.5)

    def test_rate_limited_lookup_returns_none(self, running_network):
        network, engine, runtime, rdns = self.make_engine(
            running_network, rate_limit=TokenBucket(rate=0.001, burst=1)
        )
        assert rdns.lookup("10.0.10.200", engine.now) is not None
        assert rdns.lookup("10.0.10.201", engine.now) is None
        assert rdns.lookups_suppressed == 1

    def test_zero_lookups_zero_error_rate(self, running_network):
        _, _, _, rdns = self.make_engine(running_network)
        assert rdns.error_rate == 0.0
