"""Unit tests for the binary blockfile container (dataset format v4)."""

import struct
import zlib

import pytest

from repro.scan.blockfile import (
    ALIGNMENT,
    HEADER_SIZE,
    BlockFileError,
    BlockFileReader,
    append_day_records,
    encode_records,
    write_blockfile,
)

PREFIXES = ["10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24"]
DAYS = [738156, 738157]
COLUMNS = [[5, 0, 7], [6, 1]]
TOTALS = [12, 7]


def write_sample(path):
    write_blockfile(path, PREFIXES, DAYS, COLUMNS, TOTALS)
    return path


class TestRoundTrip:
    def test_encode_is_aligned_and_deterministic(self):
        blob = encode_records(PREFIXES, DAYS, COLUMNS, TOTALS)
        assert len(blob) % ALIGNMENT == 0
        assert blob == encode_records(PREFIXES, DAYS, COLUMNS, TOTALS)

    def test_reader_round_trips(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        with BlockFileReader.open(path) as reader:
            assert reader.prefixes == PREFIXES
            assert reader.days == DAYS
            assert reader.totals == TOTALS
            assert [list(column) for column in reader.columns] == COLUMNS
            assert reader.verify() == 3  # 1 prefix + 2 day records

    def test_mmap_and_read_fallback_agree(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        with BlockFileReader.open(path, use_mmap=True) as mapped:
            with BlockFileReader.open(path, use_mmap=False) as read:
                assert mapped.prefixes == read.prefixes
                assert mapped.days == read.days
                assert mapped.totals == read.totals
                assert [list(c) for c in mapped.columns] == [
                    list(c) for c in read.columns
                ]

    def test_count_matrix_matches_columns(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        with BlockFileReader.open(path) as reader:
            matrix = reader.count_matrix()
            assert matrix.day_count == len(DAYS)
            assert list(matrix.prefixes) == PREFIXES
            assert matrix.totals == TOTALS
            assert matrix.day_counts(0) == {"10.0.0.0/24": 5, "10.0.2.0/24": 7}
            # Ragged column: the missing third prefix reads as zero.
            assert matrix.count(1, 2) == 0
            assert matrix.row(0) == [5, 6]

    def test_empty_matrix_round_trips(self, tmp_path):
        path = tmp_path / "empty.rbf"
        write_blockfile(path, [], [], [], [])
        with BlockFileReader.open(path) as reader:
            assert reader.prefixes == []
            assert reader.days == []
            assert reader.record_count == 0


class TestPtrRecords:
    PTRS = ["a.campus.example", "b.campus.example", "c.isp.example"]

    def test_ptr_round_trip_is_lazy(self, tmp_path):
        path = tmp_path / "ptrs.rbf"
        write_blockfile(path, PREFIXES, DAYS, COLUMNS, TOTALS, self.PTRS)
        with BlockFileReader.open(path) as reader:
            # The count is answered from record headers alone...
            assert reader._ptr_spans and reader.unique_ptr_count == 3
            # ...and decoding happens only on request.
            assert reader.unique_ptrs() == set(self.PTRS)
            assert reader.verify() == 4  # prefixes + ptrs + 2 days

    def test_ptr_count_mismatch_rejected_on_decode(self, tmp_path):
        path = tmp_path / "ptrs.rbf"
        write_blockfile(path, PREFIXES, DAYS, COLUMNS, TOTALS, self.PTRS)
        blob = bytearray(path.read_bytes())
        # The PTRS record follows the prefix record; its aux1 (string
        # count) sits at +24.  Re-seal the header CRC so only the
        # decode-time count check can fire.
        offset = HEADER_SIZE + 64 + len("\n".join(PREFIXES).encode())
        offset += -offset % ALIGNMENT
        head = bytearray(blob[offset : offset + 64])
        struct.pack_into("<Q", head, 24, 99)
        struct.pack_into("<I", head, 56, zlib.crc32(bytes(head[:56])))
        blob[offset : offset + 64] = head
        path.write_bytes(bytes(blob))
        with BlockFileReader.open(path) as reader:
            with pytest.raises(BlockFileError, match="declares 99 strings"):
                reader.unique_ptrs()

    def test_no_ptr_record_reads_as_empty(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        with BlockFileReader.open(path) as reader:
            assert reader.unique_ptr_count == 0
            assert reader.unique_ptrs() == set()


class TestAppend:
    def test_append_day_extends_without_rewriting(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        before = path.read_bytes()
        appended = append_day_records(path, ["10.0.3.0/24"], 738158, [1, 2, 3, 4], 10)
        after = path.read_bytes()
        assert after[: len(before)] == before  # strict append at EOF
        assert len(after) == len(before) + appended
        with BlockFileReader.open(path) as reader:
            reader.verify()
            assert reader.prefixes == PREFIXES + ["10.0.3.0/24"]
            assert reader.days == DAYS + [738158]
            assert reader.totals == TOTALS + [10]
            assert list(reader.columns[-1]) == [1, 2, 3, 4]

    def test_append_without_new_prefixes(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        append_day_records(path, [], 738158, [1, 1, 1], 3)
        with BlockFileReader.open(path) as reader:
            assert reader.prefixes == PREFIXES
            assert reader.days[-1] == 738158

    def test_append_refuses_torn_file(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        with path.open("ab") as handle:
            handle.write(b"\0" * 13)  # simulate a torn trailing write
        with pytest.raises(BlockFileError, match="not .*aligned"):
            append_day_records(path, [], 738158, [1], 1)

    def test_old_reader_unaffected_by_append(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        with BlockFileReader.open(path) as reader:
            append_day_records(path, [], 738158, [9, 9, 9], 27)
            # The mapping predates the append: same records, same data.
            assert reader.days == DAYS
            assert [list(c) for c in reader.columns] == COLUMNS


class TestCorruption:
    def corrupt(self, path, offset):
        blob = bytearray(path.read_bytes())
        blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))

    def test_bad_magic_rejected(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        self.corrupt(path, 0)
        with pytest.raises(BlockFileError, match="bad magic"):
            BlockFileReader.open(path)

    def test_header_checksum_detects_flips(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        self.corrupt(path, 16)  # record_count field: covered by the CRC
        with pytest.raises(BlockFileError, match="header checksum"):
            BlockFileReader.open(path)

    def test_record_header_checksum_detects_flips(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        self.corrupt(path, HEADER_SIZE + 24)  # first record's aux1
        with pytest.raises(BlockFileError, match="record header checksum"):
            BlockFileReader.open(path)

    def test_body_flip_caught_by_verify(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        self.corrupt(path, len(path.read_bytes()) - 1 - ALIGNMENT + 4)
        with BlockFileReader.open(path) as reader:  # headers still valid
            with pytest.raises(BlockFileError, match="body checksum"):
                reader.verify()

    def test_truncated_body_rejected_at_open(self, tmp_path):
        path = write_sample(tmp_path / "sample.rbf")
        blob = path.read_bytes()
        # Cut inside the last day record's 8-byte body (2 × u32).
        path.write_bytes(blob[: len(blob) - ALIGNMENT + 4])
        with pytest.raises(BlockFileError):
            BlockFileReader.open(path)

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.rbf"
        blob = bytearray(encode_records(PREFIXES, DAYS, COLUMNS, TOTALS))
        # Rewrite the first record header with an unknown type, keeping
        # its header CRC consistent so only the type check can fire.
        offset = HEADER_SIZE
        head = bytearray(blob[offset : offset + 64])
        struct.pack_into("<H", head, 4, 99)
        struct.pack_into("<I", head, 56, zlib.crc32(bytes(head[:56])))
        blob[offset : offset + 64] = head
        path.write_bytes(bytes(blob))
        with pytest.raises(BlockFileError, match="unknown record type"):
            BlockFileReader.open(path)

    def test_missing_file_raises_blockfile_error(self, tmp_path):
        with pytest.raises(BlockFileError, match="cannot open"):
            BlockFileReader.open(tmp_path / "absent.rbf")
