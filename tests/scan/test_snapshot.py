"""Tests for snapshot collectors (OpenINTEL/Rapid7 style)."""

import datetime as dt

import pytest

from repro.netsim.internet import WorldScale, build_world
from repro.scan import SnapshotCollector

START = dt.date(2021, 3, 1)


@pytest.fixture(scope="module")
def world():
    return build_world(seed=4, scale=WorldScale.small())


class TestCadence:
    def test_daily_collector_collects_every_day(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=7)
        )
        assert len(series) == 7
        assert series.cadence_days == 1

    def test_weekly_collector_collects_weekly(self, world):
        series = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=28)
        )
        assert len(series) == 4
        assert series.cadence_days == 7

    def test_invalid_ranges_rejected(self, world):
        collector = SnapshotCollector.openintel_style(world.internet)
        with pytest.raises(ValueError):
            collector.collect(START, START)
        with pytest.raises(ValueError):
            SnapshotCollector(world.internet, "x", cadence_days=0)


class TestSeriesContent:
    def test_counts_and_records_agree(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=1)
        )
        counts = series.counts_by_slash24(START)
        assert sum(counts.values()) == len(list(series.records_on(START)))

    def test_daily_totals(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=3)
        )
        totals = series.daily_totals()
        assert set(totals) == set(series.days)
        assert all(total > 0 for total in totals.values())

    def test_uncollected_day_raises(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=1)
        )
        with pytest.raises(KeyError):
            list(series.records_on(START + dt.timedelta(days=5)))

    def test_network_restriction(self, world):
        series = SnapshotCollector(
            world.internet, "subset", networks=["Academic-A"]
        ).collect(START, START + dt.timedelta(days=1))
        records = list(series.records_on(START))
        academic_a = world.internet.network("Academic-A")
        assert records
        assert all(address in academic_a.prefix for address, _ in records)


class TestStats:
    def test_stats_match_table1_schema(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=5)
        )
        stats = series.stats()
        assert stats.name == "OpenINTEL"
        assert stats.start_date == START
        assert stats.snapshots == 5
        assert stats.total_responses >= stats.unique_ptrs > 0

    def test_daily_sees_more_responses_than_weekly(self, world):
        daily = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=14)
        )
        weekly = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=14)
        )
        assert daily.stats().total_responses > weekly.stats().total_responses
