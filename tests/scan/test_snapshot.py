"""Tests for snapshot collectors (OpenINTEL/Rapid7 style)."""

import datetime as dt

import pytest

from repro.netsim.internet import WorldScale, build_world
from repro.scan import SnapshotCollector

START = dt.date(2021, 3, 1)


@pytest.fixture(scope="module")
def world():
    return build_world(seed=4, scale=WorldScale.small())


class TestCadence:
    def test_daily_collector_collects_every_day(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=7)
        )
        assert len(series) == 7
        assert series.cadence_days == 1

    def test_weekly_collector_collects_weekly(self, world):
        series = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=28)
        )
        assert len(series) == 4
        assert series.cadence_days == 7

    def test_invalid_ranges_rejected(self, world):
        collector = SnapshotCollector.openintel_style(world.internet)
        with pytest.raises(ValueError):
            collector.collect(START, START)
        with pytest.raises(ValueError):
            SnapshotCollector(world.internet, "x", cadence_days=0)


class TestSeriesContent:
    def test_counts_and_records_agree(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=1)
        )
        counts = series.counts_by_slash24(START)
        assert sum(counts.values()) == len(list(series.records_on(START)))

    def test_daily_totals(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=3)
        )
        totals = series.daily_totals()
        assert set(totals) == set(series.days)
        assert all(total > 0 for total in totals.values())

    def test_uncollected_day_raises(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=1)
        )
        with pytest.raises(KeyError):
            list(series.records_on(START + dt.timedelta(days=5)))

    def test_network_restriction(self, world):
        series = SnapshotCollector(
            world.internet, "subset", networks=["Academic-A"]
        ).collect(START, START + dt.timedelta(days=1))
        records = list(series.records_on(START))
        academic_a = world.internet.network("Academic-A")
        assert records
        assert all(address in academic_a.prefix for address, _ in records)


class TestHalfOpenWindow:
    def test_start_collected_end_excluded(self, world):
        end = START + dt.timedelta(days=7)
        series = SnapshotCollector.openintel_style(world.internet).collect(START, end)
        assert series.days[0] == START
        assert series.days[-1] == end - dt.timedelta(days=1)
        assert end not in series.days

    def test_weekly_day_just_inside_window_collected(self, world):
        # [Mar 1, Mar 9): the second weekly snapshot (Mar 8) falls one
        # day before the exclusive end and must be collected.
        series = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=8)
        )
        assert series.days == [START, START + dt.timedelta(days=7)]

    def test_weekly_day_at_window_end_excluded(self, world):
        series = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=7)
        )
        assert series.days == [START]


class TestDeclaredCadence:
    def test_single_snapshot_weekly_series_reports_seven(self, world):
        # Regression: cadence used to be inferred from the first two
        # days, so a one-snapshot weekly series silently reported 1.
        series = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=7)
        )
        assert len(series) == 1
        assert series.cadence_days == 7
        assert series.inferred_cadence_days() is None

    def test_inferred_cadence_matches_declared(self, world):
        series = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=15)
        )
        assert series.inferred_cadence_days() == series.cadence_days == 7

    def test_spacing_mismatch_rejected(self, world):
        from repro.scan.snapshot import SnapshotSeries

        series = SnapshotSeries("x", world.internet, cadence_days=7)
        series._ingest_day(START, {"10.0.0.0/24": 1}, set())
        with pytest.raises(ValueError, match="cadence"):
            series._ingest_day(START + dt.timedelta(days=1), {}, set())
        with pytest.raises(ValueError, match="not after"):
            series._ingest_day(START, {}, set())


class TestMetrics:
    def test_collect_records_metrics(self, world):
        collector = SnapshotCollector.openintel_style(world.internet)
        series = collector.collect(START, START + dt.timedelta(days=3))
        metrics = collector.last_metrics
        assert metrics.days == 3
        assert metrics.responses == series.stats().total_responses
        assert metrics.total_seconds >= metrics.simulate_seconds > 0
        assert not metrics.cache_hit
        assert "3 snapshot day(s)" in metrics.describe()


class TestStats:
    def test_stats_match_table1_schema(self, world):
        series = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=5)
        )
        stats = series.stats()
        assert stats.name == "OpenINTEL"
        assert stats.start_date == START
        assert stats.snapshots == 5
        assert stats.total_responses >= stats.unique_ptrs > 0

    def test_daily_sees_more_responses_than_weekly(self, world):
        daily = SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=14)
        )
        weekly = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=14)
        )
        assert daily.stats().total_responses > weekly.stats().total_responses
