"""Regression tests for cache self-repair and traffic accounting.

A torn write used to leave a corrupt ``<key>.json`` in place forever
(every later run paid the decode failure and re-simulated), and
``clear()`` only swept ``*.json`` so crashed writers leaked ``*.tmp``
files indefinitely.
"""

import pytest

from repro.obs import Observability
from repro.scan.cache import SnapshotCache


def make_cache(tmp_path) -> SnapshotCache:
    return SnapshotCache(tmp_path)


class TestCorruptEntryRepair:
    def test_corrupt_entry_is_deleted_and_counted(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("k1", {"ok": True})
        cache.path_for("k1").write_text("{torn", encoding="utf-8")

        assert cache.load("k1") is None
        assert cache.corrupt_entries == 1
        # The file is gone: the next load is a plain miss, not another
        # decode failure.
        assert not cache.path_for("k1").exists()
        assert cache.load("k1") is None
        assert cache.corrupt_entries == 1
        assert cache.misses == 2

    def test_store_after_repair_rewrites_cleanly(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("k1", {"value": 1})
        cache.path_for("k1").write_text("not json", encoding="utf-8")
        assert cache.load("k1") is None
        cache.store("k1", {"value": 2})
        assert cache.load("k1") == {"value": 2}

    def test_traffic_counters(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.load("missing") is None
        cache.store("k1", {})
        assert cache.load("k1") == {}
        snapshot = cache.execution_snapshot()
        assert snapshot == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "corrupt_entries": 0,
            "tmp_cleanups": 0,
        }

    def test_export_metrics_records_deltas(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("k1", {})
        cache.load("k1")
        baseline = cache.execution_snapshot()
        cache.load("k1")
        cache.load("k2")
        obs = Observability()
        cache.export_metrics(obs, section="snapshot", baseline=baseline)
        assert obs.execution["snapshot"] == {
            "cache_hits": 1,
            "cache_misses": 1,
            "cache_stores": 0,
            "cache_corrupt_entries": 0,
            "cache_tmp_cleanups": 0,
        }


class TestFailedStoreCleansUp:
    """Regression: a store that raised mid-write (unserialisable
    payload, failed rename) used to leak its ``*.tmp`` file into the
    cache root and still count in ``stores``."""

    def test_unserialisable_payload_leaves_no_tmp(self, tmp_path):
        cache = make_cache(tmp_path)
        with pytest.raises(TypeError):
            cache.store("k1", {"bad": object()})
        assert list(tmp_path.glob("*.tmp")) == []
        assert not cache.path_for("k1").exists()
        assert cache.tmp_cleanups == 1
        assert cache.stores == 0

    def test_failed_store_does_not_clobber_existing_entry(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("k1", {"value": 1})
        with pytest.raises(TypeError):
            cache.store("k1", {"bad": {1, 2}})
        assert cache.load("k1") == {"value": 1}
        assert cache.tmp_cleanups == 1
        assert cache.stores == 1

    def test_collection_survives_store_failure(self, tmp_path, monkeypatch):
        import datetime as dt

        from repro.netsim.internet import WorldScale, build_world
        from repro.scan.snapshot import SnapshotCollector

        world = build_world(seed=3, scale=WorldScale.small())
        cache = make_cache(tmp_path)
        monkeypatch.setattr(
            type(cache),
            "store",
            lambda self, key, payload: (_ for _ in ()).throw(OSError("disk full")),
        )
        collector = SnapshotCollector.openintel_style(world.internet)
        series = collector.collect(
            dt.date(2021, 1, 1), dt.date(2021, 1, 4), cache=cache
        )
        # The freshly collected series is returned despite the failed
        # persistence, and the failure is surfaced in the metrics.
        assert len(series) == 3
        assert collector.last_metrics.cache_store_failed is True
        assert collector.last_metrics.cache_stored is False


class TestClearSweepsOrphans:
    def test_clear_removes_orphaned_tmp_files(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("k1", {})
        # A writer that crashed between temp-file creation and the
        # atomic rename leaves exactly this behind.
        orphan = cache.root / "orphanXYZ.tmp"
        orphan.write_text("partial", encoding="utf-8")

        removed = cache.clear()
        assert removed == 2
        assert not orphan.exists()
        assert cache.entries() == []

    def test_clear_on_missing_root(self, tmp_path):
        cache = SnapshotCache(tmp_path / "never-created")
        assert cache.clear() == 0
