"""Regression tests for cache self-repair and traffic accounting.

A torn write used to leave a corrupt ``<key>.json`` in place forever
(every later run paid the decode failure and re-simulated), and
``clear()`` only swept ``*.json`` so crashed writers leaked ``*.tmp``
files indefinitely.
"""

from repro.obs import Observability
from repro.scan.cache import SnapshotCache


def make_cache(tmp_path) -> SnapshotCache:
    return SnapshotCache(tmp_path)


class TestCorruptEntryRepair:
    def test_corrupt_entry_is_deleted_and_counted(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("k1", {"ok": True})
        cache.path_for("k1").write_text("{torn", encoding="utf-8")

        assert cache.load("k1") is None
        assert cache.corrupt_entries == 1
        # The file is gone: the next load is a plain miss, not another
        # decode failure.
        assert not cache.path_for("k1").exists()
        assert cache.load("k1") is None
        assert cache.corrupt_entries == 1
        assert cache.misses == 2

    def test_store_after_repair_rewrites_cleanly(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("k1", {"value": 1})
        cache.path_for("k1").write_text("not json", encoding="utf-8")
        assert cache.load("k1") is None
        cache.store("k1", {"value": 2})
        assert cache.load("k1") == {"value": 2}

    def test_traffic_counters(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.load("missing") is None
        cache.store("k1", {})
        assert cache.load("k1") == {}
        snapshot = cache.execution_snapshot()
        assert snapshot == {"hits": 1, "misses": 1, "stores": 1, "corrupt_entries": 0}

    def test_export_metrics_records_deltas(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("k1", {})
        cache.load("k1")
        baseline = cache.execution_snapshot()
        cache.load("k1")
        cache.load("k2")
        obs = Observability()
        cache.export_metrics(obs, section="snapshot", baseline=baseline)
        assert obs.execution["snapshot"] == {
            "cache_hits": 1,
            "cache_misses": 1,
            "cache_stores": 0,
            "cache_corrupt_entries": 0,
        }


class TestClearSweepsOrphans:
    def test_clear_removes_orphaned_tmp_files(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.store("k1", {})
        # A writer that crashed between temp-file creation and the
        # atomic rename leaves exactly this behind.
        orphan = cache.root / "orphanXYZ.tmp"
        orphan.write_text("partial", encoding="utf-8")

        removed = cache.clear()
        assert removed == 2
        assert not orphan.exists()
        assert cache.entries() == []

    def test_clear_on_missing_root(self, tmp_path):
        cache = SnapshotCache(tmp_path / "never-created")
        assert cache.clear() == 0
