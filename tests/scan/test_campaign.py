"""Tests for the supplemental campaign."""

import datetime as dt

import pytest

from repro.netsim.internet import WorldScale, build_world
from repro.scan import SupplementalCampaign
from repro.scan.campaign import SUPPLEMENTAL_NETWORKS


@pytest.fixture(scope="module")
def dataset():
    world = build_world(seed=7, scale=WorldScale.small())
    campaign = SupplementalCampaign(world)
    return campaign.run(dt.date(2021, 11, 1), dt.date(2021, 11, 2))


class TestCampaignRun:
    def test_all_nine_networks_targeted(self, dataset):
        assert set(dataset.targets_by_network) == set(SUPPLEMENTAL_NETWORKS)

    def test_observations_collected(self, dataset):
        assert dataset.icmp
        assert dataset.rdns

    def test_icmp_stats_schema(self, dataset):
        total, unique = dataset.icmp_stats()
        assert total >= unique > 0

    def test_rdns_stats_schema(self, dataset):
        total, unique_ips, unique_ptrs = dataset.rdns_stats()
        assert total >= unique_ips > 0
        assert unique_ptrs > 0

    def test_ping_blocking_enterprises_invisible(self, dataset):
        assert dataset.responsive_addresses("Enterprise-B") == 0
        assert dataset.responsive_addresses("Enterprise-C") == 0

    def test_academic_b_exactly_two_hosts(self, dataset):
        assert dataset.responsive_addresses("Academic-B") == 2

    def test_academic_b_hosts_have_no_ptr(self, dataset):
        b_addresses = {o.address for o in dataset.icmp if o.network == "Academic-B"}
        b_hostnames = {
            o.hostname for o in dataset.rdns if o.network == "Academic-B" and o.ok
        }
        assert len(b_addresses) == 2
        assert b_hostnames == set()

    def test_table4_rows_cover_all_networks(self, dataset):
        rows = dataset.table4_rows()
        assert len(rows) == 9
        by_name = {row[0]: row for row in rows}
        assert by_name["Enterprise-B"][4] == 0.0
        assert by_name["Academic-A"][4] > by_name["ISP-B"][4]

    def test_error_rows_ordered_by_day(self, dataset):
        rows = dataset.error_rows()
        days = [row[0] for row in rows]
        assert days == sorted(days)
        assert all(row[1] >= row[2] + row[3] + row[4] for row in rows)

    def test_invalid_period_rejected(self):
        world = build_world(seed=7, scale=WorldScale.small())
        with pytest.raises(ValueError):
            SupplementalCampaign(world).run(dt.date(2021, 11, 2), dt.date(2021, 11, 1))


class TestHalfOpenWindow:
    def test_empty_window_rejected(self):
        # start == end is an empty half-open window, not a one-day run.
        world = build_world(seed=7, scale=WorldScale.small())
        with pytest.raises(ValueError, match=r"half-open"):
            SupplementalCampaign(world).run(dt.date(2021, 11, 1), dt.date(2021, 11, 1))

    def test_end_day_not_measured(self, dataset):
        # run(Nov 1, Nov 2) measures Nov 1 only: every observation
        # timestamp falls before midnight Nov 2.
        from repro.netsim.simtime import from_date

        end_ts = from_date(dt.date(2021, 11, 2))
        assert dataset.icmp and dataset.rdns
        assert all(obs.at < end_ts for obs in dataset.icmp)
        assert all(obs.at < end_ts for obs in dataset.rdns)
        assert any(obs.at >= from_date(dt.date(2021, 11, 1)) for obs in dataset.icmp)

    def test_two_day_window_measures_both_days(self):
        world = build_world(seed=7, scale=WorldScale.small())
        campaign = SupplementalCampaign(world, networks=["Academic-C"])
        dataset = campaign.run(dt.date(2021, 11, 1), dt.date(2021, 11, 3))
        days = {row[0] for row in dataset.error_rows()}
        assert days == {dt.date(2021, 11, 1), dt.date(2021, 11, 2)}


class TestCampaignManifestMetrics:
    """The scan instruments' export_metrics feed the run manifest."""

    def test_rdns_metrics_land_in_manifest(self):
        from repro.obs import Observability

        world = build_world(seed=7, scale=WorldScale.small())
        obs = Observability()
        campaign = SupplementalCampaign(world, obs=obs, fault_plan=None)
        result = campaign.run(dt.date(2021, 11, 1), dt.date(2021, 11, 2))
        counters = obs.manifest().metrics["counters"]
        for key in (
            "rdns_lookups_total",
            "rdns_lookups_suppressed_total",
            "rdns_attempts_total",
            "rdns_timeouts_total",
            "rdns_rcode_total",
            "rdns_ratelimit_acquired_total",
            "rdns_ratelimit_denied_total",
        ):
            assert key in counters, f"{key} missing from campaign manifest"
        # Every performed lookup yields exactly one observation, so the
        # manifest counter must equal the dataset's rDNS row count; the
        # wire attempts include retries and can only be larger.
        assert counters["rdns_lookups_total"]["value"] == len(result.rdns)
        assert (
            counters["rdns_attempts_total"]["value"]
            >= counters["rdns_lookups_total"]["value"]
        )
