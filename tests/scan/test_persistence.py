"""Tests for dataset persistence."""

import datetime as dt

import pytest

from repro.netsim.internet import WorldScale, build_world
from repro.scan import SupplementalCampaign
from repro.scan.persistence import load_dataset, save_dataset


@pytest.fixture(scope="module")
def dataset():
    world = build_world(seed=13, scale=WorldScale.small())
    return SupplementalCampaign(world, networks=["Academic-C", "ISP-A"]).run(
        dt.date(2021, 11, 1), dt.date(2021, 11, 2)
    )


class TestSaveLoadRoundtrip:
    def test_roundtrip_preserves_everything(self, dataset, tmp_path):
        directory = save_dataset(dataset, tmp_path / "campaign")
        loaded = load_dataset(directory)
        assert loaded.start == dataset.start
        assert loaded.end == dataset.end
        assert loaded.icmp == dataset.icmp
        assert loaded.rdns == dataset.rdns
        assert loaded.targets_by_network == dataset.targets_by_network
        assert loaded.network_types == dataset.network_types
        assert loaded.target_sizes == dataset.target_sizes

    def test_analyses_work_on_loaded_dataset(self, dataset, tmp_path):
        from repro.core import GroupBuilder

        directory = save_dataset(dataset, tmp_path / "campaign")
        loaded = load_dataset(directory)
        builder = GroupBuilder()
        assert builder.funnel(builder.build(loaded)).all_groups == builder.funnel(
            builder.build(dataset)
        ).all_groups

    def test_expected_files_written(self, dataset, tmp_path):
        directory = save_dataset(dataset, tmp_path / "campaign")
        assert (directory / "dataset.json").exists()
        assert (directory / "icmp.csv").exists()
        assert (directory / "rdns.csv").exists()

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope")

    def test_version_check(self, dataset, tmp_path):
        directory = save_dataset(dataset, tmp_path / "campaign")
        meta = directory / "dataset.json"
        meta.write_text(meta.read_text().replace('"format_version": 1', '"format_version": 99'))
        with pytest.raises(ValueError):
            load_dataset(directory)
