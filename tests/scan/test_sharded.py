"""Sharded == unsharded, byte for byte.

The contract of :mod:`repro.scan.sharded`: for any shard count, worker
count, fault profile or cache temperature, the sharded engines produce
payloads byte-identical to the single-world engines run over the same
plan.  Everything downstream (dynamicity, caching, the serve layer)
leans on this, so the comparisons here are on serialized payloads, not
summaries.
"""

import datetime as dt
import json

import pytest

from repro.core.dynamicity import DynamicityAnalyzer
from repro.netsim.faults import plan_from_profile
from repro.netsim.worldplan import PlanError, synthetic_plan
from repro.scan.cache import CampaignCache, SnapshotCache
from repro.scan.campaign import SupplementalCampaign
from repro.scan.campaign_parallel import effective_campaign_workers
from repro.scan.parallel import WorkerBudget, worker_cap
from repro.scan.sharded import ShardedCampaign, ShardedCollector
from repro.scan.snapshot import SnapshotCollector

START = dt.date(2021, 1, 1)
END = dt.date(2021, 1, 13)

CAMPAIGN_START = dt.date(2021, 11, 1)
CAMPAIGN_END = dt.date(2021, 11, 3)


@pytest.fixture(scope="module")
def plan():
    return synthetic_plan(seed=11, slash16s=6, people=4, supplemental_every=1)


@pytest.fixture(scope="module")
def baseline_series(plan):
    # The unsharded reference: a plain collector over the fully built world.
    world = plan.build()
    return SnapshotCollector.openintel_style(world.internet).collect(START, END)


@pytest.fixture(scope="module")
def baseline_dataset(plan):
    world = plan.build()
    return SupplementalCampaign(world, fault_plan=None).run(
        CAMPAIGN_START, CAMPAIGN_END
    )


def canonical(payload):
    return json.dumps(payload, sort_keys=True)


class TestShardedSnapshots:
    @pytest.mark.parametrize("shards", [1, 2, 4, 11])
    def test_byte_identical_across_shard_counts(self, plan, baseline_series, shards):
        series = ShardedCollector(plan, shards=shards).collect(START, END)
        assert canonical(series.to_payload()) == canonical(baseline_series.to_payload())

    def test_parallel_matches_serial(self, plan, baseline_series, monkeypatch):
        # Force a real pool even on single-core hosts.
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        series = ShardedCollector(plan, shards=3).collect(START, END, workers=3)
        assert canonical(series.to_payload()) == canonical(baseline_series.to_payload())

    def test_series_is_lazily_backed(self, plan):
        collector = ShardedCollector(plan, shards=2)
        series = collector.collect(START, END)
        # Count-level reads never materialise the full world...
        assert series.counts_by_slash24(START)
        assert not series._internet.materialized()
        # ...record-level reads do, transparently.
        assert list(series.records_on(START))
        assert series._internet.materialized()

    def test_invalid_shard_count_rejected(self, plan):
        with pytest.raises(PlanError):
            ShardedCollector(plan, shards=0)


class TestShardedSnapshotCache:
    def test_cache_hits_across_shard_counts(self, plan, baseline_series, tmp_path):
        cache = SnapshotCache(tmp_path / "snap")
        writer = ShardedCollector(plan, shards=4)
        written = writer.collect(START, END, cache=cache)
        assert writer.last_metrics.cache_stored

        # A different shard count reads the same entry: the key is
        # plan-level, and the payloads are identical bytes anyway.
        reader = ShardedCollector(plan, shards=1)
        replayed = reader.collect(START, END, cache=cache)
        assert reader.last_metrics.cache_hit
        assert canonical(replayed.to_payload()) == canonical(written.to_payload())
        assert canonical(replayed.to_payload()) == canonical(baseline_series.to_payload())

    def test_cache_key_is_shard_count_free(self, plan, tmp_path):
        cache = SnapshotCache(tmp_path / "snap")
        keys = {
            ShardedCollector(plan, shards=shards)._cache_key(cache, START, END)
            for shards in (1, 2, 4)
        }
        assert len(keys) == 1


class TestShardedCampaign:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_byte_identical_across_shard_counts(self, plan, baseline_dataset, shards):
        dataset = ShardedCampaign(plan, shards=shards, fault_plan=None).run(
            CAMPAIGN_START, CAMPAIGN_END
        )
        assert canonical(dataset.to_payload()) == canonical(baseline_dataset.to_payload())

    def test_parallel_matches_serial(self, plan, baseline_dataset, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        dataset = ShardedCampaign(plan, shards=2, fault_plan=None).run(
            CAMPAIGN_START, CAMPAIGN_END, workers=2
        )
        assert canonical(dataset.to_payload()) == canonical(baseline_dataset.to_payload())

    def test_faulted_run_matches_unsharded_faulted_run(self, plan, monkeypatch):
        faults = plan_from_profile("mild", seed=11)
        world = plan.build()
        reference = SupplementalCampaign(world, fault_plan=faults).run(
            CAMPAIGN_START, CAMPAIGN_END
        )
        serial = ShardedCampaign(plan, shards=3, fault_plan=faults).run(
            CAMPAIGN_START, CAMPAIGN_END
        )
        assert canonical(serial.to_payload()) == canonical(reference.to_payload())
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        parallel = ShardedCampaign(plan, shards=3, fault_plan=faults).run(
            CAMPAIGN_START, CAMPAIGN_END, workers=2
        )
        assert canonical(parallel.to_payload()) == canonical(reference.to_payload())

    def test_cache_hits_across_shard_counts(self, plan, baseline_dataset, tmp_path):
        cache = CampaignCache(tmp_path / "camp")
        writer = ShardedCampaign(plan, shards=3, fault_plan=None)
        written = writer.run(CAMPAIGN_START, CAMPAIGN_END, cache=cache)
        assert writer.last_metrics.cache_stored

        reader = ShardedCampaign(plan, shards=1, fault_plan=None)
        replayed = reader.run(CAMPAIGN_START, CAMPAIGN_END, cache=cache)
        assert reader.last_metrics.cache_hit
        assert canonical(replayed.to_payload()) == canonical(written.to_payload())
        assert canonical(replayed.to_payload()) == canonical(baseline_dataset.to_payload())

    def test_network_subset_respected(self, plan):
        names = plan.supplemental_names[:2]
        world = plan.build()
        reference = SupplementalCampaign(world, networks=names, fault_plan=None).run(
            CAMPAIGN_START, CAMPAIGN_END
        )
        dataset = ShardedCampaign(plan, shards=2, networks=names, fault_plan=None).run(
            CAMPAIGN_START, CAMPAIGN_END
        )
        assert canonical(dataset.to_payload()) == canonical(reference.to_payload())

    def test_plan_without_supplementals_rejected(self):
        bare = synthetic_plan(seed=0, slash16s=2, people=2, supplemental_every=0)
        with pytest.raises(PlanError, match="supplemental"):
            ShardedCampaign(bare).run(CAMPAIGN_START, CAMPAIGN_END)


class TestDownstreamEquivalence:
    def test_dynamicity_report_matches_unsharded(self, plan, baseline_series):
        sharded = ShardedCollector(plan, shards=4).collect(START, END)
        analyzer = DynamicityAnalyzer()
        left = analyzer.analyze(baseline_series)
        right = analyzer.analyze(sharded)
        assert left.dynamic_prefixes() == right.dynamic_prefixes()


class TestWorkerPlumbing:
    """The parallel-plumbing sweep: one budget, capped everywhere."""

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "5")
        assert worker_cap() == 5

    def test_env_override_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "zero")
        with pytest.raises(ValueError):
            worker_cap()
        monkeypatch.setenv("REPRO_MAX_WORKERS", "0")
        with pytest.raises(ValueError):
            worker_cap()

    def test_default_cap_bounded_by_machine(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        import os

        assert 1 <= worker_cap() <= max(os.cpu_count() or 1, 8)

    def test_budget_split_never_oversubscribes(self):
        budget = WorkerBudget(6)
        for outer_tasks in (1, 2, 3, 4, 6, 10):
            outer, inner = budget.split(outer_tasks)
            assert outer * inner <= budget.total
            assert outer >= 1 and inner >= 1

    def test_campaign_cap_counts_work_units_not_networks(self, monkeypatch):
        # The regression this sweep fixes: a 2-batch sharded run over 9
        # networks must size its pool by the 2 submissions it will make,
        # not by the 9 networks they contain.
        monkeypatch.setenv("REPRO_MAX_WORKERS", "8")
        assert effective_campaign_workers(8, work_units=2) == 2
        assert effective_campaign_workers(8, work_units=1) == 1
        assert effective_campaign_workers(3, work_units=9) == 3

    def test_campaign_cap_honours_machine_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        assert effective_campaign_workers(8, work_units=9) == 2

    def test_sharded_pool_is_budget_sized(self, plan, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "2")
        collector = ShardedCollector(plan, shards=4)
        collector.collect(START, END, workers=2)
        # 4 shards' worth of tasks, but never more than 2 workers.
        assert collector.last_metrics.effective_workers <= 2
