"""The v4 snapshot cache representation: blockfile pair store/load/repair."""

import datetime as dt
import json

from repro.netsim.internet import WorldScale, build_world
from repro.scan.blockfile import BlockFileReader
from repro.scan.cache import SnapshotCache
from repro.scan.snapshot import SnapshotCollector, SnapshotSeries
from repro.scan.storage import DATASET_FORMAT_VERSION

START = dt.date(2021, 1, 1)
END = dt.date(2021, 1, 8)


def collect(cache=None, seed=5):
    world = build_world(seed=seed, scale=WorldScale.small())
    collector = SnapshotCollector.openintel_style(world.internet)
    series = collector.collect(START, END, cache=cache)
    return collector, series


class TestStoreSeries:
    def test_cold_store_writes_pair(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        collector, series = collect(cache)
        key = collector.last_metrics.cache_key
        assert collector.last_metrics.cache_stored

        document = json.loads(cache.path_for(key).read_text())
        assert document["version"] == DATASET_FORMAT_VERSION
        assert document["blockfile"] == f"{key}.rbf"
        sidecar = cache.blockfile_path_for(key)
        assert sidecar.is_file()
        assert document["blockfile_bytes"] == sidecar.stat().st_size
        with BlockFileReader.open(sidecar) as reader:
            reader.verify()
            assert reader.days == [day.toordinal() for day in series.days]
        assert list(tmp_path.glob("*.tmp")) == []

    def test_warm_hit_is_byte_identical_and_mmap_backed(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        _, cold = collect(cache)
        collector, warm = collect(cache)
        assert collector.last_metrics.cache_hit
        assert not collector.last_metrics.cache_migrated
        assert json.dumps(warm.to_payload(), sort_keys=True) == json.dumps(
            cold.to_payload(), sort_keys=True
        )
        # The warm matrix is view-backed: its source pins the mapping.
        assert warm.count_matrix()._source is not None

    def test_load_resolves_blockfile_path(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        collector, _ = collect(cache)
        payload = cache.load(collector.last_metrics.cache_key)
        assert payload["blockfile_path"] == str(
            cache.blockfile_path_for(collector.last_metrics.cache_key)
        )
        series = SnapshotSeries.from_payload(payload, None)
        assert series.days[0] == START


class TestRepair:
    def test_corrupt_sidecar_repairs_whole_entry(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        collector, cold = collect(cache)
        key = collector.last_metrics.cache_key
        sidecar = cache.blockfile_path_for(key)
        blob = bytearray(sidecar.read_bytes())
        blob[8] ^= 0xFF  # alignment field: breaks the header CRC
        sidecar.write_bytes(bytes(blob))

        assert cache.load(key) is None
        assert cache.corrupt_entries == 1
        assert not cache.path_for(key).exists()
        assert not sidecar.exists()

        # The next collection recollects and restores a valid pair.
        collector, again = collect(cache)
        assert collector.last_metrics.cache_stored
        assert json.dumps(again.to_payload(), sort_keys=True) == json.dumps(
            cold.to_payload(), sort_keys=True
        )

    def test_missing_sidecar_repairs_entry(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        collector, _ = collect(cache)
        key = collector.last_metrics.cache_key
        cache.blockfile_path_for(key).unlink()
        assert cache.load(key) is None
        assert not cache.path_for(key).exists()

    def test_invalidate_drops_both_halves(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        collector, _ = collect(cache)
        key = collector.last_metrics.cache_key
        assert cache.invalidate(key)
        assert not cache.path_for(key).exists()
        assert not cache.blockfile_path_for(key).exists()

    def test_clear_sweeps_sidecars(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        collect(cache)
        assert cache.clear() == 1  # one entry (its sidecar swept with it)
        assert list(tmp_path.iterdir()) == []
