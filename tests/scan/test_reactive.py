"""Tests for the back-off schedule and reactive monitor."""

import datetime as dt

import pytest

from repro.dns.resolver import ResolutionStatus, StubResolver
from repro.ipam import CarryOverPolicy
from repro.netsim.behavior import ScriptedProfile, Session
from repro.netsim.device import Device, DeviceNaming, model_by_key
from repro.netsim.engine import SimulationEngine
from repro.netsim.finegrained import NetworkRuntime
from repro.netsim.network import Network, NetworkType, Subnet, SubnetRole
from repro.netsim.rng import RngStreams
from repro.netsim.simtime import DAY, HOUR, MINUTE, from_date
from repro.scan import BackoffSchedule, IcmpScanner, RdnsLookupEngine, ReactiveMonitor

START = dt.date(2021, 11, 1)


class TestBackoffSchedule:
    def test_table2_shape(self):
        schedule = BackoffSchedule()
        intervals = []
        generator = schedule.intervals(max_tail=2)
        intervals = list(generator)
        assert intervals[:12] == [5 * MINUTE] * 12
        assert intervals[12:18] == [10 * MINUTE] * 6
        assert intervals[18:21] == [20 * MINUTE] * 3
        assert intervals[21:23] == [30 * MINUTE] * 2
        assert intervals[23:] == [60 * MINUTE] * 2

    def test_fixed_part_covers_four_hours(self):
        assert BackoffSchedule().total_scheduled_duration() == 4 * HOUR

    def test_unbounded_tail(self):
        generator = BackoffSchedule().intervals()
        for _ in range(30):
            interval = next(generator)
        assert interval == 60 * MINUTE


def scripted_device(device_id, sessions, **kwargs):
    return Device(
        device_id=device_id,
        model=model_by_key("iphone"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name="brian",
        owner_id=device_id,
        profile=ScriptedProfile(lambda day: list(sessions)),
        icmp_responds=True,
        **kwargs,
    )


def run_monitor(devices, *, days=1, lease_time=3600):
    network = Network(
        "mon-net",
        NetworkType.ACADEMIC,
        "10.0.0.0/16",
        "campus.example.edu",
        lease_time=lease_time,
        rngs=RngStreams(0),
    )
    network.add_subnet(
        Subnet(
            "10.0.10.0/24",
            SubnetRole.EDUCATION,
            devices=devices,
            policy=CarryOverPolicy("campus.example.edu"),
        )
    )
    engine = SimulationEngine(start=from_date(START))
    runtime = NetworkRuntime(network, engine)
    runtime.start(START, START + dt.timedelta(days=days - 1))
    resolver = StubResolver()
    resolver.delegate(network.server)
    scanner = IcmpScanner({"mon-net": runtime})
    rdns = RdnsLookupEngine(resolver)
    monitor = ReactiveMonitor(engine, scanner, rdns)
    end = from_date(START) + days * DAY - 1
    monitor.start({"mon-net": ["10.0.10.0/24"]}, end=end)
    engine.run_until(end)
    return monitor


class TestReactiveMonitor:
    def test_hourly_sweeps_run(self):
        monitor = run_monitor([scripted_device("d1", [Session(0, DAY)])])
        assert monitor.sweeps_run == 24

    def test_client_appearance_triggers_spot_rdns(self):
        device = scripted_device("d1", [Session(9 * HOUR, 20 * HOUR)])
        monitor = run_monitor([device])
        # The 9:00 sweep detects the client; a spot lookup runs then.
        spot = [o for o in monitor.rdns_observations if o.at == from_date(START) + 9 * HOUR]
        assert spot
        assert spot[0].ok
        assert spot[0].hostname == "brians-iphone.campus.example.edu"

    def test_departure_followed_until_record_removed(self):
        # Depart while the follow is still probing every 5 minutes, so
        # detection is sharp (later in the back-off, the ICMP slop the
        # paper filters out in Table 5 would apply).
        leave_at = 9 * HOUR + 47 * MINUTE
        device = scripted_device("d1", [Session(9 * HOUR, leave_at)])
        monitor = run_monitor([device])
        nxdomains = [
            o for o in monitor.rdns_observations if o.status is ResolutionStatus.NXDOMAIN
        ]
        assert nxdomains
        removal = min(o.at for o in nxdomains if o.at > from_date(START) + leave_at)
        # Clean release: the record vanishes right after departure; the
        # follow sees it within the first 5-minute probes.
        assert removal - (from_date(START) + leave_at) <= 15 * MINUTE

    def test_reactive_pings_follow_backoff(self):
        device = scripted_device("d1", [Session(9 * HOUR, 20 * HOUR)])
        monitor = run_monitor([device])
        # Between 9:00 (detection) and 10:00 the follow probes every
        # 5 minutes: 12 reactive + 1-2 sweep responses.
        base = from_date(START) + 9 * HOUR
        first_hour = [
            o for o in monitor.icmp_observations if base < o.at <= base + HOUR
        ]
        assert len(first_hour) >= 12

    def test_blocked_devices_never_generate_follows(self):
        device = scripted_device("d1", [Session(0, DAY)])
        device.icmp_responds = False
        monitor = run_monitor([device])
        assert monitor.icmp_observations == []
        assert monitor.rdns_observations == []

    def test_rejoin_supersedes_stale_follow(self):
        device = scripted_device(
            "d1", [Session(8 * HOUR, 10 * HOUR + 30 * MINUTE), Session(11 * HOUR + 30 * MINUTE, 20 * HOUR)]
        )
        monitor = run_monitor([device])
        # The device disappears and returns; the monitor must keep
        # producing ICMP observations well into the second session.
        late = [o for o in monitor.icmp_observations if o.at >= from_date(START) + 15 * HOUR]
        assert late
