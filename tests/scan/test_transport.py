"""Unit tests for the columnar pool-result transport."""

import ipaddress

import pytest

from repro.dns.resolver import ResolutionStatus
from repro.scan import transport
from repro.scan.observations import IcmpObservation, RdnsObservation
from repro.scan.storage import IcmpColumns, RdnsColumns


def sample_icmp() -> IcmpColumns:
    columns = IcmpColumns()
    for index in range(5):
        columns.append(
            IcmpObservation(
                address=ipaddress.IPv4Address(0x0A000001 + index),
                at=1000 + index,
                network="Academic-A" if index % 2 else "Res-B",
            )
        )
    return columns


def sample_rdns() -> RdnsColumns:
    columns = RdnsColumns()
    statuses = list(ResolutionStatus)
    for index in range(5):
        columns.append(
            RdnsObservation(
                address=ipaddress.IPv4Address(0x0A000001 + index),
                at=2000 + index,
                status=statuses[index % len(statuses)],
                hostname=f"host-{index}.example.net" if index % 2 else "",
                network="Academic-A",
            )
        )
    return columns


class TestPublishConsume:
    @pytest.mark.parametrize("mode", ["shm", "inline", "spill"])
    def test_round_trip(self, mode, monkeypatch, tmp_path):
        monkeypatch.setenv(transport.SPILL_DIR_ENV, str(tmp_path))
        blob = b"payload-bytes" * 100
        handle = transport.publish(blob, transport=mode)
        assert handle.size == len(blob)
        result = transport.consume(handle, lambda view: bytes(view))
        assert result == blob
        # Spill files are deleted after consumption.
        assert list(tmp_path.glob("repro-spill-*")) == []

    def test_shm_segment_unlinked_after_consume(self):
        handle = transport.publish(b"x" * 64, transport="shm")
        if handle.kind != "shm":  # degraded host: nothing to check
            pytest.skip("shared memory unavailable")
        transport.consume(handle, lambda view: None)
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=handle.name)

    def test_stats_count_split(self, monkeypatch, tmp_path):
        monkeypatch.setenv(transport.SPILL_DIR_ENV, str(tmp_path))
        stats = transport.TransportStats()
        inline = transport.publish(b"a" * 10, transport="inline")
        spilled = transport.publish(b"b" * 30, transport="spill")
        stats.count(inline)
        stats.count(spilled)
        assert stats.transport_bytes == 40
        assert stats.spill_bytes == 30
        transport.consume(spilled, lambda view: None)

    def test_configured_transport_validates_env(self, monkeypatch):
        monkeypatch.setenv(transport.TRANSPORT_ENV, "bogus")
        with pytest.raises(ValueError, match="shm/inline/spill"):
            transport.configured_transport()
        monkeypatch.setenv(transport.TRANSPORT_ENV, "spill")
        assert transport.configured_transport() == "spill"


class TestDayChunks:
    def test_round_trip_preserves_order(self):
        results = [
            (738156, {"10.0.1.0/24": 3, "10.0.0.0/24": 1}, {"a.ptr", "b.ptr"}),
            (738157, {"10.0.0.0/24": 2, "10.0.2.0/24": 9}, set()),
        ]
        blob = transport.pack_day_chunk(results)
        unpacked = transport.unpack_day_chunk(memoryview(blob))
        assert unpacked == results
        # Dict insertion order — the interning anchor — survives.
        assert list(unpacked[0][1]) == ["10.0.1.0/24", "10.0.0.0/24"]
        assert list(unpacked[1][1]) == ["10.0.0.0/24", "10.0.2.0/24"]

    def test_empty_chunk(self):
        assert transport.unpack_day_chunk(
            memoryview(transport.pack_day_chunk([]))
        ) == []

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            transport.unpack_day_chunk(memoryview(b"nope" + b"\0" * 16))


class TestRecordChunks:
    def test_round_trip(self):
        results = [
            (738156, [(0x0A000001, "a.example"), (0x0A000002, "b.example")]),
            (738157, []),
        ]
        blob = transport.pack_record_chunk(results)
        assert transport.unpack_record_chunk(memoryview(blob)) == results


class TestCampaignColumns:
    def test_icmp_round_trip(self):
        columns = sample_icmp()
        blob = transport.pack_icmp_columns(columns)
        rebuilt = transport.unpack_icmp_columns(memoryview(blob))
        assert rebuilt == columns
        assert rebuilt._networks.values == columns._networks.values

    def test_rdns_round_trip(self):
        columns = sample_rdns()
        blob = transport.pack_rdns_columns(columns)
        rebuilt = transport.unpack_rdns_columns(memoryview(blob))
        assert rebuilt == columns
        assert rebuilt._hostnames.values == columns._hostnames.values

    def test_campaign_pair_round_trip(self):
        icmp, rdns = sample_icmp(), sample_rdns()
        blob = transport.pack_campaign_columns(icmp, rdns)
        icmp2, rdns2 = transport.unpack_campaign_columns(memoryview(blob))
        assert icmp2 == icmp
        assert rdns2 == rdns

    def test_campaign_batch_round_trip(self):
        pairs = [(sample_icmp(), sample_rdns()) for _ in range(3)]
        blob = transport.pack_campaign_batch(pairs)
        rebuilt = transport.unpack_campaign_batch(memoryview(blob))
        assert len(rebuilt) == 3
        for (icmp, rdns), (icmp2, rdns2) in zip(pairs, rebuilt):
            assert icmp2 == icmp
            assert rdns2 == rdns
