"""Tests for the token bucket."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scan import TokenBucket


class TestTokenBucket:
    def test_burst_available_immediately(self):
        bucket = TokenBucket(rate=1.0, burst=5)
        assert all(bucket.acquire(0) for _ in range(5))
        assert not bucket.acquire(0)

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=2.0, burst=2)
        bucket.acquire(0)
        bucket.acquire(0)
        assert not bucket.acquire(0)
        assert bucket.acquire(1)  # 2 tokens accrued by t=1
        assert bucket.acquire(1)
        assert not bucket.acquire(1)

    def test_does_not_exceed_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3)
        assert bucket.available == 3
        bucket.acquire(100)
        assert bucket.available == 2

    def test_delay_until_available(self):
        bucket = TokenBucket(rate=2.0, burst=1)
        bucket.acquire(0)
        assert bucket.delay_until_available(0) == pytest.approx(0.5)
        assert bucket.delay_until_available(10) == 0.0

    def test_backwards_time_is_clamped_and_counted(self):
        # Merged observation streams can replay slightly older
        # timestamps; the bucket must not crash the scan, must not
        # mint tokens, and must count the skew for auditing.
        bucket = TokenBucket(rate=1.0, burst=1)
        assert bucket.acquire(10)
        assert bucket.clock_skew_events == 0
        assert not bucket.acquire(5)  # no refill from going backwards
        assert bucket.clock_skew_events == 1
        assert bucket.delay_until_available(5) == pytest.approx(1.0)
        assert bucket.clock_skew_events == 2
        # Time resumes from the high-water mark, not the skewed value.
        assert bucket.acquire(11)
        assert bucket.clock_skew_events == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=0.5)

    @given(st.floats(min_value=0.5, max_value=100), st.integers(min_value=1, max_value=50))
    def test_long_run_rate_respected(self, rate, burst):
        bucket = TokenBucket(rate=rate, burst=burst)
        horizon = 100.0
        granted = 0
        t = 0.0
        while t <= horizon:
            if bucket.acquire(t):
                granted += 1
            t += 0.01
        assert granted <= burst + rate * horizon + 1
