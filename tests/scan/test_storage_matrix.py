"""Unit tests for the columnar count store and its payload codec."""

import datetime as dt
import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.internet import WorldScale, build_world
from repro.scan import SnapshotCache, SnapshotCollector
from repro.scan.snapshot import SnapshotSeries, legacy_dict_payload
from repro.scan.storage import (
    COLUMNAR_PAYLOAD_VERSION,
    DATASET_FORMAT_VERSION,
    CountMatrix,
    PrefixTable,
    decode_count_columns,
    encode_count_columns,
)

START = dt.date(2021, 3, 1)


class TestPrefixTable:
    def test_dense_first_seen_ids(self):
        table = PrefixTable()
        assert table.intern("10.0.0.0/24") == 0
        assert table.intern("10.0.1.0/24") == 1
        assert table.intern("10.0.0.0/24") == 0  # idempotent
        assert len(table) == 2
        assert table.prefix_for(1) == "10.0.1.0/24"
        assert table.get("10.0.1.0/24") == 1
        assert table.get("10.9.9.0/24") is None
        assert "10.0.0.0/24" in table
        assert list(table) == ["10.0.0.0/24", "10.0.1.0/24"]

    def test_equality_is_order_sensitive(self):
        assert PrefixTable(["a", "b"]) == PrefixTable(["a", "b"])
        assert PrefixTable(["a", "b"]) != PrefixTable(["b", "a"])


class TestCountMatrix:
    def test_day_counts_match_input(self):
        matrix = CountMatrix.from_day_dicts(
            [{"a": 3, "b": 1}, {"b": 2}, {"c": 5, "a": 1}]
        )
        assert matrix.day_count == 3
        assert matrix.day_counts(0) == {"a": 3, "b": 1}
        assert matrix.day_counts(1) == {"b": 2}
        assert matrix.day_counts(2) == {"c": 5, "a": 1}
        assert matrix.totals == [4, 2, 6]

    def test_absent_prefix_reads_zero(self):
        matrix = CountMatrix.from_day_dicts([{"a": 3}, {"b": 2}])
        # "b" was unknown on day 0: its column is shorter than the table.
        assert matrix.count(0, matrix.prefixes.get("b")) == 0
        assert matrix.row(matrix.prefixes.get("b")) == [0, 2]

    def test_day_view_matches_dict(self):
        matrix = CountMatrix.from_day_dicts([{"a": 3, "b": 1}, {"b": 2}])
        view = matrix.day_view(0)
        assert dict(view) == matrix.day_counts(0)
        assert view["a"] == 3
        assert len(view) == 2
        with pytest.raises(KeyError):
            view["b-day-two-only"]
        # Zero counts are absent from the view, like the dict accessor.
        assert "a" not in matrix.day_view(1)

    def test_pad_is_idempotent_and_lossless(self):
        matrix = CountMatrix.from_day_dicts([{"a": 3}, {"b": 2}])
        before = [matrix.day_counts(index) for index in range(matrix.day_count)]
        matrix.pad()
        matrix.pad()
        assert len(matrix.column(0)) == len(matrix.prefixes)
        assert [matrix.day_counts(index) for index in range(matrix.day_count)] == before


class TestColumnCodec:
    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from([f"10.0.{index}.0/24" for index in range(8)]),
                st.integers(min_value=0, max_value=300),
                max_size=8,
            ),
            min_size=0,
            max_size=12,
        )
    )
    def test_roundtrip_property(self, day_dicts):
        matrix = CountMatrix.from_day_dicts(day_dicts)
        encoded = encode_count_columns(matrix)
        decoded = decode_count_columns(list(matrix.prefixes), encoded)
        assert decoded == matrix
        assert decoded.totals == matrix.totals

    def test_encoding_is_json_safe_strings(self):
        matrix = CountMatrix.from_day_dicts([{"a": 1 << 30}, {"a": 0}])
        encoded = encode_count_columns(matrix)
        assert all(isinstance(column, str) for column in encoded)
        json.dumps(encoded)

    def test_truncated_column_rejected(self):
        matrix = CountMatrix.from_day_dicts([{"a": 7, "b": 9}])
        encoded = encode_count_columns(matrix)
        with pytest.raises(ValueError):
            decode_count_columns(["a", "b"], [encoded[0][: len(encoded[0]) // 2]])


class TestPayloadMigration:
    @pytest.fixture(scope="class")
    def series(self):
        world = build_world(seed=4, scale=WorldScale.small())
        return SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=4)
        )

    def test_v3_roundtrip(self, series):
        payload = series.to_payload()
        # to_payload() stays the self-contained v3 wire format; v4 is
        # the cache's at-rest representation only.
        assert payload["version"] == COLUMNAR_PAYLOAD_VERSION
        assert COLUMNAR_PAYLOAD_VERSION < DATASET_FORMAT_VERSION
        rebuilt = SnapshotSeries.from_payload(payload, series._internet)
        assert rebuilt.days == series.days
        for day in series.days:
            assert rebuilt.counts_by_slash24(day) == series.counts_by_slash24(day)
        assert rebuilt.daily_totals() == series.daily_totals()
        assert rebuilt.stats() == series.stats()

    def test_v2_payload_still_decodes(self, series):
        legacy = legacy_dict_payload(series)
        assert legacy.get("version", 2) == 2
        rebuilt = SnapshotSeries.from_payload(legacy, series._internet)
        for day in series.days:
            assert rebuilt.counts_by_slash24(day) == series.counts_by_slash24(day)
        # Day-order interning makes the migrated table — and therefore
        # the re-encoded v3 payload bytes — identical to a native run.
        assert rebuilt.prefix_table() == series.prefix_table()
        assert json.dumps(rebuilt.to_payload(), sort_keys=True) == json.dumps(
            series.to_payload(), sort_keys=True
        )

    def test_cache_entry_migrates_on_read(self, tmp_path, series):
        world = build_world(seed=4, scale=WorldScale.small())
        collector = SnapshotCollector.openintel_style(world.internet)
        cache = SnapshotCache(tmp_path)
        end = START + dt.timedelta(days=4)
        # Plant a legacy v2 payload under the real cache key.
        cold = collector.collect(START, end, cache=cache)
        key = collector.last_metrics.cache_key
        cache.store(key, legacy_dict_payload(cold))

        warm = collector.collect(START, end, cache=cache)
        assert collector.last_metrics.cache_hit
        assert collector.last_metrics.cache_migrated
        for day in cold.days:
            assert warm.counts_by_slash24(day) == cold.counts_by_slash24(day)
        # The entry was rewritten as a v4 blockfile pair: the next read
        # is a plain zero-copy hit.
        stored = json.loads(cache.path_for(key).read_text())
        assert stored["version"] == DATASET_FORMAT_VERSION
        again = collector.collect(START, end, cache=cache)
        assert collector.last_metrics.cache_hit
        assert not collector.last_metrics.cache_migrated
        assert again.stats() == cold.stats()
