"""Tests for observations and CSV persistence."""

import ipaddress

from repro.dns.resolver import ResolutionStatus
from repro.netsim.simtime import MINUTE, ts
from repro.scan import (
    IcmpObservation,
    RdnsObservation,
    read_icmp_csv,
    read_rdns_csv,
    write_icmp_csv,
    write_rdns_csv,
)


def icmp_obs(minute=7):
    return IcmpObservation(
        address=ipaddress.IPv4Address("20.0.10.10"),
        at=ts(2021, 11, 1, 10, minute),
        network="Academic-A",
    )


def rdns_obs(status=ResolutionStatus.NOERROR, hostname="brians-mbp.campus.stateu.edu"):
    return RdnsObservation(
        address=ipaddress.IPv4Address("20.0.10.10"),
        at=ts(2021, 11, 1, 10, 7),
        status=status,
        hostname=hostname if status is ResolutionStatus.NOERROR else "",
        network="Academic-A",
    )


class TestTruncation:
    def test_five_minute_truncation(self):
        assert icmp_obs(minute=7).truncated_at == ts(2021, 11, 1, 10, 5)
        assert icmp_obs(minute=5).truncated_at == ts(2021, 11, 1, 10, 5)

    def test_icmp_and_rdns_merge_on_truncated_key(self):
        # The merge the paper performs: same IP, same 5-minute bucket.
        assert icmp_obs().truncated_at == rdns_obs().truncated_at


class TestRdnsObservation:
    def test_ok_flag(self):
        assert rdns_obs().ok
        assert not rdns_obs(ResolutionStatus.NXDOMAIN).ok
        assert not rdns_obs(ResolutionStatus.TIMEOUT).ok


class TestCsvRoundtrip:
    def test_icmp_roundtrip(self, tmp_path):
        path = tmp_path / "icmp.csv"
        rows = [icmp_obs(m) for m in range(5)]
        assert write_icmp_csv(path, rows) == 5
        assert read_icmp_csv(path) == rows

    def test_rdns_roundtrip(self, tmp_path):
        path = tmp_path / "rdns.csv"
        rows = [
            rdns_obs(),
            rdns_obs(ResolutionStatus.NXDOMAIN),
            rdns_obs(ResolutionStatus.SERVFAIL),
            rdns_obs(ResolutionStatus.TIMEOUT),
        ]
        assert write_rdns_csv(path, rows) == 4
        assert read_rdns_csv(path) == rows

    def test_empty_files(self, tmp_path):
        icmp_path = tmp_path / "icmp.csv"
        rdns_path = tmp_path / "rdns.csv"
        assert write_icmp_csv(icmp_path, []) == 0
        assert write_rdns_csv(rdns_path, []) == 0
        assert read_icmp_csv(icmp_path) == []
        assert read_rdns_csv(rdns_path) == []
