"""Regression tests: parallel and cached collection match serial exactly."""

import datetime as dt
import json

import pytest

from repro.netsim.internet import WorldScale, build_world
from repro.scan import SnapshotCache, SnapshotCollector
from repro.scan.parallel import (
    MIN_DAYS_PER_WORKER,
    chunk_days,
    collect_days,
    effective_workers,
    sample_day_records,
)

START = dt.date(2021, 3, 1)
END = dt.date(2021, 3, 13)


@pytest.fixture(scope="module")
def world():
    return build_world(seed=4, scale=WorldScale.small())


@pytest.fixture(scope="module")
def serial_series(world):
    return SnapshotCollector.openintel_style(world.internet).collect(START, END)


def assert_series_identical(left, right):
    assert left.days == right.days
    assert left.cadence_days == right.cadence_days
    for day in left.days:
        assert left.counts_by_slash24(day) == right.counts_by_slash24(day)
    assert left.stats() == right.stats()
    probe = left.days[0]
    left_records = sorted((str(address), host) for address, host in left.records_on(probe))
    right_records = sorted((str(address), host) for address, host in right.records_on(probe))
    assert left_records == right_records


class TestParallelEquivalence:
    # collect_days is driven directly so the pool actually runs even on
    # single-core hosts, where collect()'s never-slower cap would fall
    # back to the serial loop.

    def test_two_workers_bit_identical_to_serial(self, serial_series):
        # A fresh world: no shared memoisation with the serial fixture.
        world = build_world(seed=4, scale=WorldScale.small())
        collector = SnapshotCollector.openintel_style(world.internet)
        parallel = collect_days(collector, collector.snapshot_days(START, END), workers=2)
        assert_series_identical(serial_series, parallel)

    def test_four_workers_weekly_cadence(self, world):
        serial = SnapshotCollector.rapid7_style(world.internet).collect(
            START, START + dt.timedelta(days=28)
        )
        other = build_world(seed=4, scale=WorldScale.small())
        collector = SnapshotCollector.rapid7_style(other.internet)
        parallel = collect_days(
            collector,
            collector.snapshot_days(START, START + dt.timedelta(days=28)),
            workers=4,
        )
        assert_series_identical(serial, parallel)

    def test_network_restriction_respected(self, world):
        serial = SnapshotCollector(
            world.internet, "subset", networks=["Academic-A"]
        ).collect(START, START + dt.timedelta(days=4))
        collector = SnapshotCollector(world.internet, "subset", networks=["Academic-A"])
        parallel = collect_days(
            collector,
            collector.snapshot_days(START, START + dt.timedelta(days=4)),
            workers=2,
        )
        assert_series_identical(serial, parallel)

    def test_single_day_window_falls_back_to_serial(self, world):
        collector = SnapshotCollector.openintel_style(world.internet)
        series = collector.collect(START, START + dt.timedelta(days=1), workers=4)
        assert len(series) == 1
        assert collector.last_metrics.workers == 4
        assert collector.last_metrics.effective_workers == 1

    def test_collect_days_rejects_single_worker(self, world):
        collector = SnapshotCollector.openintel_style(world.internet)
        with pytest.raises(ValueError):
            collect_days(collector, [START], workers=1)


class TestRecordSampling:
    # sample_day_records is driven directly for the same reason as
    # collect_days above: sample_records()'s never-slower cap would
    # keep single-core hosts serial and leave the pool path untested.

    def test_pool_sample_bit_identical_to_serial(self, serial_series):
        serial = [
            record
            for day in serial_series.days
            for record in serial_series.records_on(day)
        ]
        pooled = sample_day_records(
            serial_series._internet,
            serial_series._network_names,
            serial_series.days,
            at_offset=serial_series._at_offset,
            workers=3,
        )
        assert pooled == serial

    def test_sample_records_dedups_first_seen(self, serial_series):
        sample = serial_series.sample_records()
        assert len(sample) == len(set(sample))
        metrics = serial_series.last_sample_metrics
        assert metrics.unique_records == len(sample)
        assert metrics.raw_records >= metrics.unique_records
        # First-seen order: the first raw occurrence of each record wins.
        seen = set()
        expected = []
        for day in serial_series.days:
            for record in serial_series.records_on(day):
                if record not in seen:
                    seen.add(record)
                    expected.append(record)
        assert sample == expected

    def test_sample_records_rejects_uncollected_day(self, serial_series):
        with pytest.raises(KeyError):
            serial_series.sample_records([END + dt.timedelta(days=10)])

    def test_sample_day_subset(self, serial_series):
        tail = serial_series.days[-3:]
        sample = serial_series.sample_records(tail)
        assert serial_series.last_sample_metrics.days == 3
        assert set(sample) == {
            record for day in tail for record in serial_series.records_on(day)
        }


class TestEffectiveWorkers:
    def test_short_windows_stay_serial(self):
        assert effective_workers(4, 2 * MIN_DAYS_PER_WORKER - 1) == 1

    def test_serial_request_stays_serial(self):
        assert effective_workers(1, 1000) == 1

    def test_capped_by_day_count(self):
        days = 4 * MIN_DAYS_PER_WORKER
        assert effective_workers(64, days) <= days // MIN_DAYS_PER_WORKER

    def test_never_exceeds_request(self):
        assert effective_workers(2, 10_000) <= 2


class TestChunking:
    def test_chunks_partition_days_in_order(self):
        days = [START + dt.timedelta(days=offset) for offset in range(17)]
        chunks = chunk_days(days, workers=4)
        assert [day for chunk in chunks for day in chunk] == days
        assert all(chunks)

    def test_empty_day_list(self):
        assert chunk_days([], workers=4) == []


class TestCache:
    def test_cold_then_warm_identical(self, tmp_path, serial_series):
        cache = SnapshotCache(tmp_path)
        world = build_world(seed=4, scale=WorldScale.small())
        collector = SnapshotCollector.openintel_style(world.internet)
        cold = collector.collect(START, END, cache=cache)
        assert collector.last_metrics.cache_stored
        assert not collector.last_metrics.cache_hit
        warm = collector.collect(START, END, cache=cache)
        assert collector.last_metrics.cache_hit
        assert_series_identical(serial_series, cold)
        assert_series_identical(serial_series, warm)

    def test_changed_seed_misses(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        for seed in (4, 5):
            world = build_world(seed=seed, scale=WorldScale.small())
            collector = SnapshotCollector.openintel_style(world.internet)
            collector.collect(START, START + dt.timedelta(days=2), cache=cache)
            assert not collector.last_metrics.cache_hit
        assert len(cache.entries()) == 2

    def test_changed_window_misses(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        world = build_world(seed=4, scale=WorldScale.small())
        collector = SnapshotCollector.openintel_style(world.internet)
        collector.collect(START, START + dt.timedelta(days=2), cache=cache)
        collector.collect(START, START + dt.timedelta(days=3), cache=cache)
        assert not collector.last_metrics.cache_hit
        assert len(cache.entries()) == 2

    def test_changed_cadence_and_offset_miss(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        world = build_world(seed=4, scale=WorldScale.small())
        daily = SnapshotCollector.openintel_style(world.internet)
        daily.collect(START, START + dt.timedelta(days=8), cache=cache)
        weekly = SnapshotCollector.rapid7_style(world.internet)
        weekly.collect(START, START + dt.timedelta(days=8), cache=cache)
        assert not weekly.last_metrics.cache_hit
        midnight = SnapshotCollector.openintel_style(world.internet, at_offset=None)
        midnight.collect(START, START + dt.timedelta(days=8), cache=cache)
        assert not midnight.last_metrics.cache_hit
        assert len(cache.entries()) == 3

    def test_explicit_invalidation(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        world = build_world(seed=4, scale=WorldScale.small())
        collector = SnapshotCollector.openintel_style(world.internet)
        collector.collect(START, START + dt.timedelta(days=2), cache=cache)
        key = collector.last_metrics.cache_key
        assert cache.invalidate(key)
        assert not cache.invalidate(key)  # already gone
        collector.collect(START, START + dt.timedelta(days=2), cache=cache)
        assert not collector.last_metrics.cache_hit

    def test_clear_drops_everything(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        world = build_world(seed=4, scale=WorldScale.small())
        collector = SnapshotCollector.openintel_style(world.internet)
        collector.collect(START, START + dt.timedelta(days=2), cache=cache)
        collector.collect(START, START + dt.timedelta(days=4), cache=cache)
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        world = build_world(seed=4, scale=WorldScale.small())
        collector = SnapshotCollector.openintel_style(world.internet)
        collector.collect(START, START + dt.timedelta(days=2), cache=cache)
        key = collector.last_metrics.cache_key
        cache.path_for(key).write_text("{ not json")
        assert cache.load(key) is None
        assert cache.entries() == []  # corrupt entry was dropped

    def test_payload_roundtrip_is_json(self, tmp_path):
        cache = SnapshotCache(tmp_path)
        world = build_world(seed=4, scale=WorldScale.small())
        collector = SnapshotCollector.openintel_style(world.internet)
        collector.collect(START, START + dt.timedelta(days=2), cache=cache)
        key = collector.last_metrics.cache_key
        payload = json.loads(cache.path_for(key).read_text())
        assert payload["cadence_days"] == 1
        assert len(payload["days"]) == 2


class TestCacheTokens:
    def test_same_build_args_same_token(self):
        token_a = build_world(seed=4, scale=WorldScale.small()).internet.cache_token()
        token_b = build_world(seed=4, scale=WorldScale.small()).internet.cache_token()
        assert token_a == token_b

    def test_seed_changes_token(self):
        token_a = build_world(seed=4, scale=WorldScale.small()).internet.cache_token()
        token_b = build_world(seed=5, scale=WorldScale.small()).internet.cache_token()
        assert token_a != token_b

    def test_token_stable_across_usage(self, world):
        before = world.internet.cache_token()
        SnapshotCollector.openintel_style(world.internet).collect(
            START, START + dt.timedelta(days=1)
        )
        assert world.internet.cache_token() == before
