"""Fault injection across the campaign: determinism and degradation.

The acceptance property of the fault subsystem: for any plan, the
campaign is a pure function of (world, window, plan) — serial,
process-pool and cache-replayed runs are bit-identical.
"""

import datetime as dt

import pytest

from repro.dns.resolver import ResolutionStatus, StubResolver
from repro.netsim.faults import FAULT_PROFILE_ENV, FaultPlan, NetworkFaultProfile
from repro.netsim.internet import WorldScale, build_world
from repro.scan.cache import CampaignCache
from repro.scan.campaign import SupplementalCampaign

START = dt.date(2021, 11, 1)
END = dt.date(2021, 11, 3)
NETWORKS = ["Academic-A", "ISP-A"]


@pytest.fixture(scope="module")
def world():
    return build_world(seed=11, scale=WorldScale.small())


def fresh_world():
    """A new world per run: the legacy FailureModel on Academic-A's
    server draws sequentially, so running a campaign advances its RNG.
    Bit-identity comparisons need each run to start from the same state
    (the process pool gets this for free by forking fresh copies)."""
    return build_world(seed=11, scale=WorldScale.small())


def make_campaign(world, plan):
    return SupplementalCampaign(world, networks=NETWORKS, fault_plan=plan)


class TestBitIdenticalUnderFaults:
    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan.mild(seed=11),
            FaultPlan.harsh(seed=11),
            FaultPlan(
                name="custom",
                seed=11,
                default_profile=NetworkFaultProfile(
                    icmp_loss_rate=0.3, rdns_timeout_rate=0.1, flap_rate=0.02
                ),
                icmp_retry_budget=1,
                rdns_retry_budget=1,
            ),
        ],
        ids=["mild", "harsh", "custom"],
    )
    def test_serial_parallel_cached_identical(self, plan, tmp_path):
        serial = make_campaign(fresh_world(), plan).run(START, END)

        parallel = make_campaign(fresh_world(), plan)
        par_dataset = parallel.run(START, END, workers=4)
        assert par_dataset.icmp == serial.icmp
        assert par_dataset.rdns == serial.rdns

        cache = CampaignCache(tmp_path)
        warm = make_campaign(fresh_world(), plan)
        stored = warm.run(START, END, cache=cache)
        assert warm.last_metrics.cache_stored
        replay = make_campaign(fresh_world(), plan)
        replayed = replay.run(START, END, cache=cache)
        assert replay.last_metrics.cache_hit
        assert replayed.icmp == stored.icmp == serial.icmp
        assert replayed.rdns == stored.rdns == serial.rdns

    def test_fault_runs_differ_from_clean(self):
        clean = make_campaign(fresh_world(), None).run(START, END)
        faulty = make_campaign(fresh_world(), FaultPlan.harsh(seed=11)).run(START, END)
        assert not (clean.icmp == faulty.icmp and clean.rdns == faulty.rdns)


class TestErrorClasses:
    def test_harsh_profile_produces_every_error_class(self, world):
        dataset = make_campaign(world, FaultPlan.harsh(seed=11)).run(START, END)
        totals = {"servfail": 0, "timeout": 0, "refused": 0}
        for _, _, _, _, servfail, timeout, refused in dataset.error_class_rows():
            totals["servfail"] += servfail
            totals["timeout"] += timeout
            totals["refused"] += refused
        assert all(count > 0 for count in totals.values()), totals

    def test_error_rows_shape_is_preserved(self, world):
        dataset = make_campaign(world, FaultPlan.mild(seed=11)).run(START, END)
        for row in dataset.error_rows():
            assert len(row) == 5
            _, total, nxdomain, servfail, timeout = row
            assert total >= nxdomain + servfail + timeout

    def test_error_class_rows_sum_to_total(self, world):
        dataset = make_campaign(world, FaultPlan.mild(seed=11)).run(START, END)
        assert dataset.error_class_rows(), "campaign produced no rDNS observations"
        for _, total, noerror, nxdomain, servfail, timeout, refused in dataset.error_class_rows():
            assert total == noerror + nxdomain + servfail + timeout + refused

    def test_fault_counters_aggregated(self, world):
        campaign = make_campaign(world, FaultPlan.harsh(seed=11))
        campaign.run(START, END)
        metrics = campaign.last_metrics
        assert metrics.fault_profile == "harsh"
        assert metrics.fault_counters["echoes_lost"] > 0
        assert metrics.fault_counters["rdns_timeouts"] > 0
        assert metrics.fault_counters["rdns_attempts"] >= metrics.fault_counters["lookups"]


class TestCacheKeys:
    def test_clean_key_unchanged_by_fault_feature(self, world, tmp_path, monkeypatch):
        """A plan-less campaign must keep its pre-fault cache keys."""
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        cache = CampaignCache(tmp_path)
        explicit_none = make_campaign(world, None)
        from_env_default = SupplementalCampaign(world, networks=NETWORKS)
        assert from_env_default.fault_plan is None
        assert explicit_none.cache_key(cache, START, END) == from_env_default.cache_key(
            cache, START, END
        )

    def test_fault_plan_changes_key(self, world, tmp_path):
        cache = CampaignCache(tmp_path)
        clean_key = make_campaign(world, None).cache_key(cache, START, END)
        mild_key = make_campaign(world, FaultPlan.mild(seed=11)).cache_key(cache, START, END)
        harsh_key = make_campaign(world, FaultPlan.harsh(seed=11)).cache_key(cache, START, END)
        assert len({clean_key, mild_key, harsh_key}) == 3

    def test_env_variable_activates_plan(self, world, monkeypatch):
        monkeypatch.setenv(FAULT_PROFILE_ENV, "mild")
        campaign = SupplementalCampaign(world, networks=NETWORKS)
        assert campaign.fault_plan is not None
        assert campaign.fault_plan.name == "mild"
        # The world seed keys the plan, for cross-run reproducibility.
        assert campaign.fault_plan.seed == world.rngs.seed


class TestResolverBackoff:
    def test_backoff_schedule_deterministic_and_exponential(self):
        resolver = StubResolver(backoff_base=1.0, fault_plan=FaultPlan.mild(seed=3))
        delays = [resolver.backoff_delay("example", attempt) for attempt in (1, 2, 3)]
        again = [resolver.backoff_delay("example", attempt) for attempt in (1, 2, 3)]
        assert delays == again
        # Exponential envelope: base * 2**(n-1) scaled by [0.5, 1.5).
        for attempt, delay in enumerate(delays, start=1):
            assert 0.5 * 2 ** (attempt - 1) <= delay < 1.5 * 2 ** (attempt - 1)

    def test_zero_base_means_no_backoff(self):
        resolver = StubResolver()
        assert resolver.backoff_delay("example", 3) == 0.0

    def test_health_counters_track_recovery(self, world):
        plan = FaultPlan.harsh(seed=11)
        resolver = world.internet.resolver(
            retries=plan.rdns_retry_budget, fault_plan=plan
        )
        import ipaddress

        for i in range(200):
            resolver.resolve_ptr(ipaddress.ip_address(f"20.0.10.{i % 250 + 1}"), at=i * 60)
        health = resolver.server_health["ns1.campus.stateu.edu"]
        assert health.queries == 200
        assert health.answers > 0
        assert health.timeouts == resolver.timeouts_seen
        assert health.max_consecutive_timeouts >= health.consecutive_timeouts
