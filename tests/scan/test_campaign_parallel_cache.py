"""Regression tests: parallel and cached campaigns match serial exactly."""

import datetime as dt

import pytest

from repro.core.grouping import GroupBuilder
from repro.core.timing import lingering_analysis
from repro.netsim.internet import WorldScale, build_world
from repro.scan.cache import CampaignCache
from repro.scan.campaign import SupplementalCampaign, SupplementalDataset
from repro.scan.campaign_parallel import effective_campaign_workers, run_networks
from repro.scan.reactive import TABLE2_SCHEDULE, BackoffSchedule
from repro.scan.storage import IcmpColumns, RdnsColumns

START = dt.date(2021, 11, 1)
END = dt.date(2021, 11, 3)


@pytest.fixture(scope="module")
def world():
    return build_world(seed=11, scale=WorldScale.small())


@pytest.fixture(scope="module")
def serial_dataset(world):
    return SupplementalCampaign(world).run(START, END)


def assert_datasets_identical(left: SupplementalDataset, right: SupplementalDataset):
    """Bit-identical: every observation, in the same order."""
    assert left.start == right.start and left.end == right.end
    assert len(left.icmp) == len(right.icmp)
    assert len(left.rdns) == len(right.rdns)
    assert list(left.icmp) == list(right.icmp)
    assert list(left.rdns) == list(right.rdns)
    assert left.targets_by_network == right.targets_by_network
    assert left.network_types == right.network_types
    assert left.target_sizes == right.target_sizes
    # Downstream analyses agree too.
    assert left.icmp_stats() == right.icmp_stats()
    assert left.rdns_stats() == right.rdns_stats()
    assert left.table4_rows() == right.table4_rows()
    assert left.error_rows() == right.error_rows()
    left_groups = GroupBuilder().build(left)
    right_groups = GroupBuilder().build(right)
    assert len(left_groups) == len(right_groups)
    left_lingering = lingering_analysis(left_groups)
    right_lingering = lingering_analysis(right_groups)
    assert left_lingering.count == right_lingering.count
    assert left_lingering.histogram() == right_lingering.histogram()


class TestParallelEquivalence:
    def test_two_workers_bit_identical_to_serial(self, serial_dataset):
        # A fresh world: no shared state with the serial fixture.
        world = build_world(seed=11, scale=WorldScale.small())
        parallel = SupplementalCampaign(world).run(START, END, workers=2)
        assert_datasets_identical(serial_dataset, parallel)

    def test_pool_path_bit_identical_to_serial(self, serial_dataset):
        # Drive the process pool directly so the pool code runs even on
        # single-core hosts (where run() would fall back to serial).
        world = build_world(seed=11, scale=WorldScale.small())
        campaign = SupplementalCampaign(world)
        results = run_networks(campaign, START, END, workers=2)
        assert [result.network for result in results] == campaign.network_names
        icmp = IcmpColumns.merged([result.icmp for result in results])
        rdns = RdnsColumns.merged([result.rdns for result in results])
        assert list(icmp) == list(serial_dataset.icmp)
        assert list(rdns) == list(serial_dataset.rdns)

    def test_metrics_report_effective_workers(self, serial_dataset):
        world = build_world(seed=11, scale=WorldScale.small())
        campaign = SupplementalCampaign(world)
        campaign.run(START, END, workers=4)
        metrics = campaign.last_metrics
        assert metrics.workers == 4
        assert metrics.effective_workers == effective_campaign_workers(4, 9)
        assert metrics.networks == 9
        assert metrics.observations > 0
        assert not metrics.cache_hit

    def test_columnar_streams(self, serial_dataset):
        assert isinstance(serial_dataset.icmp, IcmpColumns)
        assert isinstance(serial_dataset.rdns, RdnsColumns)
        # Sequence protocol: indexing, slicing and iteration agree.
        assert serial_dataset.icmp[0] == list(serial_dataset.icmp)[0]
        assert serial_dataset.icmp[:3] == list(serial_dataset.icmp)[:3]


class TestEffectiveWorkers:
    def test_serial_requests_stay_serial(self):
        assert effective_campaign_workers(1, 9) == 1
        assert effective_campaign_workers(0, 9) == 1

    def test_single_network_never_pools(self):
        assert effective_campaign_workers(8, 1) == 1

    def test_capped_by_networks(self):
        assert effective_campaign_workers(64, 9) <= 9


class TestCampaignCache:
    def test_warm_cache_bit_identical(self, serial_dataset, tmp_path):
        cache = CampaignCache(tmp_path)
        world = build_world(seed=11, scale=WorldScale.small())
        campaign = SupplementalCampaign(world)
        cold = campaign.run(START, END, cache=cache)
        assert campaign.last_metrics.cache_stored
        assert not campaign.last_metrics.cache_hit
        assert_datasets_identical(serial_dataset, cold)

        warm = campaign.run(START, END, cache=cache)
        assert campaign.last_metrics.cache_hit
        assert_datasets_identical(serial_dataset, warm)

    def test_payload_round_trip(self, serial_dataset):
        rebuilt = SupplementalDataset.from_payload(serial_dataset.to_payload())
        assert_datasets_identical(serial_dataset, rebuilt)

    def test_different_seed_misses(self, tmp_path):
        cache = CampaignCache(tmp_path)
        one = SupplementalCampaign(build_world(seed=11, scale=WorldScale.small()))
        two = SupplementalCampaign(build_world(seed=12, scale=WorldScale.small()))
        assert one.cache_key(cache, START, END) != two.cache_key(cache, START, END)

    def test_different_schedule_misses(self, tmp_path):
        cache = CampaignCache(tmp_path)
        world = build_world(seed=11, scale=WorldScale.small())
        default = SupplementalCampaign(world)
        tweaked = SupplementalCampaign(
            world,
            schedule=BackoffSchedule(
                steps=TABLE2_SCHEDULE.steps,
                tail_interval=TABLE2_SCHEDULE.tail_interval * 2,
            ),
        )
        assert default.cache_key(cache, START, END) != tweaked.cache_key(cache, START, END)

    def test_different_window_misses(self, tmp_path):
        cache = CampaignCache(tmp_path)
        campaign = SupplementalCampaign(build_world(seed=11, scale=WorldScale.small()))
        assert campaign.cache_key(cache, START, END) != campaign.cache_key(
            cache, START, END + dt.timedelta(days=1)
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = CampaignCache(tmp_path)
        campaign = SupplementalCampaign(build_world(seed=11, scale=WorldScale.small()))
        dataset = campaign.run(START, END, cache=cache)
        key = campaign.last_metrics.cache_key
        cache.path_for(key).write_text("{truncated", encoding="utf-8")
        again = campaign.run(START, END, cache=cache)
        assert not campaign.last_metrics.cache_hit
        assert_datasets_identical(dataset, again)
