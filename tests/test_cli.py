"""Tests for the command-line interface (quick-world paths only)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_bad_date(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--start", "yesterday"])

    def test_defaults(self):
        args = build_parser().parse_args(["study"])
        assert args.seed == 42
        assert not args.quick


class TestStudyCommand:
    def test_quick_study_prints_findings(self):
        code, output = run_cli("--quick", "--seed", "1", "study")
        assert code == 0
        assert "dynamic" in output
        assert "Identified identity-leaking networks" in output
        assert "stateu.edu" in output
        assert "academic" in output


class TestCampaignCommand:
    def test_campaign_with_csv_export(self, tmp_path):
        icmp_csv = tmp_path / "icmp.csv"
        rdns_csv = tmp_path / "rdns.csv"
        code, output = run_cli(
            "--quick", "--seed", "1", "campaign",
            "--start", "2021-11-01", "--end", "2021-11-02",
            "--networks", "Academic-C",
            "--icmp-csv", str(icmp_csv), "--rdns-csv", str(rdns_csv),
        )
        assert code == 0
        assert "Campaign 2021-11-01..2021-11-02" in output
        assert "Academic-C" in output
        assert icmp_csv.exists() and rdns_csv.exists()
        assert len(icmp_csv.read_text().splitlines()) > 1


class TestTrackCommand:
    def test_tracking_brian_on_academic_a(self):
        code, output = run_cli(
            "--quick", "--seed", "1", "track", "brian",
            "--network", "Academic-A",
            "--start", "2021-11-01", "--end", "2021-11-03",
        )
        assert code == 0
        assert "brians-" in output

    def test_tracking_unknown_name_reports_nothing(self):
        code, output = run_cli(
            "--quick", "--seed", "1", "track", "zebediah",
            "--network", "Academic-C",
            "--start", "2021-11-01", "--end", "2021-11-02",
        )
        assert code == 1
        assert "no devices" in output


class TestHeistCommand:
    def test_heist_recommendation(self):
        code, output = run_cli(
            "--quick", "--seed", "1", "heist",
            "--network", "Academic-C",
            "--start", "2021-11-01", "--end", "2021-11-03",
        )
        assert code == 0
        assert "Quietest weekday hour" in output


class TestSnapshotCommand:
    def test_snapshot_dump(self):
        code, output = run_cli(
            "--quick", "--seed", "1", "snapshot", "--date", "2021-03-03",
            "--network", "Academic-A", "--limit", "10",
        )
        assert code == 0
        assert "campus.stateu.edu" in output

    def test_snapshot_respects_limit(self):
        code, output = run_cli(
            "--quick", "--seed", "1", "snapshot", "--date", "2021-03-03", "--limit", "5"
        )
        data_lines = [line for line in output.splitlines() if "\t" in line]
        assert len(data_lines) == 5


class TestAuditCommand:
    def test_audit_grades_networks(self):
        code, output = run_cli(
            "--quick", "--seed", "1", "audit",
            "--start", "2021-11-01", "--end", "2021-11-02",
            "--networks", "Academic-C", "ISP-A",
        )
        assert code == 0
        assert "Grade" in output
        assert "Academic-C" in output


class TestSnapshotCacheFlags:
    def test_timings_and_cache_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        code, output = run_cli(
            "--quick", "--seed", "1", "--snapshot-cache", cache_dir, "--timings", "study"
        )
        assert code == 0
        assert "[timings]" in output
        assert "cache miss, stored" in output
        code, output = run_cli(
            "--quick", "--seed", "1", "--snapshot-cache", cache_dir, "--timings", "study"
        )
        assert code == 0
        assert "cache hit" in output

    def test_clear_cache_standalone(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_cli("--quick", "--seed", "1", "--snapshot-cache", cache_dir, "study")
        code, output = run_cli("--snapshot-cache", cache_dir, "--clear-snapshot-cache")
        assert code == 0
        assert "cleared 1 cached snapshot series" in output

    def test_workers_flag_accepted(self):
        code, output = run_cli("--quick", "--seed", "1", "--workers", "2", "study")
        assert code == 0
        assert "dynamic" in output


class TestObservabilityFlags:
    CAMPAIGN_ARGS = (
        "--start", "2021-11-01", "--end", "2021-11-02",
        "--networks", "Academic-C",
    )

    def test_metrics_out_writes_manifest(self, tmp_path):
        manifest_path = tmp_path / "m.json"
        code, output = run_cli(
            "--quick", "--seed", "1", "--metrics-out", str(manifest_path),
            "supplemental", *self.CAMPAIGN_ARGS,
        )
        assert code == 0
        assert "wrote run manifest" in output

        import json

        payload = json.loads(manifest_path.read_text())
        assert payload["run"]["seed"] == 1
        assert payload["run"]["command"] == "campaign"
        assert "world_fingerprint" in payload["run"]
        assert payload["metrics"]["counters"]["resolver_queries_total"]["value"] > 0
        assert "timings" in payload

    def test_supplemental_alias_matches_campaign(self, tmp_path):
        import json

        def deterministic(path, command):
            code, _ = run_cli(
                "--quick", "--seed", "1", "--metrics-out", str(path),
                command, *self.CAMPAIGN_ARGS,
            )
            assert code == 0
            payload = json.loads(path.read_text())
            payload.pop("timings")
            return json.dumps(payload, sort_keys=True)

        alias = deterministic(tmp_path / "alias.json", "supplemental")
        canonical = deterministic(tmp_path / "canonical.json", "campaign")
        assert alias == canonical

    def test_trace_prints_span_tree(self):
        code, output = run_cli(
            "--quick", "--seed", "1", "--trace", "supplemental", *self.CAMPAIGN_ARGS
        )
        assert code == 0
        assert "[trace]" in output
        assert "campaign.run" in output
        assert "campaign.network[network=Academic-C]" in output

    def test_env_var_fallback(self, tmp_path, monkeypatch):
        manifest_path = tmp_path / "env.json"
        monkeypatch.setenv("REPRO_METRICS_OUT", str(manifest_path))
        code, output = run_cli(
            "--quick", "--seed", "1", "supplemental", *self.CAMPAIGN_ARGS
        )
        assert code == 0
        assert manifest_path.exists()

    def test_disabled_by_default(self, tmp_path):
        code, output = run_cli(
            "--quick", "--seed", "1", "campaign", *self.CAMPAIGN_ARGS
        )
        assert code == 0
        assert "manifest" not in output


class TestSpecAndSave:
    def test_campaign_from_spec_with_save(self, tmp_path):
        import json

        spec = {
            "seed": 3,
            "networks": [
                {
                    "kind": "enterprise",
                    "name": "Spec-Corp",
                    "prefix": "10.50.0.0/16",
                    "suffix": "corp.spec.example",
                    "office_prefix": "10.50.1.0/24",
                    "employees": 10,
                    "supplemental": True,
                }
            ],
        }
        spec_path = tmp_path / "world.json"
        spec_path.write_text(json.dumps(spec))
        save_dir = tmp_path / "dataset"
        code, output = run_cli(
            "--spec", str(spec_path), "campaign",
            "--start", "2021-11-01", "--end", "2021-11-02",
            "--save-dir", str(save_dir),
        )
        assert code == 0
        assert "Spec-Corp" in output
        assert (save_dir / "dataset.json").exists()


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8400
        assert args.leak_sample_days is None

    def test_rejects_non_positive_leak_sample_days(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--leak-sample-days", "0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--leak-sample-days", "-3"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["study", "--leak-sample-days", "many"])

    def test_serve_builds_app_and_hands_off(self, monkeypatch):
        import repro.serve

        handed = {}

        def fake_run_app(app, host, port):
            handed.update(app=app, host=host, port=port)

        monkeypatch.setattr(repro.serve, "run_app", fake_run_app)
        code, output = run_cli(
            "--quick", "--seed", "1", "serve", "--port", "9999"
        )
        assert code == 0
        assert handed["host"] == "127.0.0.1"
        assert handed["port"] == 9999
        assert "serving 21 day(s)" in output
        assert "http://127.0.0.1:9999" in output
        # The handed-off app is live: it answers a dispatch in-process.
        status, payload = handed["app"].dispatch("GET", "/healthz")
        assert status == 200
        assert payload["days"] == 21


class TestCadenceErrorSurfacing:
    """Regression: a mixed-spacing snapshot series used to escape as a
    raw ValueError traceback; the CLI now prints a one-line actionable
    error and exits 2."""

    MESSAGE = (
        "mixed snapshot spacing: days 2021-01-01..2021-01-05 arrived at "
        "irregular intervals"
    )

    def test_study_prints_one_line_error(self, monkeypatch, capsys):
        from repro.core.pipeline import ReproductionStudy

        def boom(self):
            raise ValueError(TestCadenceErrorSurfacing.MESSAGE)

        monkeypatch.setattr(ReproductionStudy, "dynamicity", boom)
        code, _ = run_cli("--quick", "--seed", "1", "study")
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.strip() == (
            f"error: irregular snapshot series — {self.MESSAGE}"
        )
        assert "Traceback" not in captured.err

    def test_unrelated_value_errors_use_generic_handler(self, monkeypatch, capsys):
        from repro.core.pipeline import ReproductionStudy

        def boom(self):
            raise ValueError("something else entirely")

        monkeypatch.setattr(ReproductionStudy, "dynamicity", boom)
        code, _ = run_cli("--quick", "--seed", "1", "study")
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.strip() == "rdns-privacy: error: something else entirely"
        assert "irregular snapshot series" not in captured.err
