"""Tests for presence profiles."""

import datetime as dt
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.behavior import (
    AlwaysOnProfile,
    OfficeWorkerProfile,
    PresenceProfile,
    ProfileKind,
    ResidentProfile,
    ScriptedProfile,
    Session,
    StudentProfile,
    VisitorProfile,
)
from repro.netsim.simtime import DAY, HOUR

WEEKDAY = dt.date(2021, 11, 3)  # a Wednesday
SATURDAY = dt.date(2021, 11, 6)


def rng(seed=0):
    return random.Random(seed)


class TestSession:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            Session(10, 10)
        with pytest.raises(ValueError):
            Session(-1, 10)
        with pytest.raises(ValueError):
            Session(0, DAY + 1)

    def test_duration_and_contains(self):
        session = Session(HOUR, 3 * HOUR)
        assert session.duration == 2 * HOUR
        assert session.contains(HOUR)
        assert not session.contains(3 * HOUR)


def attendance_rate(profile, day, n=300, factor=1.0):
    present = sum(
        1 for i in range(n) if profile.sessions_for_day(day, rng(i), factor)
    )
    return present / n


class TestOfficeWorkerProfile:
    def test_weekday_attendance_high(self):
        assert attendance_rate(OfficeWorkerProfile(), WEEKDAY) > 0.7

    def test_weekend_attendance_low(self):
        assert attendance_rate(OfficeWorkerProfile(), SATURDAY) < 0.15

    def test_factor_suppresses_attendance(self):
        locked_down = attendance_rate(OfficeWorkerProfile(), WEEKDAY, factor=0.25)
        assert locked_down < 0.35

    def test_sessions_are_daytime(self):
        for i in range(100):
            for session in OfficeWorkerProfile().sessions_for_day(WEEKDAY, rng(i)):
                assert session.start >= 5 * HOUR
                assert session.end <= 22 * HOUR

    def test_sessions_are_ordered_and_disjoint(self):
        for i in range(100):
            sessions = OfficeWorkerProfile().sessions_for_day(WEEKDAY, rng(i))
            for a, b in zip(sessions, sessions[1:]):
                assert a.end <= b.start


class TestStudentProfile:
    def test_produces_one_to_three_sessions(self):
        for i in range(100):
            sessions = StudentProfile().sessions_for_day(WEEKDAY, rng(i))
            assert 0 <= len(sessions) <= 3

    def test_weekend_presence_possible_but_rarer(self):
        weekday = attendance_rate(StudentProfile(), WEEKDAY)
        weekend = attendance_rate(StudentProfile(), SATURDAY)
        assert weekend < weekday


class TestResidentProfile:
    def test_present_most_days(self):
        assert attendance_rate(ResidentProfile(), WEEKDAY) > 0.8

    def test_evening_and_morning_shape(self):
        sessions = ResidentProfile().sessions_for_day(WEEKDAY, rng(3))
        if sessions and len(sessions) >= 2:
            assert sessions[0].start == 0  # night tail into the morning
            assert sessions[-1].end == DAY  # evening through midnight

    def test_factor_above_one_raises_attendance(self):
        base = attendance_rate(ResidentProfile(attendance=0.7), WEEKDAY, factor=1.0)
        boosted = attendance_rate(ResidentProfile(attendance=0.7), WEEKDAY, factor=1.15)
        assert boosted >= base


class TestAlwaysOnProfile:
    def test_always_full_day(self):
        sessions = AlwaysOnProfile().sessions_for_day(WEEKDAY, rng())
        assert sessions == [Session(0, DAY)]

    @given(st.integers(min_value=0, max_value=10_000))
    def test_any_seed_any_day(self, seed):
        assert AlwaysOnProfile().is_present_on(WEEKDAY, rng(seed))


class TestVisitorProfile:
    def test_rare_and_short(self):
        assert attendance_rate(VisitorProfile(), WEEKDAY) < 0.4
        for i in range(200):
            for session in VisitorProfile().sessions_for_day(WEEKDAY, rng(i)):
                assert session.duration <= 2 * HOUR

    def test_never_on_weekends(self):
        assert attendance_rate(VisitorProfile(), SATURDAY) == 0.0


class TestScriptedProfile:
    def test_script_takes_precedence(self):
        profile = ScriptedProfile(lambda day: [Session(0, HOUR)])
        assert profile.sessions_for_day(WEEKDAY, rng()) == [Session(0, HOUR)]

    def test_none_falls_through_to_default(self):
        profile = ScriptedProfile(lambda day: None, default=AlwaysOnProfile())
        assert profile.sessions_for_day(WEEKDAY, rng()) == [Session(0, DAY)]

    def test_none_without_default_is_absent(self):
        profile = ScriptedProfile(lambda day: None)
        assert profile.sessions_for_day(WEEKDAY, rng()) == []

    def test_empty_list_means_absent(self):
        profile = ScriptedProfile(lambda day: [], default=AlwaysOnProfile())
        assert not profile.is_present_on(WEEKDAY, rng())


class TestFactory:
    def test_of_returns_defaults(self):
        assert isinstance(PresenceProfile.of(ProfileKind.STUDENT), StudentProfile)
        assert isinstance(PresenceProfile.of(ProfileKind.ALWAYS_ON), AlwaysOnProfile)

    def test_of_rejects_scripted(self):
        with pytest.raises(ValueError):
            PresenceProfile.of(ProfileKind.SCRIPTED)

    def test_determinism_same_rng_same_sessions(self):
        profile = StudentProfile()
        assert profile.sessions_for_day(WEEKDAY, rng(5)) == profile.sessions_for_day(WEEKDAY, rng(5))


class TestHybridWorkerProfile:
    def test_only_office_days(self):
        from repro.netsim.behavior import HybridWorkerProfile

        profile = HybridWorkerProfile(office_days=(1, 2, 3))
        monday, tuesday = dt.date(2021, 11, 1), dt.date(2021, 11, 2)
        assert attendance_rate(profile, monday) == 0.0
        assert attendance_rate(profile, tuesday) > 0.7

    def test_validation(self):
        from repro.netsim.behavior import HybridWorkerProfile

        with pytest.raises(ValueError):
            HybridWorkerProfile(office_days=())
        with pytest.raises(ValueError):
            HybridWorkerProfile(office_days=(9,))


class TestNightShiftProfile:
    def test_sessions_straddle_midnight(self):
        from repro.netsim.behavior import NightShiftProfile

        profile = NightShiftProfile()
        sessions = profile.sessions_for_day(WEEKDAY, rng(4))
        if sessions:
            assert sessions[0].start == 0
            assert sessions[0].end <= 8 * HOUR
            assert sessions[-1].end == DAY
            assert sessions[-1].start >= 20 * HOUR

    def test_present_at_night_absent_at_noon(self):
        from repro.netsim.behavior import NightShiftProfile

        profile = NightShiftProfile(attendance=1.0)
        sessions = profile.sessions_for_day(WEEKDAY, rng(1))
        assert any(s.contains(2 * HOUR) for s in sessions)
        assert not any(s.contains(12 * HOUR) for s in sessions)

    def test_weekends_off(self):
        from repro.netsim.behavior import NightShiftProfile

        assert attendance_rate(NightShiftProfile(), SATURDAY) == 0.0
