"""Edge cases: housing response, provisioning, snapshot offsets."""

import datetime as dt

import pytest

from repro.ipam import CarryOverPolicy, NoUpdatePolicy, StaticTemplatePolicy
from repro.netsim.behavior import OfficeWorkerProfile
from repro.netsim.calendar import CovidTimeline
from repro.netsim.device import Device, DeviceNaming, model_by_key
from repro.netsim.internet import WorldScale
from repro.netsim.network import Network, NetworkType, Subnet, SubnetRole
from repro.netsim.rng import RngStreams
from repro.netsim.simtime import HOUR

WEDNESDAY = dt.date(2021, 3, 3)
LOCKDOWN_DAY = dt.date(2020, 4, 1)


def office_device(index):
    return Device(
        device_id=f"d{index}",
        model=model_by_key("iphone"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name="emma",
        owner_id=f"p{index}",
        profile=OfficeWorkerProfile(),
    )


class TestHousingResponse:
    def make_network(self, response):
        network = Network(
            "n",
            NetworkType.ACADEMIC,
            "10.0.0.0/16",
            "campus.example.edu",
            covid=CovidTimeline.typical_university(),
            housing_response=response,
            rngs=RngStreams(0),
        )
        housing = Subnet(
            "10.0.20.0/24",
            SubnetRole.HOUSING,
            devices=[office_device(0)],
            policy=CarryOverPolicy("campus.example.edu"),
        )
        network.add_subnet(housing)
        return network, housing

    def test_shelter_raises_housing_factor_under_lockdown(self):
        network, housing = self.make_network("shelter")
        assert network.day_factor(LOCKDOWN_DAY, housing) > network.day_factor(
            LOCKDOWN_DAY, housing
        ) * 0.99  # sanity
        assert network.day_factor(LOCKDOWN_DAY, housing) > 1.0

    def test_exodus_suppresses_housing_too(self):
        network, housing = self.make_network("exodus")
        assert network.day_factor(LOCKDOWN_DAY, housing) < 0.5

    def test_invalid_response_rejected(self):
        with pytest.raises(ValueError):
            Network(
                "n", NetworkType.ACADEMIC, "10.0.0.0/16", "x.example",
                housing_response="panic",
            )


class TestProvisionedSubnets:
    def make_subnet(self, policy):
        return Subnet(
            "10.0.10.0/24",
            SubnetRole.DYNAMIC_CLIENTS,
            devices=[office_device(i) for i in range(3)],
            policy=policy,
        )

    def test_static_template_constant_and_full(self):
        subnet = self.make_subnet(StaticTemplatePolicy("dynamic.example.edu"))
        rngs = RngStreams(0)
        first = list(subnet.records_on(WEDNESDAY, rngs))
        second = list(subnet.records_on(WEDNESDAY + dt.timedelta(days=30), rngs))
        assert first == second
        assert len(first) > 200  # the whole usable pool
        assert subnet.count_on(WEDNESDAY, rngs) == len(first)

    def test_no_update_policy_yields_nothing(self):
        subnet = self.make_subnet(NoUpdatePolicy("x.example"))
        rngs = RngStreams(0)
        assert list(subnet.records_on(WEDNESDAY, rngs)) == []
        assert subnet.count_on(WEDNESDAY, rngs) == 0

    def test_carry_over_varies_with_presence(self):
        subnet = self.make_subnet(CarryOverPolicy("campus.example.edu"))
        rngs = RngStreams(0)
        noon = subnet.count_on(WEDNESDAY, rngs, at_offset=12 * HOUR)
        midnight = subnet.count_on(WEDNESDAY, rngs, at_offset=3 * HOUR)
        assert noon >= midnight  # office workers are in at noon, not 3 AM


class TestSnapshotOffsets:
    def test_noon_sampling_differs_from_any_time(self):
        subnet = Subnet(
            "10.0.10.0/24",
            SubnetRole.DYNAMIC_CLIENTS,
            devices=[office_device(i) for i in range(20)],
            policy=CarryOverPolicy("campus.example.edu"),
        )
        rngs = RngStreams(3)
        any_time = subnet.count_on(WEDNESDAY, rngs, at_offset=None)
        at_3am = subnet.count_on(WEDNESDAY, rngs, at_offset=3 * HOUR)
        assert at_3am < any_time  # nobody's in the office at 3 AM

    def test_presence_at_is_subset_of_presence_on(self):
        device = office_device(0)
        rngs = RngStreams(1)
        for offset in range(0, 24):
            if device.is_present_at(WEDNESDAY, offset * HOUR, rngs):
                assert device.is_present_on(WEDNESDAY, rngs)


class TestWorldScale:
    def test_identified_target_counts_components(self):
        scale = WorldScale()
        assert scale.identified_target == 9 + scale.extra_academic + scale.extra_isp + (
            scale.extra_other + scale.extra_enterprise + scale.extra_government
        )

    def test_small_scale_is_smaller(self):
        small, full = WorldScale.small(), WorldScale()
        assert small.supplemental_people < full.supplemental_people
        assert small.identified_target < full.identified_target
