"""Property tests pinning the calendar-queue engine to the heap oracle.

Randomized schedules — one-shot events, cancellations, recurring
streams, events scheduled from inside callbacks — run through both
:class:`SimulationEngine` (calendar queue) and :class:`ReferenceEngine`
(the original single binary heap).  The callback order, the ``now()``
trace observed at each callback, and the engine counters must match
exactly, the way ``DictReferenceAnalyzer`` pins the columnar analyzers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.engine import ReferenceEngine, SimulationEngine


def record_trace(engine, script, *, end=None):
    """Run ``script`` on ``engine``, returning the (tag, now) trace.

    ``script`` is a list of op tuples interpreted in order before the
    run starts:

    - ``("at", t, tag)``: schedule a one-shot at ``t``.
    - ``("cancel", i)``: cancel the i-th scheduled handle (modulo the
      number of handles so far; no-op when none exist yet).
    - ``("every", interval, tag, until)``: a recurring stream.
    - ``("spawn", t, delay, tag)``: a one-shot at ``t`` whose callback
      schedules another event ``delay`` later — exercises scheduling
      from inside the run loop.
    """
    trace = []
    handles = []

    def oneshot(tag):
        return lambda: trace.append((tag, engine.now))

    def spawner(t, delay, tag):
        def fire():
            trace.append((tag, engine.now))
            engine.schedule(engine.now + delay, oneshot(tag + "+"))

        return fire

    for op in script:
        if op[0] == "at":
            _, t, tag = op
            handles.append(engine.schedule(t, oneshot(tag)))
        elif op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif op[0] == "every":
            _, interval, tag, until = op
            engine.schedule_every(interval, oneshot(tag), until=until)
        elif op[0] == "spawn":
            _, t, delay, tag = op
            handles.append(engine.schedule(t, spawner(t, delay, tag)))
    if end is None:
        executed = engine.run()
    else:
        executed = engine.run_until(end)
    return trace, executed


tags = st.text(alphabet="abcdef", min_size=1, max_size=2)
ops = st.one_of(
    st.tuples(st.just("at"), st.integers(0, 5000), tags),
    st.tuples(st.just("cancel"), st.integers(0, 30)),
    st.tuples(
        st.just("every"), st.integers(1, 400), tags, st.integers(0, 5000)
    ),
    st.tuples(
        st.just("spawn"), st.integers(0, 5000), st.integers(0, 500), tags
    ),
)
scripts = st.lists(ops, min_size=1, max_size=40)


@settings(max_examples=200, deadline=None)
@given(script=scripts, end=st.one_of(st.none(), st.integers(0, 6000)))
def test_trace_equivalence(script, end):
    calendar = SimulationEngine()
    reference = ReferenceEngine()
    trace_c, ran_c = record_trace(calendar, script, end=end)
    trace_r, ran_r = record_trace(reference, script, end=end)
    assert trace_c == trace_r
    assert ran_c == ran_r
    assert calendar.now == reference.now
    assert calendar.pending == reference.pending
    assert calendar.events_run == reference.events_run
    assert calendar.queue_high_water == reference.queue_high_water


@settings(max_examples=100, deadline=None)
@given(
    script=scripts,
    width=st.sampled_from([1, 7, 64, 1024, 100000]),
    end=st.integers(0, 6000),
)
def test_bucket_width_invariance(script, width, end):
    # Any bucket width must produce the same trace — width only moves
    # work between the bucket heap and the per-bucket heaps.
    default = SimulationEngine()
    tuned = SimulationEngine(bucket_width=width)
    assert record_trace(default, script, end=end) == record_trace(
        tuned, script, end=end
    )


@settings(max_examples=100, deadline=None)
@given(script=scripts, split=st.integers(0, 6000), end=st.integers(0, 6000))
def test_run_until_resume_equivalence(script, split, end):
    # Running to `end` in one call matches splitting at an arbitrary
    # intermediate point on both engines.
    lo, hi = min(split, end), max(split, end)
    whole = SimulationEngine()
    trace_whole, _ = record_trace(whole, script, end=hi)
    parts = ReferenceEngine()
    trace_parts = []
    handles = []

    def oneshot(tag):
        return lambda: trace_parts.append((tag, parts.now))

    def spawner(t, delay, tag):
        def fire():
            trace_parts.append((tag, parts.now))
            parts.schedule(parts.now + delay, oneshot(tag + "+"))

        return fire

    for op in script:
        if op[0] == "at":
            handles.append(parts.schedule(op[1], oneshot(op[2])))
        elif op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif op[0] == "every":
            parts.schedule_every(op[1], oneshot(op[2]), until=op[3])
        elif op[0] == "spawn":
            handles.append(parts.schedule(op[1], spawner(op[1], op[2], op[3])))
    parts.run_until(lo)
    parts.run_until(hi)
    assert trace_whole == trace_parts
    assert whole.now == parts.now
