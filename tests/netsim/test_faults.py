"""Tests for the deterministic fault-injection plans."""

import pytest

from repro.netsim.faults import (
    FAULT_PROFILE_ENV,
    FAULT_PROFILES,
    FaultPlan,
    NetworkFaultProfile,
    OutageWindow,
    keyed_uniform,
    plan_from_profile,
    resolve_fault_plan,
)
from repro.netsim.simtime import DAY, HOUR


class TestKeyedUniform:
    def test_deterministic(self):
        assert keyed_uniform(7, "a", 3) == keyed_uniform(7, "a", 3)

    def test_in_unit_interval(self):
        draws = [keyed_uniform(0, "net", i, j) for i in range(50) for j in range(4)]
        assert all(0.0 <= draw < 1.0 for draw in draws)

    def test_sensitive_to_every_part(self):
        base = keyed_uniform(0, "net", 1, 2)
        assert keyed_uniform(1, "net", 1, 2) != base
        assert keyed_uniform(0, "other", 1, 2) != base
        assert keyed_uniform(0, "net", 9, 2) != base
        assert keyed_uniform(0, "net", 1, 9) != base

    def test_roughly_uniform(self):
        draws = [keyed_uniform(3, "u", i) for i in range(2000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55


class TestProfilesAndValidation:
    def test_preset_names(self):
        assert FAULT_PROFILES == ("none", "mild", "harsh")
        assert plan_from_profile("none") is None
        assert plan_from_profile("mild").name == "mild"
        assert plan_from_profile("harsh").name == "harsh"

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            plan_from_profile("catastrophic")

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            NetworkFaultProfile(icmp_loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(icmp_retry_budget=-1)

    def test_quiet_plan(self):
        assert FaultPlan().quiet
        assert not FaultPlan.mild().quiet

    def test_outage_window_validation(self):
        with pytest.raises(ValueError):
            OutageWindow(start=10, end=5)
        window = OutageWindow(start=10, end=20)
        assert window.covers(10) and window.covers(19)
        assert not window.covers(20)


class TestDraws:
    def test_echo_loss_deterministic_and_order_independent(self):
        plan = FaultPlan.mild(seed=5)
        forward = [plan.echo_lost("net", a, 100, 0) for a in range(200)]
        backward = [plan.echo_lost("net", a, 100, 0) for a in reversed(range(200))]
        assert forward == list(reversed(backward))

    def test_echo_loss_rate_close_to_nominal(self):
        plan = FaultPlan.mild(seed=1)
        losses = sum(plan.echo_lost("net", a, 0, 0) for a in range(20000))
        assert losses == pytest.approx(20000 * 0.02, rel=0.25)

    def test_server_behavior_deterministic(self):
        plan = FaultPlan.harsh(seed=2)
        outcomes = [plan.server_behavior("net", f"q{i}", i * 60) for i in range(500)]
        assert outcomes == [plan.server_behavior("net", f"q{i}", i * 60) for i in range(500)]
        kinds = set(outcomes)
        assert "timeout" in kinds or "servfail" in kinds

    def test_explicit_outage_forces_failure(self):
        profile = NetworkFaultProfile(
            outages=(OutageWindow(start=0, end=HOUR, mode="servfail"),)
        )
        plan = FaultPlan(default_profile=profile)
        assert plan.server_behavior("net", "q", 100) == "servfail"
        assert plan.server_behavior("net", "q", HOUR + 1) is None

    def test_daily_outage_deterministic(self):
        plan = FaultPlan.harsh(seed=9)
        days = [plan.outage_for_day("net", day) for day in range(60)]
        assert days == [plan.outage_for_day("net", day) for day in range(60)]
        hit = [window for window in days if window is not None]
        assert hit, "harsh profile should schedule some outages in 60 days"
        for window in hit:
            assert 0 <= window.start < window.end <= 60 * DAY

    def test_per_network_override(self):
        noisy = NetworkFaultProfile(icmp_loss_rate=1.0)
        plan = FaultPlan().with_network("loud", noisy)
        assert plan.echo_lost("loud", 1, 0, 0)
        assert not plan.echo_lost("other", 1, 0, 0)

    def test_cache_token_stable_and_distinct(self):
        assert FaultPlan.mild(seed=4).cache_token() == FaultPlan.mild(seed=4).cache_token()
        assert FaultPlan.mild(seed=4).cache_token() != FaultPlan.mild(seed=5).cache_token()
        assert FaultPlan.mild().cache_token() != FaultPlan.harsh().cache_token()


class TestResolveFaultPlan:
    def test_explicit_profile_wins(self):
        env = {FAULT_PROFILE_ENV: "harsh"}
        assert resolve_fault_plan("none", environ=env) is None
        assert resolve_fault_plan("mild", environ=env).name == "mild"

    def test_env_fallback(self):
        assert resolve_fault_plan(None, environ={}) is None
        assert resolve_fault_plan(None, environ={FAULT_PROFILE_ENV: ""}) is None
        plan = resolve_fault_plan(None, seed=6, environ={FAULT_PROFILE_ENV: "mild"})
        assert plan is not None and plan.name == "mild" and plan.seed == 6

    def test_bad_env_value_raises(self):
        with pytest.raises(ValueError):
            resolve_fault_plan(None, environ={FAULT_PROFILE_ENV: "nope"})
