"""World plans: validation, sharding, and subset-build equivalence."""

import datetime as dt

import pytest

from repro.netsim.worldplan import (
    LazyPlanInternet,
    PlanError,
    WorldPlan,
    contiguous_blocks,
    synthetic_plan,
)
from repro.scan.snapshot import SnapshotCollector, derive_day

OFFSET = SnapshotCollector.DEFAULT_SNAPSHOT_OFFSET


def entry(**overrides):
    base = {
        "kind": "academic",
        "name": "plan-academic-0000",
        "prefix": "100.0.0.0/16",
        "suffix": "campus.plan0000.edu",
        "education_prefix": "100.0.10.0/24",
        "staff": 4,
        "students": 4,
    }
    base.update(overrides)
    return base


class TestValidation:
    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError, match="at least one"):
            WorldPlan(0, []).validate()

    def test_missing_keys_rejected(self):
        with pytest.raises(PlanError, match="missing keys"):
            WorldPlan(0, [{"kind": "academic", "name": "x"}]).validate()

    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError, match="unknown kind"):
            WorldPlan(0, [entry(kind="botnet")]).validate()

    def test_duplicate_name_rejected(self):
        plan = WorldPlan(
            0, [entry(), entry(prefix="101.0.0.0/16", suffix="other.edu")]
        )
        with pytest.raises(PlanError, match="duplicate network name"):
            plan.validate()

    def test_bad_prefix_rejected(self):
        with pytest.raises(PlanError, match="bad prefix"):
            WorldPlan(0, [entry(prefix="100.0.0.0/33")]).validate()

    def test_misaligned_prefix_fails_loudly(self):
        # A /20 cannot be parented in in-addr.arpa: its rounded origin
        # would claim the whole covering /16 and collide with siblings.
        with pytest.raises(PlanError, match="octet boundary"):
            WorldPlan(0, [entry(prefix="100.0.0.0/20")]).validate()

    def test_sub_slash24_prefix_is_fine(self):
        # Below /24 the zone is classless (RFC 2317 glue), not rounded.
        WorldPlan(
            0, [entry(prefix="100.0.0.64/26", education_prefix="100.0.0.64/26")]
        ).validate()

    def test_unknown_zone_layout_rejected(self):
        with pytest.raises(PlanError, match="zone_layout"):
            WorldPlan(0, [entry(zone_layout="mesh")]).validate()

    def test_unknown_rdns_mode_rejected(self):
        with pytest.raises(PlanError, match="rdns mode"):
            WorldPlan(0, [entry(rdns_mode="sometimes")]).validate()

    def test_rfc2317_mode_needs_sub_slash24_subnets(self):
        bad = entry(rdns_mode="rfc2317", education_prefix="100.0.10.0/24")
        with pytest.raises(PlanError, match="rfc2317"):
            WorldPlan(0, [bad]).validate()

    def test_overlapping_prefixes_rejected(self):
        plan = WorldPlan(
            0,
            [
                entry(),
                entry(
                    name="plan-academic-0001",
                    prefix="100.0.64.0/24",
                    education_prefix="100.0.64.0/24",
                ),
            ],
        )
        with pytest.raises(PlanError, match="overlap"):
            plan.validate()


class TestContiguousBlocks:
    def test_order_preserved_and_balanced(self):
        blocks = contiguous_blocks(list("abcdefg"), 3)
        assert blocks == [["a", "b", "c"], ["d", "e"], ["f", "g"]]

    def test_more_shards_than_items_never_yields_empty_blocks(self):
        blocks = contiguous_blocks(["a", "b"], 5)
        assert blocks == [["a"], ["b"]]

    def test_single_shard_is_whole_list(self):
        assert contiguous_blocks([1, 2, 3], 1) == [[1, 2, 3]]

    def test_zero_shards_rejected(self):
        with pytest.raises(PlanError):
            contiguous_blocks([1], 0)

    def test_shard_names_partitions_plan_order(self):
        plan = synthetic_plan(slash16s=9, people=2)
        names = plan.network_names
        for shards in (1, 2, 3, 4, 9, 20):
            blocks = plan.shard_names(shards)
            assert [name for block in blocks for name in block] == names
            sizes = [len(block) for block in blocks]
            assert max(sizes) - min(sizes) <= 1
            assert all(sizes)


class TestIdentity:
    def test_fingerprint_is_stable_across_instances(self):
        left = synthetic_plan(seed=3, slash16s=4, people=2)
        right = synthetic_plan(seed=3, slash16s=4, people=2)
        assert left.fingerprint() == right.fingerprint()

    def test_fingerprint_tracks_seed_and_entries(self):
        base = synthetic_plan(seed=0, slash16s=4, people=2)
        assert base.fingerprint() != synthetic_plan(seed=1, slash16s=4, people=2).fingerprint()
        assert base.fingerprint() != synthetic_plan(seed=0, slash16s=5, people=2).fingerprint()

    def test_payload_round_trip(self):
        plan = synthetic_plan(slash16s=4, people=2)
        clone = WorldPlan.from_payload(plan.to_payload())
        assert clone.fingerprint() == plan.fingerprint()
        assert clone.network_names == plan.network_names

    def test_save_load_round_trip(self, tmp_path):
        plan = synthetic_plan(slash16s=4, people=2)
        path = tmp_path / "plan.json"
        plan.save(path)
        assert WorldPlan.load(path).fingerprint() == plan.fingerprint()

    def test_bad_payload_rejected(self):
        with pytest.raises(PlanError):
            WorldPlan.from_payload(["not", "a", "plan"])


class TestBuild:
    def test_unknown_subset_names_rejected(self):
        plan = synthetic_plan(slash16s=4, people=2)
        with pytest.raises(PlanError, match="unknown network names"):
            plan.build(["no-such-network"])

    def test_subset_build_matches_full_build(self):
        # The sharding soundness property: a worker building only its
        # own networks derives the same counts and PTR records the full
        # world would.  All randomness is keyed per network name.
        plan = synthetic_plan(seed=7, slash16s=6, people=4)
        full = plan.build()
        days = [dt.date(2021, 1, 1) + dt.timedelta(days=n) for n in (0, 3, 9)]
        for names in plan.shard_names(3):
            subset = plan.build(names)
            assert [network.name for network in subset.internet.networks] == list(names)
            for day in days:
                full_counts, full_ptrs = derive_day(full.internet, list(names), day, OFFSET)
                sub_counts, sub_ptrs = derive_day(subset.internet, None, day, OFFSET)
                assert sub_counts == full_counts
                assert sub_ptrs == full_ptrs

    def test_supplemental_flag_populates_world(self):
        plan = synthetic_plan(slash16s=8, people=2, supplemental_every=1)
        world = plan.build()
        assert sorted(world.supplemental) == sorted(plan.supplemental_names)
        assert plan.supplemental_names  # the generator produced some

    def test_bad_factory_kwargs_surface_as_plan_error(self):
        plan = WorldPlan(0, [entry(warp_drive=True)])
        with pytest.raises(PlanError, match="plan-academic-0000"):
            plan.build()


class TestSyntheticPlan:
    def test_width_matches_request(self):
        plan = synthetic_plan(slash16s=12, people=2)
        assert len(plan.entries) == 12

    def test_cycles_all_kinds(self):
        plan = synthetic_plan(slash16s=8, people=2)
        kinds = {e["kind"] for e in plan.entries}
        assert kinds == {"academic", "isp", "background", "enterprise"}

    def test_enterprises_mix_rfc2317_and_disabled(self):
        plan = synthetic_plan(slash16s=16, people=2)
        modes = [e["rdns_mode"] for e in plan.entries if e["kind"] == "enterprise"]
        assert "rfc2317" in modes and "disabled" in modes

    def test_zero_width_rejected(self):
        with pytest.raises(PlanError):
            synthetic_plan(slash16s=0)


class TestLazyPlanInternet:
    def test_cache_token_without_building(self):
        plan = synthetic_plan(slash16s=4, people=2)
        lazy = LazyPlanInternet(plan)
        assert lazy.cache_token() == f"plan:{plan.fingerprint()}"
        assert not lazy.materialized()

    def test_record_access_materializes(self):
        plan = synthetic_plan(slash16s=4, people=2)
        lazy = LazyPlanInternet(plan)
        assert len(lazy) == len(plan.entries)
        assert lazy.materialized()
