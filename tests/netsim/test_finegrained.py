"""Tests for the event-driven network runtime."""

import datetime as dt

import pytest

from repro.dns import ZoneChangeKind
from repro.ipam import CarryOverPolicy
from repro.netsim.behavior import ScriptedProfile, Session
from repro.netsim.device import Device, DeviceNaming, model_by_key
from repro.netsim.engine import SimulationEngine
from repro.netsim.finegrained import NetworkRuntime, build_runtimes
from repro.netsim.network import IcmpPolicy, Network, NetworkType, Subnet, SubnetRole
from repro.netsim.rng import RngStreams
from repro.netsim.simtime import DAY, HOUR, MINUTE, from_date

START = dt.date(2021, 11, 1)


def scripted_device(device_id, sessions, *, sends_release=True, icmp=True, owner="brian"):
    return Device(
        device_id=device_id,
        model=model_by_key("iphone"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name=owner,
        owner_id=device_id,
        profile=ScriptedProfile(lambda day: list(sessions)),
        sends_release=sends_release,
        icmp_responds=icmp,
    )


def make_network(devices, *, lease_time=3600, icmp_policy=IcmpPolicy.ALLOW):
    network = Network(
        "testnet",
        NetworkType.ACADEMIC,
        "10.0.0.0/16",
        "campus.example.edu",
        lease_time=lease_time,
        icmp_policy=icmp_policy,
        rngs=RngStreams(0),
    )
    network.add_subnet(
        Subnet(
            "10.0.10.0/24",
            SubnetRole.EDUCATION,
            devices=devices,
            policy=CarryOverPolicy("campus.example.edu"),
        )
    )
    return network


def run_one_day(devices, **network_kwargs):
    network = make_network(devices, **network_kwargs)
    engine = SimulationEngine(start=from_date(START))
    runtime = NetworkRuntime(network, engine)
    runtime.start(START, START)
    engine.run_until(from_date(START) + 2 * DAY)
    return network, runtime


class TestJoinLeaveCycle:
    def test_ptr_added_on_join_removed_after_release(self):
        device = scripted_device("d1", [Session(9 * HOUR, 11 * HOUR)])
        network, runtime = run_one_day(devices=[device])
        journal = network.zone.journal
        kinds = [change.kind for change in journal]
        assert kinds == [ZoneChangeKind.ADD, ZoneChangeKind.REMOVE]
        add, remove = journal
        assert add.at == from_date(START) + 9 * HOUR
        assert remove.at == from_date(START) + 11 * HOUR
        assert add.new_hostname == "brians-iphone.campus.example.edu"

    def test_silent_leave_lingers_until_lease_expiry(self):
        device = scripted_device("d1", [Session(9 * HOUR, 10 * HOUR)], sends_release=False)
        network, runtime = run_one_day(devices=[device], lease_time=3600)
        add, remove = network.zone.journal
        # Last renewal at 9:30, so the lease runs out at 10:30; the
        # sweep fires on the next 5-minute boundary.
        linger = remove.at - (from_date(START) + 10 * HOUR)
        assert 25 * MINUTE <= linger <= 40 * MINUTE

    def test_short_visit_without_renewal_lingers_toward_full_lease(self):
        device = scripted_device("d1", [Session(9 * HOUR, 9 * HOUR + 10 * MINUTE)], sends_release=False)
        network, runtime = run_one_day(devices=[device], lease_time=3600)
        add, remove = network.zone.journal
        linger = remove.at - (from_date(START) + 9 * HOUR + 10 * MINUTE)
        assert 45 * MINUTE <= linger <= 55 * MINUTE

    def test_two_sessions_two_cycles(self):
        device = scripted_device(
            "d1", [Session(9 * HOUR, 10 * HOUR), Session(14 * HOUR, 15 * HOUR)]
        )
        network, runtime = run_one_day(devices=[device])
        kinds = [change.kind for change in network.zone.journal]
        assert kinds == [
            ZoneChangeKind.ADD,
            ZoneChangeKind.REMOVE,
            ZoneChangeKind.ADD,
            ZoneChangeKind.REMOVE,
        ]
        assert runtime.joins == 2
        assert runtime.leaves == 2

    def test_sticky_readdressing_across_sessions(self):
        device = scripted_device(
            "d1", [Session(9 * HOUR, 10 * HOUR), Session(14 * HOUR, 15 * HOUR)]
        )
        network, _ = run_one_day(devices=[device])
        adds = [c for c in network.zone.journal if c.kind is ZoneChangeKind.ADD]
        assert adds[0].address == adds[1].address


class TestRenewals:
    def test_long_session_renews_and_survives(self):
        device = scripted_device("d1", [Session(8 * HOUR, 16 * HOUR)], sends_release=False)
        network, _ = run_one_day(devices=[device], lease_time=3600)
        add = network.zone.journal[0]
        remove = network.zone.journal[-1]
        # A single add and a single remove: no expiry churn mid-session.
        assert len(network.zone.journal) == 2
        assert remove.at - add.at >= 8 * HOUR


class TestIcmpObservability:
    def test_online_device_responds(self):
        device = scripted_device("d1", [Session(0, DAY)])
        network, runtime = run_one_day(devices=[device])
        # After the runtime ran past the end, the device left; check
        # mid-day state by re-running to noon instead.
        engine = SimulationEngine(start=from_date(START))
        runtime = NetworkRuntime(make_network([device]), engine)
        runtime.start(START, START)
        engine.run_until(from_date(START) + 12 * HOUR)
        addresses = runtime.online_addresses()
        assert len(addresses) == 1
        assert runtime.is_icmp_responsive(addresses[0])
        assert runtime.device_at(addresses[0]) is device

    def test_blocked_network_never_responds(self):
        device = scripted_device("d1", [Session(0, DAY)])
        engine = SimulationEngine(start=from_date(START))
        runtime = NetworkRuntime(
            make_network([device], icmp_policy=IcmpPolicy.BLOCK), engine
        )
        runtime.start(START, START)
        engine.run_until(from_date(START) + 12 * HOUR)
        addresses = runtime.online_addresses()
        assert addresses
        assert not runtime.is_icmp_responsive(addresses[0])

    def test_allowlist_bypasses_block(self):
        device = scripted_device("d1", [Session(0, DAY)])
        network = make_network([device], icmp_policy=IcmpPolicy.BLOCK)
        network.icmp_allowlist = {__import__("ipaddress").IPv4Address("10.0.2.61")}
        engine = SimulationEngine(start=from_date(START))
        runtime = NetworkRuntime(network, engine)
        assert runtime.is_icmp_responsive("10.0.2.61")

    def test_non_responding_device(self):
        device = scripted_device("d1", [Session(0, DAY)], icmp=False)
        engine = SimulationEngine(start=from_date(START))
        runtime = NetworkRuntime(make_network([device]), engine)
        runtime.start(START, START)
        engine.run_until(from_date(START) + 12 * HOUR)
        addresses = runtime.online_addresses()
        assert addresses
        assert not runtime.is_icmp_responsive(addresses[0])

    def test_offline_address_does_not_respond(self):
        device = scripted_device("d1", [Session(9 * HOUR, 10 * HOUR)])
        network, runtime = run_one_day(devices=[device])
        assert runtime.online_addresses() == []
        assert not runtime.is_icmp_responsive("10.0.10.10")


class TestBuildRuntimes:
    def test_one_runtime_per_network(self):
        engine = SimulationEngine()
        networks = [make_network([scripted_device("d1", [Session(0, HOUR)])])]
        runtimes = build_runtimes(networks, engine)
        assert set(runtimes) == {"testnet"}

    def test_start_validates_range(self):
        engine = SimulationEngine(start=from_date(START))
        network = make_network([scripted_device("d1", [Session(0, HOUR)])])
        runtime = NetworkRuntime(network, engine)
        with pytest.raises(ValueError):
            runtime.start(START, START - dt.timedelta(days=1))
