"""Tests for RNG streams and calendars."""

import datetime as dt

from repro.netsim.calendar import (
    CovidPhase,
    _easter,
    CovidTimeline,
    HolidayCalendar,
    black_friday,
    carnaval_monday,
    cyber_monday,
    thanksgiving,
)
from repro.netsim.rng import RngStreams


class TestRngStreams:
    def test_same_key_same_stream_object(self):
        rngs = RngStreams(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_different_keys_independent(self):
        rngs = RngStreams(1)
        a = [rngs.stream("a").random() for _ in range(5)]
        b = [rngs.stream("b").random() for _ in range(5)]
        assert a != b

    def test_fresh_restarts_sequence(self):
        rngs = RngStreams(1)
        first = rngs.fresh("dev", 7).random()
        second = rngs.fresh("dev", 7).random()
        assert first == second

    def test_seed_changes_streams(self):
        assert RngStreams(1).fresh("x").random() != RngStreams(2).fresh("x").random()

    def test_reproducible_across_instances(self):
        assert RngStreams(9).fresh("k", 3).random() == RngStreams(9).fresh("k", 3).random()


class TestUsHolidays:
    def test_thanksgiving_2021_is_nov_25(self):
        # The paper: "In 2021, it fell on the 25th of November."
        assert thanksgiving(2021) == dt.date(2021, 11, 25)

    def test_thanksgiving_is_always_thursday(self):
        for year in range(2015, 2030):
            assert thanksgiving(year).weekday() == 3

    def test_black_friday_and_cyber_monday(self):
        assert black_friday(2021) == dt.date(2021, 11, 26)
        assert cyber_monday(2021) == dt.date(2021, 11, 29)
        assert cyber_monday(2021).weekday() == 0

    def test_carnaval_2020_is_late_february(self):
        # The dip "towards the end of February 2020 that likely relates
        # to Carnaval celebrations" (Figure 10).
        monday = carnaval_monday(2020)
        assert monday == dt.date(2020, 2, 24)


class TestHolidayCalendar:
    def test_normal_weekday_full_occupancy(self):
        calendar = HolidayCalendar()
        assert calendar.occupancy_factor(dt.date(2021, 3, 3)) == 1.0

    def test_christmas_break_suppresses(self):
        calendar = HolidayCalendar()
        assert calendar.occupancy_factor(dt.date(2021, 12, 27)) < 0.5
        assert calendar.occupancy_factor(dt.date(2022, 1, 2)) < 0.5

    def test_fall_break_suppresses(self):
        calendar = HolidayCalendar()
        assert calendar.occupancy_factor(dt.date(2021, 10, 27)) < 1.0

    def test_thanksgiving_only_when_observed(self):
        us = HolidayCalendar(observes_thanksgiving=True)
        eu = HolidayCalendar(observes_thanksgiving=False)
        day = thanksgiving(2021)
        assert us.occupancy_factor(day) < 0.5
        assert eu.occupancy_factor(day) == 1.0

    def test_carnaval_only_when_observed(self):
        nl = HolidayCalendar(observes_carnaval=True, fall_break=False)
        day = carnaval_monday(2020)
        assert nl.occupancy_factor(day) < 1.0

    def test_extra_closures(self):
        calendar = HolidayCalendar(
            extra_closures=[(dt.date(2021, 6, 1), dt.date(2021, 6, 5), 0.1)]
        )
        assert calendar.occupancy_factor(dt.date(2021, 6, 3)) == 0.1
        assert calendar.occupancy_factor(dt.date(2021, 6, 6)) == 1.0


class TestCovidTimeline:
    def test_none_timeline_stays_normal(self):
        timeline = CovidTimeline.none()
        assert timeline.phase_on(dt.date(2020, 4, 1)) is CovidPhase.NORMAL
        assert timeline.onsite_factor(dt.date(2020, 4, 1)) == 1.0

    def test_phases_apply_from_start_date(self):
        timeline = CovidTimeline([(dt.date(2020, 3, 16), CovidPhase.LOCKDOWN)])
        assert timeline.phase_on(dt.date(2020, 3, 15)) is CovidPhase.NORMAL
        assert timeline.phase_on(dt.date(2020, 3, 16)) is CovidPhase.LOCKDOWN

    def test_university_timeline_recovers_by_fall_2021(self):
        timeline = CovidTimeline.typical_university()
        assert timeline.onsite_factor(dt.date(2020, 4, 1)) < 0.3
        assert timeline.onsite_factor(dt.date(2021, 10, 1)) == 1.0

    def test_housing_factor_rises_under_lockdown(self):
        # The Figure-10 crossover: education empties, housing fills.
        timeline = CovidTimeline.typical_university()
        day = dt.date(2020, 4, 1)
        assert timeline.housing_factor(day) > 1.0
        assert timeline.onsite_factor(day) < 1.0

    def test_enterprise_timeline_drops_in_march_2021(self):
        timeline = CovidTimeline.late_lockdown_enterprise()
        before = timeline.onsite_factor(dt.date(2021, 2, 15))
        during = timeline.onsite_factor(dt.date(2021, 3, 15))
        after = timeline.onsite_factor(dt.date(2021, 5, 20))
        assert during < before
        assert during < after  # partial recovery around May 2021

    def test_spans_sorted_regardless_of_input_order(self):
        timeline = CovidTimeline(
            [
                (dt.date(2021, 1, 1), CovidPhase.HIGH_RISK),
                (dt.date(2020, 1, 1), CovidPhase.LOW_RISK),
            ]
        )
        assert timeline.phase_on(dt.date(2020, 6, 1)) is CovidPhase.LOW_RISK
        assert timeline.phase_on(dt.date(2021, 6, 1)) is CovidPhase.HIGH_RISK


class TestCalendarEdgeYears:
    """Edge years where the date arithmetic is easiest to get wrong."""

    def test_easter_2038_hits_the_latest_possible_date(self):
        # 2038 sits at a lunar-cycle corner: the paschal full moon
        # lands as late as it can, pushing Easter to April 25 — the
        # latest date the Gregorian rules allow.
        assert _easter(2038) == dt.date(2038, 4, 25)

    def test_easter_earliest_possible_date(self):
        # The other extreme of the rule: March 22 (as in 1818).
        assert _easter(1818) == dt.date(1818, 3, 22)

    def test_easter_always_a_sunday_in_bounds(self):
        earliest = dt.date(2000, 3, 22)
        for year in range(2000, 2100):
            easter = _easter(year)
            assert easter.weekday() == 6, year
            assert dt.date(year, 3, 22) <= easter <= dt.date(year, 4, 25), year

    def test_thanksgiving_when_november_opens_on_thursday(self):
        # Nov 1, 2018 was a Thursday: it counts as the first Thursday,
        # so the fourth lands on the 22nd — the earliest possible.
        assert dt.date(2018, 11, 1).weekday() == 3
        assert thanksgiving(2018) == dt.date(2018, 11, 22)
        assert black_friday(2018) == dt.date(2018, 11, 23)

    def test_thanksgiving_when_november_opens_on_friday(self):
        # Nov 1, 2019 was a Friday: the first Thursday slips to the
        # 7th, pushing Thanksgiving to the 28th — the latest possible.
        assert dt.date(2019, 11, 1).weekday() == 4
        assert thanksgiving(2019) == dt.date(2019, 11, 28)
        assert black_friday(2019) == dt.date(2019, 11, 29)
        assert cyber_monday(2019) == dt.date(2019, 12, 2)

    def test_phase_on_before_first_span_is_normal(self):
        timeline = CovidTimeline.typical_university()
        day_before = dt.date(2020, 3, 15)
        assert timeline.phase_on(day_before) is CovidPhase.NORMAL
        assert timeline.onsite_factor(day_before) == 1.0
        assert timeline.housing_factor(day_before) == 1.0
        # Far before any span, even with an unsorted construction.
        timeline = CovidTimeline(
            [
                (dt.date(2021, 1, 1), CovidPhase.HIGH_RISK),
                (dt.date(2020, 3, 1), CovidPhase.LOCKDOWN),
            ]
        )
        assert timeline.phase_on(dt.date(2019, 12, 31)) is CovidPhase.NORMAL
