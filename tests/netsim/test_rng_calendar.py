"""Tests for RNG streams and calendars."""

import datetime as dt

from repro.netsim.calendar import (
    CovidPhase,
    CovidTimeline,
    HolidayCalendar,
    black_friday,
    carnaval_monday,
    cyber_monday,
    thanksgiving,
)
from repro.netsim.rng import RngStreams


class TestRngStreams:
    def test_same_key_same_stream_object(self):
        rngs = RngStreams(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_different_keys_independent(self):
        rngs = RngStreams(1)
        a = [rngs.stream("a").random() for _ in range(5)]
        b = [rngs.stream("b").random() for _ in range(5)]
        assert a != b

    def test_fresh_restarts_sequence(self):
        rngs = RngStreams(1)
        first = rngs.fresh("dev", 7).random()
        second = rngs.fresh("dev", 7).random()
        assert first == second

    def test_seed_changes_streams(self):
        assert RngStreams(1).fresh("x").random() != RngStreams(2).fresh("x").random()

    def test_reproducible_across_instances(self):
        assert RngStreams(9).fresh("k", 3).random() == RngStreams(9).fresh("k", 3).random()


class TestUsHolidays:
    def test_thanksgiving_2021_is_nov_25(self):
        # The paper: "In 2021, it fell on the 25th of November."
        assert thanksgiving(2021) == dt.date(2021, 11, 25)

    def test_thanksgiving_is_always_thursday(self):
        for year in range(2015, 2030):
            assert thanksgiving(year).weekday() == 3

    def test_black_friday_and_cyber_monday(self):
        assert black_friday(2021) == dt.date(2021, 11, 26)
        assert cyber_monday(2021) == dt.date(2021, 11, 29)
        assert cyber_monday(2021).weekday() == 0

    def test_carnaval_2020_is_late_february(self):
        # The dip "towards the end of February 2020 that likely relates
        # to Carnaval celebrations" (Figure 10).
        monday = carnaval_monday(2020)
        assert monday == dt.date(2020, 2, 24)


class TestHolidayCalendar:
    def test_normal_weekday_full_occupancy(self):
        calendar = HolidayCalendar()
        assert calendar.occupancy_factor(dt.date(2021, 3, 3)) == 1.0

    def test_christmas_break_suppresses(self):
        calendar = HolidayCalendar()
        assert calendar.occupancy_factor(dt.date(2021, 12, 27)) < 0.5
        assert calendar.occupancy_factor(dt.date(2022, 1, 2)) < 0.5

    def test_fall_break_suppresses(self):
        calendar = HolidayCalendar()
        assert calendar.occupancy_factor(dt.date(2021, 10, 27)) < 1.0

    def test_thanksgiving_only_when_observed(self):
        us = HolidayCalendar(observes_thanksgiving=True)
        eu = HolidayCalendar(observes_thanksgiving=False)
        day = thanksgiving(2021)
        assert us.occupancy_factor(day) < 0.5
        assert eu.occupancy_factor(day) == 1.0

    def test_carnaval_only_when_observed(self):
        nl = HolidayCalendar(observes_carnaval=True, fall_break=False)
        day = carnaval_monday(2020)
        assert nl.occupancy_factor(day) < 1.0

    def test_extra_closures(self):
        calendar = HolidayCalendar(
            extra_closures=[(dt.date(2021, 6, 1), dt.date(2021, 6, 5), 0.1)]
        )
        assert calendar.occupancy_factor(dt.date(2021, 6, 3)) == 0.1
        assert calendar.occupancy_factor(dt.date(2021, 6, 6)) == 1.0


class TestCovidTimeline:
    def test_none_timeline_stays_normal(self):
        timeline = CovidTimeline.none()
        assert timeline.phase_on(dt.date(2020, 4, 1)) is CovidPhase.NORMAL
        assert timeline.onsite_factor(dt.date(2020, 4, 1)) == 1.0

    def test_phases_apply_from_start_date(self):
        timeline = CovidTimeline([(dt.date(2020, 3, 16), CovidPhase.LOCKDOWN)])
        assert timeline.phase_on(dt.date(2020, 3, 15)) is CovidPhase.NORMAL
        assert timeline.phase_on(dt.date(2020, 3, 16)) is CovidPhase.LOCKDOWN

    def test_university_timeline_recovers_by_fall_2021(self):
        timeline = CovidTimeline.typical_university()
        assert timeline.onsite_factor(dt.date(2020, 4, 1)) < 0.3
        assert timeline.onsite_factor(dt.date(2021, 10, 1)) == 1.0

    def test_housing_factor_rises_under_lockdown(self):
        # The Figure-10 crossover: education empties, housing fills.
        timeline = CovidTimeline.typical_university()
        day = dt.date(2020, 4, 1)
        assert timeline.housing_factor(day) > 1.0
        assert timeline.onsite_factor(day) < 1.0

    def test_enterprise_timeline_drops_in_march_2021(self):
        timeline = CovidTimeline.late_lockdown_enterprise()
        before = timeline.onsite_factor(dt.date(2021, 2, 15))
        during = timeline.onsite_factor(dt.date(2021, 3, 15))
        after = timeline.onsite_factor(dt.date(2021, 5, 20))
        assert during < before
        assert during < after  # partial recovery around May 2021

    def test_spans_sorted_regardless_of_input_order(self):
        timeline = CovidTimeline(
            [
                (dt.date(2021, 1, 1), CovidPhase.HIGH_RISK),
                (dt.date(2020, 1, 1), CovidPhase.LOW_RISK),
            ]
        )
        assert timeline.phase_on(dt.date(2020, 6, 1)) is CovidPhase.LOW_RISK
        assert timeline.phase_on(dt.date(2021, 6, 1)) is CovidPhase.HIGH_RISK
