"""Tests for the discrete-event engine."""

import pytest

from repro.netsim.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(20, lambda: order.append("b"))
        engine.schedule(10, lambda: order.append("a"))
        engine.schedule(30, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_scheduling_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule(10, lambda: order.append("first"))
        engine.schedule(10, lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second"]

    def test_clock_follows_events(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]

    def test_cannot_schedule_in_past(self):
        engine = SimulationEngine(start=100)
        with pytest.raises(ValueError):
            engine.schedule(99, lambda: None)

    def test_schedule_in(self):
        engine = SimulationEngine(start=100)
        fired = []
        engine.schedule_in(50, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [150]
        with pytest.raises(ValueError):
            engine.schedule_in(-1, lambda: None)

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        fired = []

        def first():
            engine.schedule(engine.now + 5, lambda: fired.append(engine.now))

        engine.schedule(10, first)
        engine.run()
        assert fired == [15]


class TestRunUntil:
    def test_run_until_executes_only_due_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(10, lambda: fired.append(10))
        engine.schedule(20, lambda: fired.append(20))
        executed = engine.run_until(15)
        assert executed == 1
        assert fired == [10]
        assert engine.now == 15
        assert engine.pending == 1

    def test_run_until_advances_clock_even_when_idle(self):
        engine = SimulationEngine()
        engine.run_until(500)
        assert engine.now == 500

    def test_boundary_event_included(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule(15, lambda: fired.append(15))
        engine.run_until(15)
        assert fired == [15]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        engine = SimulationEngine()
        fired = []
        handle = engine.schedule(10, lambda: fired.append(10))
        handle.cancel()
        assert handle.cancelled
        engine.run()
        assert fired == []
        assert engine.events_run == 0

    def test_pending_ignores_cancelled(self):
        engine = SimulationEngine()
        handle = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        handle.cancel()
        assert engine.pending == 1


class TestPeriodic:
    def test_schedule_every(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_every(10, lambda: ticks.append(engine.now), until=35)
        engine.run()
        assert ticks == [10, 20, 30]

    def test_schedule_every_validates_interval(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule_every(0, lambda: None)

    def test_recurring_handle_cancel_mid_stream(self):
        engine = SimulationEngine()
        ticks = []
        handle = engine.schedule_every(10, lambda: ticks.append(engine.now))
        assert not handle.cancelled
        assert handle.next_at == 10
        engine.run_until(35)
        assert ticks == [10, 20, 30]
        handle.cancel()
        assert handle.cancelled
        assert handle.next_at is None
        engine.run_until(100)
        assert ticks == [10, 20, 30]
        assert engine.pending == 0

    def test_recurring_handle_cancel_drops_pending_tick(self):
        engine = SimulationEngine()
        ticks = []
        handle = engine.schedule_every(10, lambda: ticks.append(engine.now))

        def stop():
            handle.cancel()

        # Cancel at t=25, while the t=30 tick is already scheduled: the
        # pending tick must be dropped, not just future reschedules.
        engine.schedule(25, stop)
        engine.run_until(200)
        assert ticks == [10, 20]
        assert engine.pending == 0

    def test_recurring_handle_self_cancel_in_callback(self):
        engine = SimulationEngine()
        ticks = []
        handle = engine.schedule_every(10, lambda: ticks.append(engine.now))

        def maybe_stop():
            if len(ticks) >= 3:
                handle.cancel()

        # Piggyback the stop check on the same tick times, scheduled
        # after the stream so it observes each tick's append.
        engine.schedule_every(10, maybe_stop)
        engine.run_until(200)
        assert ticks == [10, 20, 30]

    def test_recurring_handle_exhausted_by_until(self):
        engine = SimulationEngine()
        handle = engine.schedule_every(10, lambda: None, until=25)
        engine.run()
        assert handle.next_at is None
        assert not handle.cancelled  # ran to completion, not cancelled
