"""Tests for config-driven world building."""

import datetime as dt
import json

import pytest

from repro.netsim.network import NetworkType
from repro.netsim.spec import (
    SpecError,
    build_world_from_file,
    build_world_from_spec,
    validate_spec,
)

GOOD_SPEC = {
    "seed": 7,
    "networks": [
        {
            "kind": "academic",
            "name": "Campus-X",
            "prefix": "10.10.0.0/16",
            "suffix": "campus-x.edu",
            "education_prefix": "10.10.1.0/24",
            "housing_prefix": "10.10.2.0/24",
            "staff": 10,
            "students": 10,
            "residents": 12,
            "supplemental": True,
        },
        {
            "kind": "isp",
            "name": "Fiber-Y",
            "prefix": "10.20.0.0/16",
            "suffix": "dyn.fiber-y.net",
            "access_prefix": "10.20.1.0/24",
            "subscribers": 15,
        },
        {
            "kind": "background",
            "name": "bg-z",
            "prefix": "10.32.0.0/16",
            "suffix": "as99.example.net",
            "static_24s": 1,
            "dynamic_24s": 1,
        },
    ],
}


class TestValidation:
    def test_good_spec_passes(self):
        validate_spec(GOOD_SPEC)

    def test_not_a_mapping(self):
        with pytest.raises(SpecError):
            validate_spec(["nope"])

    def test_empty_networks(self):
        with pytest.raises(SpecError):
            validate_spec({"networks": []})

    def test_missing_keys(self):
        with pytest.raises(SpecError, match="missing keys"):
            validate_spec({"networks": [{"kind": "isp", "name": "x"}]})

    def test_unknown_kind(self):
        spec = {"networks": [{"kind": "casino", "name": "x", "prefix": "10.0.0.0/16", "suffix": "x.example"}]}
        with pytest.raises(SpecError, match="unknown kind"):
            validate_spec(spec)

    def test_duplicate_names(self):
        entry = {
            "kind": "isp", "name": "x", "prefix": "10.0.0.0/16",
            "suffix": "x.example.net", "access_prefix": "10.0.1.0/24",
        }
        other = dict(entry, prefix="10.1.0.0/16")
        with pytest.raises(SpecError, match="duplicate"):
            validate_spec({"networks": [entry, other]})

    def test_bad_kwargs_surface_as_spec_error(self):
        spec = {
            "networks": [
                {
                    "kind": "isp",
                    "name": "x",
                    "prefix": "10.0.0.0/16",
                    "suffix": "x.example.net",
                    "access_prefix": "10.0.1.0/24",
                    "warp_drive": True,
                }
            ]
        }
        with pytest.raises(SpecError, match="warp_drive"):
            build_world_from_spec(spec)


class TestBuilding:
    def test_builds_all_networks(self):
        world = build_world_from_spec(GOOD_SPEC)
        assert len(world.internet) == 3
        assert world.internet.network("Campus-X").net_type is NetworkType.ACADEMIC
        assert world.internet.network("Fiber-Y").net_type is NetworkType.ISP

    def test_supplemental_flag(self):
        world = build_world_from_spec(GOOD_SPEC)
        assert set(world.supplemental) == {"Campus-X"}
        assert world.supplemental_targets("Campus-X")

    def test_world_is_measurable(self):
        world = build_world_from_spec(GOOD_SPEC)
        day = dt.date(2021, 3, 3)
        records = list(world.internet.records_on(day, at_offset=12 * 3600))
        assert records
        assert any(hostname.endswith("campus-x.edu") for _, hostname in records)

    def test_seed_changes_population(self):
        other = dict(GOOD_SPEC, seed=8)
        day = dt.date(2021, 3, 3)
        first = {h for _, h in build_world_from_spec(GOOD_SPEC).internet.records_on(day)}
        second = {h for _, h in build_world_from_spec(other).internet.records_on(day)}
        assert first != second

    def test_build_from_file(self, tmp_path):
        path = tmp_path / "world.json"
        path.write_text(json.dumps(GOOD_SPEC))
        world = build_world_from_file(path)
        assert len(world.internet) == 3
