"""Tests for devices, naming, and person/population generation."""

import datetime as dt

import pytest

from repro.datasets.names import OTHER_GIVEN_NAMES, TOP_GIVEN_NAMES
from repro.netsim.behavior import ProfileKind
from repro.netsim.device import (
    Device,
    DeviceKind,
    DeviceNaming,
    MODEL_CATALOG,
    model_by_key,
    sample_model,
)
from repro.netsim.person import PersonGenerator
from repro.netsim.rng import RngStreams

WEEKDAY = dt.date(2021, 11, 3)


class TestDeviceModels:
    def test_catalog_covers_paper_terms(self):
        keys = {model.key for model, _ in MODEL_CATALOG}
        for term in ("iphone", "ipad", "air", "mbp", "galaxy-note9", "dell", "lenovo", "roku"):
            assert term in keys

    def test_model_by_key(self):
        assert model_by_key("iphone").kind is DeviceKind.PHONE
        with pytest.raises(KeyError):
            model_by_key("zune")

    def test_possessive_name_capitalises_owner(self):
        assert model_by_key("iphone").possessive_name("brian") == "Brian's iPhone"
        assert model_by_key("galaxy-note9").possessive_name("brian") == "Brians-Galaxy-Note9"

    def test_sample_model_deterministic(self):
        rngs_a, rngs_b = RngStreams(3), RngStreams(3)
        models_a = [sample_model(rngs_a.stream("m")).key for _ in range(20)]
        models_b = [sample_model(rngs_b.stream("m")).key for _ in range(20)]
        assert models_a == models_b


class TestDeviceNaming:
    def make_device(self, naming, model="iphone", owner="brian"):
        return Device(
            device_id="d1",
            model=model_by_key(model),
            naming=naming,
            owner_name=owner,
            owner_id="p1",
        )

    def test_owner_possessive(self):
        assert self.make_device(DeviceNaming.OWNER_POSSESSIVE).host_name() == "Brian's iPhone"

    def test_possessive_without_owner_falls_back(self):
        device = self.make_device(DeviceNaming.OWNER_POSSESSIVE, owner=None)
        assert device.host_name() == "iPhone"

    def test_standalone(self):
        assert self.make_device(DeviceNaming.STANDALONE).host_name() == "iPhone"

    def test_generic(self):
        device = self.make_device(DeviceNaming.GENERIC)
        device.generic_suffix = "ab12cd"
        assert device.host_name() == "DESKTOP-AB12CD"

    def test_none(self):
        assert self.make_device(DeviceNaming.NONE).host_name() is None


class TestDeviceSessions:
    def test_owner_devices_share_sessions(self):
        rngs = RngStreams(1)
        base = dict(
            model=model_by_key("iphone"),
            naming=DeviceNaming.OWNER_POSSESSIVE,
            owner_name="emma",
            owner_id="person-1",
        )
        phone = Device(device_id="d-phone", session_participation=1.0, **base)
        twin = Device(device_id="d-twin", session_participation=1.0, **base)
        assert phone.sessions_for_day(WEEKDAY, rngs) == twin.sessions_for_day(WEEKDAY, rngs)

    def test_participation_filters_sessions(self):
        rngs = RngStreams(1)
        common = dict(
            model=model_by_key("mbp"),
            naming=DeviceNaming.OWNER_POSSESSIVE,
            owner_name="emma",
            owner_id="person-1",
        )
        always = Device(device_id="d-a", session_participation=1.0, **common)
        never = Device(device_id="d-b", session_participation=0.0, **common)
        days_with_sessions = 0
        for offset in range(30):
            day = WEEKDAY + dt.timedelta(days=offset)
            if always.sessions_for_day(day, rngs):
                days_with_sessions += 1
            assert never.sessions_for_day(day, rngs) == []
        assert days_with_sessions > 5

    def test_sessions_deterministic(self):
        rngs = RngStreams(7)
        device = Device(
            device_id="d-x",
            model=model_by_key("iphone"),
            naming=DeviceNaming.STANDALONE,
            owner_id="p-x",
        )
        assert device.sessions_for_day(WEEKDAY, rngs) == device.sessions_for_day(WEEKDAY, rngs)


class TestPersonGenerator:
    def make_generator(self, **kwargs):
        return PersonGenerator(RngStreams(11).stream("population"), **kwargs)

    def test_population_is_deterministic(self):
        people_a = self.make_generator().make_population(10)
        people_b = self.make_generator().make_population(10)
        assert [p.given_name for p in people_a] == [p.given_name for p in people_b]

    def test_names_come_from_known_pools(self):
        people = self.make_generator().make_population(50)
        pool = set(TOP_GIVEN_NAMES) | set(OTHER_GIVEN_NAMES)
        assert all(person.given_name in pool for person in people)

    def test_top50_share_respected(self):
        all_top = self.make_generator(top50_share=1.0).make_population(40)
        assert all(p.given_name in TOP_GIVEN_NAMES for p in all_top)
        none_top = self.make_generator(top50_share=0.0).make_population(40)
        assert all(p.given_name in OTHER_GIVEN_NAMES for p in none_top)

    def test_each_person_has_devices(self):
        people = self.make_generator().make_population(30)
        assert all(1 <= len(person.devices) <= 3 for person in people)

    def test_device_ownership_metadata(self):
        person = self.make_generator().make_person("p1", profile_kind=ProfileKind.STUDENT)
        for device in person.devices:
            assert device.owner_id == "p1"
            assert device.owner_name == person.given_name
            assert device.profile is person.profile

    def test_invalid_share_rejected(self):
        with pytest.raises(ValueError):
            self.make_generator(top50_share=1.5)

    def test_popular_names_more_frequent(self):
        generator = self.make_generator(top50_share=1.0)
        names = [generator.draw_name() for _ in range(3000)]
        jacob = names.count("jacob")
        ashley = names.count("ashley")  # rank 50
        assert jacob > ashley
