"""Tests for simulation time helpers."""

import datetime as dt

import pytest

from repro.netsim.simtime import (
    DAY,
    HOUR,
    MINUTE,
    SimClock,
    date_of,
    days_between,
    from_date,
    from_datetime,
    hour_of_day,
    is_weekend,
    start_of_day,
    to_datetime,
    truncate,
    ts,
    weekday,
)


class TestConversions:
    def test_epoch_is_zero(self):
        assert ts(2019, 1, 1) == 0

    def test_day_arithmetic(self):
        assert ts(2019, 1, 2) == DAY
        assert ts(2019, 1, 1, 1) == HOUR
        assert ts(2019, 1, 1, 0, 1) == MINUTE

    def test_roundtrip(self):
        moment = dt.datetime(2021, 11, 25, 14, 30)
        assert to_datetime(from_datetime(moment)) == moment

    def test_date_of(self):
        assert date_of(ts(2021, 11, 25, 23, 59)) == dt.date(2021, 11, 25)

    def test_from_date(self):
        assert from_date(dt.date(2019, 1, 2)) == DAY

    def test_start_of_day(self):
        assert start_of_day(ts(2021, 3, 5, 17, 12)) == ts(2021, 3, 5)


class TestTruncation:
    def test_five_minute_truncation(self):
        assert truncate(ts(2021, 11, 1, 10, 7), 5 * MINUTE) == ts(2021, 11, 1, 10, 5)

    def test_exact_boundary_unchanged(self):
        assert truncate(ts(2021, 11, 1, 10, 5), 5 * MINUTE) == ts(2021, 11, 1, 10, 5)

    def test_invalid_granularity(self):
        with pytest.raises(ValueError):
            truncate(0, 0)


class TestCalendarHelpers:
    def test_weekday(self):
        assert weekday(ts(2021, 11, 25)) == 3  # Thanksgiving 2021: Thursday

    def test_weekend_detection(self):
        assert is_weekend(ts(2021, 11, 27))  # Saturday
        assert not is_weekend(ts(2021, 11, 26))  # Friday

    def test_hour_of_day(self):
        assert hour_of_day(ts(2021, 6, 1, 13, 59)) == 13

    def test_days_between(self):
        days = list(days_between(dt.date(2021, 1, 1), dt.date(2021, 1, 4)))
        assert days == [dt.date(2021, 1, 1), dt.date(2021, 1, 2), dt.date(2021, 1, 3)]


class TestSimClock:
    def test_advance(self):
        clock = SimClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_no_time_travel(self):
        clock = SimClock(100)
        with pytest.raises(ValueError):
            clock.advance_to(99)

    def test_datetime_property(self):
        assert SimClock(ts(2020, 5, 1)).datetime == dt.datetime(2020, 5, 1)
