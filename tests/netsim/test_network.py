"""Tests for networks, subnets and day-level record materialisation."""

import datetime as dt
import ipaddress

import pytest

from repro.ipam import CarryOverPolicy
from repro.netsim.behavior import AlwaysOnProfile
from repro.netsim.calendar import CovidTimeline, HolidayCalendar
from repro.netsim.device import Device, DeviceNaming, model_by_key
from repro.netsim.network import (
    CountModel,
    IcmpPolicy,
    Network,
    NetworkType,
    Subnet,
    SubnetRole,
    slash24_of,
)
from repro.netsim.population import make_infrastructure_entries, make_server_entries
from repro.netsim.rng import RngStreams

WEEKDAY = dt.date(2021, 3, 3)


def make_always_on_device(index, owner="emma"):
    return Device(
        device_id=f"dev-{index}",
        model=model_by_key("iphone"),
        naming=DeviceNaming.OWNER_POSSESSIVE,
        owner_name=owner,
        owner_id=f"pers-{index}",
        profile=AlwaysOnProfile(),
    )


class TestSlash24:
    def test_slash24_of(self):
        assert slash24_of("10.1.2.3") == "10.1.2.0/24"
        assert slash24_of(ipaddress.IPv4Address("192.0.2.255")) == "192.0.2.0/24"


class TestSubnetValidation:
    def test_dynamic_needs_backing(self):
        with pytest.raises(ValueError):
            Subnet("10.0.0.0/24", SubnetRole.DYNAMIC_CLIENTS)

    def test_device_backed_needs_policy(self):
        with pytest.raises(ValueError):
            Subnet("10.0.0.0/24", SubnetRole.DYNAMIC_CLIENTS, devices=[make_always_on_device(0)])

    def test_count_backed_needs_suffix(self):
        with pytest.raises(ValueError):
            Subnet("10.0.0.0/24", SubnetRole.DYNAMIC_CLIENTS, count_model=CountModel(mean=10))

    def test_static_cannot_have_devices(self):
        with pytest.raises(ValueError):
            Subnet(
                "10.0.0.0/24",
                SubnetRole.STATIC_SERVERS,
                devices=[make_always_on_device(0)],
            )

    def test_devices_must_fit(self):
        devices = [make_always_on_device(i) for i in range(10)]
        with pytest.raises(ValueError):
            Subnet(
                "10.0.0.0/28",
                SubnetRole.DYNAMIC_CLIENTS,
                devices=devices,
                policy=CarryOverPolicy("x.example"),
            )

    def test_role_dynamics(self):
        assert SubnetRole.HOUSING.is_dynamic
        assert SubnetRole.EDUCATION.is_dynamic
        assert not SubnetRole.STATIC_SERVERS.is_dynamic


class TestDeviceBackedSubnet:
    def make_subnet(self, n=3):
        devices = [make_always_on_device(i) for i in range(n)]
        return Subnet(
            "10.0.0.0/24",
            SubnetRole.DYNAMIC_CLIENTS,
            devices=devices,
            policy=CarryOverPolicy("campus.example.edu"),
        )

    def test_stable_device_addresses(self):
        subnet = self.make_subnet()
        assert subnet.device_address(0) == ipaddress.IPv4Address("10.0.0.10")
        assert subnet.device_address(2) == ipaddress.IPv4Address("10.0.0.12")

    def test_records_use_policy(self):
        subnet = self.make_subnet(1)
        records = list(subnet.records_on(WEEKDAY, RngStreams(0)))
        assert records == [
            (ipaddress.IPv4Address("10.0.0.10"), "emmas-iphone.campus.example.edu")
        ]

    def test_count_matches_records(self):
        subnet = self.make_subnet(5)
        rngs = RngStreams(0)
        assert subnet.count_on(WEEKDAY, rngs) == len(list(subnet.records_on(WEEKDAY, rngs)))

    def test_zero_factor_empties_subnet(self):
        # Always-on devices ignore the factor, so use a worker profile.
        device = make_always_on_device(0)
        device.profile = __import__("repro.netsim.behavior", fromlist=["OfficeWorkerProfile"]).OfficeWorkerProfile()
        subnet = Subnet(
            "10.0.0.0/24",
            SubnetRole.DYNAMIC_CLIENTS,
            devices=[device],
            policy=CarryOverPolicy("x.example"),
        )
        assert subnet.count_on(WEEKDAY, RngStreams(0), factor=0.0) == 0


class TestCountBackedSubnet:
    def make_subnet(self, mean=50):
        return Subnet(
            "10.0.1.0/24",
            SubnetRole.DYNAMIC_CLIENTS,
            count_model=CountModel(mean=mean),
            count_suffix="dyn.example.net",
        )

    def test_count_fluctuates_day_to_day(self):
        subnet = self.make_subnet()
        rngs = RngStreams(0)
        counts = {subnet.count_on(WEEKDAY + dt.timedelta(days=d), rngs) for d in range(14)}
        assert len(counts) > 3

    def test_weekend_counts_lower_on_average(self):
        subnet = self.make_subnet(mean=100)
        rngs = RngStreams(0)
        weekdays, weekends = [], []
        for offset in range(56):
            day = WEEKDAY + dt.timedelta(days=offset)
            (weekends if day.weekday() >= 5 else weekdays).append(subnet.count_on(day, rngs))
        assert sum(weekends) / len(weekends) < sum(weekdays) / len(weekdays)

    def test_records_have_template_hostnames(self):
        subnet = self.make_subnet(mean=5)
        records = list(subnet.records_on(WEEKDAY, RngStreams(0)))
        assert records
        for address, hostname in records:
            assert hostname.endswith(".dyn.example.net")
            assert str(address).replace(".", "-") in hostname

    def test_count_capped_by_subnet_size(self):
        subnet = Subnet(
            "10.0.1.0/28",
            SubnetRole.DYNAMIC_CLIENTS,
            count_model=CountModel(mean=500),
            count_suffix="dyn.example.net",
        )
        assert subnet.count_on(WEEKDAY, RngStreams(0)) <= 16 - 10 - 1


class TestStaticContent:
    def test_server_entries(self):
        entries = make_server_entries("10.0.2.0/26", "corp.example.com")
        hostnames = [hostname for _, hostname in entries]
        assert "www.corp.example.com" in hostnames
        assert len(hostnames) == len(set(hostnames)) > 10

    def test_infrastructure_entries_use_router_terms(self):
        import random

        entries = make_infrastructure_entries("10.0.3.0/26", "net.example.com", random.Random(1))
        assert entries
        assert all(hostname.endswith(".net.example.com") for _, hostname in entries)

    def test_static_subnet_constant_across_days(self):
        entries = make_server_entries("10.0.2.0/26", "corp.example.com")
        subnet = Subnet("10.0.2.0/26", SubnetRole.STATIC_SERVERS, static_entries=entries)
        rngs = RngStreams(0)
        day_one = list(subnet.records_on(WEEKDAY, rngs))
        day_two = list(subnet.records_on(WEEKDAY + dt.timedelta(days=1), rngs))
        assert day_one == day_two == entries


class TestNetwork:
    def make_network(self):
        network = Network(
            "campus",
            NetworkType.ACADEMIC,
            "10.0.0.0/16",
            "campus.example.edu",
            holidays=HolidayCalendar(),
            covid=CovidTimeline.typical_university(),
            rngs=RngStreams(0),
        )
        network.add_subnet(
            Subnet(
                "10.0.10.0/24",
                SubnetRole.EDUCATION,
                devices=[make_always_on_device(i) for i in range(4)],
                policy=CarryOverPolicy("campus.example.edu"),
            )
        )
        network.add_subnet(
            Subnet(
                "10.0.1.0/26",
                SubnetRole.STATIC_SERVERS,
                static_entries=make_server_entries("10.0.1.0/26", "campus.example.edu"),
            )
        )
        return network

    def test_subnets_must_be_inside_prefix(self):
        network = self.make_network()
        with pytest.raises(ValueError):
            network.add_subnet(
                Subnet("192.168.0.0/24", SubnetRole.STATIC_SERVERS, static_entries=[])
            )

    def test_overlapping_subnets_rejected(self):
        network = self.make_network()
        with pytest.raises(ValueError):
            network.add_subnet(
                Subnet("10.0.10.0/25", SubnetRole.STATIC_SERVERS, static_entries=[])
            )

    def test_records_on_merges_subnets(self):
        network = self.make_network()
        records = list(network.records_on(WEEKDAY))
        dynamic = [r for r in records if "iphone" in r[1]]
        static = [r for r in records if r[1].startswith("www.")]
        assert len(dynamic) == 4
        assert len(static) == 1

    def test_counts_by_slash24(self):
        network = self.make_network()
        counts = network.counts_by_slash24(WEEKDAY)
        assert counts["10.0.10.0/24"] == 4
        assert counts["10.0.1.0/24"] > 10

    def test_counts_by_subnet_role(self):
        network = self.make_network()
        by_role = network.counts_by_subnet(WEEKDAY)
        assert by_role[SubnetRole.EDUCATION] == 4
        assert by_role[SubnetRole.STATIC_SERVERS] > 0

    def test_housing_uses_housing_covid_factor(self):
        network = self.make_network()
        housing = Subnet(
            "10.0.20.0/24",
            SubnetRole.HOUSING,
            devices=[make_always_on_device(100 + i) for i in range(2)],
            policy=CarryOverPolicy("campus.example.edu"),
        )
        network.add_subnet(housing)
        lockdown_day = dt.date(2020, 4, 1)
        education = network.subnets[0]
        assert network.day_factor(lockdown_day, housing) > network.day_factor(lockdown_day, education)

    def test_icmp_allowlist_parsed(self):
        network = Network(
            "n",
            NetworkType.ENTERPRISE,
            "10.0.0.0/16",
            "corp.example.com",
            icmp_policy=IcmpPolicy.BLOCK,
            icmp_allowlist=["10.0.0.1"],
        )
        assert ipaddress.IPv4Address("10.0.0.1") in network.icmp_allowlist
