"""Tests for the Internet container, world building and personas."""

import datetime as dt
import ipaddress

import pytest

from repro.netsim.calendar import cyber_monday, thanksgiving
from repro.netsim.internet import Internet, WorldScale, build_world
from repro.netsim.network import IcmpPolicy, Network, NetworkType
from repro.netsim.personas import BRIAN_HOSTNAME_LABELS, make_brian_devices
from repro.netsim.rng import RngStreams


@pytest.fixture(scope="module")
def world():
    return build_world(seed=3, scale=WorldScale.small())


class TestInternetContainer:
    def test_duplicate_names_rejected(self):
        internet = Internet()
        internet.add(Network("a", NetworkType.OTHER, "10.0.0.0/16", "a.example"))
        with pytest.raises(ValueError):
            internet.add(Network("a", NetworkType.OTHER, "11.0.0.0/16", "a2.example"))

    def test_overlapping_prefixes_rejected(self):
        internet = Internet()
        internet.add(Network("a", NetworkType.OTHER, "10.0.0.0/16", "a.example"))
        with pytest.raises(ValueError):
            internet.add(Network("b", NetworkType.OTHER, "10.0.128.0/17", "b.example"))

    def test_network_lookup(self, world):
        assert world.internet.network("Academic-A").name == "Academic-A"


class TestBuiltWorld:
    def test_supplemental_networks_present(self, world):
        expected = {
            "Academic-A", "Academic-B", "Academic-C",
            "Enterprise-A", "Enterprise-B", "Enterprise-C",
            "ISP-A", "ISP-B", "ISP-C",
        }
        assert expected <= set(world.supplemental)

    def test_icmp_policies_match_table4(self, world):
        # Enterprise-B and Enterprise-C block pings; Academic-B mostly.
        assert world.supplemental["Enterprise-B"].icmp_policy is IcmpPolicy.BLOCK
        assert world.supplemental["Enterprise-C"].icmp_policy is IcmpPolicy.BLOCK
        assert world.supplemental["Academic-B"].icmp_policy is IcmpPolicy.BLOCK
        assert len(world.supplemental["Academic-B"].icmp_allowlist) == 2
        assert world.supplemental["Academic-A"].icmp_policy is IcmpPolicy.ALLOW

    def test_academic_a_has_longer_lease(self, world):
        # The Figure-7b laggard.
        assert world.supplemental["Academic-A"].lease_time > world.supplemental["Academic-C"].lease_time

    def test_records_deterministic_for_seed(self):
        day = dt.date(2021, 3, 1)
        world_a = build_world(seed=5, scale=WorldScale.small())
        world_b = build_world(seed=5, scale=WorldScale.small())
        assert sorted(map(str, dict(world_a.internet.records_on(day)))) == sorted(
            map(str, dict(world_b.internet.records_on(day)))
        )

    def test_announced_prefix_sizes_span_figure1_range(self, world):
        sizes = {p.prefix.prefixlen for p in world.internet.announced_prefixes()}
        assert sizes & {12, 16, 20, 23}

    def test_resolver_answers_for_world_records(self, world):
        day = dt.date(2021, 3, 1)
        # Snapshot state is day-level; the resolver reads live zone
        # state, so only verify delegation coverage here.
        resolver = world.internet.resolver()
        for network in world.internet.networks[:5]:
            address = next(network.prefix.hosts())
            assert resolver.server_for(
                __import__("repro.dns.name", fromlist=["reverse_pointer"]).reverse_pointer(address)
            ) is network.server

    def test_supplemental_targets_are_device_backed(self, world):
        targets = world.supplemental_targets("Academic-A")
        assert targets
        assert all(subnet.devices for subnet in targets)


class TestBrianPersonas:
    def test_five_tracked_hostnames(self):
        education, housing = make_brian_devices(2021)
        labels = set()
        from repro.ipam.hostname import sanitize_host_name

        for device in education + housing:
            labels.add(sanitize_host_name(device.host_name()))
        assert labels == set(BRIAN_HOSTNAME_LABELS)

    def test_brians_gone_over_thanksgiving(self):
        rngs = RngStreams(0)
        education, housing = make_brian_devices(2021)
        holiday = thanksgiving(2021)
        for device in education + housing:
            assert device.sessions_for_day(holiday, rngs) == []

    def test_note9_first_appears_cyber_monday_afternoon(self):
        _, housing = make_brian_devices(2021)
        note9 = next(d for d in housing if "note9" in d.device_id)
        rngs = RngStreams(0)
        monday = cyber_monday(2021)
        assert note9.sessions_for_day(monday - dt.timedelta(days=3), rngs) == []
        sessions = note9.sessions_for_day(monday, rngs)
        assert sessions
        assert sessions[0].start >= 12 * 3600  # afternoon
        assert note9.sessions_for_day(monday + dt.timedelta(days=1), rngs)

    def test_mbp_noon_pattern(self):
        education, _ = make_brian_devices(2021)
        mbp = next(d for d in education if "mbp" in d.device_id)
        rngs = RngStreams(0)
        day = dt.date(2021, 11, 10)  # a Wednesday
        sessions = mbp.sessions_for_day(day, rngs)
        assert len(sessions) == 1
        assert 10 * 3600 <= sessions[0].start <= 13 * 3600
        assert sessions[0].duration <= 4 * 3600

    def test_brian_devices_in_world_zone_space(self, world):
        academic_a = world.supplemental["Academic-A"]
        device_ids = {d.device_id for d in academic_a.all_devices()}
        assert any("brian-office" in device_id for device_id in device_ids)
        assert any("brian-resident" in device_id for device_id in device_ids)
