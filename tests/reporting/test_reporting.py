"""Tests for the text renderers."""

import datetime as dt

import pytest

from repro.reporting import TextTable, render_bar_chart, render_cdf, render_time_series


class TestTextTable:
    def test_basic_render(self):
        table = TextTable(["name", "count"], aligns=["<", ">"])
        table.add_row(["alpha", 10])
        table.add_row(["beta", 1234])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert "1,234" in rendered
        assert len(lines) == 4

    def test_row_width_validation(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_row_length_mismatch_message_names_counts(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError, match="3 cells.*2 columns"):
            table.add_row([1, 2, 3])

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            TextTable(["a"], aligns=["x"])
        with pytest.raises(ValueError):
            TextTable(["a", "b"], aligns=["<"])

    def test_float_formatting(self):
        table = TextTable(["v"])
        table.add_row([3.14159])
        assert "3.1" in table.render()

    def test_row_count_and_str(self):
        table = TextTable(["v"])
        table.add_row([1])
        assert table.row_count == 1
        assert str(table) == table.render()

    def test_columns_aligned(self):
        table = TextTable(["name", "n"], aligns=["<", ">"])
        table.add_row(["a", 1])
        table.add_row(["long-name", 100])
        lines = table.render().splitlines()
        assert len(lines[2]) <= len(lines[0])
        header_sep = lines[0].index("|")
        assert all(line.index("|") == header_sep for line in [lines[2], lines[3]])


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = render_bar_chart({"a": 100, "b": 50}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_nonzero_values_get_a_bar(self):
        chart = render_bar_chart({"big": 10_000, "tiny": 1}, width=10)
        assert chart.splitlines()[1].count("#") >= 1

    def test_sort_desc(self):
        chart = render_bar_chart({"small": 1, "big": 10}, sort_desc=True)
        lines = chart.splitlines()
        assert lines[0].startswith("big")

    def test_empty(self):
        assert render_bar_chart({}) == "(no data)"

    def test_all_zero_values_clamp_scale(self):
        chart = render_bar_chart({"a": 0, "b": 0}, width=10)
        assert "#" not in chart

    def test_log_note(self):
        assert "log-scaled" in render_bar_chart({"a": 1}, log_note=True)


class TestCdfRender:
    def test_checkpoint_values(self):
        points = [(5.0, 0.5), (30.0, 0.8), (60.0, 1.0)]
        rendered = render_cdf({"net": points}, checkpoints=(10, 60))
        assert "net" in rendered
        assert "50.0%" in rendered
        assert "100.0%" in rendered

    def test_empty_series(self):
        rendered = render_cdf({"net": []})
        assert "0.0%" in rendered

    def test_empty_mapping(self):
        assert render_cdf({}) == "(no data)"


class TestTimeSeries:
    def test_downsampling(self):
        series = {dt.date(2021, 1, 1) + dt.timedelta(days=i): float(i) for i in range(100)}
        rendered = render_time_series({"x": series}, samples=10)
        data_lines = [line for line in rendered.splitlines() if line.startswith("  ")]
        assert 10 <= len(data_lines) <= 12

    def test_empty(self):
        assert "(no data)" in render_time_series({"x": {}})
        assert render_time_series({}) == "(no data)"

    def test_bars_scale_to_series_peak(self):
        series = {0: 400.0, 1: 200.0}
        rendered = render_time_series({"x": series}, width=10)
        data_lines = [line for line in rendered.splitlines() if line.startswith("  ")]
        assert data_lines[0].count("#") == 10
        assert data_lines[1].count("#") == 5

    def test_all_equal_values_clamp_to_full_width(self):
        series = {0: 7.0, 1: 7.0}
        rendered = render_time_series({"x": series}, width=10)
        data_lines = [line for line in rendered.splitlines() if line.startswith("  ")]
        assert all(line.count("#") == 10 for line in data_lines)
