"""Tests for DHCP client behaviour: join/renew/leave, release vs silent."""

import pytest

from repro.dhcp import (
    ANONYMITY_PROFILE,
    AddressPool,
    ClientFqdn,
    DhcpClient,
    DhcpClientState,
    DhcpError,
    DhcpServer,
    LeaseEventKind,
)


@pytest.fixture
def server():
    return DhcpServer(AddressPool("192.0.2.0/28"), lease_time=3600)


class TestJoin:
    def test_join_binds_address(self, server):
        client = DhcpClient("phone-1", host_name="Brians-iPhone")
        address = client.join(server, now=0)
        assert address is not None
        assert client.state is DhcpClientState.BOUND
        assert client.lease_time == 3600
        assert server.leases.get_by_address(address).host_name == "Brians-iPhone"

    def test_join_failure_when_pool_full(self):
        server = DhcpServer(AddressPool("192.0.2.0/30"), lease_time=3600)
        assert DhcpClient("a").join(server, 0) is not None
        assert DhcpClient("b").join(server, 0) is not None
        assert DhcpClient("c").join(server, 0) is None

    def test_rejoin_gets_sticky_address(self, server):
        client = DhcpClient("phone-1")
        first = client.join(server, now=0)
        client.leave(server, now=100)
        again = client.join(server, now=200)
        assert again == first


class TestRenew:
    def test_renew_keeps_binding(self, server):
        client = DhcpClient("phone-1")
        address = client.join(server, now=0)
        assert client.renew(server, now=1800)
        assert client.address == address

    def test_renew_without_bind_raises(self, server):
        with pytest.raises(DhcpError):
            DhcpClient("phone-1").renew(server, now=0)


class TestLeave:
    def test_clean_leave_sends_release(self, server):
        events = []
        server.subscribe(events.append)
        client = DhcpClient("phone-1", sends_release=True)
        client.join(server, now=0)
        assert client.leave(server, now=600)
        assert events[-1].kind is LeaseEventKind.RELEASED
        assert client.state is DhcpClientState.INIT
        assert client.address is None

    def test_silent_leave_keeps_lease_until_expiry(self, server):
        events = []
        server.subscribe(events.append)
        client = DhcpClient("phone-1", sends_release=False)
        client.join(server, now=0)
        assert not client.leave(server, now=600)
        assert [e.kind for e in events] == [LeaseEventKind.BOUND]
        # The lease ages out only at bound_at + duration.
        server.expire_leases(now=3599)
        assert len(server.leases) == 1
        server.expire_leases(now=3600)
        assert len(server.leases) == 0
        assert events[-1].kind is LeaseEventKind.EXPIRED

    def test_leave_while_unbound_is_noop(self, server):
        assert not DhcpClient("phone-1").leave(server, now=0)


class TestIdentityOptions:
    def test_host_name_reaches_server(self, server):
        client = DhcpClient("phone-1", host_name="Brians-Galaxy-Note9")
        address = client.join(server, now=0)
        assert server.leases.get_by_address(address).host_name == "Brians-Galaxy-Note9"

    def test_client_fqdn_carried(self):
        client = DhcpClient("phone-1", client_fqdn=ClientFqdn("brian.example.org"))
        assert client._base_options().client_fqdn.fqdn == "brian.example.org"

    def test_anonymity_profile_strips_host_name(self, server):
        client = DhcpClient(
            "phone-1",
            host_name="Brians-iPhone",
            anonymity_profile=ANONYMITY_PROFILE,
        )
        assert client.effective_host_name is None
        address = client.join(server, now=0)
        assert server.leases.get_by_address(address).host_name is None

    def test_effective_host_name_without_profile(self):
        assert DhcpClient("x", host_name="n").effective_host_name == "n"
