"""Tests for the DHCP wire codec."""

import ipaddress

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dhcp import ClientFqdn, DhcpMessage, DhcpOptionCode, MessageType, OptionSet
from repro.dhcp.wire import MAGIC_COOKIE, DhcpWireError, decode, encode


def make_message(message_type=MessageType.REQUEST, host_name="Brian's iPhone", **extra):
    options = OptionSet()
    if host_name is not None:
        options.host_name = host_name
    for code, value in extra.items():
        options.set(DhcpOptionCode[code.upper()], value)
    return DhcpMessage(message_type, "aa:bb:cc:dd:ee:ff", options=options)


class TestRoundtrip:
    def test_discover_roundtrip(self):
        message = make_message(MessageType.DISCOVER)
        decoded, xid = decode(encode(message, transaction_id=0xDEADBEEF))
        assert xid == 0xDEADBEEF
        assert decoded.message_type is MessageType.DISCOVER
        assert decoded.client_id == "aa:bb:cc:dd:ee:ff"
        assert decoded.host_name == "Brian's iPhone"

    def test_ack_carries_yiaddr_and_lease(self):
        options = OptionSet()
        options.set(DhcpOptionCode.LEASE_TIME, 3600)
        message = DhcpMessage(
            MessageType.ACK,
            "client-1",
            options=options,
            your_address=ipaddress.IPv4Address("192.0.2.10"),
            server_id="dhcp.example.net",
        )
        decoded, _ = decode(encode(message))
        assert decoded.your_address == ipaddress.IPv4Address("192.0.2.10")
        assert decoded.lease_time == 3600
        assert decoded.server_id == "dhcp.example.net"

    def test_requested_ip_roundtrip(self):
        message = make_message(requested_ip=ipaddress.IPv4Address("10.0.0.9"))
        decoded, _ = decode(encode(message))
        assert decoded.requested_address == ipaddress.IPv4Address("10.0.0.9")

    def test_client_fqdn_roundtrip(self):
        message = make_message(host_name=None)
        message.options.client_fqdn = ClientFqdn(
            "brians-iphone.example.org", server_updates=False, no_server_update=True
        )
        decoded, _ = decode(encode(message))
        fqdn = decoded.options.client_fqdn
        assert fqdn.fqdn == "brians-iphone.example.org"
        assert fqdn.no_server_update
        assert not fqdn.server_updates

    def test_parameter_request_list_roundtrip(self):
        message = make_message(
            parameter_request_list=[DhcpOptionCode.ROUTER, DhcpOptionCode.DOMAIN_NAME]
        )
        decoded, _ = decode(encode(message))
        assert decoded.options.get(DhcpOptionCode.PARAMETER_REQUEST_LIST) == [3, 15]

    def test_non_mac_client_id_roundtrip(self):
        message = DhcpMessage(MessageType.RELEASE, "Academic-A-stu17-d0")
        decoded, _ = decode(encode(message))
        assert decoded.client_id == "Academic-A-stu17-d0"

    @given(
        st.sampled_from(list(MessageType)),
        st.from_regex(r"[a-z0-9:-]{1,30}", fullmatch=True),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, message_type, client_id, xid):
        message = DhcpMessage(message_type, client_id)
        decoded, decoded_xid = decode(encode(message, transaction_id=xid))
        assert decoded.message_type is message_type
        assert decoded.client_id == client_id
        assert decoded_xid == xid


class TestWireDetails:
    def test_magic_cookie_present(self):
        wire = encode(make_message())
        assert MAGIC_COOKIE in wire

    def test_reply_sets_op_code_two(self):
        assert encode(DhcpMessage(MessageType.OFFER, "c"))[0] == 2
        assert encode(DhcpMessage(MessageType.DISCOVER, "c"))[0] == 1

    def test_mac_chaddr_packed_as_octets(self):
        wire = encode(make_message())
        chaddr = wire[28:44]
        assert chaddr[:6] == bytes.fromhex("aabbccddeeff")


class TestDecodeErrors:
    def test_short_packet_rejected(self):
        with pytest.raises(DhcpWireError):
            decode(b"\x01\x01\x06\x00")

    def test_missing_cookie_rejected(self):
        wire = bytearray(encode(make_message()))
        wire[236:240] = b"\x00\x00\x00\x00"
        with pytest.raises(DhcpWireError):
            decode(bytes(wire))

    def test_missing_message_type_rejected(self):
        wire = bytearray(240)
        wire[0] = 1
        wire[236:240] = MAGIC_COOKIE
        wire.append(255)
        with pytest.raises(DhcpWireError):
            decode(bytes(wire))

    def test_truncated_option_rejected(self):
        wire = bytearray(encode(make_message()))
        # Chop mid-option (drop END and a few octets).
        with pytest.raises(DhcpWireError):
            decode(bytes(wire[:-4]))

    def test_unknown_options_skipped(self):
        wire = bytearray(encode(make_message()))
        # Insert an unknown option (code 200) before END.
        assert wire[-1] == 255
        wire[-1:] = bytes([200, 2, 1, 2, 255])
        decoded, _ = decode(bytes(wire))
        assert decoded.host_name == "Brian's iPhone"

    @given(st.binary(max_size=400))
    @settings(max_examples=150)
    def test_random_bytes_never_crash(self, wire):
        try:
            decode(wire)
        except (DhcpWireError, ValueError):
            pass
