"""Tests for leases and the lease database."""

import ipaddress

import pytest

from repro.dhcp import Lease, LeaseDatabase, LeaseState, UnknownLeaseError


def make_lease(address="10.0.0.5", client="client-1", duration=3600, bound_at=0):
    return Lease(
        address=ipaddress.IPv4Address(address),
        client_id=client,
        duration=duration,
        bound_at=bound_at,
    )


class TestLease:
    def test_expiry_follows_binding(self):
        lease = make_lease(bound_at=100, duration=3600)
        assert lease.expires_at == 3700

    def test_renewal_extends_expiry(self):
        lease = make_lease(bound_at=0, duration=3600)
        lease.renew(1800)
        assert lease.expires_at == 1800 + 3600
        assert lease.renewals == 1

    def test_renewal_due_at_half_time(self):
        lease = make_lease(bound_at=0, duration=3600)
        assert lease.renewal_due_at == 1800

    def test_is_active_window(self):
        lease = make_lease(bound_at=0, duration=3600)
        assert lease.is_active(0)
        assert lease.is_active(3599)
        assert not lease.is_active(3600)

    def test_released_lease_is_not_active(self):
        lease = make_lease()
        lease.state = LeaseState.RELEASED
        assert not lease.is_active(1)

    def test_renewing_non_bound_lease_fails(self):
        lease = make_lease()
        lease.state = LeaseState.EXPIRED
        with pytest.raises(ValueError):
            lease.renew(10)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            make_lease(duration=0)


class TestLeaseDatabase:
    def test_add_and_lookup(self):
        db = LeaseDatabase()
        lease = make_lease()
        db.add(lease)
        assert db.get_by_address("10.0.0.5") is lease
        assert db.find_by_client("client-1") is lease
        assert len(db) == 1

    def test_duplicate_address_rejected(self):
        db = LeaseDatabase()
        db.add(make_lease())
        with pytest.raises(ValueError):
            db.add(make_lease(client="client-2"))

    def test_duplicate_client_rejected(self):
        db = LeaseDatabase()
        db.add(make_lease())
        with pytest.raises(ValueError):
            db.add(make_lease(address="10.0.0.6"))

    def test_missing_lease_raises(self):
        with pytest.raises(UnknownLeaseError):
            LeaseDatabase().get_by_address("10.0.0.1")

    def test_find_returns_none_for_missing(self):
        db = LeaseDatabase()
        assert db.find_by_address("10.0.0.1") is None
        assert db.find_by_client("nope") is None

    def test_drop_release_moves_to_history(self):
        db = LeaseDatabase()
        lease = make_lease()
        db.add(lease)
        db.drop(lease, LeaseState.RELEASED)
        assert len(db) == 0
        assert lease.state is LeaseState.RELEASED
        assert db.history == [lease]
        assert db.find_by_client("client-1") is None

    def test_drop_rejects_bad_state(self):
        db = LeaseDatabase()
        lease = make_lease()
        db.add(lease)
        with pytest.raises(ValueError):
            db.drop(lease, LeaseState.BOUND)

    def test_drop_rejects_stale_lease(self):
        db = LeaseDatabase()
        lease = make_lease()
        with pytest.raises(UnknownLeaseError):
            db.drop(lease, LeaseState.EXPIRED)

    def test_expired_scan(self):
        db = LeaseDatabase()
        fresh = make_lease(address="10.0.0.5", client="a", bound_at=1000, duration=3600)
        stale = make_lease(address="10.0.0.6", client="b", bound_at=0, duration=600)
        db.add(fresh)
        db.add(stale)
        assert db.expired(700) == [stale]
        assert db.active(700) == [fresh]

    def test_client_can_rebind_after_drop(self):
        db = LeaseDatabase()
        lease = make_lease()
        db.add(lease)
        db.drop(lease, LeaseState.EXPIRED)
        rebound = make_lease(address="10.0.0.7")
        db.add(rebound)
        assert db.find_by_client("client-1") is rebound
