"""Tests for DHCP options and the RFC 7844 anonymity profile."""

import pytest

from repro.dhcp import (
    ANONYMITY_PROFILE,
    ClientFqdn,
    DhcpOptionCode,
    OptionSet,
    apply_anonymity_profile,
)
from repro.dhcp.options import AnonymityProfile


class TestOptionSet:
    def test_set_get_remove(self):
        options = OptionSet()
        options.set(DhcpOptionCode.LEASE_TIME, 3600)
        assert options.get(DhcpOptionCode.LEASE_TIME) == 3600
        options.remove(DhcpOptionCode.LEASE_TIME)
        assert options.get(DhcpOptionCode.LEASE_TIME) is None

    def test_remove_is_idempotent(self):
        options = OptionSet()
        options.remove(DhcpOptionCode.HOST_NAME)

    def test_host_name_property(self):
        options = OptionSet()
        options.host_name = "Brians-iPhone"
        assert options.host_name == "Brians-iPhone"
        assert DhcpOptionCode.HOST_NAME in options
        options.host_name = None
        assert DhcpOptionCode.HOST_NAME not in options

    def test_client_fqdn_property(self):
        options = OptionSet()
        fqdn = ClientFqdn("brians-iphone.example.com")
        options.client_fqdn = fqdn
        assert options.client_fqdn is fqdn

    def test_copy_is_independent(self):
        options = OptionSet()
        options.host_name = "a"
        clone = options.copy()
        clone.host_name = "b"
        assert options.host_name == "a"

    def test_equality(self):
        a, b = OptionSet(), OptionSet()
        a.host_name = "x"
        b.host_name = "x"
        assert a == b

    def test_iteration_and_len(self):
        options = OptionSet()
        options.host_name = "x"
        options.set(DhcpOptionCode.LEASE_TIME, 60)
        assert len(options) == 2
        assert set(options) == {DhcpOptionCode.HOST_NAME, DhcpOptionCode.LEASE_TIME}


class TestClientFqdn:
    def test_defaults(self):
        fqdn = ClientFqdn("host.example.com")
        assert fqdn.server_updates
        assert not fqdn.no_server_update

    def test_conflicting_flags_rejected(self):
        with pytest.raises(ValueError):
            ClientFqdn("host.example.com", server_updates=True, no_server_update=True)

    def test_no_update_flag(self):
        fqdn = ClientFqdn("host.example.com", server_updates=False, no_server_update=True)
        assert fqdn.no_server_update


class TestAnonymityProfile:
    def make_identifying_options(self):
        options = OptionSet()
        options.host_name = "Brians-iPhone"
        options.client_fqdn = ClientFqdn("brians-iphone.example.com")
        options.set(DhcpOptionCode.CLIENT_IDENTIFIER, "aa:bb:cc")
        options.set(DhcpOptionCode.VENDOR_CLASS, "android-dhcp-12")
        options.set(DhcpOptionCode.LEASE_TIME, 3600)
        return options

    def test_default_profile_strips_all_identifiers(self):
        cleaned = apply_anonymity_profile(self.make_identifying_options())
        assert cleaned.host_name is None
        assert cleaned.client_fqdn is None
        assert cleaned.get(DhcpOptionCode.CLIENT_IDENTIFIER) is None
        assert cleaned.get(DhcpOptionCode.VENDOR_CLASS) is None

    def test_profile_keeps_non_identifying_options(self):
        cleaned = apply_anonymity_profile(self.make_identifying_options())
        assert cleaned.get(DhcpOptionCode.LEASE_TIME) == 3600

    def test_original_options_untouched(self):
        options = self.make_identifying_options()
        apply_anonymity_profile(options)
        assert options.host_name == "Brians-iPhone"

    def test_partial_profile(self):
        profile = AnonymityProfile(strip_host_name=False)
        cleaned = apply_anonymity_profile(self.make_identifying_options(), profile)
        assert cleaned.host_name == "Brians-iPhone"
        assert cleaned.client_fqdn is None

    def test_stripped_codes(self):
        codes = ANONYMITY_PROFILE.stripped_codes()
        assert DhcpOptionCode.HOST_NAME in codes
        assert DhcpOptionCode.CLIENT_FQDN in codes
