"""Tests for address pools."""

import ipaddress

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dhcp import AddressPool, PoolExhaustedError


class TestAllocation:
    def test_allocates_from_prefix(self):
        pool = AddressPool("192.0.2.0/29")
        address = pool.allocate("c1")
        assert address in ipaddress.IPv4Network("192.0.2.0/29")

    def test_network_and_broadcast_reserved(self):
        pool = AddressPool("192.0.2.0/30")
        addresses = {pool.allocate("c1"), pool.allocate("c2")}
        assert ipaddress.IPv4Address("192.0.2.0") not in addresses
        assert ipaddress.IPv4Address("192.0.2.3") not in addresses

    def test_size_accounts_for_reservations(self):
        pool = AddressPool("192.0.2.0/29", reserved=["192.0.2.1"])
        assert pool.size == 8 - 2 - 1

    def test_exhaustion(self):
        pool = AddressPool("192.0.2.0/30")
        pool.allocate("c1")
        pool.allocate("c2")
        with pytest.raises(PoolExhaustedError):
            pool.allocate("c3")

    def test_unique_allocations(self):
        pool = AddressPool("192.0.2.0/28")
        addresses = [pool.allocate(f"c{i}") for i in range(pool.size)]
        assert len(set(addresses)) == len(addresses)

    def test_requested_address_honored_when_free(self):
        pool = AddressPool("192.0.2.0/28")
        address = pool.allocate("c1", requested="192.0.2.9")
        assert address == ipaddress.IPv4Address("192.0.2.9")

    def test_requested_address_ignored_when_taken(self):
        pool = AddressPool("192.0.2.0/28")
        first = pool.allocate("c1", requested="192.0.2.9")
        second = pool.allocate("c2", requested="192.0.2.9")
        assert second != first


class TestStickiness:
    def test_returning_client_gets_previous_address(self):
        pool = AddressPool("192.0.2.0/28")
        first = pool.allocate("brian-phone")
        pool.release(first)
        pool.allocate("other")  # takes the lowest free address
        again = pool.allocate("brian-phone")
        assert again == first

    def test_previous_address_taken_falls_back(self):
        pool = AddressPool("192.0.2.0/28")
        first = pool.allocate("c1")
        pool.release(first)
        taken = pool.allocate("c2", requested=str(first))
        assert taken == first
        fallback = pool.allocate("c1")
        assert fallback != first


class TestRelease:
    def test_release_returns_address(self):
        pool = AddressPool("192.0.2.0/30")
        a = pool.allocate("c1")
        b = pool.allocate("c2")
        pool.release(a)
        c = pool.allocate("c3")
        assert c == a
        assert b != c

    def test_release_is_idempotent(self):
        pool = AddressPool("192.0.2.0/29")
        a = pool.allocate("c1")
        pool.release(a)
        pool.release(a)
        assert pool.allocated_count == 0

    def test_utilization(self):
        pool = AddressPool("192.0.2.0/29")
        assert pool.utilization() == 0.0
        pool.allocate("c1")
        assert pool.utilization() == pytest.approx(1 / pool.size)

    def test_contains(self):
        pool = AddressPool("192.0.2.0/29")
        assert "192.0.2.4" in pool
        assert "10.0.0.1" not in pool
        assert "garbage" not in pool


class TestPoolProperties:
    @given(st.integers(min_value=1, max_value=14))
    def test_allocate_release_conserves_free_count(self, n):
        pool = AddressPool("198.51.100.0/28")
        n = min(n, pool.size)
        addresses = [pool.allocate(f"c{i}") for i in range(n)]
        assert pool.free_count == pool.size - n
        for address in addresses:
            pool.release(address)
        assert pool.free_count == pool.size

    @given(st.lists(st.sampled_from(["alloc", "release"]), max_size=40))
    def test_no_double_allocation_under_mixed_ops(self, ops):
        pool = AddressPool("198.51.100.0/28")
        held = []
        counter = 0
        for op in ops:
            if op == "alloc":
                try:
                    address = pool.allocate(f"c{counter}")
                except PoolExhaustedError:
                    continue
                counter += 1
                assert address not in held
                held.append(address)
            elif held:
                pool.release(held.pop())
        assert pool.allocated_count == len(held)
