"""Tests for the DHCP server state machine and lease events."""

import pytest

from repro.dhcp import (
    AddressPool,
    DhcpMessage,
    DhcpServer,
    LeaseEventKind,
    MessageType,
    OptionSet,
)
from repro.dhcp.options import DhcpOptionCode


@pytest.fixture
def server():
    return DhcpServer(AddressPool("192.0.2.0/28"), lease_time=3600)


def discover(client="c1", host_name=None):
    options = OptionSet()
    if host_name:
        options.host_name = host_name
    return DhcpMessage(MessageType.DISCOVER, client, options=options)


def request(client="c1", host_name=None, requested=None):
    options = OptionSet()
    if host_name:
        options.host_name = host_name
    if requested:
        options.set(DhcpOptionCode.REQUESTED_IP, requested)
    return DhcpMessage(MessageType.REQUEST, client, options=options)


def release(client="c1"):
    return DhcpMessage(MessageType.RELEASE, client)


class TestDora:
    def test_discover_yields_offer(self, server):
        offer = server.handle(discover(), now=0)
        assert offer.message_type is MessageType.OFFER
        assert offer.your_address is not None
        assert offer.lease_time == 3600

    def test_offer_does_not_bind(self, server):
        server.handle(discover(), now=0)
        assert len(server.leases) == 0

    def test_request_binds_lease(self, server):
        ack = server.handle(request(host_name="Brians-iPhone"), now=10)
        assert ack.message_type is MessageType.ACK
        lease = server.leases.get_by_address(ack.your_address)
        assert lease.host_name == "Brians-iPhone"
        assert lease.bound_at == 10

    def test_renewal_keeps_address(self, server):
        first = server.handle(request(), now=0)
        second = server.handle(request(), now=1800)
        assert second.your_address == first.your_address
        assert len(server.leases) == 1

    def test_renewal_updates_host_name(self, server):
        server.handle(request(host_name="old-name"), now=0)
        ack = server.handle(request(host_name="new-name"), now=100)
        assert server.leases.get_by_address(ack.your_address).host_name == "new-name"

    def test_request_for_foreign_address_naks(self, server):
        first = server.handle(request("c1"), now=0)
        nak = server.handle(request("c2", requested=first.your_address), now=1)
        assert nak.message_type is MessageType.NAK

    def test_request_conflicting_with_own_lease_naks(self, server):
        server.handle(request("c1"), now=0)
        nak = server.handle(request("c1", requested="192.0.2.14"), now=1)
        assert nak.message_type is MessageType.NAK

    def test_pool_exhaustion_naks_request(self):
        server = DhcpServer(AddressPool("192.0.2.0/30"), lease_time=3600)
        server.handle(request("c1"), now=0)
        server.handle(request("c2"), now=0)
        assert server.handle(request("c3"), now=0).message_type is MessageType.NAK

    def test_pool_exhaustion_silences_discover(self):
        server = DhcpServer(AddressPool("192.0.2.0/30"), lease_time=3600)
        server.handle(request("c1"), now=0)
        server.handle(request("c2"), now=0)
        assert server.handle(discover("c3"), now=0) is None

    def test_invalid_lease_time_rejected(self):
        with pytest.raises(ValueError):
            DhcpServer(AddressPool("192.0.2.0/28"), lease_time=0)


class TestReleaseAndExpiry:
    def test_release_frees_address(self, server):
        ack = server.handle(request(), now=0)
        assert server.handle(release(), now=100) is None
        assert len(server.leases) == 0
        assert server.pool.is_free(ack.your_address)

    def test_release_for_unknown_client_is_noop(self, server):
        server.handle(release("ghost"), now=0)
        assert len(server.leases) == 0

    def test_expiry_sweep(self, server):
        server.handle(request("c1"), now=0)
        server.handle(request("c2"), now=3000)
        expired = server.expire_leases(now=3600)
        assert [lease.client_id for lease in expired] == ["c1"]
        assert len(server.leases) == 1

    def test_renewed_lease_survives_sweep(self, server):
        server.handle(request("c1"), now=0)
        server.handle(request("c1"), now=1800)  # renewal
        assert server.expire_leases(now=3600) == []

    def test_stale_binding_replaced_on_rejoin(self, server):
        first = server.handle(request("c1"), now=0)
        # Client comes back long after expiry without a sweep having run.
        second = server.handle(request("c1"), now=10_000)
        assert second.message_type is MessageType.ACK
        assert len(server.leases) == 1
        # Sticky allocation hands the same address back.
        assert second.your_address == first.your_address


class TestEvents:
    def collect(self, server):
        events = []
        server.subscribe(events.append)
        return events

    def test_bound_event(self, server):
        events = self.collect(server)
        server.handle(request(host_name="Brians-iPhone"), now=5)
        assert [e.kind for e in events] == [LeaseEventKind.BOUND]
        assert events[0].at == 5
        assert events[0].lease.host_name == "Brians-iPhone"

    def test_renewed_event(self, server):
        events = self.collect(server)
        server.handle(request(), now=0)
        server.handle(request(), now=1800)
        assert [e.kind for e in events] == [LeaseEventKind.BOUND, LeaseEventKind.RENEWED]

    def test_released_event(self, server):
        events = self.collect(server)
        server.handle(request(), now=0)
        server.handle(release(), now=60)
        assert [e.kind for e in events][-1] is LeaseEventKind.RELEASED
        assert events[-1].at == 60

    def test_expired_event(self, server):
        events = self.collect(server)
        server.handle(request(), now=0)
        server.expire_leases(now=3600)
        assert [e.kind for e in events][-1] is LeaseEventKind.EXPIRED

    def test_multiple_listeners(self, server):
        first, second = self.collect(server), self.collect(server)
        server.handle(request(), now=0)
        assert len(first) == len(second) == 1
