"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.core.terms
import repro.dns.name
import repro.dns.records
import repro.ipam.hostname
import repro.netsim.simtime
import repro.reporting.tables

MODULES = [
    repro.core.terms,
    repro.dns.name,
    repro.dns.records,
    repro.ipam.hostname,
    repro.netsim.simtime,
    repro.reporting.tables,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0, f"{module.__name__} has no doctest examples"
