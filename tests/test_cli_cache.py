"""The ``repro cache`` subcommand: inspect / verify / migrate."""

import io
import json

from repro.cli import main
from repro.scan.cache import SnapshotCache
from repro.scan.snapshot import legacy_dict_payload
from tests.scan.test_cache_v4 import collect


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def seeded_cache(tmp_path):
    cache = SnapshotCache(tmp_path / "snap")
    collector, series = collect(cache)
    return cache, collector.last_metrics.cache_key, series


class TestCacheCommand:
    def test_inspect_lists_v4_entries(self, tmp_path):
        cache, key, _ = seeded_cache(tmp_path)
        code, output = run_cli(
            "--snapshot-cache", str(cache.root),
            "--campaign-cache", str(tmp_path / "camp"),
            "cache", "inspect",
        )
        assert code == 0
        assert "1 entry(ies)" in output
        assert key[:12] in output
        assert f"{key}.rbf" in output

    def test_verify_passes_on_healthy_cache(self, tmp_path):
        cache, key, _ = seeded_cache(tmp_path)
        code, output = run_cli(
            "--snapshot-cache", str(cache.root),
            "--campaign-cache", str(tmp_path / "camp"),
            "cache", "verify",
        )
        assert code == 0
        assert "OK" in output

    def test_verify_flags_corrupt_sidecar(self, tmp_path):
        cache, key, _ = seeded_cache(tmp_path)
        sidecar = cache.blockfile_path_for(key)
        blob = bytearray(sidecar.read_bytes())
        blob[-1] ^= 0xFF
        sidecar.write_bytes(bytes(blob))
        code, output = run_cli(
            "--snapshot-cache", str(cache.root),
            "--campaign-cache", str(tmp_path / "camp"),
            "cache", "verify",
        )
        assert code == 1
        assert "SHA-256 mismatch" in output

    def test_migrate_upgrades_legacy_entries(self, tmp_path):
        cache, key, series = seeded_cache(tmp_path)
        # Downgrade the entry to the v2 dict shape, dropping the sidecar.
        cache.invalidate(key)
        cache.store(key, legacy_dict_payload(series))
        assert json.loads(cache.path_for(key).read_text()).get("version", 2) == 2

        code, output = run_cli(
            "--snapshot-cache", str(cache.root),
            "--campaign-cache", str(tmp_path / "camp"),
            "cache", "migrate",
        )
        assert code == 0
        assert "migrated" in output
        assert json.loads(cache.path_for(key).read_text())["version"] == 4
        assert cache.blockfile_path_for(key).is_file()

        # A second run has nothing to do and is harmless.
        code, _ = run_cli(
            "--snapshot-cache", str(cache.root),
            "--campaign-cache", str(tmp_path / "camp"),
            "cache", "migrate",
        )
        assert code == 0
