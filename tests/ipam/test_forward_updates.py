"""Tests for IPAM-driven forward-DNS updates (future-work extension)."""

import pytest

from repro.dhcp import AddressPool, ClientFqdn, DhcpClient, DhcpServer
from repro.dns import ReverseZone
from repro.dns.forward import ForwardZone
from repro.ipam import CarryOverPolicy, IpamSystem
from repro.ipam.system import FORWARD_CLIENT_REQUESTED, FORWARD_NEVER


def build_stack(forward_updates="always"):
    reverse = ReverseZone("192.0.2.0/24")
    forward = ForwardZone("campus.example.edu")
    server = DhcpServer(AddressPool("192.0.2.0/24"), lease_time=3600)
    ipam = IpamSystem(
        reverse,
        CarryOverPolicy("campus.example.edu"),
        forward_zone=forward,
        forward_updates=forward_updates,
    ).attach(server)
    return reverse, forward, server, ipam


class TestForwardUpdates:
    def test_bind_adds_both_records(self):
        reverse, forward, server, _ = build_stack()
        client = DhcpClient("c1", host_name="Brian's iPhone")
        address = client.join(server, now=0)
        assert reverse.get_hostname(address) == "brians-iphone.campus.example.edu"
        assert forward.get_address("brians-iphone.campus.example.edu") == address

    def test_release_removes_both(self):
        reverse, forward, server, _ = build_stack()
        client = DhcpClient("c1", host_name="Brian's iPhone")
        address = client.join(server, now=0)
        client.leave(server, now=60)
        assert reverse.get_ptr(address) is None
        assert len(forward) == 0

    def test_expiry_removes_both(self):
        reverse, forward, server, _ = build_stack()
        client = DhcpClient("c1", host_name="Brian's iPhone", sends_release=False)
        client.join(server, now=0)
        client.leave(server, now=60)
        server.expire_leases(now=3600)
        assert len(forward) == 0

    def test_never_mode_skips_forward(self):
        reverse, forward, server, _ = build_stack(forward_updates=FORWARD_NEVER)
        client = DhcpClient("c1", host_name="Brian's iPhone")
        address = client.join(server, now=0)
        assert reverse.get_ptr(address) is not None
        assert len(forward) == 0

    def test_client_requested_mode_requires_s_flag(self):
        reverse, forward, server, _ = build_stack(forward_updates=FORWARD_CLIENT_REQUESTED)
        silent = DhcpClient("c1", host_name="Box One")
        silent.join(server, now=0)
        assert len(forward) == 0
        asking = DhcpClient(
            "c2",
            host_name="Box Two",
            client_fqdn=ClientFqdn("box-two.campus.example.edu", server_updates=True),
        )
        asking.join(server, now=0)
        assert len(forward) == 1

    def test_invalid_mode_rejected(self):
        reverse = ReverseZone("192.0.2.0/24")
        with pytest.raises(ValueError):
            IpamSystem(
                reverse,
                CarryOverPolicy("x.example"),
                forward_zone=ForwardZone("x.example"),
                forward_updates="sometimes",
            )

    def test_out_of_zone_hostname_skipped_quietly(self):
        reverse = ReverseZone("192.0.2.0/24")
        forward = ForwardZone("other.example.org")  # policy suffix is elsewhere
        server = DhcpServer(AddressPool("192.0.2.0/24"), lease_time=3600)
        IpamSystem(reverse, CarryOverPolicy("campus.example.edu"), forward_zone=forward).attach(server)
        client = DhcpClient("c1", host_name="Brian's iPhone")
        address = client.join(server, now=0)
        assert reverse.get_ptr(address) is not None
        assert len(forward) == 0
