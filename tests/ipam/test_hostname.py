"""Tests for Host Name to DNS label sanitisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ipam import sanitize_host_name


class TestSanitizeHostName:
    def test_paper_iphone_example(self):
        assert sanitize_host_name("Brian's iPhone") == "brians-iphone"

    def test_paper_galaxy_note_example(self):
        assert sanitize_host_name("Brian's Galaxy Note9") == "brians-galaxy-note9"

    def test_macbook_pro(self):
        assert sanitize_host_name("Brians-MBP") == "brians-mbp"

    def test_spaces_become_hyphens(self):
        assert sanitize_host_name("My Cool Laptop") == "my-cool-laptop"

    def test_unicode_apostrophe_dropped(self):
        assert sanitize_host_name("Brian’s iPad") == "brians-ipad"

    def test_underscores_and_dots_collapsed(self):
        assert sanitize_host_name("host_name.local") == "host-name-local"

    def test_hyphen_runs_collapsed(self):
        assert sanitize_host_name("a -- b") == "a-b"

    def test_leading_trailing_junk_stripped(self):
        assert sanitize_host_name("  (tablet)  ") == "tablet"

    def test_empty_input_falls_back(self):
        assert sanitize_host_name("") == "host"
        assert sanitize_host_name("'''") == "host"

    def test_custom_fallback(self):
        assert sanitize_host_name("!!!", fallback="client") == "client"

    def test_long_names_truncated_to_63(self):
        label = sanitize_host_name("x" * 100)
        assert len(label) == 63

    def test_truncation_does_not_leave_trailing_hyphen(self):
        label = sanitize_host_name("a" * 62 + " b")
        assert not label.endswith("-")

    @given(st.text(max_size=200))
    def test_output_is_always_a_valid_label(self, raw):
        label = sanitize_host_name(raw)
        assert 1 <= len(label) <= 63
        assert all(c.isascii() and (c.isalnum() or c == "-") for c in label)
        assert not label.startswith("-")
        assert not label.endswith("-")

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=63))
    def test_plain_labels_pass_through(self, raw):
        assert sanitize_host_name(raw) == raw
