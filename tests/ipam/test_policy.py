"""Tests for DNS-update policies."""

import ipaddress

import pytest

from repro.dhcp import Lease
from repro.ipam import CarryOverPolicy, HashedPolicy, NoUpdatePolicy, StaticTemplatePolicy


def make_lease(host_name="Brian's iPhone", address="10.1.2.3", client="mac-aa"):
    return Lease(
        address=ipaddress.IPv4Address(address),
        client_id=client,
        duration=3600,
        bound_at=0,
        host_name=host_name,
    )


class TestCarryOverPolicy:
    def test_publishes_sanitized_device_name(self):
        policy = CarryOverPolicy("campus.example.edu")
        assert policy.hostname_for(make_lease()) == "brians-iphone.campus.example.edu"

    def test_fallback_when_no_host_name(self):
        policy = CarryOverPolicy("campus.example.edu")
        assert policy.hostname_for(make_lease(host_name=None)) == "dhcp-10-1-2-3.campus.example.edu"

    def test_custom_fallback_prefix(self):
        policy = CarryOverPolicy("isp.example.net", fallback_prefix="client")
        assert policy.hostname_for(make_lease(host_name="")) == "client-10-1-2-3.isp.example.net"

    def test_exposes_dynamics(self):
        assert CarryOverPolicy("x.example").exposes_dynamics

    def test_suffix_normalised(self):
        assert CarryOverPolicy("campus.example.edu.").suffix == "campus.example.edu"

    def test_empty_suffix_rejected(self):
        with pytest.raises(ValueError):
            CarryOverPolicy("")

    def test_no_static_form(self):
        assert CarryOverPolicy("x.example").static_hostname_for("10.1.2.3") is None


class TestStaticTemplatePolicy:
    def test_fixed_form_hostname(self):
        policy = StaticTemplatePolicy("dynamic.institute.edu")
        assert policy.hostname_for(make_lease()) == "host-10-1-2-3.dynamic.institute.edu"

    def test_ignores_device_name(self):
        policy = StaticTemplatePolicy("dynamic.institute.edu")
        a = policy.hostname_for(make_lease(host_name="Brian's iPhone"))
        b = policy.hostname_for(make_lease(host_name="Alices-Android"))
        assert a == b

    def test_static_form_matches_dynamic_form(self):
        policy = StaticTemplatePolicy("dynamic.institute.edu")
        lease = make_lease()
        assert policy.static_hostname_for(lease.address) == policy.hostname_for(lease)

    def test_last_octet_template(self):
        policy = StaticTemplatePolicy("pool.example.net", template="c{last_octet}")
        assert policy.hostname_for(make_lease(address="10.1.2.77")) == "c77.pool.example.net"

    def test_template_without_placeholders_rejected(self):
        with pytest.raises(ValueError):
            StaticTemplatePolicy("x.example", template="host")

    def test_does_not_expose_dynamics(self):
        assert not StaticTemplatePolicy("x.example").exposes_dynamics


class TestHashedPolicy:
    def test_hostname_contains_no_identity(self):
        policy = HashedPolicy("campus.example.edu")
        hostname = policy.hostname_for(make_lease())
        assert "brian" not in hostname
        assert "iphone" not in hostname
        assert hostname.endswith(".campus.example.edu")

    def test_stable_per_client(self):
        policy = HashedPolicy("x.example")
        a = policy.hostname_for(make_lease(client="mac-aa"))
        b = policy.hostname_for(make_lease(client="mac-aa", address="10.9.9.9"))
        assert a.split(".")[0] == b.split(".")[0]

    def test_distinct_clients_distinct_digests(self):
        policy = HashedPolicy("x.example")
        a = policy.hostname_for(make_lease(client="mac-aa"))
        b = policy.hostname_for(make_lease(client="mac-bb"))
        assert a != b

    def test_key_changes_digest(self):
        lease = make_lease()
        a = HashedPolicy("x.example", key=b"k1").hostname_for(lease)
        b = HashedPolicy("x.example", key=b"k2").hostname_for(lease)
        assert a != b

    def test_digest_length_honored(self):
        policy = HashedPolicy("x.example", digest_length=8)
        label = policy.hostname_for(make_lease()).split(".")[0]
        assert label == "h-" + label[2:]
        assert len(label) == 2 + 8

    def test_digest_length_validated(self):
        with pytest.raises(ValueError):
            HashedPolicy("x.example", digest_length=2)


class TestNoUpdatePolicy:
    def test_never_publishes(self):
        policy = NoUpdatePolicy("x.example")
        assert policy.hostname_for(make_lease()) is None
        assert not policy.exposes_dynamics
