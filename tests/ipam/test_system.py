"""Tests for the IPAM bridge: lease events driving zone changes."""

import pytest

from repro.dhcp import AddressPool, ClientFqdn, DhcpClient, DhcpServer
from repro.dns import ReverseZone, ZoneChangeKind
from repro.ipam import CarryOverPolicy, IpamSystem, NoUpdatePolicy, StaticTemplatePolicy


def build_stack(policy=None, lease_time=3600, **ipam_kwargs):
    zone = ReverseZone("192.0.2.0/24")
    server = DhcpServer(AddressPool("192.0.2.0/24"), lease_time=lease_time)
    policy = policy or CarryOverPolicy("campus.example.edu")
    ipam = IpamSystem(zone, policy, **ipam_kwargs).attach(server)
    return zone, server, ipam


class TestBindAddsPtr:
    def test_join_publishes_device_name(self):
        zone, server, _ = build_stack()
        client = DhcpClient("phone-1", host_name="Brian's iPhone")
        address = client.join(server, now=0)
        assert zone.get_hostname(address) == "brians-iphone.campus.example.edu"

    def test_renewal_does_not_touch_record(self):
        zone, server, _ = build_stack()
        client = DhcpClient("phone-1", host_name="Brian's iPhone")
        address = client.join(server, now=0)
        serial = zone.serial
        client.renew(server, now=1800)
        assert zone.serial == serial
        assert zone.get_hostname(address) == "brians-iphone.campus.example.edu"

    def test_host_name_change_updates_record(self):
        zone, server, _ = build_stack()
        client = DhcpClient("phone-1", host_name="old-name")
        address = client.join(server, now=0)
        client.host_name = "new-name"
        client.renew(server, now=600)
        assert zone.get_hostname(address) == "new-name.campus.example.edu"

    def test_no_update_policy_publishes_nothing(self):
        zone, server, ipam = build_stack(policy=NoUpdatePolicy("campus.example.edu"))
        client = DhcpClient("phone-1", host_name="Brian's iPhone")
        client.join(server, now=0)
        assert len(zone) == 0
        assert ipam.updates_suppressed == 1


class TestPhaseThreeReverts:
    def test_release_removes_ptr(self):
        zone, server, _ = build_stack()
        client = DhcpClient("phone-1", host_name="x", sends_release=True)
        address = client.join(server, now=0)
        client.leave(server, now=900)
        assert zone.get_ptr(address) is None
        removal = zone.journal[-1]
        assert removal.kind is ZoneChangeKind.REMOVE
        assert removal.at == 900

    def test_silent_leave_removes_ptr_only_at_expiry(self):
        zone, server, _ = build_stack()
        client = DhcpClient("phone-1", host_name="x", sends_release=False)
        address = client.join(server, now=0)
        client.leave(server, now=900)
        assert zone.get_ptr(address) is not None
        server.expire_leases(now=3600)
        assert zone.get_ptr(address) is None
        assert zone.journal[-1].at == 3600

    def test_remove_on_release_disabled_leaves_record(self):
        zone, server, _ = build_stack(remove_on_release=False)
        client = DhcpClient("phone-1", host_name="x")
        address = client.join(server, now=0)
        client.leave(server, now=900)
        assert zone.get_ptr(address) is not None

    def test_static_policy_reverts_to_template(self):
        policy = StaticTemplatePolicy("dynamic.institute.edu")
        zone, server, _ = build_stack(policy=policy)
        client = DhcpClient("phone-1", host_name="Brian's iPhone")
        address = client.join(server, now=0)
        client.leave(server, now=900)
        assert zone.get_hostname(address) == policy.static_hostname_for(address)


class TestStaticProvisioning:
    def test_provision_creates_record_per_address(self):
        zone = ReverseZone("192.0.2.0/29")
        ipam = IpamSystem(zone, StaticTemplatePolicy("dynamic.institute.edu"))
        created = ipam.provision_static_records()
        assert created == 8
        assert len(zone) == 8

    def test_zone_content_constant_through_churn(self):
        # A static-template network is DHCP-dynamic but rDNS-static: the
        # dynamicity heuristic must see no change.  (The 83 prefixes from
        # the paper's validation.)
        policy = StaticTemplatePolicy("dynamic.institute.edu")
        zone = ReverseZone("192.0.2.0/28")
        server = DhcpServer(AddressPool("192.0.2.0/28"), lease_time=3600)
        ipam = IpamSystem(zone, policy).attach(server)
        ipam.provision_static_records()
        before = dict(zone.entries())
        client = DhcpClient("phone-1", host_name="Brian's iPhone")
        client.join(server, now=0)
        client.leave(server, now=600)
        assert dict(zone.entries()) == before

    def test_carry_over_policy_provisions_nothing(self):
        zone = ReverseZone("192.0.2.0/29")
        ipam = IpamSystem(zone, CarryOverPolicy("campus.example.edu"))
        assert ipam.provision_static_records() == 0


class TestClientOptOut:
    def opted_out_client(self):
        return DhcpClient(
            "phone-1",
            host_name="Brian's iPhone",
            client_fqdn=ClientFqdn("brians-iphone.example.org", server_updates=False, no_server_update=True),
        )

    def test_opt_out_ignored_by_default(self):
        zone, server, _ = build_stack()
        address = self.opted_out_client().join(server, now=0)
        assert zone.get_ptr(address) is not None

    def test_opt_out_honored_when_configured(self):
        zone, server, ipam = build_stack(honor_client_no_update=True)
        address = self.opted_out_client().join(server, now=0)
        assert zone.get_ptr(address) is None
        assert ipam.updates_suppressed == 1


class TestUpdateDelay:
    def test_updates_queue_until_flush(self):
        zone, server, ipam = build_stack(update_delay_seconds=120)
        client = DhcpClient("phone-1", host_name="x")
        address = client.join(server, now=0)
        assert zone.get_ptr(address) is None
        assert ipam.flush_pending(now=119) == 0
        assert ipam.flush_pending(now=120) == 1
        assert zone.get_ptr(address) is not None
        assert zone.journal[-1].at == 120

    def test_negative_delay_rejected(self):
        zone = ReverseZone("192.0.2.0/29")
        with pytest.raises(ValueError):
            IpamSystem(zone, CarryOverPolicy("x.example"), update_delay_seconds=-1)

    def test_flush_applies_in_time_order(self):
        zone, server, ipam = build_stack(update_delay_seconds=60)
        client = DhcpClient("phone-1", host_name="x", sends_release=True)
        address = client.join(server, now=0)
        client.leave(server, now=30)
        ipam.flush_pending(now=1000)
        # Add at t=60, remove at t=90: the record must end up absent.
        assert zone.get_ptr(address) is None
        kinds = [change.kind for change in zone.journal]
        assert kinds == [ZoneChangeKind.ADD, ZoneChangeKind.REMOVE]
