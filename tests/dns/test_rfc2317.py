"""RFC 2317 classless reverse delegation: origins, glue, resolution.

Sub-/24 allocations cannot own a conventional ``in-addr.arpa`` cut, so
they are served from a classless child zone (``0-29.2.0.192.in-addr.arpa.``)
reached through CNAME glue installed in the covering /24 zone.  These
tests pin the whole chain: origin naming, glue installation, the
server's CNAME answer, the resolver's chase, and master-file
round-trips for both sides of the delegation.
"""

import ipaddress

import pytest

from repro.dns import (
    Rcode,
    RecordType,
    ReverseZone,
    StubResolver,
    ZoneError,
    reverse_pointer,
    rfc2317_zone_origin,
)
from repro.dns.errors import LabelError
from repro.dns.masterfile import dump_zone, load_reverse_zone
from repro.dns.name import DomainName, rfc2317_zone_label
from repro.dns.resolver import ResolutionStatus
from repro.dns.server import AuthoritativeServer


class TestOrigins:
    def test_dash_form_label(self):
        assert rfc2317_zone_label("192.0.2.0/29") == "0-29"
        assert rfc2317_zone_label("192.0.2.128/25") == "128-25"

    def test_child_zone_origin(self):
        origin = rfc2317_zone_origin("192.0.2.0/29")
        assert origin.to_text() == "0-29.2.0.192.in-addr.arpa."

    def test_octet_aligned_prefix_rejected(self):
        with pytest.raises(LabelError):
            rfc2317_zone_label("192.0.2.0/24")

    def test_sub_slash24_zone_is_classless(self):
        zone = ReverseZone("192.0.2.0/29")
        assert zone.rfc2317
        assert not zone.origin_rounded
        assert zone.origin.to_text() == "0-29.2.0.192.in-addr.arpa."

    def test_misaligned_mid_prefix_flags_rounded_origin(self):
        # A /17 has no octet-aligned origin of its own: the zone claims
        # the covering /16 and flags that it rounded.  World plans turn
        # this flag into a hard validation error.
        zone = ReverseZone("172.16.128.0/17")
        assert not zone.rfc2317
        assert zone.origin_rounded
        assert zone.origin.to_text() == "16.172.in-addr.arpa."

    def test_aligned_zone_is_not_rounded(self):
        assert not ReverseZone("192.0.2.0/24").origin_rounded
        assert not ReverseZone("172.16.0.0/16").origin_rounded


class TestClasslessZone:
    def test_name_for_uses_child_form(self):
        zone = ReverseZone("192.0.2.0/29")
        name = zone.name_for("192.0.2.3")
        assert name.to_text() == "3.0-29.2.0.192.in-addr.arpa."

    def test_name_address_round_trip(self):
        zone = ReverseZone("192.0.2.8/29")
        for address in ipaddress.ip_network("192.0.2.8/29"):
            assert zone.address_for_name(zone.name_for(address)) == address

    def test_out_of_prefix_octet_rejected(self):
        zone = ReverseZone("192.0.2.0/29")
        stray = zone.origin.child("9")  # 192.0.2.9 is outside the /29
        assert zone.address_for_name(stray) is None
        assert zone.lookup(stray, RecordType.PTR) == (Rcode.NXDOMAIN, [])

    def test_set_ptr_and_lookup_child_name(self):
        zone = ReverseZone("192.0.2.0/29")
        zone.set_ptr("192.0.2.3", "brians-iphone.corp.example.com")
        assert zone.get_hostname("192.0.2.3") == "brians-iphone.corp.example.com"
        rcode, answers = zone.lookup(zone.name_for("192.0.2.3"), RecordType.PTR)
        assert rcode is Rcode.NOERROR
        assert answers[0].rdata_text().rstrip(".") == "brians-iphone.corp.example.com"


class TestGlue:
    def test_glue_installs_one_cname_per_address(self):
        covering = ReverseZone("192.0.2.0/24")
        child = ReverseZone("192.0.2.0/29")
        assert covering.add_rfc2317_glue(child) == 8
        glue = list(covering.glue_records())
        assert len(glue) == 8
        assert all(record.rtype is RecordType.CNAME for record in glue)

    def test_glue_maps_parent_form_onto_child_form(self):
        covering = ReverseZone("192.0.2.0/24")
        child = ReverseZone("192.0.2.0/29")
        covering.add_rfc2317_glue(child)
        rcode, answers = covering.lookup(reverse_pointer("192.0.2.3"), RecordType.PTR)
        assert rcode is Rcode.NOERROR
        assert answers[0].rtype is RecordType.CNAME
        assert answers[0].rdata == child.name_for("192.0.2.3")

    def test_glue_rejects_non_classless_child(self):
        covering = ReverseZone("192.0.0.0/16")
        with pytest.raises(ZoneError):
            covering.add_rfc2317_glue(ReverseZone("192.0.2.0/24"))

    def test_glue_rejects_classless_host(self):
        host = ReverseZone("192.0.2.0/25")
        with pytest.raises(ZoneError):
            host.add_rfc2317_glue(ReverseZone("192.0.2.0/29"))

    def test_glue_rejects_child_outside_prefix(self):
        covering = ReverseZone("192.0.2.0/24")
        with pytest.raises(ZoneError):
            covering.add_rfc2317_glue(ReverseZone("192.0.3.0/29"))

    def test_duplicate_glue_rejected(self):
        covering = ReverseZone("192.0.2.0/24")
        child = ReverseZone("192.0.2.0/29")
        covering.add_rfc2317_glue(child)
        with pytest.raises(ZoneError):
            covering.add_glue_cname(
                reverse_pointer("192.0.2.3"), child.name_for("192.0.2.3")
            )


class TestResolution:
    @pytest.fixture
    def delegation(self):
        server = AuthoritativeServer("ns1.corp.example.com")
        covering = ReverseZone("192.0.2.0/24")
        child = ReverseZone("192.0.2.0/29")
        covering.add_rfc2317_glue(child)
        child.set_ptr("192.0.2.3", "printer.corp.example.com")
        server.add_zone(covering)
        server.add_zone(child)
        resolver = StubResolver()
        resolver.delegate(server)
        return resolver

    def test_resolver_chases_glue_cname(self, delegation):
        result = delegation.resolve_ptr("192.0.2.3")
        assert result.status is ResolutionStatus.NOERROR
        assert result.hostname == "printer.corp.example.com"
        # One glue hop: the parent-form query plus the child-form query.
        assert delegation.queries_sent == 2

    def test_unpublished_address_is_nxdomain_through_glue(self, delegation):
        result = delegation.resolve_ptr("192.0.2.4")
        assert result.status is ResolutionStatus.NXDOMAIN

    def test_glue_loop_breaks_as_servfail(self):
        server = AuthoritativeServer("ns1.loop.example.com")
        zone = ReverseZone("192.0.2.0/24")
        # Two glue records chasing each other: a broken delegation.
        left = reverse_pointer("192.0.2.3")
        right = reverse_pointer("192.0.2.4")
        zone.add_glue_cname(left, right)
        zone.add_glue_cname(right, left)
        server.add_zone(zone)
        resolver = StubResolver()
        resolver.delegate(server)
        result = resolver.resolve_ptr("192.0.2.3")
        assert result.status is ResolutionStatus.SERVFAIL


class TestMasterfileRoundTrip:
    def test_covering_zone_glue_round_trips(self):
        covering = ReverseZone("192.0.2.0/24")
        child = ReverseZone("192.0.2.0/29")
        covering.add_rfc2317_glue(child)
        covering.set_ptr("192.0.2.10", "static.corp.example.com")
        text = dump_zone(covering)
        loaded = load_reverse_zone(text, "192.0.2.0/24")
        assert [r.to_text() for r in loaded.glue_records()] == [
            r.to_text() for r in covering.glue_records()
        ]
        assert loaded.get_hostname("192.0.2.10") == "static.corp.example.com"

    def test_classless_child_zone_round_trips(self):
        child = ReverseZone("192.0.2.0/29")
        child.set_ptr("192.0.2.3", "printer.corp.example.com")
        child.set_ptr("192.0.2.5", "scanner.corp.example.com")
        loaded = load_reverse_zone(dump_zone(child), "192.0.2.0/29")
        assert loaded.rfc2317
        assert loaded.origin == child.origin
        assert loaded.get_hostname("192.0.2.3") == "printer.corp.example.com"
        assert loaded.get_hostname("192.0.2.5") == "scanner.corp.example.com"

    def test_child_zone_rejects_foreign_owner_names(self):
        child = ReverseZone("192.0.2.0/29")
        child.set_ptr("192.0.2.3", "printer.corp.example.com")
        text = dump_zone(child).replace("3.0-29", "3.8-29")
        with pytest.raises(ZoneError):
            load_reverse_zone(text, "192.0.2.0/29")


class TestDomainNameHelpers:
    def test_relativize_under_origin(self):
        origin = rfc2317_zone_origin("192.0.2.0/29")
        name = origin.child("3")
        assert DomainName.parse(name.to_text()) == name
