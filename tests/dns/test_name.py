"""Tests for domain names and in-addr.arpa reversal."""

import ipaddress

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns import DomainName, LabelError, from_reverse_pointer, reverse_pointer
from repro.dns.name import IN_ADDR_ARPA, ROOT, reverse_zone_origin


class TestDomainName:
    def test_parse_and_to_text_roundtrip(self):
        name = DomainName.parse("www.example.com")
        assert name.to_text() == "www.example.com."

    def test_parse_absolute_form(self):
        assert DomainName.parse("example.com.") == DomainName.parse("example.com")

    def test_root_parses_from_dot(self):
        assert DomainName.parse(".") == ROOT
        assert ROOT.to_text() == "."
        assert ROOT.is_root

    def test_equality_is_case_insensitive(self):
        assert DomainName.parse("Example.COM") == DomainName.parse("example.com")

    def test_hash_is_case_insensitive(self):
        assert hash(DomainName.parse("A.B")) == hash(DomainName.parse("a.b"))

    def test_labels_preserve_case(self):
        assert DomainName.parse("Example.com").labels == ("Example", "com")

    def test_empty_label_rejected(self):
        with pytest.raises(LabelError):
            DomainName.parse("a..b")

    def test_long_label_rejected(self):
        with pytest.raises(LabelError):
            DomainName(["x" * 64])

    def test_63_octet_label_accepted(self):
        DomainName(["x" * 63])

    def test_non_ascii_label_rejected(self):
        with pytest.raises(LabelError):
            DomainName(["héllo"])

    def test_name_length_limit(self):
        # 5 labels of 63 octets exceed the 255-octet wire limit.
        with pytest.raises(LabelError):
            DomainName(["x" * 63] * 5)

    def test_parent_strips_leftmost_label(self):
        assert DomainName.parse("a.b.c").parent() == DomainName.parse("b.c")

    def test_root_has_no_parent(self):
        with pytest.raises(LabelError):
            ROOT.parent()

    def test_child_prepends_label(self):
        assert DomainName.parse("b.c").child("a") == DomainName.parse("a.b.c")

    def test_subdomain_relation(self):
        child = DomainName.parse("host.example.com")
        parent = DomainName.parse("example.com")
        assert child.is_subdomain_of(parent)
        assert not parent.is_subdomain_of(child)

    def test_name_is_subdomain_of_itself(self):
        name = DomainName.parse("example.com")
        assert name.is_subdomain_of(name)

    def test_everything_is_under_root(self):
        assert DomainName.parse("a.b").is_subdomain_of(ROOT)

    def test_subdomain_requires_label_boundary(self):
        assert not DomainName.parse("notexample.com").is_subdomain_of(
            DomainName.parse("example.com")
        )

    def test_relativize(self):
        name = DomainName.parse("34.216.184.93.in-addr.arpa")
        assert name.relativize(IN_ADDR_ARPA) == ("34", "216", "184", "93")

    def test_relativize_outside_origin_raises(self):
        with pytest.raises(LabelError):
            DomainName.parse("example.com").relativize(IN_ADDR_ARPA)

    def test_ordering_is_by_reversed_labels(self):
        a = DomainName.parse("a.example.com")
        z = DomainName.parse("z.example.com")
        other = DomainName.parse("a.example.net")
        assert a < z < other

    def test_wire_length(self):
        # example.com -> 1+7 + 1+3 + 1 = 13
        assert DomainName.parse("example.com").wire_length() == 13
        assert ROOT.wire_length() == 1

    @given(st.lists(st.from_regex(r"[a-z][a-z0-9-]{0,20}", fullmatch=True), min_size=0, max_size=6))
    def test_parse_to_text_roundtrip_property(self, labels):
        name = DomainName(labels)
        assert DomainName.parse(name.to_text()) == name


class TestReversePointer:
    def test_paper_example_1(self):
        # Example 1 from the paper: 93.184.216.34.
        assert reverse_pointer("93.184.216.34").to_text() == "34.216.184.93.in-addr.arpa."

    def test_accepts_ip_address_objects(self):
        ip = ipaddress.IPv4Address("10.0.0.1")
        assert reverse_pointer(ip) == reverse_pointer("10.0.0.1")

    def test_ipv6_reverse_pointer(self):
        name = reverse_pointer("2001:db8::1")
        assert name.to_text().endswith("ip6.arpa.")
        assert len(name.labels) == 32 + 2

    def test_from_reverse_pointer_roundtrip(self):
        ip = ipaddress.IPv4Address("192.0.2.55")
        assert from_reverse_pointer(reverse_pointer(ip)) == ip

    def test_from_reverse_pointer_rejects_forward_names(self):
        with pytest.raises(LabelError):
            from_reverse_pointer(DomainName.parse("www.example.com"))

    def test_from_reverse_pointer_rejects_partial_names(self):
        with pytest.raises(LabelError):
            from_reverse_pointer(DomainName.parse("184.93.in-addr.arpa"))

    def test_from_reverse_pointer_rejects_bad_octets(self):
        with pytest.raises(LabelError):
            from_reverse_pointer(DomainName.parse("999.0.0.10.in-addr.arpa"))
        with pytest.raises(LabelError):
            from_reverse_pointer(DomainName.parse("a.b.c.d.in-addr.arpa"))

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_property(self, packed):
        ip = ipaddress.IPv4Address(packed)
        assert from_reverse_pointer(reverse_pointer(ip)) == ip


class TestReverseZoneOrigin:
    def test_slash24_origin(self):
        origin = reverse_zone_origin("192.0.2.0/24")
        assert origin.to_text() == "2.0.192.in-addr.arpa."

    def test_slash16_origin(self):
        origin = reverse_zone_origin("10.20.0.0/16")
        assert origin.to_text() == "20.10.in-addr.arpa."

    def test_slash8_origin(self):
        assert reverse_zone_origin("10.0.0.0/8").to_text() == "10.in-addr.arpa."

    def test_non_octet_aligned_rounds_down(self):
        # A /22 is served from the covering /16-style origin.
        origin = reverse_zone_origin("172.16.4.0/22")
        assert origin.to_text() == "16.172.in-addr.arpa."

    def test_reverse_names_fall_under_origin(self):
        origin = reverse_zone_origin("192.0.2.0/24")
        assert reverse_pointer("192.0.2.9").is_subdomain_of(origin)
        assert not reverse_pointer("192.0.3.9").is_subdomain_of(origin)
