"""Tests for reverse zones, dynamic update and the change journal."""

import ipaddress

import pytest

from repro.dns import Rcode, RecordType, ReverseZone, ZoneChangeKind, ZoneError, reverse_pointer
from repro.dns.name import DomainName


@pytest.fixture
def zone():
    return ReverseZone("192.0.2.0/24")


class TestZoneBasics:
    def test_origin_derived_from_prefix(self, zone):
        assert zone.origin.to_text() == "2.0.192.in-addr.arpa."

    def test_new_zone_is_empty(self, zone):
        assert len(zone) == 0
        assert zone.serial == 1

    def test_covers(self, zone):
        assert zone.covers("192.0.2.200")
        assert not zone.covers("192.0.3.1")


class TestDynamicUpdate:
    def test_set_ptr_adds_record(self, zone):
        change = zone.set_ptr("192.0.2.10", "brians-iphone.campus.example.edu", at=100)
        assert change.kind is ZoneChangeKind.ADD
        assert change.new_hostname == "brians-iphone.campus.example.edu"
        assert zone.get_hostname("192.0.2.10") == "brians-iphone.campus.example.edu"
        assert len(zone) == 1

    def test_set_ptr_bumps_serial(self, zone):
        before = zone.serial
        zone.set_ptr("192.0.2.10", "a.example.edu")
        assert zone.serial == before + 1

    def test_replace_records_old_and_new(self, zone):
        zone.set_ptr("192.0.2.10", "a.example.edu", at=1)
        change = zone.set_ptr("192.0.2.10", "b.example.edu", at=2)
        assert change.kind is ZoneChangeKind.REPLACE
        assert change.old_hostname == "a.example.edu"
        assert change.new_hostname == "b.example.edu"

    def test_idempotent_reassert_does_not_bump_serial(self, zone):
        zone.set_ptr("192.0.2.10", "a.example.edu")
        serial = zone.serial
        journal_len = len(zone.journal)
        zone.set_ptr("192.0.2.10", "a.example.edu")
        assert zone.serial == serial
        assert len(zone.journal) == journal_len

    def test_remove_ptr(self, zone):
        zone.set_ptr("192.0.2.10", "a.example.edu", at=1)
        change = zone.remove_ptr("192.0.2.10", at=2)
        assert change.kind is ZoneChangeKind.REMOVE
        assert change.old_hostname == "a.example.edu"
        assert zone.get_ptr("192.0.2.10") is None
        assert len(zone) == 0

    def test_remove_missing_ptr_returns_none(self, zone):
        assert zone.remove_ptr("192.0.2.10") is None
        assert zone.serial == 1

    def test_out_of_prefix_update_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.set_ptr("10.0.0.1", "a.example.edu")
        with pytest.raises(ZoneError):
            zone.remove_ptr("10.0.0.1")

    def test_journal_is_ordered_and_complete(self, zone):
        zone.set_ptr("192.0.2.1", "a.example.edu", at=10)
        zone.set_ptr("192.0.2.1", "b.example.edu", at=20)
        zone.remove_ptr("192.0.2.1", at=30)
        kinds = [c.kind for c in zone.journal]
        assert kinds == [ZoneChangeKind.ADD, ZoneChangeKind.REPLACE, ZoneChangeKind.REMOVE]
        assert [c.at for c in zone.journal] == [10, 20, 30]


class TestLookup:
    def test_lookup_existing_ptr(self, zone):
        zone.set_ptr("192.0.2.10", "a.example.edu")
        rcode, answers = zone.lookup(reverse_pointer("192.0.2.10"), RecordType.PTR)
        assert rcode is Rcode.NOERROR
        assert answers[0].rdata_text() == "a.example.edu."

    def test_lookup_missing_ptr_is_nxdomain(self, zone):
        rcode, answers = zone.lookup(reverse_pointer("192.0.2.10"), RecordType.PTR)
        assert rcode is Rcode.NXDOMAIN
        assert answers == []

    def test_lookup_soa_at_origin(self, zone):
        rcode, answers = zone.lookup(zone.origin, RecordType.SOA)
        assert rcode is Rcode.NOERROR
        assert answers[0].rtype is RecordType.SOA

    def test_lookup_wrong_type_is_nodata(self, zone):
        zone.set_ptr("192.0.2.10", "a.example.edu")
        rcode, answers = zone.lookup(reverse_pointer("192.0.2.10"), RecordType.A)
        assert rcode is Rcode.NOERROR
        assert answers == []

    def test_lookup_out_of_zone_raises(self, zone):
        with pytest.raises(ZoneError):
            zone.lookup(DomainName.parse("www.example.com"), RecordType.PTR)

    def test_lookup_garbage_in_zone_name_is_nxdomain(self, zone):
        weird = zone.origin.child("2").child("notanoctet")
        rcode, _ = zone.lookup(weird, RecordType.PTR)
        assert rcode is Rcode.NXDOMAIN


class TestIntrospection:
    def test_entries_in_address_order(self, zone):
        zone.set_ptr("192.0.2.20", "b.example.edu")
        zone.set_ptr("192.0.2.3", "a.example.edu")
        entries = list(zone.entries())
        assert entries == [
            (ipaddress.IPv4Address("192.0.2.3"), "a.example.edu"),
            (ipaddress.IPv4Address("192.0.2.20"), "b.example.edu"),
        ]

    def test_contains(self, zone):
        zone.set_ptr("192.0.2.7", "a.example.edu")
        assert "192.0.2.7" in zone
        assert "192.0.2.8" not in zone
        assert "not-an-ip" not in zone

    def test_slash16_zone(self):
        zone = ReverseZone("172.16.0.0/16")
        zone.set_ptr("172.16.200.9", "x.example.org")
        assert zone.origin.to_text() == "16.172.in-addr.arpa."
        assert zone.get_hostname("172.16.200.9") == "x.example.org"
