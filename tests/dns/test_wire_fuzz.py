"""Robustness of the wire codec and a full on-the-wire exchange."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns import (
    AuthoritativeServer,
    DnsMessage,
    MessageFormatError,
    Rcode,
    ReverseZone,
    reverse_pointer,
)


class TestDecoderRobustness:
    @given(st.binary(max_size=512))
    @settings(max_examples=300)
    def test_random_bytes_never_crash_the_decoder(self, wire):
        """Garbage input either decodes or raises MessageFormatError."""
        try:
            DnsMessage.from_wire(wire)
        except MessageFormatError:
            pass
        except (ValueError, OverflowError) as exc:
            # Enum lookups for unknown type/class codes surface as
            # ValueError, which is acceptable decode-failure behaviour.
            assert isinstance(exc, ValueError)

    @given(st.binary(min_size=12, max_size=64), st.integers(min_value=0, max_value=63))
    @settings(max_examples=100)
    def test_truncated_valid_messages_fail_cleanly(self, _, cut):
        query = DnsMessage.query(reverse_pointer("192.0.2.55"), msg_id=1)
        wire = query.to_wire()
        truncated = wire[: max(0, len(wire) - 1 - cut % max(len(wire) - 1, 1))]
        if truncated == wire:
            return
        try:
            DnsMessage.from_wire(truncated)
        except (MessageFormatError, ValueError):
            pass

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=0, max_value=65535))
    @settings(max_examples=100)
    def test_flag_bytes_roundtrip(self, packed, msg_id):
        import ipaddress

        query = DnsMessage.query(reverse_pointer(ipaddress.IPv4Address(packed)), msg_id=msg_id)
        assert DnsMessage.from_wire(query.to_wire()).to_wire() == query.to_wire()


class TestFullWireExchange:
    def test_query_response_over_the_wire(self):
        """Encode a query, ship bytes, decode, answer, ship bytes back."""
        zone = ReverseZone("192.0.2.0/24")
        zone.set_ptr("192.0.2.10", "brians-iphone.campus.example.edu")
        server = AuthoritativeServer("ns1.example.edu")
        server.add_zone(zone)

        client_query = DnsMessage.query(reverse_pointer("192.0.2.10"), msg_id=777)
        wire_out = client_query.to_wire()

        server_view = DnsMessage.from_wire(wire_out)
        response = server.handle(server_view)
        wire_back = response.to_wire()

        client_view = DnsMessage.from_wire(wire_back)
        assert client_view.msg_id == 777
        assert client_view.rcode is Rcode.NOERROR
        assert client_view.authoritative
        assert client_view.answers[0].rdata_text() == "brians-iphone.campus.example.edu."

    def test_nxdomain_over_the_wire_carries_soa(self):
        zone = ReverseZone("192.0.2.0/24")
        server = AuthoritativeServer()
        server.add_zone(zone)
        query_wire = DnsMessage.query(reverse_pointer("192.0.2.99")).to_wire()
        response = server.handle(DnsMessage.from_wire(query_wire))
        decoded = DnsMessage.from_wire(response.to_wire())
        assert decoded.rcode is Rcode.NXDOMAIN
        assert decoded.authority[0].rdata.serial == zone.serial
