"""Tests for resource records and RRsets."""

import ipaddress

import pytest

from repro.dns import DomainName, RecordType, ResourceRecord, make_ptr
from repro.dns.records import RRset, SoaData, group_rrsets


class TestResourceRecord:
    def test_make_ptr_presentation_form(self):
        record = make_ptr("93.184.216.34", "example.com")
        assert record.to_text() == "34.216.184.93.in-addr.arpa. 3600 IN PTR example.com."

    def test_make_ptr_custom_ttl(self):
        assert make_ptr("10.0.0.1", "h.example.com", ttl=60).ttl == 60

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            make_ptr("10.0.0.1", "h.example.com", ttl=-1)

    def test_rdata_type_enforced(self):
        with pytest.raises(TypeError):
            ResourceRecord(DomainName.parse("x.example.com"), RecordType.PTR, "not-a-name")

    def test_a_record_rdata(self):
        record = ResourceRecord(
            DomainName.parse("h.example.com"),
            RecordType.A,
            ipaddress.IPv4Address("192.0.2.1"),
        )
        assert record.rdata_text() == "192.0.2.1"

    def test_soa_rdata_text(self):
        soa = SoaData(DomainName.parse("ns1.example.com"), DomainName.parse("hostmaster.example.com"), serial=7)
        record = ResourceRecord(DomainName.parse("example.com"), RecordType.SOA, soa)
        assert "ns1.example.com." in record.rdata_text()
        assert " 7 " in record.rdata_text()

    def test_records_are_hashable_and_frozen(self):
        record = make_ptr("10.0.0.1", "h.example.com")
        assert record in {record}
        with pytest.raises(AttributeError):
            record.ttl = 10  # type: ignore[misc]


class TestRRset:
    def test_add_and_iterate(self):
        record = make_ptr("10.0.0.1", "a.example.com")
        rrset = RRset(record.name, RecordType.PTR)
        rrset.add(record)
        assert list(rrset) == [record]
        assert len(rrset) == 1
        assert bool(rrset)

    def test_duplicate_add_is_idempotent(self):
        record = make_ptr("10.0.0.1", "a.example.com")
        rrset = RRset(record.name, RecordType.PTR)
        rrset.add(record)
        rrset.add(record)
        assert len(rrset) == 1

    def test_add_rejects_mismatched_record(self):
        rrset = RRset(DomainName.parse("1.0.0.10.in-addr.arpa"), RecordType.PTR)
        with pytest.raises(ValueError):
            rrset.add(make_ptr("10.0.0.2", "b.example.com"))

    def test_group_rrsets(self):
        a1 = make_ptr("10.0.0.1", "a.example.com")
        a2 = ResourceRecord(a1.name, RecordType.PTR, DomainName.parse("alias.example.com"))
        b = make_ptr("10.0.0.2", "b.example.com")
        rrsets = group_rrsets([a1, a2, b])
        assert len(rrsets) == 2
        assert len(rrsets[0]) == 2
        assert len(rrsets[1]) == 1
