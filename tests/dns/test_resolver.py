"""Tests for the cache-free stub resolver."""

import pytest

from repro.dns import (
    AuthoritativeServer,
    FailureModel,
    ResolutionStatus,
    ReverseZone,
    StubResolver,
    reverse_pointer,
)


def build_world(failure_model=None):
    server = AuthoritativeServer("ns1.example.edu", failure_model=failure_model)
    zone = ReverseZone("192.0.2.0/24")
    zone.set_ptr("192.0.2.10", "brians-iphone.campus.example.edu")
    server.add_zone(zone)
    resolver = StubResolver()
    resolver.delegate(server)
    return server, zone, resolver


class TestResolution:
    def test_resolves_existing_ptr(self):
        _, _, resolver = build_world()
        result = resolver.resolve_ptr("192.0.2.10")
        assert result.ok
        assert result.status is ResolutionStatus.NOERROR
        assert result.hostname == "brians-iphone.campus.example.edu"

    def test_missing_ptr_is_nxdomain(self):
        _, _, resolver = build_world()
        result = resolver.resolve_ptr("192.0.2.77")
        assert result.status is ResolutionStatus.NXDOMAIN
        assert result.hostname is None
        assert result.status.is_error

    def test_fresh_answers_after_zone_change(self):
        # The measurement queries authoritatives directly, so a zone
        # change is visible immediately (no cache staleness).
        _, zone, resolver = build_world()
        assert resolver.resolve_ptr("192.0.2.10").ok
        zone.remove_ptr("192.0.2.10")
        assert resolver.resolve_ptr("192.0.2.10").status is ResolutionStatus.NXDOMAIN
        zone.set_ptr("192.0.2.10", "new-host.campus.example.edu")
        assert resolver.resolve_ptr("192.0.2.10").hostname == "new-host.campus.example.edu"

    def test_undelegated_space_is_no_server(self):
        _, _, resolver = build_world()
        result = resolver.resolve_ptr("203.0.113.5")
        assert result.status is ResolutionStatus.NO_SERVER

    def test_resolve_many(self):
        _, _, resolver = build_world()
        results = resolver.resolve_many(["192.0.2.10", "192.0.2.11"])
        assert [r.status for r in results] == [ResolutionStatus.NOERROR, ResolutionStatus.NXDOMAIN]

    def test_query_counter(self):
        _, _, resolver = build_world()
        resolver.resolve_ptr("192.0.2.10")
        resolver.resolve_ptr("192.0.2.11")
        assert resolver.queries_sent == 2


class TestFailureHandling:
    def test_servfail_surfaces(self):
        _, _, resolver = build_world(FailureModel(servfail_rate=1.0))
        result = resolver.resolve_ptr("192.0.2.10")
        assert result.status is ResolutionStatus.SERVFAIL

    def test_timeout_after_retries(self):
        _, _, resolver = build_world(FailureModel(timeout_rate=1.0))
        result = resolver.resolve_ptr("192.0.2.10")
        assert result.status is ResolutionStatus.TIMEOUT
        assert result.attempts == resolver.retries + 1
        assert result.elapsed_seconds == pytest.approx(resolver.timeout_seconds * result.attempts)

    def test_retry_recovers_from_transient_timeout(self):
        # With a ~50% timeout rate and one retry, most lookups succeed.
        _, _, resolver = build_world(FailureModel(timeout_rate=0.5, seed=5))
        outcomes = [resolver.resolve_ptr("192.0.2.10").status for _ in range(200)]
        ok_share = sum(s is ResolutionStatus.NOERROR for s in outcomes) / len(outcomes)
        assert ok_share > 0.6

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StubResolver(timeout_seconds=0)
        with pytest.raises(ValueError):
            StubResolver(retries=-1)
        with pytest.raises(ValueError):
            StubResolver(backoff_base=-1.0)

    def test_refused_is_distinct_from_servfail(self):
        from repro.netsim.faults import FaultPlan, NetworkFaultProfile

        plan = FaultPlan(
            default_profile=NetworkFaultProfile(rdns_refused_rate=1.0)
        )
        server, _, _ = build_world()
        resolver = StubResolver(fault_plan=plan)
        resolver.delegate(server)
        result = resolver.resolve_ptr("192.0.2.10")
        assert result.status is ResolutionStatus.REFUSED
        assert result.status is not ResolutionStatus.SERVFAIL
        assert result.status.is_error
        assert resolver.server_health["ns1.example.edu"].refused == 1

    def test_server_health_counters(self):
        _, _, resolver = build_world(FailureModel(timeout_rate=0.5, seed=5))
        for _ in range(100):
            resolver.resolve_ptr("192.0.2.10")
        health = resolver.server_health["ns1.example.edu"]
        assert health.queries == 100
        assert health.answers > 0
        assert health.timeouts == resolver.timeouts_seen > 0
        assert health.max_consecutive_timeouts >= 1

    def test_backoff_extends_elapsed_time(self):
        server, _, _ = build_world(FailureModel(timeout_rate=1.0))
        resolver = StubResolver(backoff_base=2.0)
        resolver.delegate(server)
        result = resolver.resolve_ptr("192.0.2.10")
        expected_min = resolver.timeout_seconds * result.attempts + sum(
            2.0 * 2 ** (attempt - 1) * 0.5 for attempt in range(1, result.attempts + 1)
        )
        assert result.elapsed_seconds >= expected_min


class TestDelegation:
    def test_longest_match_delegation(self):
        narrow_server = AuthoritativeServer("narrow")
        narrow_zone = ReverseZone("10.1.2.0/24")
        narrow_zone.set_ptr("10.1.2.3", "narrow.example.net")
        narrow_server.add_zone(narrow_zone)

        wide_server = AuthoritativeServer("wide")
        wide_zone = ReverseZone("10.0.0.0/8")
        wide_zone.set_ptr("10.9.9.9", "wide.example.net")
        wide_server.add_zone(wide_zone)

        resolver = StubResolver()
        resolver.delegate(wide_server)
        resolver.delegate(narrow_server)
        assert resolver.resolve_ptr("10.1.2.3").hostname == "narrow.example.net"
        assert resolver.resolve_ptr("10.9.9.9").hostname == "wide.example.net"

    def test_server_for_unserved_name(self):
        resolver = StubResolver()
        assert resolver.server_for(reverse_pointer("10.0.0.1")) is None
