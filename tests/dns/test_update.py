"""Tests for RFC 2136 dynamic update."""

import pytest

from repro.dns import DnsMessage, Rcode, ReverseZone, ZoneChangeKind
from repro.dns.name import DomainName
from repro.dns.rcode import Opcode
from repro.dns.update import (
    DnsUpdateClient,
    UpdateHandler,
    build_ptr_delete,
    build_ptr_update,
)


@pytest.fixture
def zone():
    return ReverseZone("192.0.2.0/24")


@pytest.fixture
def handler(zone):
    return UpdateHandler(zone)


class TestMessageConstruction:
    def test_update_message_layout(self, zone):
        message = build_ptr_update(zone.origin, "192.0.2.10", "brians-iphone.campus.example.edu")
        assert message.opcode is Opcode.UPDATE
        assert message.questions[0].name == zone.origin
        # Replace mode: a delete-RRset precedes the add.
        assert len(message.authority) == 2
        assert message.authority[0].ttl == 0
        assert message.authority[1].rdata_text() == "brians-iphone.campus.example.edu."

    def test_update_without_replace(self, zone):
        message = build_ptr_update(zone.origin, "192.0.2.10", "h.example.edu", replace=False)
        assert len(message.authority) == 1

    def test_update_survives_wire_roundtrip(self, zone):
        message = build_ptr_update(zone.origin, "192.0.2.10", "h.example.edu", msg_id=5)
        decoded = DnsMessage.from_wire(message.to_wire())
        assert decoded.opcode is Opcode.UPDATE
        assert decoded.msg_id == 5
        assert len(decoded.authority) == 2


class TestUpdateHandler:
    def test_set_via_update(self, zone, handler):
        message = build_ptr_update(zone.origin, "192.0.2.10", "h.campus.example.edu")
        response = handler.handle(message, at=100)
        assert response.rcode is Rcode.NOERROR
        assert response.authoritative
        assert zone.get_hostname("192.0.2.10") == "h.campus.example.edu"
        assert zone.journal[-1].at == 100
        assert handler.updates_applied == 1

    def test_delete_via_update(self, zone, handler):
        zone.set_ptr("192.0.2.10", "h.campus.example.edu")
        response = handler.handle(build_ptr_delete(zone.origin, "192.0.2.10"), at=200)
        assert response.rcode is Rcode.NOERROR
        assert zone.get_ptr("192.0.2.10") is None
        assert zone.journal[-1].kind is ZoneChangeKind.REMOVE

    def test_replace_updates_existing(self, zone, handler):
        handler.handle(build_ptr_update(zone.origin, "192.0.2.10", "old.example.edu"))
        handler.handle(build_ptr_update(zone.origin, "192.0.2.10", "new.example.edu"))
        assert zone.get_hostname("192.0.2.10") == "new.example.edu"

    def test_foreign_zone_rejected(self, zone, handler):
        foreign = DomainName.parse("2.0.10.in-addr.arpa")
        message = build_ptr_update(foreign, "192.0.2.10", "h.example.edu")
        response = handler.handle(message)
        assert response.rcode is Rcode.REFUSED  # NOTAUTH equivalent
        assert zone.get_ptr("192.0.2.10") is None
        assert handler.updates_rejected == 1

    def test_out_of_zone_record_rejected_atomically(self, zone, handler):
        message = build_ptr_update(zone.origin, "192.0.2.10", "h.example.edu")
        # Smuggle in a record for an address outside the zone.
        foreign = build_ptr_update(zone.origin, "10.0.0.1", "x.example.edu", replace=False)
        message.authority += foreign.authority
        response = handler.handle(message)
        assert response.rcode is Rcode.REFUSED
        # Atomicity: nothing was applied, not even the in-zone record.
        assert zone.get_ptr("192.0.2.10") is None

    def test_non_update_opcode_notimp(self, zone, handler):
        query = DnsMessage.query(zone.origin)
        assert handler.handle(query).rcode is Rcode.NOTIMP

    def test_missing_zone_section_formerr(self, zone, handler):
        message = DnsMessage(opcode=Opcode.UPDATE)
        assert handler.handle(message).rcode is Rcode.FORMERR


class TestDnsUpdateClient:
    def test_set_and_remove_over_the_wire(self, zone, handler):
        client = DnsUpdateClient(handler)
        assert client.set_ptr("192.0.2.10", "h.campus.example.edu", at=10) is Rcode.NOERROR
        assert zone.get_hostname("192.0.2.10") == "h.campus.example.edu"
        assert client.remove_ptr("192.0.2.10", at=20) is Rcode.NOERROR
        assert zone.get_ptr("192.0.2.10") is None
        assert client.updates_sent == 2

    def test_object_path_equivalent(self, zone, handler):
        client = DnsUpdateClient(handler, use_wire_format=False)
        assert client.set_ptr("192.0.2.10", "h.example.edu") is Rcode.NOERROR
        assert zone.get_hostname("192.0.2.10") == "h.example.edu"


class TestIpamOverRfc2136:
    def test_full_stack_runs_on_the_protocol_path(self):
        from repro.dhcp import AddressPool, DhcpClient, DhcpServer
        from repro.ipam import CarryOverPolicy, IpamSystem

        zone = ReverseZone("192.0.2.0/24")
        server = DhcpServer(AddressPool("192.0.2.0/24"), lease_time=3600)
        ipam = IpamSystem(zone, CarryOverPolicy("campus.example.edu"), use_rfc2136=True).attach(server)
        client = DhcpClient("c1", host_name="Brian's iPhone")
        address = client.join(server, now=0)
        assert zone.get_hostname(address) == "brians-iphone.campus.example.edu"
        client.leave(server, now=600)
        assert zone.get_ptr(address) is None
        assert ipam.rfc2136_updates_sent == 2

    def test_direct_mode_sends_no_updates(self):
        from repro.ipam import CarryOverPolicy, IpamSystem

        zone = ReverseZone("192.0.2.0/24")
        ipam = IpamSystem(zone, CarryOverPolicy("x.example"))
        assert ipam.rfc2136_updates_sent == 0
