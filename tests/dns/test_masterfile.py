"""Tests for master-file export/import."""

import io
import ipaddress

import pytest

from repro.dns import ReverseZone, ZoneError
from repro.dns.forward import ForwardZone
from repro.dns.masterfile import (
    dump_zone,
    load_forward_zone,
    load_reverse_zone,
    write_zone,
)


@pytest.fixture
def reverse():
    zone = ReverseZone("192.0.2.0/24")
    zone.set_ptr("192.0.2.10", "brians-iphone.campus.example.edu")
    zone.set_ptr("192.0.2.20", "emmas-ipad.campus.example.edu", ttl=120)
    return zone


@pytest.fixture
def forward():
    zone = ForwardZone("campus.example.edu")
    zone.set_a("brians-iphone.campus.example.edu", "192.0.2.10")
    return zone


class TestDump:
    def test_reverse_dump_layout(self, reverse):
        text = dump_zone(reverse)
        lines = text.splitlines()
        assert lines[0] == "$ORIGIN 2.0.192.in-addr.arpa."
        assert lines[1] == "$TTL 3600"
        assert "SOA" in lines[2]
        assert "10.2.0.192.in-addr.arpa. 3600 IN PTR brians-iphone.campus.example.edu." in text
        assert "20.2.0.192.in-addr.arpa. 120 IN PTR emmas-ipad.campus.example.edu." in text

    def test_forward_dump(self, forward):
        text = dump_zone(forward)
        assert "$ORIGIN campus.example.edu." in text
        assert "brians-iphone.campus.example.edu. 3600 IN A 192.0.2.10" in text

    def test_write_zone_stream(self, reverse):
        stream = io.StringIO()
        written = write_zone(reverse, stream)
        assert written == len(stream.getvalue()) > 0


class TestLoadReverse:
    def test_roundtrip(self, reverse):
        loaded = load_reverse_zone(dump_zone(reverse), "192.0.2.0/24")
        assert dict(loaded.entries()) == dict(reverse.entries())

    def test_ttl_preserved(self, reverse):
        loaded = load_reverse_zone(dump_zone(reverse), "192.0.2.0/24")
        assert loaded.get_ptr("192.0.2.20").ttl == 120

    def test_comments_and_blanks_ignored(self):
        text = """
; a comment
$ORIGIN 2.0.192.in-addr.arpa.
$TTL 300
5.2.0.192.in-addr.arpa. 300 IN PTR host.example.com. ; trailing comment
"""
        zone = load_reverse_zone(text, "192.0.2.0/24")
        assert zone.get_hostname("192.0.2.5") == "host.example.com"

    def test_origin_mismatch_rejected(self, reverse):
        with pytest.raises(ZoneError):
            load_reverse_zone(dump_zone(reverse), "10.0.0.0/24")

    def test_malformed_record_rejected(self):
        with pytest.raises(ZoneError):
            load_reverse_zone("5.2.0.192.in-addr.arpa. PTR", "192.0.2.0/24")

    def test_wrong_type_rejected(self):
        text = "5.2.0.192.in-addr.arpa. 300 IN A 1.2.3.4"
        with pytest.raises(ZoneError):
            load_reverse_zone(text, "192.0.2.0/24")


class TestLoadForward:
    def test_roundtrip(self, forward):
        loaded = load_forward_zone(dump_zone(forward), "campus.example.edu")
        assert loaded.get_address("brians-iphone.campus.example.edu") == ipaddress.IPv4Address(
            "192.0.2.10"
        )

    def test_wrong_type_rejected(self):
        text = "x.campus.example.edu. 300 IN PTR y.example.com."
        with pytest.raises(ZoneError):
            load_forward_zone(text, "campus.example.edu")
