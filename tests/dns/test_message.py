"""Tests for the RFC 1035 wire-format codec."""

import ipaddress

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dns import (
    DnsMessage,
    DomainName,
    MessageFormatError,
    Rcode,
    RecordType,
    ResourceRecord,
    make_ptr,
    reverse_pointer,
)
from repro.dns.message import FLAG_AA, FLAG_QR, Question
from repro.dns.records import SoaData


def roundtrip(message: DnsMessage) -> DnsMessage:
    return DnsMessage.from_wire(message.to_wire())


class TestHeader:
    def test_query_roundtrip(self):
        query = DnsMessage.query(reverse_pointer("192.0.2.1"), msg_id=4242)
        decoded = roundtrip(query)
        assert decoded.msg_id == 4242
        assert not decoded.is_response
        assert decoded.questions == query.questions

    def test_response_flags_roundtrip(self):
        query = DnsMessage.query(reverse_pointer("192.0.2.1"), msg_id=7)
        response = query.response(Rcode.NXDOMAIN)
        response.authoritative = True
        decoded = roundtrip(response)
        assert decoded.is_response
        assert decoded.authoritative
        assert decoded.rcode is Rcode.NXDOMAIN
        assert decoded.msg_id == 7

    def test_recursion_desired_preserved(self):
        query = DnsMessage.query(reverse_pointer("10.0.0.1"), recursion_desired=True)
        assert roundtrip(query).recursion_desired

    def test_flag_bits_on_wire(self):
        response = DnsMessage.query(reverse_pointer("10.0.0.1")).response()
        response.authoritative = True
        wire = response.to_wire()
        flags = int.from_bytes(wire[2:4], "big")
        assert flags & FLAG_QR
        assert flags & FLAG_AA

    def test_short_message_rejected(self):
        with pytest.raises(MessageFormatError):
            DnsMessage.from_wire(b"\x00\x01\x02")


class TestRecordsOnWire:
    def test_ptr_answer_roundtrip(self):
        query = DnsMessage.query(reverse_pointer("93.184.216.34"))
        response = query.response()
        response.answers = [make_ptr("93.184.216.34", "brians-iphone.campus.example.edu")]
        decoded = roundtrip(response)
        assert len(decoded.answers) == 1
        assert decoded.answers[0].rdata_text() == "brians-iphone.campus.example.edu."
        assert decoded.answers[0].ttl == 3600

    def test_a_record_roundtrip(self):
        record = ResourceRecord(
            DomainName.parse("h.example.com"), RecordType.A, ipaddress.IPv4Address("198.51.100.9")
        )
        message = DnsMessage(answers=[record], is_response=True)
        decoded = roundtrip(message)
        assert decoded.answers[0].rdata == ipaddress.IPv4Address("198.51.100.9")

    def test_aaaa_record_roundtrip(self):
        record = ResourceRecord(
            DomainName.parse("h.example.com"), RecordType.AAAA, ipaddress.IPv6Address("2001:db8::5")
        )
        decoded = roundtrip(DnsMessage(answers=[record], is_response=True))
        assert decoded.answers[0].rdata == ipaddress.IPv6Address("2001:db8::5")

    def test_soa_in_authority_roundtrip(self):
        soa = SoaData(
            DomainName.parse("ns1.example.net"),
            DomainName.parse("hostmaster.example.net"),
            serial=99,
        )
        message = DnsMessage(
            is_response=True,
            rcode=Rcode.NXDOMAIN,
            authority=[ResourceRecord(DomainName.parse("2.0.192.in-addr.arpa"), RecordType.SOA, soa)],
        )
        decoded = roundtrip(message)
        assert decoded.authority[0].rdata.serial == 99
        assert decoded.authority[0].rdata.mname == DomainName.parse("ns1.example.net")

    def test_txt_record_roundtrip(self):
        record = ResourceRecord(DomainName.parse("t.example.com"), RecordType.TXT, "opt-out: see https://example.net")
        decoded = roundtrip(DnsMessage(answers=[record], is_response=True))
        assert decoded.answers[0].rdata == "opt-out: see https://example.net"


class TestCompression:
    def test_compression_shrinks_repeated_names(self):
        records = [make_ptr(f"192.0.2.{i}", f"host{i}.campus.example.edu") for i in range(1, 11)]
        message = DnsMessage(is_response=True, answers=records)
        wire = message.to_wire()
        uncompressed_estimate = sum(r.name.wire_length() + r.rdata.wire_length() + 10 for r in records)
        assert len(wire) < uncompressed_estimate
        decoded = DnsMessage.from_wire(wire)
        assert [r.rdata_text() for r in decoded.answers] == [r.rdata_text() for r in records]

    def test_pointer_loop_rejected(self):
        # Hand-crafted message whose question name points at itself.
        header = (0).to_bytes(2, "big") + (0).to_bytes(2, "big") + (1).to_bytes(2, "big") + b"\x00\x00" * 3
        loop = b"\xc0\x0c"  # pointer to offset 12 = itself
        wire = header + loop + (12).to_bytes(2, "big") + (1).to_bytes(2, "big")
        with pytest.raises(MessageFormatError):
            DnsMessage.from_wire(wire)

    def test_forward_pointer_rejected(self):
        header = b"\x00\x00" * 2 + b"\x00\x01" + b"\x00\x00" * 3
        forward = b"\xc0\xff"
        wire = header + forward + b"\x00\x0c\x00\x01"
        with pytest.raises(MessageFormatError):
            DnsMessage.from_wire(wire)


name_strategy = st.lists(
    st.from_regex(r"[a-z][a-z0-9-]{0,15}", fullmatch=True), min_size=1, max_size=5
).map(DomainName)


class TestPropertyRoundtrips:
    @given(name_strategy, st.integers(min_value=0, max_value=65535))
    def test_query_roundtrip_property(self, name, msg_id):
        query = DnsMessage.query(name, msg_id=msg_id)
        decoded = roundtrip(query)
        assert decoded.questions[0].name == name
        assert decoded.msg_id == msg_id

    @given(st.lists(st.tuples(st.integers(0, 2**32 - 1), name_strategy), min_size=1, max_size=8))
    def test_ptr_answers_roundtrip_property(self, pairs):
        answers = [
            ResourceRecord(reverse_pointer(ipaddress.IPv4Address(packed)), RecordType.PTR, hostname)
            for packed, hostname in pairs
        ]
        message = DnsMessage(is_response=True, answers=answers)
        decoded = roundtrip(message)
        assert [r.rdata for r in decoded.answers] == [r.rdata for r in answers]

    @given(name_strategy, name_strategy)
    def test_question_type_class_preserved(self, name, _):
        message = DnsMessage(questions=[Question(name, RecordType.SOA)])
        decoded = roundtrip(message)
        assert decoded.questions[0].rtype is RecordType.SOA
