"""Tests for the authoritative server and failure injection."""

import pytest

from repro.dns import (
    AuthoritativeServer,
    DnsMessage,
    FailureModel,
    NoSuchZoneError,
    Rcode,
    RecordType,
    ReverseZone,
    ServerBehavior,
    reverse_pointer,
)
from repro.dns.name import DomainName
from repro.dns.rcode import Opcode


@pytest.fixture
def server():
    server = AuthoritativeServer("ns1.campus.example.edu")
    zone = ReverseZone("192.0.2.0/24")
    zone.set_ptr("192.0.2.10", "brians-mbp.campus.example.edu")
    server.add_zone(zone)
    return server


class TestAnswering:
    def test_answers_ptr_query(self, server):
        response = server.lookup_ptr(reverse_pointer("192.0.2.10"))
        assert response.rcode is Rcode.NOERROR
        assert response.authoritative
        assert response.answers[0].rdata_text() == "brians-mbp.campus.example.edu."

    def test_nxdomain_includes_soa_in_authority(self, server):
        response = server.lookup_ptr(reverse_pointer("192.0.2.11"))
        assert response.rcode is Rcode.NXDOMAIN
        assert response.answers == []
        assert response.authority[0].rtype is RecordType.SOA

    def test_out_of_bailiwick_is_refused(self, server):
        response = server.lookup_ptr(reverse_pointer("10.9.9.9"))
        assert response.rcode is Rcode.REFUSED

    def test_non_query_opcode_is_notimp(self, server):
        query = DnsMessage.query(reverse_pointer("192.0.2.10"))
        query.opcode = Opcode.NOTIFY
        assert server.handle(query).rcode is Rcode.NOTIMP

    def test_response_echoes_msg_id(self, server):
        query = DnsMessage.query(reverse_pointer("192.0.2.10"), msg_id=999)
        assert server.handle(query).msg_id == 999

    def test_query_counter(self, server):
        server.lookup_ptr(reverse_pointer("192.0.2.10"))
        server.lookup_ptr(reverse_pointer("192.0.2.11"))
        assert server.queries_handled == 2


class TestZoneSelection:
    def test_longest_origin_match(self):
        server = AuthoritativeServer()
        wide = ReverseZone("10.0.0.0/8")
        narrow = ReverseZone("10.1.2.0/24")
        narrow.set_ptr("10.1.2.3", "narrow.example.net")
        wide.set_ptr("10.1.2.3", "wide.example.net")
        server.add_zone(wide)
        server.add_zone(narrow)
        assert server.zone_for(reverse_pointer("10.1.2.3")) is narrow
        assert server.zone_for(reverse_pointer("10.250.0.1")) is wide

    def test_duplicate_zone_rejected(self):
        server = AuthoritativeServer()
        server.add_zone(ReverseZone("10.0.0.0/24"))
        with pytest.raises(Exception):
            server.add_zone(ReverseZone("10.0.0.0/24"))

    def test_zone_for_unserved_name_raises(self):
        server = AuthoritativeServer()
        with pytest.raises(NoSuchZoneError):
            server.zone_for(DomainName.parse("1.1.1.1.in-addr.arpa"))


class TestFailureModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FailureModel(servfail_rate=1.5)
        with pytest.raises(ValueError):
            FailureModel(servfail_rate=0.6, timeout_rate=0.6)

    def test_zero_rates_always_answer(self):
        model = FailureModel()
        assert all(model.draw() is ServerBehavior.ANSWER for _ in range(100))

    def test_total_failure_never_answers(self):
        model = FailureModel(servfail_rate=0.5, timeout_rate=0.5, seed=3)
        assert all(model.draw() is not ServerBehavior.ANSWER for _ in range(100))

    def test_deterministic_given_seed(self):
        draws_a = [FailureModel(0.3, 0.3, seed=7).draw() for _ in range(1)]
        draws_b = [FailureModel(0.3, 0.3, seed=7).draw() for _ in range(1)]
        assert draws_a == draws_b

    def test_rates_approximately_respected(self):
        model = FailureModel(servfail_rate=0.2, timeout_rate=0.1, seed=11)
        draws = [model.draw() for _ in range(5000)]
        servfail_share = sum(d is ServerBehavior.SERVFAIL for d in draws) / len(draws)
        timeout_share = sum(d is ServerBehavior.TIMEOUT for d in draws) / len(draws)
        assert abs(servfail_share - 0.2) < 0.03
        assert abs(timeout_share - 0.1) < 0.03

    def test_timeout_returns_none(self):
        server = AuthoritativeServer(failure_model=FailureModel(timeout_rate=1.0))
        server.add_zone(ReverseZone("10.0.0.0/24"))
        assert server.handle(DnsMessage.query(reverse_pointer("10.0.0.1"))) is None
        assert server.failures_injected == 1

    def test_servfail_response(self):
        server = AuthoritativeServer(failure_model=FailureModel(servfail_rate=1.0))
        server.add_zone(ReverseZone("10.0.0.0/24"))
        response = server.handle(DnsMessage.query(reverse_pointer("10.0.0.1")))
        assert response.rcode is Rcode.SERVFAIL
