"""Tests for forward zones with dynamic update."""

import ipaddress

import pytest

from repro.dns.forward import ForwardZone
from repro.dns.errors import ZoneError
from repro.dns.name import DomainName
from repro.dns.rcode import Rcode, RecordType


@pytest.fixture
def zone():
    return ForwardZone("campus.example.edu")


class TestForwardZone:
    def test_set_and_get(self, zone):
        zone.set_a("brians-iphone.campus.example.edu", "192.0.2.10")
        assert zone.get_address("brians-iphone.campus.example.edu") == ipaddress.IPv4Address("192.0.2.10")
        assert len(zone) == 1

    def test_set_bumps_serial(self, zone):
        before = zone.serial
        zone.set_a("a.campus.example.edu", "192.0.2.1")
        assert zone.serial == before + 1

    def test_idempotent_set(self, zone):
        zone.set_a("a.campus.example.edu", "192.0.2.1")
        serial = zone.serial
        zone.set_a("a.campus.example.edu", "192.0.2.1")
        assert zone.serial == serial

    def test_readdress_updates(self, zone):
        zone.set_a("a.campus.example.edu", "192.0.2.1")
        zone.set_a("a.campus.example.edu", "192.0.2.2")
        assert zone.get_address("a.campus.example.edu") == ipaddress.IPv4Address("192.0.2.2")

    def test_remove(self, zone):
        zone.set_a("a.campus.example.edu", "192.0.2.1")
        assert zone.remove_a("a.campus.example.edu")
        assert not zone.remove_a("a.campus.example.edu")
        assert zone.get_address("a.campus.example.edu") is None

    def test_out_of_zone_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.set_a("www.elsewhere.org", "192.0.2.1")

    def test_root_origin_rejected(self):
        with pytest.raises(ZoneError):
            ForwardZone(".")

    def test_lookup_a(self, zone):
        zone.set_a("a.campus.example.edu", "192.0.2.1")
        rcode, answers = zone.lookup(DomainName.parse("a.campus.example.edu"), RecordType.A)
        assert rcode is Rcode.NOERROR
        assert answers[0].rdata == ipaddress.IPv4Address("192.0.2.1")

    def test_lookup_missing_is_nxdomain(self, zone):
        rcode, answers = zone.lookup(DomainName.parse("nope.campus.example.edu"), RecordType.A)
        assert rcode is Rcode.NXDOMAIN

    def test_lookup_wrong_type_is_nodata(self, zone):
        zone.set_a("a.campus.example.edu", "192.0.2.1")
        rcode, answers = zone.lookup(DomainName.parse("a.campus.example.edu"), RecordType.TXT)
        assert rcode is Rcode.NOERROR
        assert answers == []

    def test_soa_lookup(self, zone):
        rcode, answers = zone.lookup(zone.origin, RecordType.SOA)
        assert answers[0].rtype is RecordType.SOA

    def test_entries_sorted(self, zone):
        zone.set_a("b.campus.example.edu", "192.0.2.2")
        zone.set_a("a.campus.example.edu", "192.0.2.1")
        names = [name.to_text() for name, _ in zone.entries()]
        assert names == ["a.campus.example.edu.", "b.campus.example.edu."]

    def test_contains(self, zone):
        zone.set_a("a.campus.example.edu", "192.0.2.1")
        assert "a.campus.example.edu" in zone
        assert "b.campus.example.edu" not in zone
