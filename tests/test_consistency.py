"""Cross-layer consistency properties.

These tests pin the invariants that tie the substrate layers together:
counts match materialised records, the event-driven runtime agrees with
the day-level snapshot path (they share the same session draws), and
the measurement-side lingering estimate brackets the zone-journal
ground truth.
"""

import datetime as dt

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GroupBuilder
from repro.ipam import CarryOverPolicy
from repro.netsim.behavior import ProfileKind, ScriptedProfile, Session
from repro.netsim.device import Device, DeviceNaming, model_by_key
from repro.netsim.engine import SimulationEngine
from repro.netsim.finegrained import NetworkRuntime
from repro.netsim.network import CountModel, Network, NetworkType, Subnet, SubnetRole
from repro.netsim.person import PersonGenerator
from repro.netsim.rng import RngStreams
from repro.netsim.simtime import DAY, HOUR, MINUTE, from_date
from repro.scan.campaign import SupplementalDataset
from repro.scan.icmp import IcmpScanner
from repro.scan.rdns import RdnsLookupEngine
from repro.scan.reactive import ReactiveMonitor
from repro.dns.resolver import StubResolver

START = dt.date(2021, 11, 1)


def make_device_subnet(count=10, seed=3):
    generator = PersonGenerator(RngStreams(seed).stream("pop"))
    people = generator.make_population(count, profile_kind=ProfileKind.STUDENT)
    devices = [device for person in people for device in person.devices]
    return Subnet(
        "10.0.10.0/24",
        SubnetRole.DYNAMIC_CLIENTS,
        devices=devices,
        policy=CarryOverPolicy("campus.example.edu"),
    )


class TestCountRecordConsistency:
    @given(
        st.integers(min_value=0, max_value=60),
        st.one_of(st.none(), st.integers(min_value=0, max_value=DAY - 1)),
    )
    @settings(max_examples=25, deadline=None)
    def test_device_backed_counts_match_records(self, day_offset, at_offset):
        subnet = make_device_subnet()
        rngs = RngStreams(0)
        day = START + dt.timedelta(days=day_offset)
        count = subnet.count_on(day, rngs, at_offset=at_offset)
        records = list(subnet.records_on(day, rngs, at_offset=at_offset))
        assert count == len(records)

    @given(st.integers(min_value=0, max_value=90))
    @settings(max_examples=20, deadline=None)
    def test_count_backed_counts_match_records(self, day_offset):
        subnet = Subnet(
            "10.0.11.0/24",
            SubnetRole.DYNAMIC_CLIENTS,
            count_model=CountModel(mean=40),
            count_suffix="dyn.example.net",
        )
        rngs = RngStreams(5)
        day = START + dt.timedelta(days=day_offset)
        assert subnet.count_on(day, rngs) == len(list(subnet.records_on(day, rngs)))

    def test_network_counts_by_slash24_matches_records(self):
        network = Network("n", NetworkType.ACADEMIC, "10.0.0.0/16", "campus.example.edu", rngs=RngStreams(1))
        network.add_subnet(make_device_subnet())
        network.add_subnet(
            Subnet(
                "10.0.11.0/24",
                SubnetRole.DYNAMIC_CLIENTS,
                count_model=CountModel(mean=30),
                count_suffix="dyn.example.net",
            )
        )
        for offset in range(5):
            day = START + dt.timedelta(days=offset)
            counts = network.counts_by_slash24(day, at_offset=12 * HOUR)
            records = list(network.records_on(day, at_offset=12 * HOUR))
            assert sum(counts.values()) == len(records)


class TestEventVsDayLevelConsistency:
    def test_runtime_presence_matches_sessions(self):
        device = Device(
            device_id="d1",
            model=model_by_key("iphone"),
            naming=DeviceNaming.OWNER_POSSESSIVE,
            owner_name="emma",
            owner_id="p1",
            profile=ScriptedProfile(lambda day: [Session(9 * HOUR, 15 * HOUR)]),
        )
        network = Network("n", NetworkType.ACADEMIC, "10.0.0.0/16", "campus.example.edu", rngs=RngStreams(2))
        network.add_subnet(
            Subnet(
                "10.0.10.0/24",
                SubnetRole.DYNAMIC_CLIENTS,
                devices=[device],
                policy=CarryOverPolicy("campus.example.edu"),
            )
        )
        engine = SimulationEngine(start=from_date(START))
        runtime = NetworkRuntime(network, engine)
        runtime.start(START, START)
        for check_hour, expect_online in ((8, False), (10, True), (14, True), (16, False)):
            engine.run_until(from_date(START) + check_hour * HOUR)
            assert bool(runtime.online_addresses()) == expect_online
            # The day-level path agrees.
            assert device.is_present_at(START, check_hour * HOUR, network.rngs) == expect_online

    def test_zone_state_matches_online_set_during_run(self):
        subnet = make_device_subnet(count=6, seed=9)
        network = Network("n", NetworkType.ACADEMIC, "10.0.0.0/16", "campus.example.edu", rngs=RngStreams(9))
        network.add_subnet(subnet)
        engine = SimulationEngine(start=from_date(START))
        runtime = NetworkRuntime(network, engine)
        runtime.start(START, START)
        engine.run_until(from_date(START) + 13 * HOUR)
        # Online devices have PTR records; zone may hold extra records
        # for silent leavers whose leases have not expired yet.
        for address in runtime.online_addresses():
            assert network.zone.get_ptr(address) is not None


class TestMeasurementVsGroundTruth:
    def test_observed_lingering_brackets_journal_removal(self):
        device = Device(
            device_id="d1",
            model=model_by_key("iphone"),
            naming=DeviceNaming.OWNER_POSSESSIVE,
            owner_name="brian",
            owner_id="p1",
            profile=ScriptedProfile(lambda day: [Session(9 * HOUR, 9 * HOUR + 40 * MINUTE)]),
            sends_release=True,
            icmp_responds=True,
        )
        network = Network("gt", NetworkType.ACADEMIC, "10.0.0.0/16", "campus.example.edu", rngs=RngStreams(4))
        network.add_subnet(
            Subnet(
                "10.0.10.0/24",
                SubnetRole.DYNAMIC_CLIENTS,
                devices=[device],
                policy=CarryOverPolicy("campus.example.edu"),
            )
        )
        engine = SimulationEngine(start=from_date(START))
        runtime = NetworkRuntime(network, engine)
        runtime.start(START, START)
        stub = StubResolver()
        stub.delegate(network.server)
        monitor = ReactiveMonitor(engine, IcmpScanner({"gt": runtime}), RdnsLookupEngine(stub))
        end = from_date(START) + DAY - 1
        monitor.start({"gt": ["10.0.10.0/24"]}, end=end)
        engine.run_until(end)

        dataset = SupplementalDataset(
            start=START,
            end=START,
            icmp=monitor.icmp_observations,
            rdns=monitor.rdns_observations,
            targets_by_network={"gt": ["10.0.10.0/24"]},
            network_types={"gt": NetworkType.ACADEMIC},
        )
        builder = GroupBuilder()
        groups = builder.build(dataset)
        assert len(groups) == 1
        observed_removal = groups[0].removal_time()
        assert observed_removal is not None
        true_removal = network.zone.journal[-1].at
        # The observation can only lag the ground truth, by at most one
        # probe interval of the early back-off phase.
        assert 0 <= observed_removal - true_removal <= 10 * MINUTE


class TestDeterminism:
    def test_same_seed_same_measurement(self):
        def run():
            from repro.netsim.internet import WorldScale, build_world
            from repro.scan.campaign import SupplementalCampaign

            world = build_world(seed=11, scale=WorldScale.small())
            dataset = SupplementalCampaign(world, networks=["Academic-C"]).run(
                START, START + dt.timedelta(days=1)
            )
            return (
                len(dataset.icmp),
                len(dataset.rdns),
                sorted(str(o.address) for o in dataset.icmp)[:5],
            )

        assert run() == run()
