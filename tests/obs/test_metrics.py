"""Tests for the metrics primitives and their merge discipline."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    merge_snapshots,
)


def make_registry(counter=5, gauge=3, hist=(1, 4, 9)):
    registry = MetricsRegistry()
    registry.counter("events_total").inc(counter)
    labelled = registry.counter("rcode_total")
    labelled.labels(rcode="noerror").inc(counter)
    labelled.inc(counter)
    registry.gauge("queue_high_water").set_max(gauge)
    histogram = registry.histogram("attempts", bounds=(1, 3, 10))
    for value in hist:
        histogram.observe(value)
    return registry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_labelled_children_accumulate_independently(self):
        counter = Counter("c")
        counter.labels(rcode="nxdomain").inc(2)
        counter.labels(rcode="nxdomain").inc(3)
        counter.labels(rcode="servfail").inc(1)
        snapshot = counter.snapshot()
        assert snapshot["labels"] == {"rcode=nxdomain": 5, "rcode=servfail": 1}

    def test_label_key_order_is_canonical(self):
        counter = Counter("c")
        assert counter.labels(b="2", a="1") is counter.labels(a="1", b="2")


class TestGauge:
    def test_set_max_is_high_water(self):
        gauge = Gauge("g")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5


class TestHistogram:
    def test_buckets_count_inclusively(self):
        histogram = Histogram("h", bounds=(1, 3))
        for value in (1, 2, 3, 4):
            histogram.observe(value)
        buckets = histogram.snapshot()["buckets"]
        assert buckets == {"le_1": 1, "le_3": 2, "le_inf": 1}
        assert histogram.count == 4
        assert histogram.sum == 10

    def test_mismatched_bounds_refuse_to_merge(self):
        a = Histogram("h", bounds=(1, 2))
        b = Histogram("h", bounds=(1, 5))
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_value_reads(self):
        registry = make_registry()
        assert registry.value("events_total") == 5
        assert registry.value("rcode_total", {"rcode": "noerror"}) == 5
        assert registry.value("unknown") == 0

    def test_snapshot_is_json_serialisable_and_sorted(self):
        snapshot = make_registry().snapshot()
        assert json.loads(json.dumps(snapshot, sort_keys=True)) == snapshot
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])

    def test_merge_adds_counters_and_maxes_gauges(self):
        a = make_registry(counter=5, gauge=3)
        b = make_registry(counter=7, gauge=9)
        a.merge_snapshot(b.snapshot())
        assert a.value("events_total") == 12
        assert a.value("rcode_total", {"rcode": "noerror"}) == 12
        assert a.value("queue_high_water") == 9
        assert a.histogram("attempts", bounds=(1, 3, 10)).count == 6

    def test_merge_is_associative_and_commutative(self):
        parts = [make_registry(counter=c, gauge=g, hist=(c,)) for c, g in
                 [(1, 4), (2, 2), (3, 7)]]
        snapshots = [part.snapshot() for part in parts]
        left_to_right = merge_snapshots(snapshots)
        right_to_left = merge_snapshots(reversed(snapshots))
        pairwise = merge_snapshots(
            [merge_snapshots(snapshots[:2]), snapshots[2]]
        )
        assert left_to_right == right_to_left == pairwise

    def test_merge_round_trips_through_json(self):
        snapshot = make_registry().snapshot()
        recovered = merge_snapshots([json.loads(json.dumps(snapshot))])
        assert recovered == snapshot


class TestDisabledRegistry:
    def test_disabled_registry_hands_out_noops(self):
        metric = NULL_REGISTRY.counter("anything")
        metric.inc(10)
        metric.labels(a="b").inc()
        assert metric.value == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_disabled_merge_is_noop(self):
        disabled = MetricsRegistry(enabled=False)
        disabled.merge_snapshot(make_registry().snapshot())
        assert disabled.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestLabelKeyEscaping:
    """Regression: label values containing ``,`` or ``=`` used to
    collide — ``labels(a="1,b=2")`` and ``labels(a="1", b="2")`` both
    flattened to the child key ``a=1,b=2``."""

    def test_separator_values_do_not_collide(self):
        counter = Counter("c")
        counter.labels(a="1,b=2").inc(3)
        counter.labels(a="1", b="2").inc(4)
        snapshot = counter.snapshot()
        assert len(snapshot["labels"]) == 2
        assert sorted(snapshot["labels"].values()) == [3, 4]

    def test_value_reads_through_escaped_keys(self):
        registry = MetricsRegistry()
        registry.counter("c").labels(path="a=b,c").inc(9)
        assert registry.value("c", {"path": "a=b,c"}) == 9
        assert registry.value("c", {"path": "a"}) == 0

    def test_snapshot_keys_are_deterministic_and_escaped(self):
        counter = Counter("c")
        counter.labels(b="2", a="1,x").inc()
        (key,) = counter.snapshot()["labels"]
        assert key == "a=1%2Cx,b=2"

    def test_percent_escape_is_injective(self):
        # A literal ``%2C`` in a value must not alias an escaped comma.
        counter = Counter("c")
        counter.labels(a="x,y").inc(1)
        counter.labels(a="x%2Cy").inc(2)
        assert len(counter.snapshot()["labels"]) == 2

    def test_merge_round_trips_escaped_children(self):
        a = MetricsRegistry()
        a.counter("c").labels(q="v=1,w").inc(5)
        b = MetricsRegistry()
        b.merge_snapshot(json.loads(json.dumps(a.snapshot())))
        assert b.value("c", {"q": "v=1,w"}) == 5
