"""Tests for span-based tracing."""

from repro.obs.trace import NULL_TRACER, Tracer


class TestTracer:
    def test_nesting_follows_call_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", network="A") as span:
                span.set("count", 3)
        payload = tracer.spans_payload()
        assert payload == [
            {
                "name": "outer",
                "children": [
                    {
                        "name": "inner",
                        "labels": {"network": "A"},
                        "attributes": {"count": 3},
                    }
                ],
            }
        ]

    def test_payload_carries_no_wall_clock(self):
        tracer = Tracer()
        with tracer.span("stage"):
            pass
        assert "wall_seconds" not in str(tracer.spans_payload())
        assert tracer.roots[0].wall_seconds >= 0.0

    def test_timings_accumulate_duplicate_paths(self):
        tracer = Tracer()
        tracer.add_span("stage", seconds=1.0)
        tracer.add_span("stage", seconds=2.0)
        assert tracer.timings_payload() == {"stage": 3.0}

    def test_add_span_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("campaign"):
            tracer.add_span("network", labels={"network": "A"}, seconds=0.5)
        timings = tracer.timings_payload()
        assert "campaign/network[network=A]" in timings

    def test_render_is_human_readable(self):
        tracer = Tracer()
        with tracer.span("stage", network="A") as span:
            span.set("days", 7)
        rendered = tracer.render()
        assert "stage[network=A]" in rendered
        assert "days=7" in rendered

    def test_exception_still_pops_stack(self):
        tracer = Tracer()
        try:
            with tracer.span("fails"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["fails", "after"]


class TestDisabledTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("stage", network="A") as span:
            span.set("count", 1)
        assert NULL_TRACER.spans_payload() == []
        assert NULL_TRACER.add_span("post-hoc") is None
