"""The manifest equivalence guarantee, end to end.

Serial, parallel and cache-replay campaign runs must produce
bit-identical manifests once the explicitly non-deterministic
``timings`` section is dropped — the discipline the whole ``repro.obs``
package is built around.
"""

import datetime as dt
import json

import pytest

from repro.netsim.internet import WorldScale, build_world
from repro.obs import Observability
from repro.scan.cache import CampaignCache
from repro.scan.campaign import SupplementalCampaign

START = dt.date(2021, 11, 1)
END = dt.date(2021, 11, 3)


def run_campaign(*, workers=1, cache=None, seed=11):
    obs = Observability()
    world = build_world(seed=seed, scale=WorldScale.small())
    campaign = SupplementalCampaign(world, obs=obs)
    campaign.run(START, END, workers=workers, cache=cache)
    return obs, campaign


def deterministic_json(obs) -> str:
    return obs.manifest().to_json(include_timings=False)


@pytest.fixture(scope="module")
def serial_manifest():
    obs, _ = run_campaign()
    return deterministic_json(obs)


class TestManifestEquivalence:
    def test_parallel_bit_identical_to_serial(self, serial_manifest):
        obs, _ = run_campaign(workers=2)
        assert deterministic_json(obs) == serial_manifest

    def test_cache_replay_bit_identical_to_serial(self, serial_manifest, tmp_path):
        cache = CampaignCache(tmp_path)
        cold_obs, cold = run_campaign(cache=cache)
        assert cold.last_metrics.cache_stored
        assert deterministic_json(cold_obs) == serial_manifest

        warm_obs, warm = run_campaign(cache=cache)
        assert warm.last_metrics.cache_hit
        assert deterministic_json(warm_obs) == serial_manifest

    def test_manifest_carries_expected_counters_and_spans(self, serial_manifest):
        payload = json.loads(serial_manifest)
        counters = payload["metrics"]["counters"]
        assert counters["resolver_queries_total"]["value"] > 0
        assert "rcode=noerror" in counters["resolver_rcode_total"]["labels"]
        assert counters["rdns_lookups_total"]["value"] > 0
        assert counters["icmp_probes_sent_total"]["value"] > 0
        assert counters["reactive_sweeps_total"]["value"] > 0
        assert counters["engine_events_total"]["value"] > 0
        assert counters["dns_server_queries_total"]["value"] > 0
        assert counters["rdns_ratelimit_acquired_total"]["value"] > 0
        assert payload["metrics"]["gauges"]["engine_queue_high_water"]["value"] > 0
        paths = [span["name"] for span in payload["spans"]]
        assert "campaign.run" in paths
        children = payload["spans"][0]["children"]
        assert len(children) == 9  # one per Table-4 network

    def test_timings_section_is_present_but_excluded(self, tmp_path):
        obs, _ = run_campaign()
        manifest = obs.manifest()
        full = json.loads(manifest.to_json())
        assert "timings" in full
        assert full["timings"]["execution"]["campaign"]["workers"] == 1
        det = json.loads(manifest.to_json(include_timings=False))
        assert "timings" not in det

    def test_different_seed_differs(self, serial_manifest):
        obs, _ = run_campaign(seed=12)
        assert deterministic_json(obs) != serial_manifest
