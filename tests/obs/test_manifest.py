"""Tests for the run manifest and the Observability handle."""

import json

import pytest

from repro.obs import NULL_OBS, Observability, resolve_obs
from repro.obs.manifest import MANIFEST_VERSION, RunManifest


def make_obs():
    obs = Observability()
    obs.set_run_info(seed=7, command="campaign")
    obs.metrics.counter("lookups_total").inc(12)
    with obs.span("campaign.run") as span:
        span.set("networks", 2)
        obs.tracer.add_span("campaign.network", labels={"network": "A"}, seconds=0.25)
    obs.record_execution("campaign", workers=4, cache_hit=False)
    obs.record_execution("campaign", accumulate=True, cache_hits=1)
    obs.record_execution("campaign", accumulate=True, cache_hits=2)
    return obs


class TestRunManifest:
    def test_round_trip(self, tmp_path):
        manifest = make_obs().manifest()
        path = manifest.write(tmp_path / "m.json")
        recovered = RunManifest.read(path)
        assert recovered.to_payload() == manifest.to_payload()

    def test_deterministic_payload_excludes_timings(self):
        manifest = make_obs().manifest()
        payload = manifest.deterministic_payload()
        assert set(payload) == {"manifest_version", "run", "metrics", "spans"}
        assert payload["manifest_version"] == MANIFEST_VERSION

    def test_timings_carry_execution_and_span_seconds(self):
        manifest = make_obs().manifest()
        assert manifest.timings["execution"]["campaign"] == {
            "workers": 4,
            "cache_hit": False,
            "cache_hits": 3,
        }
        assert "campaign.run/campaign.network[network=A]" in manifest.timings["spans"]

    def test_json_is_sorted_and_stable(self):
        manifest = make_obs().manifest()
        text = manifest.to_json(include_timings=False)
        assert text == manifest.to_json(include_timings=False)
        assert json.loads(text) == manifest.deterministic_payload()

    def test_version_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RunManifest.from_payload({"manifest_version": 999})

    def test_counter_value_and_span_paths(self):
        manifest = make_obs().manifest()
        assert manifest.counter_value("lookups_total") == 12
        assert manifest.counter_value("unknown") == 0
        assert manifest.span_paths() == [
            "campaign.run",
            "campaign.run/campaign.network[network=A]",
        ]


class TestObservability:
    def test_disabled_handle_records_nothing(self):
        obs = Observability.disabled()
        obs.set_run_info(seed=1)
        obs.record_execution("campaign", workers=8)
        obs.metrics.counter("x").inc()
        with obs.span("stage") as span:
            span.set("a", 1)
        manifest = obs.manifest()
        assert manifest.run_info == {}
        assert manifest.metrics["counters"] == {}
        assert manifest.spans == []
        assert manifest.timings["execution"] == {}

    def test_resolve_obs_defaults_to_shared_null(self):
        assert resolve_obs(None) is NULL_OBS
        obs = Observability()
        assert resolve_obs(obs) is obs

    def test_record_execution_overwrite_vs_accumulate(self):
        obs = Observability()
        obs.record_execution("s", workers=2)
        obs.record_execution("s", workers=4)
        obs.record_execution("s", accumulate=True, hits=1)
        obs.record_execution("s", accumulate=True, hits=1, transport="fork")
        assert obs.execution["s"] == {"workers": 4, "hits": 2, "transport": "fork"}
