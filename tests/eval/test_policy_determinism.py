"""Published zone content is deterministic per policy (property test).

The evaluation matrix only means anything if a cell's zone content is
a pure function of (plan, policy, day): rebuilding the world — in
full or as any shard subset — must publish byte-identical PTR records
for every one of the four policies.  All randomness is keyed per
network name, so a shard worker holding only its networks derives the
same records the full world would.
"""

import datetime as dt

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import campus_plan
from repro.ipam.policy import POLICY_NAMES
from repro.netsim.worldplan import synthetic_plan

START = dt.date(2021, 1, 1)
OFFSET = 12 * 3600

BASE = synthetic_plan(seed=3, slash16s=3, people=5)


def records_for(world, names, day):
    return {
        name: list(world.internet.network(name).records_on(day, at_offset=OFFSET))
        for name in names
    }


class TestPolicyDeterminism:
    @given(
        policy=st.sampled_from(POLICY_NAMES),
        day_offset=st.integers(min_value=0, max_value=45),
        subset_seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_subset_build_publishes_full_build_records(
        self, policy, day_offset, subset_seed
    ):
        plan = BASE.with_update_policy(policy)
        day = START + dt.timedelta(days=day_offset)
        full = plan.build()
        names = plan.network_names
        picked = [
            name for i, name in enumerate(names) if (subset_seed >> i) & 1
        ] or [names[subset_seed % len(names)]]
        subset = plan.build(picked)
        assert records_for(subset, picked, day) == records_for(full, picked, day)

    @given(policy=st.sampled_from(POLICY_NAMES))
    @settings(max_examples=8, deadline=None)
    def test_rebuild_is_byte_identical(self, policy):
        plan = campus_plan(7).with_update_policy(policy)
        day = START + dt.timedelta(days=9)
        first = records_for(plan.build(), plan.network_names, day)
        second = records_for(plan.build(), plan.network_names, day)
        assert first == second

    def test_policies_actually_differ_in_content(self):
        # Sanity: the axis is not a no-op — the four policies publish
        # four different zones for the same world and day.
        day = START + dt.timedelta(days=3)
        zones = {}
        for policy in POLICY_NAMES:
            plan = campus_plan(7).with_update_policy(policy)
            zones[policy] = tuple(
                sorted(
                    (str(addr), host)
                    for addr, host in plan.build().internet.records_on(
                        day, at_offset=OFFSET
                    )
                )
            )
        assert len(set(zones.values())) == len(POLICY_NAMES)
        assert zones["no-update"] == ()
