"""Shared fixtures for the evaluation-matrix tests.

A full matrix run (collection + campaign per cell) is expensive next
to a unit test, so the 2-policy campus sweep used by several test
files runs once per session; tests that need different axes build
their own spec.
"""

import pytest

from repro.eval import MatrixSpec, campus_plan, run_matrix


@pytest.fixture(scope="session")
def campus_spec():
    return MatrixSpec(
        worlds={"campus": campus_plan(7)},
        policies=("carry-over", "no-update"),
        faults=("none", "mild"),
    ).validate()


@pytest.fixture(scope="session")
def campus_result(campus_spec):
    return run_matrix(campus_spec)
