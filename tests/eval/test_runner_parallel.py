"""Serial and parallel matrix sweeps are byte-identical.

Cells fan out over the shared ``WorkerBudget`` process pool; since a
cell is scored from nothing but its own plan, windows and caches, and
results re-order by cell index, worker count must never change a byte
of the report or the JSON payload.
"""

import json

from repro.eval import matrix_payload, render_ranked_report, run_matrix
from repro.obs import Observability


class TestParallelIdentity:
    def test_parallel_matches_serial(self, campus_spec, campus_result):
        parallel = run_matrix(campus_spec, workers=2)
        assert parallel.workers == 2
        assert render_ranked_report(parallel) == render_ranked_report(campus_result)
        serial_payload = matrix_payload(campus_result)
        parallel_payload = matrix_payload(parallel)
        assert json.dumps(parallel_payload, sort_keys=True) == json.dumps(
            serial_payload, sort_keys=True
        )

    def test_results_follow_sweep_order(self, campus_spec, campus_result):
        assert [r.cell.index for r in campus_result.results] == [
            cell.index for cell in campus_spec.cells()
        ]

    def test_counters_deterministic_across_worker_counts(self, campus_spec):
        def eval_counters(workers):
            obs = Observability()
            run_matrix(campus_spec, workers=workers, obs=obs)
            counters = obs.manifest().deterministic_payload()["metrics"]["counters"]
            return json.dumps(
                {
                    name: value
                    for name, value in counters.items()
                    if name.startswith("eval_")
                },
                sort_keys=True,
            )

        serial = eval_counters(1)
        assert "eval_cells_total" in serial
        assert eval_counters(2) == serial
