"""Degenerate matrix cells surface as flagged rows, never tracebacks.

A ``no-update`` campus cell publishes nothing: zero leaked names, no
activity groups, an empty lingering analysis and a 0-sample freshness
proportion.  Each of those flows through the degenerate-``Interval``
handling and ends up as a flag on the score; the report renders
``n/a`` and the JSON payload stays strict (no ``NaN`` tokens).
"""

import json
import math

from repro.eval import (
    matrix_payload,
    ranked,
    render_ranked_report,
    score_from_payload,
    write_matrix_json,
)


def no_update_result(campus_result):
    return next(
        r for r in campus_result.results if r.cell.policy == "no-update"
    )


class TestFlags:
    def test_no_update_cell_is_flagged_not_fatal(self, campus_result):
        score = no_update_result(campus_result).score
        assert score.verdict == "none"
        assert score.peak_records == 0
        assert "zero-leaks" in score.flags
        assert "lingering-degenerate" in score.flags
        assert "freshness-degenerate" in score.flags
        assert score.lingering_median.degenerate
        assert score.ptr_freshness.degenerate

    def test_carry_over_cell_is_clean(self, campus_result):
        clean = next(
            r.score
            for r in campus_result.results
            if r.cell.policy == "carry-over" and r.cell.faults == "none"
        )
        assert clean.flags == ()
        assert clean.verdict == "identities+dynamics"


class TestRendering:
    def test_report_renders_na_for_degenerate_stats(self, campus_result):
        report = render_ranked_report(campus_result)
        flagged_line = next(
            line for line in report.splitlines() if "no-update" in line
        )
        assert "n/a" in flagged_line
        assert "zero-leaks" in flagged_line
        assert "nan" not in report.lower()

    def test_flagged_cells_rank_below_exposed_ones(self, campus_result):
        order = [r.cell.policy for r in ranked(campus_result.results)]
        assert order.index("carry-over") < order.index("no-update")


class TestStrictJson:
    def test_payload_has_no_nan_tokens(self, campus_result, tmp_path):
        # allow_nan=False inside write_matrix_json raises on any NaN
        # that slipped through; loading proves the file is valid JSON.
        path = write_matrix_json(tmp_path / "eval_matrix.json", campus_result)
        payload = json.loads(path.read_text())
        degenerate = next(
            cell
            for cell in payload["cells"]
            if cell["policy"] == "no-update" and cell["faults"] == "none"
        )
        assert degenerate["privacy"]["lingering_median_minutes"]["estimate"] is None
        assert degenerate["utility"]["ptr_freshness"]["estimate"] is None

    def test_score_round_trips_through_payload(self, campus_result):
        for result in campus_result.results:
            rebuilt = score_from_payload(result.score.to_payload())
            assert rebuilt.to_payload() == result.score.to_payload()
            if result.score.lingering_median.degenerate:
                assert math.isnan(rebuilt.lingering_median.estimate) or (
                    rebuilt.lingering_median.estimate
                    == result.score.lingering_median.estimate
                )

    def test_ranking_lists_every_cell(self, campus_result):
        payload = matrix_payload(campus_result)
        assert sorted(payload["ranking"]) == sorted(
            cell["cell_id"] for cell in payload["cells"]
        )
