"""Cross-cell cache isolation (the PR's cache-key bugfix).

Every evaluation-matrix cell must own its snapshot *and* campaign
cache entries: the cell's policy is folded in through the plan
(fingerprint + ``policy_token``) and the fault profile through the
fault token.  Before the fix, two plans differing only in a policy's
*parameters* (a hashed key, a template) produced the same
``Internet.cache_token`` — a warm run of cell B could replay cell A's
bytes.
"""

import datetime as dt

from repro.eval import MatrixSpec, campus_plan, run_matrix
from repro.ipam.policy import POLICY_NAMES, HashedPolicy, StaticTemplatePolicy
from repro.netsim.internet import Internet
from repro.netsim.network import Network, NetworkType, Subnet, SubnetRole
from repro.netsim.person import PersonGenerator
from repro.netsim.population import _take_devices
from repro.netsim.rng import RngStreams
from repro.scan.cache import CampaignCache, SnapshotCache
from repro.scan.sharded import ShardedCampaign, ShardedCollector

WINDOW = (dt.date(2021, 1, 1), dt.date(2021, 1, 8))
CAMPAIGN_WINDOW = (dt.date(2021, 11, 1), dt.date(2021, 11, 3))


def spec_2x2x2():
    return MatrixSpec(
        worlds={"campus": campus_plan(7)},
        policies=("carry-over", "hashed"),
        faults=("none", "mild"),
    ).validate()


class TestCellKeyDistinctness:
    def test_every_cell_owns_both_cache_keys(self, tmp_path):
        spec = spec_2x2x2()
        snapshot_cache = SnapshotCache(tmp_path / "snapshots")
        campaign_cache = CampaignCache(tmp_path / "campaigns")
        snapshot_keys = set()
        campaign_keys = set()
        for cell in spec.cells():
            plan = spec.plan_for(cell)
            fault_plan = spec.fault_plan_for(cell)
            fault_token = fault_plan.cache_token() if fault_plan else None
            collector = ShardedCollector(plan, shards=1, fault_token=fault_token)
            snapshot_keys.add(collector._cache_key(snapshot_cache, *WINDOW))
            campaign = ShardedCampaign(plan, fault_plan=fault_plan)
            campaign_keys.add(campaign.cache_key(campaign_cache, *CAMPAIGN_WINDOW))
        cells = len(spec.cells())
        assert len(snapshot_keys) == cells
        assert len(campaign_keys) == cells
        # Snapshot and campaign namespaces never collide either.
        assert not snapshot_keys & campaign_keys

    def test_policy_changes_plan_fingerprint(self):
        base = campus_plan(7)
        fingerprints = {
            base.with_update_policy(name).fingerprint() for name in POLICY_NAMES
        }
        assert len(fingerprints) == len(POLICY_NAMES)

    def test_policy_token_none_for_undeclared_plans(self):
        # Plans that never declare a policy keep pre-existing cache keys.
        assert campus_plan(7).policy_token() is None


class TestPolicyParamsReachWorldToken:
    """The latent bug: ``Internet.cache_token`` used only the policy's
    class name, so same-class policies with different parameters were
    indistinguishable to the legacy (non-plan) cache path."""

    @staticmethod
    def _internet_with(policy):
        rngs = RngStreams(3)
        generator = PersonGenerator(rngs.stream("population", "n"))
        people = generator.make_population(4, id_prefix="tok")
        network = Network(
            "n", NetworkType.ACADEMIC, "10.9.0.0/16", "t.example.edu", rngs=rngs
        )
        network.add_subnet(
            Subnet(
                "10.9.1.0/24",
                SubnetRole.DYNAMIC_CLIENTS,
                devices=_take_devices(people),
                policy=policy,
            )
        )
        internet = Internet()
        internet.add(network)
        return internet

    def test_hashed_keys_distinguished(self):
        a = self._internet_with(HashedPolicy("t.example.edu", key=b"key-a"))
        b = self._internet_with(HashedPolicy("t.example.edu", key=b"key-b"))
        assert a.cache_token() != b.cache_token()

    def test_templates_distinguished(self):
        a = self._internet_with(StaticTemplatePolicy("t.example.edu"))
        b = self._internet_with(
            StaticTemplatePolicy("t.example.edu", template="pc-{last_octet}")
        )
        assert a.cache_token() != b.cache_token()

    def test_raw_hash_key_never_in_token(self):
        secret = b"extremely-secret-zone-key"
        internet = self._internet_with(HashedPolicy("t.example.edu", key=secret))
        token = internet.cache_token()
        assert secret.decode() not in token
        assert secret.hex() not in token


class TestWarmRerunIntegrity:
    def test_warm_rerun_hits_every_cell_and_matches_cold(self, tmp_path):
        from repro.eval import matrix_payload

        spec = spec_2x2x2()
        snapshot_cache = SnapshotCache(tmp_path / "snapshots")
        campaign_cache = CampaignCache(tmp_path / "campaigns")
        cold = run_matrix(
            spec, snapshot_cache=snapshot_cache, campaign_cache=campaign_cache
        )
        warm = run_matrix(
            spec, snapshot_cache=snapshot_cache, campaign_cache=campaign_cache
        )
        assert all(r.snapshot_cache_hit and r.campaign_cache_hit for r in warm.results)
        # Poisoning regression: replayed cells must reproduce the cold
        # run bit-for-bit (a shared key would splice one cell's bytes
        # into another's score).
        assert matrix_payload(warm) == matrix_payload(cold)
