"""Tests for the embedded reference data."""

from repro.datasets import (
    CITY_NAMES_WITH_GIVEN_NAME_OVERLAP,
    DEVICE_TERMS,
    GENERIC_ROUTER_TERMS,
    TOP_GIVEN_NAMES,
    name_popularity_weights,
)
from repro.datasets.names import OTHER_GIVEN_NAMES


class TestGivenNames:
    def test_exactly_fifty_names(self):
        assert len(TOP_GIVEN_NAMES) == 50
        assert len(set(TOP_GIVEN_NAMES)) == 50

    def test_figure2_head_of_ranking(self):
        # The first names on Figure 2's x-axis, in order.
        assert TOP_GIVEN_NAMES[:6] == ["jacob", "michael", "emma", "william", "ethan", "olivia"]

    def test_brian_is_matchable(self):
        # The paper's case-study name must be in the matched set.
        assert "brian" in TOP_GIVEN_NAMES

    def test_all_lowercase(self):
        assert all(name == name.lower() for name in TOP_GIVEN_NAMES)

    def test_weights_decrease_with_rank(self):
        weights = name_popularity_weights()
        ordered = [weights[name] for name in TOP_GIVEN_NAMES]
        assert ordered == sorted(ordered, reverse=True)
        assert weights["jacob"] > weights["brian"]

    def test_other_names_disjoint_from_top50(self):
        assert not set(OTHER_GIVEN_NAMES) & set(TOP_GIVEN_NAMES)


class TestDeviceTerms:
    def test_figure3_terms_present(self):
        for term in ("ipad", "air", "laptop", "phone", "dell", "desktop",
                     "iphone", "mbp", "android", "macbook", "galaxy",
                     "lenovo", "chrome", "roku"):
            assert term in DEVICE_TERMS

    def test_terms_have_min_three_characters(self):
        # The paper drops two-character terms like 'hp' as too noisy.
        assert all(len(term) >= 3 for term in DEVICE_TERMS)


class TestRouterTerms:
    def test_paper_examples_present(self):
        assert "north" in GENERIC_ROUTER_TERMS
        assert "south" in GENERIC_ROUTER_TERMS

    def test_common_interface_terms(self):
        for term in ("core", "edge", "gw", "static", "dhcp"):
            assert term in GENERIC_ROUTER_TERMS

    def test_device_terms_not_router_terms(self):
        assert not set(DEVICE_TERMS) & GENERIC_ROUTER_TERMS


class TestCityOverlap:
    def test_city_names_embed_given_names(self):
        for city in CITY_NAMES_WITH_GIVEN_NAME_OVERLAP:
            assert any(name in city for name in TOP_GIVEN_NAMES), city
