#!/usr/bin/env python3
"""Quickstart: the privacy leak in one page.

Builds a single campus network whose IPAM carries DHCP Host Names into
the global reverse DNS, lets one device join and leave, and shows what
*anyone on the Internet* can observe via plain PTR lookups — no access
to the network required.

Run:  python examples/quickstart.py
"""

import datetime as dt

from repro.dhcp import AddressPool, DhcpClient, DhcpServer
from repro.dns import ReverseZone, StubResolver, AuthoritativeServer
from repro.ipam import CarryOverPolicy, IpamSystem


def main() -> None:
    # --- the network operator's side -----------------------------------
    zone = ReverseZone("192.0.2.0/24")
    nameserver = AuthoritativeServer("ns1.campus.example.edu")
    nameserver.add_zone(zone)
    dhcp = DhcpServer(AddressPool("192.0.2.0/24"), lease_time=3600)
    # The fateful automation: lease events drive global DNS updates.
    IpamSystem(zone, CarryOverPolicy("campus.example.edu")).attach(dhcp)

    # --- Brian's phone joins the campus Wi-Fi ---------------------------
    # sends_release=False: phones go out of range without saying goodbye.
    phone = DhcpClient("aa:bb:cc:dd:ee:ff", host_name="Brian's iPhone", sends_release=False)
    address = phone.join(dhcp, now=9 * 3600)
    print(f"09:00  Brian's iPhone gets a lease on {address}")

    # --- the outside observer's side ------------------------------------
    resolver = StubResolver()
    resolver.delegate(nameserver)
    result = resolver.resolve_ptr(address)
    print(f"09:00  PTR {address} -> {result.hostname}   (queried from anywhere)")

    # The phone renews at T1, keeping the lease alive while present.
    phone.renew(dhcp, now=int(10.5 * 3600))

    # Brian walks out of range (no DHCP release is sent).
    phone.leave(dhcp, now=11 * 3600)
    print("11:00  Brian leaves (silently; the lease lives on)")
    result = resolver.resolve_ptr(address)
    print(f"11:05  PTR {address} -> {result.hostname}   (record lingers)")

    # The lease expires; the IPAM system removes the record.
    dhcp.expire_leases(now=int(12.5 * 3600))
    result = resolver.resolve_ptr(address)
    print(f"12:30  PTR {address} -> {result.status.value.upper()}   (Brian is observably gone)")

    print()
    print("Everything above is visible to the whole Internet: device make,")
    print("owner's given name, and join/leave times — the paper's point.")


if __name__ == "__main__":
    main()
