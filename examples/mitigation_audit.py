#!/usr/bin/env python3
"""Mitigation audit: what does each DNS-update policy leak? (Section 8)

Builds four copies of the same office network, one per
:mod:`repro.ipam.policy` implementation, runs the paper's own analysis
pipeline against each, and reports what an outside observer learns:

* carry-over       — identities AND dynamics leak (the status quo);
* hashed           — identities gone, dynamics still observable;
* static-template  — records exist but never change: nothing to see;
* no-update        — reverse DNS is silent;
* carry-over + RFC 7844 clients — the client-side fix: anonymity
  profiles strip the Host Name before it ever reaches the server.

Run:  python examples/mitigation_audit.py
"""

import datetime as dt

from repro.core import DynamicityAnalyzer, DynamicityThresholds, GivenNameMatcher
from repro.dhcp import ANONYMITY_PROFILE
from repro.ipam import CarryOverPolicy, HashedPolicy, NoUpdatePolicy, StaticTemplatePolicy
from repro.netsim.device import DeviceNaming
from repro.netsim.network import Network, NetworkType, Subnet, SubnetRole
from repro.netsim.person import PersonGenerator
from repro.netsim.rng import RngStreams

SUFFIX = "corp.audit.example"
WINDOW = (dt.date(2021, 1, 1), dt.date(2021, 3, 31))
NOON = 12 * 3600


def build_network(policy, *, anonymize_clients=False, seed=5):
    rngs = RngStreams(seed)
    generator = PersonGenerator(rngs.stream("population", "audit"))
    people = generator.make_population(60, id_prefix="aud")
    devices = [device for person in people for device in person.devices]
    if anonymize_clients:
        # RFC 7844: clients withhold identifying options entirely.
        for device in devices:
            device.naming = DeviceNaming.NONE
    network = Network("audit", NetworkType.ENTERPRISE, "10.0.0.0/16", SUFFIX, rngs=rngs)
    network.add_subnet(
        Subnet("10.0.10.0/24", SubnetRole.DYNAMIC_CLIENTS, devices=devices, policy=policy)
    )
    return network


def audit(network):
    """Run the outside observer's pipeline over one quarter."""
    matcher = GivenNameMatcher()
    counts, names, sample = {}, set(), []
    day = WINDOW[0]
    while day <= WINDOW[1]:
        counts[day] = network.counts_by_slash24(day, at_offset=NOON)
        if day.weekday() == 2:
            for _, hostname in network.records_on(day, at_offset=NOON):
                names.update(matcher.match(hostname))
                if len(sample) < 3:
                    sample.append(hostname)
        day += dt.timedelta(days=1)
    report = DynamicityAnalyzer(DynamicityThresholds()).analyze(counts)
    peak = max(sum(c.values()) for c in counts.values())
    return {
        "dynamics observable": "yes" if report.dynamic_count else "no",
        "unique names leaked": len(names),
        "peak records": peak,
        "sample": sample,
    }


def main() -> None:
    variants = [
        ("carry-over (status quo)", build_network(CarryOverPolicy(SUFFIX))),
        ("hashed (server-side fix)", build_network(HashedPolicy(SUFFIX, key=b"secret"))),
        ("static-template", build_network(StaticTemplatePolicy(SUFFIX))),
        ("no-update", build_network(NoUpdatePolicy(SUFFIX))),
        (
            "carry-over + RFC 7844 clients",
            build_network(CarryOverPolicy(SUFFIX), anonymize_clients=True),
        ),
    ]
    print(f"Auditing {len(variants)} deployments over {WINDOW[0]} .. {WINDOW[1]}\n")
    print(f"{'deployment':32s} {'dynamics':>9s} {'names':>6s} {'records':>8s}")
    details = []
    for label, network in variants:
        result = audit(network)
        print(
            f"{label:32s} {result['dynamics observable']:>9s} "
            f"{result['unique names leaked']:>6d} {result['peak records']:>8d}"
        )
        details.append((label, result["sample"]))

    print("\nSample published hostnames per deployment:")
    for label, sample in details:
        rendered = ", ".join(sample) if sample else "(none)"
        print(f"  {label:32s} {rendered}")

    print("\nTakeaways (matching the paper's discussion):")
    print(" * hashing removes the content leak but record churn still")
    print("   exposes network dynamics;")
    print(" * fixed-form records or decoupling DHCP from DNS remove both;")
    print(" * RFC 7844 clients stop the name leak even on leaky servers —")
    print("   but the operator cannot rely on every client doing so.")
    assert ANONYMITY_PROFILE.strip_host_name  # the profile used above


if __name__ == "__main__":
    main()
