#!/usr/bin/env python3
"""Case study: when to stage a heist (paper Section 7.3).

Runs one week of supplemental measurement against the simulated
Academic-A campus and asks: at which hour are the fewest dynamic
clients around?  The rDNS-based answer works even against networks that
block ICMP — record presence alone betrays occupancy.

Run:  python examples/heist_timing.py
"""

import argparse
import datetime as dt

from repro.core import HeistPlanner, hourly_activity
from repro.netsim.internet import build_world
from repro.scan import SupplementalCampaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--network", default="Academic-A")
    args = parser.parse_args()

    # One full week, half-open: [Nov 1, Nov 8) measures Nov 1-7.
    start, end = dt.date(2021, 11, 1), dt.date(2021, 11, 8)
    print(f"Building the world and measuring {args.network}, {start} .. {end} ...")
    world = build_world(seed=args.seed)
    dataset = SupplementalCampaign(world, networks=[args.network]).run(start, end)

    planner = HeistPlanner(dataset, args.network)
    rdns_plan = planner.plan(source="rdns", weekdays_only=True)
    icmp_plan = planner.plan(source="icmp", weekdays_only=True)

    print("\nAverage weekday activity by hour (distinct addresses):")
    print("hour   rDNS   ICMP")
    peak = max(max(rdns_plan.activity_by_hour.values()), 1.0)
    for hour in range(24):
        rdns_value = rdns_plan.activity_by_hour.get(hour, 0.0)
        icmp_value = icmp_plan.activity_by_hour.get(hour, 0.0)
        bar = "#" * int(round(30 * rdns_value / peak))
        marker = "  <-- quietest" if hour == rdns_plan.hour_of_day else ""
        print(f"{hour:4d} {rdns_value:6.1f} {icmp_value:6.1f}  {bar}{marker}")

    print(f"\nrDNS recommends {rdns_plan.hour_of_day:02d}:00 "
          f"(avg {rdns_plan.average_activity:.1f} clients around).")
    print(f"ICMP agrees on {icmp_plan.hour_of_day:02d}:00 — but remember: rDNS")
    print("works even when the target blocks pings (paper, Section 7.3).")

    icmp_hours, rdns_hours = hourly_activity(dataset, args.network)
    print(f"\n(rDNS counts are lower in absolute terms — {sum(rdns_hours.values()):,} vs "
          f"{sum(icmp_hours.values()):,} address-hours — because the rDNS")
    print("measurement is reactive, exactly as the paper notes.)")


if __name__ == "__main__":
    main()
