#!/usr/bin/env python3
"""Case study: six weeks in the Life of Brian(s) (paper Section 7.1).

Runs the supplemental measurement against the simulated Academic-A
campus for the six weeks around Thanksgiving 2021, then — using nothing
but reverse-DNS observations — tracks every device whose hostname
contains the given name *brian*, reproducing the paper's Figure 8:
regular weekday patterns, the Thanksgiving exodus, and a brand-new
Galaxy Note 9 appearing on Cyber Monday afternoon.

Run:  python examples/life_of_brian.py          (full six weeks, ~2 min)
      python examples/life_of_brian.py --quick  (two weeks, faster)
"""

import argparse
import datetime as dt

from repro.core import DeviceTracker
from repro.netsim.calendar import cyber_monday, thanksgiving
from repro.netsim.internet import WorldScale, build_world
from repro.netsim.personas import BRIAN_HOSTNAME_LABELS
from repro.netsim.simtime import to_datetime
from repro.scan import SupplementalCampaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="simulate two weeks instead of six")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    # Half-open window [start, end): the last measured day is Dec 5.
    start = dt.date(2021, 11, 15) if args.quick else dt.date(2021, 10, 25)
    end = dt.date(2021, 12, 6)

    print(f"Building the world (seed={args.seed}) ...")
    world = build_world(seed=args.seed, scale=WorldScale.small() if args.quick else None)
    print(f"Running the supplemental measurement {start} .. {end} (Academic-A only) ...")
    campaign = SupplementalCampaign(world, networks=["Academic-A"])
    dataset = campaign.run(start, end)
    print(f"  {len(dataset.icmp):,} ICMP responses, {len(dataset.rdns):,} rDNS observations\n")

    tracker = DeviceTracker(dataset.rdns)
    days = (end - start).days
    matrix = tracker.presence_matrix(
        "brian", start, days, network="Academic-A", labels=BRIAN_HOSTNAME_LABELS
    )

    print(f"Presence by day ({start} .. {end}; #=seen, .=absent):")
    header = "".join(
        "S" if (start + dt.timedelta(days=i)).weekday() >= 5 else "."
        for i in range(days)
    )
    print(f"{'(weekend map)':22s} {header}")
    for label in BRIAN_HOSTNAME_LABELS:
        cells = "".join("#" if seen else "." for seen in matrix[label])
        print(f"{label:22s} {cells}")

    holiday = thanksgiving(2021)
    monday = cyber_monday(2021)
    print(f"\nThanksgiving {holiday}: all Brians leave campus for the weekend.")
    print("First sighting of each device:")
    for label, first_seen in tracker.new_device_appearances("brian", network="Academic-A"):
        note = "  <-- Cyber Monday purchase?" if label == "brians-galaxy-note9" else ""
        print(f"  {label:22s} {to_datetime(first_seen)}{note}")

    devices = tracker.track("brian", network="Academic-A")
    print("\nStable addressing makes devices trackable over time:")
    for label in BRIAN_HOSTNAME_LABELS:
        device = devices.get(label)
        if device:
            addresses = ", ".join(str(a) for a in device.addresses())
            print(f"  {label:22s} at {addresses}")
    if monday <= end:
        print(f"\n(The Note 9 appeared on {monday}, the Monday after Black Friday.)")


if __name__ == "__main__":
    main()
