#!/usr/bin/env python3
"""Case study: observing work-from-home compliance (paper Section 7.2).

Collects daily (OpenINTEL-style) rDNS snapshots over the COVID-19
period for the simulated case-study networks and charts each network's
PTR-record presence as a percentage of its maximum — lockdowns,
re-openings and holiday breaks are all visible from the outside.
Also reproduces Figure 10's education-vs-housing crossover on
Academic-C, extended into 2019 with weekly (Rapid7-style) snapshots.

Run:  python examples/work_from_home.py          (2020-2021, ~2 min)
      python examples/work_from_home.py --quick  (6 months)
"""

import argparse
import datetime as dt

from repro.core import relative_daily_presence, subnet_presence_split
from repro.core.occupancy import crossover_dates
from repro.netsim.internet import build_world
from repro.netsim.network import SubnetRole
from repro.scan import SnapshotCollector

CASE_NETWORKS = ["Academic-A", "Academic-B", "Academic-C", "Enterprise-B", "Enterprise-C"]


def monthly_profile(presence):
    """Average presence per calendar month, for compact printing."""
    sums, counts = {}, {}
    for day, value in presence.items():
        key = (day.year, day.month)
        sums[key] = sums.get(key, 0.0) + value
        counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sorted(sums)}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    start = dt.date(2020, 2, 17)
    end = dt.date(2020, 9, 1) if args.quick else dt.date(2021, 12, 1)

    print(f"Building the world (seed={args.seed}) and collecting daily snapshots ...")
    world = build_world(seed=args.seed)
    daily = SnapshotCollector.openintel_style(world.internet, networks=CASE_NETWORKS).collect(start, end)

    print(f"\nMonthly presence, % of each network's maximum ({start} .. {end}):")
    for name in CASE_NETWORKS:
        network = world.internet.network(name)
        presence = relative_daily_presence(daily, [str(network.prefix)])
        profile = monthly_profile(presence)
        cells = " ".join(f"{value:3.0f}" for value in profile.values())
        print(f"  {name:13s} {cells}")
    months = " ".join(f"{m:02d}'" for (_, m) in monthly_profile(
        relative_daily_presence(daily, [str(world.internet.network(CASE_NETWORKS[0]).prefix)])
    ))
    print(f"  {'(months)':13s} {months}")

    # --- Figure 10: the Academic-C crossover -----------------------------
    network = world.internet.network("Academic-C")
    groups = {
        "education": [str(s.prefix) for s in network.subnets if s.role is SubnetRole.EDUCATION],
        "housing": [str(s.prefix) for s in network.subnets if s.role is SubnetRole.HOUSING],
    }
    split = subnet_presence_split(daily, groups)
    crossings = crossover_dates(split["education"], split["housing"])
    print("\nAcademic-C, education buildings vs student housing (monthly means):")
    education = monthly_profile(split["education"])
    housing = monthly_profile(split["housing"])
    for key in education:
        year, month = key
        marker = " <-- crossover period" if any(
            c.year == year and c.month == month for c in crossings[:3]
        ) else ""
        print(f"  {year}-{month:02d}  education={education[key]:5.1f}%  housing={housing[key]:5.1f}%{marker}")

    if crossings:
        print(f"\nFirst education/housing crossover: {crossings[0]} — employees work from")
        print("home, education buildings empty, students study from their residences.")

    if not args.quick:
        print("\nExtending visibility into 2019 with weekly (Rapid7-style) snapshots ...")
        weekly = SnapshotCollector.rapid7_style(world.internet, networks=["Academic-C"]).collect(
            dt.date(2019, 10, 1), dt.date(2020, 3, 31)
        )
        weekly_split = subnet_presence_split(weekly, groups)
        for day in weekly.days:
            print(
                f"  {day}  education={weekly_split['education'][day]:5.1f}%  "
                f"housing={weekly_split['housing'][day]:5.1f}%"
            )


if __name__ == "__main__":
    main()
