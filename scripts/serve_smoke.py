"""Smoke-test the query service end to end: boot, probe, diff, kill.

Boots ``repro.cli ... serve`` on the quick-configuration world as a
subprocess, sends one request to every endpoint (including an
incremental ingest), then fetches ``/metrics`` and diffs the manifest
*shape* — the sorted metric names per kind — against the committed
golden in ``results/serve_manifest_golden.json``.  Values are
host-dependent (latency histograms, timings); the name set is not, so
a changed shape means an endpoint stopped reporting or a metric was
renamed without updating the golden.

Usage::

    python scripts/serve_smoke.py                 # diff against golden
    python scripts/serve_smoke.py --write-golden  # (re)write the golden

Exits non-zero on any failed request or shape mismatch.
"""

import argparse
import http.client
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).parent.parent
GOLDEN = REPO / "results" / "serve_manifest_golden.json"
BOOT_TIMEOUT = 180.0

#: One request per endpoint, in order; (method, target, body, status).
REQUESTS = [
    ("GET", "/healthz", None, 200),
    ("GET", "/prefix/20.0.10.0%2F24/dynamicity", None, 200),
    ("GET", "/leaks", None, 200),
    ("GET", "/names?top=5", None, 200),
    ("GET", "/occupancy", None, 200),
    ("GET", "/occupancy?network=Academic-C&source=rdns", None, 200),
    ("POST", "/ingest/day", {"day": "2021-01-22"}, 200),
    # Twice: the first /metrics request is only recorded in its own
    # histogram after it completes, so the second sees the full shape.
    ("GET", "/metrics", None, 200),
    ("GET", "/metrics", None, 200),
]


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def request(port, method, target, body=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, target, body=payload, headers=headers)
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def wait_for_boot(port, process):
    deadline = time.monotonic() + BOOT_TIMEOUT
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(f"server exited early with code {process.returncode}")
        try:
            status, _ = request(port, "GET", "/healthz")
            if status == 200:
                return
        except OSError:
            pass
        time.sleep(0.5)
    raise SystemExit(f"server did not come up within {BOOT_TIMEOUT:.0f}s")


def manifest_shape(manifest: dict) -> dict:
    metrics = manifest["metrics"]
    return {
        "counters": sorted(metrics["counters"]),
        "gauges": sorted(metrics["gauges"]),
        "histograms": sorted(metrics["histograms"]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-golden",
        action="store_true",
        help=f"write {GOLDEN.relative_to(REPO)} instead of diffing against it",
    )
    args = parser.parse_args(argv)

    port = free_port()
    # --metrics-out enables a live metrics registry (otherwise
    # /metrics is empty); the written file itself is scratch.
    scratch_manifest = pathlib.Path(tempfile.mkdtemp()) / "serve-run-manifest.json"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "--quick",
            "--seed",
            "1",
            "--metrics-out",
            str(scratch_manifest),
            "serve",
            "--port",
            str(port),
        ],
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
    )
    try:
        wait_for_boot(port, process)
        manifest = None
        for method, target, body, wanted in REQUESTS:
            status, payload = request(port, method, target, body)
            if status != wanted:
                print(
                    f"FAIL {method} {target}: {status} (wanted {wanted}): {payload}",
                    file=sys.stderr,
                )
                return 1
            print(f"ok {method} {target} -> {status}")
            if target == "/metrics":
                manifest = payload
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()

    shape = manifest_shape(manifest)
    if args.write_golden:
        GOLDEN.parent.mkdir(exist_ok=True)
        GOLDEN.write_text(json.dumps(shape, indent=2) + "\n")
        print(f"wrote {GOLDEN.relative_to(REPO)}")
        return 0

    golden = json.loads(GOLDEN.read_text())
    if shape != golden:
        print("manifest shape diverged from golden:", file=sys.stderr)
        for kind in sorted(set(shape) | set(golden)):
            missing = sorted(set(golden.get(kind, [])) - set(shape.get(kind, [])))
            extra = sorted(set(shape.get(kind, [])) - set(golden.get(kind, [])))
            for name in missing:
                print(f"  - {kind}: {name} (in golden, not served)", file=sys.stderr)
            for name in extra:
                print(f"  + {kind}: {name} (served, not in golden)", file=sys.stderr)
        print(
            "regenerate with: python scripts/serve_smoke.py --write-golden",
            file=sys.stderr,
        )
        return 1
    print("manifest shape matches golden")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
