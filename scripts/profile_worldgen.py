"""Profile the world-generation hot path: a full campaign build.

Runs the supplemental campaign (engine + DHCP/IPAM churn + hourly
sweeps + rDNS follows) for a 7-day window over all nine Table-4
networks under ``cProfile`` and prints the top functions by cumulative
time — the first place to look when ``BENCH_worldgen.json`` regresses.

Usage::

    PYTHONPATH=src python scripts/profile_worldgen.py
    PYTHONPATH=src python scripts/profile_worldgen.py --days 3 --top 30
    PYTHONPATH=src python scripts/profile_worldgen.py --sort tottime
"""

import argparse
import cProfile
import datetime as dt
import io
import pstats
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--days", type=int, default=7, help="campaign window length")
    parser.add_argument("--top", type=int, default=20, help="rows to print")
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime", "ncalls"],
        help="pstats sort key",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    from repro.netsim.internet import build_world
    from repro.scan.campaign import run_network_campaign

    world = build_world(seed=args.seed)
    start = dt.date(2021, 3, 1)
    end = start + dt.timedelta(days=args.days)
    names = list(world.supplemental)

    def build() -> None:
        for name in names:
            run_network_campaign(world, name, start, end)

    profile = cProfile.Profile()
    profile.enable()
    build()
    profile.disable()

    stream = io.StringIO()
    stats = pstats.Stats(profile, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    print(
        f"world-generation profile: {args.days} days x {len(names)} networks "
        f"(seed {args.seed}), top {args.top} by {args.sort}\n"
    )
    print(stream.getvalue())
    return 0


if __name__ == "__main__":
    sys.exit(main())
