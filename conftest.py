"""Ensure the in-tree package is importable even without installation.

Offline environments may lack the ``wheel`` package that ``pip install -e .``
needs; ``python setup.py develop`` or this path shim both work.
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
