"""Domain logic for the query service.

Each service owns one analysis surface and talks to storage only
through the repositories (:mod:`repro.serve.repositories`):

* :class:`DynamicityService` — per-prefix and whole-window dynamicity,
  backed by an :class:`~repro.core.dynamicity.IncrementalDynamicityAnalyzer`
  seeded from the collected series.  :meth:`DynamicityService.ingest`
  folds one new snapshot day in at O(prefixes) — the incremental-ingest
  contract — and its report stays bit-identical to a full
  :class:`~repro.core.dynamicity.DynamicityAnalyzer` recompute over the
  extended series (pinned by ``tests/serve/test_ingest_parity.py``).
* :class:`LeakService` / :class:`NamesService` — the Section 5
  drill-down (leak verdicts, given-name and device-term hits) over the
  trailing sample window.
* :class:`OccupancyService` — daily occupancy curves from the count
  matrix, plus hourly curves replayed from the campaign repository.

Derived reports are memoised against the series length: every GET is a
cache hit until the next ingest grows the window, and the hit/miss
traffic is counted in the shared metrics registry
(``serve_report_cache_total``).
"""

from __future__ import annotations

import datetime as dt
from typing import Callable, List, Mapping, Optional, TypeVar

from repro.core.dynamicity import (
    DynamicityReport,
    DynamicityThresholds,
    IncrementalDynamicityAnalyzer,
)
from repro.core.leaks import LeakIdentifier, LeakReport, LeakThresholds
from repro.core.names import GivenNameMatcher
from repro.core.occupancy import hourly_activity
from repro.obs import Observability, resolve_obs
from repro.serve.repositories import (
    CampaignRepository,
    SnapshotRepository,
    normalise_slash24,
)

T = TypeVar("T")


class ServiceError(Exception):
    """A domain error carrying the HTTP status the handler should map it to."""

    def __init__(self, status: int, message: str, **detail):
        super().__init__(message)
        self.status = status
        self.message = message
        self.detail = dict(detail)

    def payload(self) -> dict:
        payload = {"error": self.message}
        payload.update(self.detail)
        return payload


def dynamicity_summary(report: DynamicityReport) -> dict:
    """The canonical JSON shape of one dynamicity verdict.

    Shared by the incremental path (ingest responses, ``/prefix``
    fallbacks) and the batch-recompute parity tests: two reports are
    bit-identical exactly when these payloads are.
    """
    return {
        "total_observed": report.total_observed,
        "dynamic_count": report.dynamic_count,
        "eligible_count": len(report.prefixes),
        "cadence_days": report.cadence_days,
        "effective_min_change_transitions": report.effective_min_change_transitions,
        "dynamic_prefixes": report.dynamic_prefixes(),
        "thresholds": {
            "min_daily_addresses": report.thresholds.min_daily_addresses,
            "change_percent": report.thresholds.change_percent,
            "min_change_days": report.thresholds.min_change_days,
        },
    }


class _MemoCell:
    """One length-versioned memo with hit/miss accounting.

    The cached value stays valid while the series holds the same
    number of days; an ingest bumps the length and naturally expires
    every cell.  Hits and misses land in the shared
    ``serve_report_cache_total`` counter, labelled per report, so the
    warm-path behaviour is observable (and benchmarkable).
    """

    __slots__ = ("_name", "_version", "_value")

    def __init__(self, name: str):
        self._name = name
        self._version: Optional[int] = None
        self._value = None

    def get(self, version: int, compute: Callable[[], T], obs: Observability) -> T:
        outcome = "hit" if self._version == version else "miss"
        obs.metrics.counter("serve_report_cache_total").labels(
            report=self._name, outcome=outcome
        ).inc()
        if outcome == "miss":
            self._value = compute()
            self._version = version
        return self._value


class DynamicityService:
    """Per-prefix dynamicity plus the one-day-at-a-time ingest path."""

    def __init__(
        self,
        snapshots: SnapshotRepository,
        *,
        thresholds: Optional[DynamicityThresholds] = None,
        obs: Optional[Observability] = None,
    ):
        self.snapshots = snapshots
        self.thresholds = thresholds or DynamicityThresholds()
        self.obs = resolve_obs(obs)
        self._analyzer = IncrementalDynamicityAnalyzer(
            self.thresholds, cadence_days=snapshots.cadence_days
        )
        # Seed the incremental state by replaying the collected window
        # day by day — O(prefixes) per day, same as live ingest.
        for day in snapshots.days:
            self._analyzer.ingest(day, snapshots.counts_view(day))
        self._report = _MemoCell("dynamicity")

    # -- reads ----------------------------------------------------------------

    def report(self) -> DynamicityReport:
        return self._report.get(
            self.snapshots.day_count, self._analyzer.report, self.obs
        )

    def summary(self) -> dict:
        return dynamicity_summary(self.report())

    def prefix_payload(self, raw_prefix: str, *, include_history: bool = False) -> dict:
        """The verdict for one /24, 404-ing with actionable detail."""
        try:
            prefix = normalise_slash24(raw_prefix)
        except ValueError as error:
            raise ServiceError(400, f"invalid /24 prefix: {error}") from error
        history = self.snapshots.history(prefix)
        if history is None:
            raise ServiceError(
                404,
                f"prefix {prefix} was never observed",
                prefix=prefix,
                observed_prefixes=len(self.snapshots.prefix_table()),
            )
        report = self.report()
        info = report.prefixes.get(prefix)
        payload = {
            "prefix": prefix,
            "days": self.snapshots.day_count,
            "cadence_days": report.cadence_days,
            "max_daily": max(history) if history else 0,
            # Prefixes below the min-daily floor are discarded by step 1
            # of the heuristic and carry no change evidence.
            "eligible": info is not None,
            "is_dynamic": info.is_dynamic if info is not None else False,
            "change_days": info.change_days if info is not None else None,
            "observed_days": info.observed_days if info is not None else None,
            "effective_min_change_transitions": report.effective_min_change_transitions,
        }
        if include_history:
            payload["history"] = {
                "days": [day.isoformat() for day in self.snapshots.days],
                "counts": history,
            }
        return payload

    # -- the incremental-ingest contract --------------------------------------

    def ingest(
        self, day: dt.date, counts: Optional[Mapping[str, int]] = None
    ) -> dict:
        """Fold one snapshot day in and return the updated verdict.

        ``counts`` defaults to deriving the day from the simulated
        world (the production path — a new OpenINTEL-style snapshot
        lands); an explicit mapping supports external feeds.  The day
        must extend the window at the declared cadence: both the series
        and the analyzer enforce it, and the precondition is checked
        *before* either is mutated so a rejected ingest leaves no
        torn state.
        """
        expected = self.snapshots.next_day
        if expected is not None and day != expected:
            raise ServiceError(
                409,
                f"day {day.isoformat()} does not extend the window: the "
                f"{self.snapshots.cadence_days}-day cadence expects "
                f"{expected.isoformat()} next",
                expected_day=expected.isoformat(),
                last_day=self.snapshots.days[-1].isoformat(),
            )
        if counts is None:
            column = self.snapshots.append_derived_day(day)
        else:
            for prefix, count in counts.items():
                if not isinstance(count, int) or count < 0:
                    raise ServiceError(
                        400, f"count for {prefix!r} must be a non-negative integer"
                    )
            column = self.snapshots.append_counts(
                day, {normalise_slash24(prefix): count for prefix, count in counts.items()}
            )
        self._analyzer.ingest(day, column)
        self.obs.metrics.counter("serve_ingested_days_total").inc()
        summary = self.summary()
        return {
            "ingested": day.isoformat(),
            "days": self.snapshots.day_count,
            "day_responses": self.snapshots.matrix().day_total(
                self.snapshots.day_count - 1
            ),
            "dynamicity": summary,
        }


class LeakService:
    """Leak verdicts over the trailing sample window (Section 5)."""

    def __init__(
        self,
        snapshots: SnapshotRepository,
        dynamicity: DynamicityService,
        *,
        thresholds: Optional[LeakThresholds] = None,
        sample_days: int = 7,
        matcher: Optional[GivenNameMatcher] = None,
        obs: Optional[Observability] = None,
    ):
        if sample_days < 1:
            raise ValueError("sample_days must be at least 1")
        self.snapshots = snapshots
        self.dynamicity = dynamicity
        self.sample_days = sample_days
        self.obs = resolve_obs(obs)
        self._identifier = LeakIdentifier(
            matcher or GivenNameMatcher(),
            thresholds or LeakThresholds(min_unique_names=6, min_ratio=0.1),
        )
        self._report = _MemoCell("leaks")

    def report(self) -> LeakReport:
        return self._report.get(self.snapshots.day_count, self._compute, self.obs)

    def _compute(self) -> LeakReport:
        dynamic = set(self.dynamicity.report().dynamic_prefixes())
        days = self.snapshots.days[-self.sample_days:]
        records = self.snapshots.sample_records(days)
        return self._identifier.identify(records, dynamic)

    def sample_window(self) -> List[str]:
        return [day.isoformat() for day in self.snapshots.days[-self.sample_days:]]

    def payload(self, *, suffix: Optional[str] = None) -> dict:
        report = self.report()
        if suffix is not None:
            stats = report.suffix_stats.get(suffix)
            if stats is None:
                raise ServiceError(
                    404,
                    f"suffix {suffix!r} holds no name-matching records in "
                    "the sample window",
                    known_suffixes=sorted(report.suffix_stats),
                )
            return {
                "suffix": suffix,
                "identified": suffix in report.identified,
                "records": stats.records,
                "unique_names": stats.unique_name_count,
                "ratio": stats.ratio,
            }
        return {
            "identified": report.identified,
            "sample_days": self.sample_window(),
            "thresholds": {
                "min_unique_names": report.thresholds.min_unique_names,
                "min_ratio": report.thresholds.min_ratio,
            },
            "suffixes": {
                name: {
                    "records": stats.records,
                    "unique_names": stats.unique_name_count,
                    "ratio": stats.ratio,
                    "identified": name in report.identified,
                }
                for name, stats in sorted(report.suffix_stats.items())
            },
        }


class NamesService:
    """Given-name and device-term hit counts (Figures 2-3)."""

    def __init__(self, leaks: LeakService):
        self.leaks = leaks

    @staticmethod
    def _ranked(counter, top: Optional[int]) -> List[List[object]]:
        ranked = sorted(counter.items(), key=lambda item: (-item[1], item[0]))
        if top is not None:
            ranked = ranked[:top]
        return [[name, count] for name, count in ranked]

    def payload(self, *, top: Optional[int] = None) -> dict:
        if top is not None and top < 1:
            raise ServiceError(400, "top must be a positive integer")
        report = self.leaks.report()
        return {
            "sample_days": self.leaks.sample_window(),
            "names": {
                "all": self._ranked(report.all_name_counts, top),
                "identified": self._ranked(report.filtered_name_counts, top),
            },
            "device_terms": {
                "all": self._ranked(report.all_device_term_counts, top),
                "identified": self._ranked(report.filtered_device_term_counts, top),
            },
        }


class OccupancyService:
    """Occupancy curves: daily from the count matrix, hourly on demand."""

    def __init__(
        self,
        snapshots: SnapshotRepository,
        campaigns: Optional[CampaignRepository] = None,
        *,
        obs: Optional[Observability] = None,
    ):
        self.snapshots = snapshots
        self.campaigns = campaigns
        self.obs = resolve_obs(obs)
        self._daily = _MemoCell("occupancy")

    def daily_payload(self, *, prefix: Optional[str] = None) -> dict:
        if prefix is not None:
            return self._prefix_payload(prefix)
        return self._daily.get(self.snapshots.day_count, self._compute_daily, self.obs)

    def _compute_daily(self) -> dict:
        totals = self.snapshots.daily_totals()
        days = sorted(totals)
        values = [totals[day] for day in days]
        peak = max(values, default=0)
        return {
            "scope": "daily",
            "days": [day.isoformat() for day in days],
            "totals": values,
            "relative_percent": [
                (100.0 * value / peak) if peak else 0.0 for value in values
            ],
            "peak": peak,
        }

    def _prefix_payload(self, raw_prefix: str) -> dict:
        try:
            prefix = normalise_slash24(raw_prefix)
        except ValueError as error:
            raise ServiceError(400, f"invalid /24 prefix: {error}") from error
        history = self.snapshots.history(prefix)
        if history is None:
            raise ServiceError(404, f"prefix {prefix} was never observed", prefix=prefix)
        peak = max(history, default=0)
        return {
            "scope": "daily",
            "prefix": prefix,
            "days": [day.isoformat() for day in self.snapshots.days],
            "totals": history,
            "relative_percent": [
                (100.0 * value / peak) if peak else 0.0 for value in history
            ],
            "peak": peak,
        }

    def hourly_payload(self, network: str, *, source: str = "rdns") -> dict:
        if self.campaigns is None:
            raise ServiceError(
                404, "hourly occupancy is not enabled (no campaign repository)"
            )
        if source not in ("rdns", "icmp"):
            raise ServiceError(400, "source must be 'rdns' or 'icmp'")
        dataset = self.campaigns.dataset()
        self.obs.metrics.counter("serve_campaign_cache_total").labels(
            outcome=self.campaigns.last_outcome or "miss"
        ).inc()
        if network not in self.campaigns.networks():
            raise ServiceError(
                404,
                f"network {network!r} is not part of the campaign",
                networks=self.campaigns.networks(),
            )
        icmp_hours, rdns_hours = hourly_activity(dataset, network)
        hours = rdns_hours if source == "rdns" else icmp_hours
        start, end = self.campaigns.window
        return {
            "scope": "hourly",
            "network": network,
            "source": source,
            "window": [start.isoformat(), end.isoformat()],
            "hours": {str(hour): count for hour, count in sorted(hours.items())},
        }


class ServeServices:
    """The bundle one app instance dispatches into."""

    def __init__(
        self,
        dynamicity: DynamicityService,
        leaks: LeakService,
        names: NamesService,
        occupancy: OccupancyService,
    ):
        self.dynamicity = dynamicity
        self.leaks = leaks
        self.names = names
        self.occupancy = occupancy

    @classmethod
    def build(
        cls,
        snapshots: SnapshotRepository,
        campaigns: Optional[CampaignRepository] = None,
        *,
        dynamicity_thresholds: Optional[DynamicityThresholds] = None,
        leak_thresholds: Optional[LeakThresholds] = None,
        leak_sample_days: int = 7,
        obs: Optional[Observability] = None,
    ) -> "ServeServices":
        obs = resolve_obs(obs)
        dynamicity = DynamicityService(
            snapshots, thresholds=dynamicity_thresholds, obs=obs
        )
        leaks = LeakService(
            snapshots,
            dynamicity,
            thresholds=leak_thresholds,
            sample_days=leak_sample_days,
            obs=obs,
        )
        return cls(
            dynamicity=dynamicity,
            leaks=leaks,
            names=NamesService(leaks),
            occupancy=OccupancyService(snapshots, campaigns, obs=obs),
        )
