"""Handlers and wiring for the leak-analysis query service.

The thin top layer of the handlers → services → repositories split:
:class:`ServeApp` routes a decoded request to one service call and
maps :class:`~repro.serve.services.ServiceError` onto HTTP statuses.
``dispatch`` is synchronous and transport-agnostic — the asyncio layer
(:mod:`repro.serve.http`), tests and the load benchmark all call the
same method, so instrumentation and behaviour cannot diverge between
a real socket and a direct call.

Endpoints:

* ``GET /prefix/{slash24}/dynamicity`` — one /24's verdict
  (``?history=1`` adds the per-day count history);
* ``GET /leaks`` — identified suffixes and per-suffix stats
  (``?suffix=`` drills into one);
* ``GET /names`` — given-name and device-term hit counts (``?top=N``);
* ``GET /occupancy`` — daily occupancy (``?prefix=`` one /24;
  ``?network=&source=`` hourly from the supplemental campaign);
* ``POST /ingest/day`` — fold one new snapshot day in incrementally;
* ``GET /healthz`` / ``GET /metrics`` — liveness and the obs manifest.

Every request path is instrumented: per-endpoint latency histograms
(``serve_request_seconds_<endpoint>``), a request counter labelled by
endpoint and status, and in-flight gauges (current + high-water).
"""

from __future__ import annotations

import datetime as dt
import json
import time
from typing import Dict, Optional, Tuple

from repro.netsim.internet import World, build_world
from repro.obs import Observability, resolve_obs
from repro.scan.sharded import ShardedCollector
from repro.scan.snapshot import SnapshotCollector
from repro.serve.repositories import CampaignRepository, SnapshotRepository
from repro.serve.services import ServeServices, ServiceError

#: Sub-second latency buckets (seconds) for the request histograms.
REQUEST_SECONDS_BOUNDS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


class ServeApp:
    """Routes requests into the service bundle; owns the obs wiring."""

    def __init__(self, services: ServeServices, *, obs: Optional[Observability] = None):
        self.services = services
        self.obs = resolve_obs(obs)
        self._inflight = 0

    # -- dispatch -------------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        *,
        query: Optional[Dict[str, str]] = None,
        body: bytes = b"",
    ) -> Tuple[int, dict]:
        """One request → ``(status, payload)``.

        Never raises: domain errors carry their own status, anything
        unexpected maps to a 500 whose payload names the exception.
        """
        query = query or {}
        endpoint, handler = self._route(method, path)
        metrics = self.obs.metrics
        self._inflight += 1
        metrics.gauge("serve_inflight_requests").set(self._inflight)
        metrics.gauge("serve_inflight_high_water").set_max(self._inflight)
        started = time.perf_counter()
        try:
            if handler is None:
                status, payload = 404, {"error": f"no route for {method} {path}"}
            else:
                try:
                    status, payload = handler(query, body)
                except ServiceError as error:
                    status, payload = error.status, error.payload()
                except Exception as error:  # noqa: BLE001 - the 500 boundary
                    status, payload = 500, {
                        "error": f"{type(error).__name__}: {error}"
                    }
            return status, payload
        finally:
            elapsed = time.perf_counter() - started
            metrics.histogram(
                f"serve_request_seconds_{endpoint}", REQUEST_SECONDS_BOUNDS
            ).observe(elapsed)
            metrics.counter("serve_requests_total").labels(
                endpoint=endpoint, status=str(status)
            ).inc()
            self._inflight -= 1
            metrics.gauge("serve_inflight_requests").set(self._inflight)

    def _route(self, method: str, path: str):
        """``(endpoint_label, handler)``; handler ``None`` → 404.

        A matched path with the wrong method reports 405 through a
        small closure so the label still names the real endpoint.
        """
        parts = [part for part in path.split("/") if part]
        # /prefix/{slash24}/dynamicity — the prefix itself may carry a
        # literal '/24' (even '%2F' arrives decoded), so the middle may
        # span one or two segments: /prefix/192.0.2.0/24/dynamicity and
        # /prefix/192.0.2.0/dynamicity both resolve.
        if len(parts) in (3, 4) and parts[0] == "prefix" and parts[-1] == "dynamicity":
            slash24 = "/".join(parts[1:-1])
            return "prefix_dynamicity", self._expect(
                method, "GET", lambda query, body: self._prefix(slash24, query)
            )
        if parts == ["leaks"]:
            return "leaks", self._expect(method, "GET", self._leaks)
        if parts == ["names"]:
            return "names", self._expect(method, "GET", self._names)
        if parts == ["occupancy"]:
            return "occupancy", self._expect(method, "GET", self._occupancy)
        if parts == ["ingest", "day"]:
            return "ingest_day", self._expect(method, "POST", self._ingest_day)
        if parts == ["healthz"]:
            return "healthz", self._expect(method, "GET", self._healthz)
        if parts == ["metrics"]:
            return "metrics", self._expect(method, "GET", self._metrics)
        return "unknown", None

    @staticmethod
    def _expect(method: str, wanted: str, handler):
        if method == wanted:
            return handler
        return lambda query, body: (
            405,
            {"error": f"method {method} not allowed (use {wanted})"},
        )

    # -- handlers -------------------------------------------------------------

    def _prefix(self, slash24: str, query: Dict[str, str]) -> Tuple[int, dict]:
        include_history = query.get("history", "") in ("1", "true", "yes")
        payload = self.services.dynamicity.prefix_payload(
            slash24, include_history=include_history
        )
        return 200, payload

    def _leaks(self, query: Dict[str, str], body: bytes) -> Tuple[int, dict]:
        return 200, self.services.leaks.payload(suffix=query.get("suffix"))

    def _names(self, query: Dict[str, str], body: bytes) -> Tuple[int, dict]:
        top: Optional[int] = None
        if "top" in query:
            try:
                top = int(query["top"])
            except ValueError:
                raise ServiceError(400, f"top={query['top']!r} is not an integer")
        return 200, self.services.names.payload(top=top)

    def _occupancy(self, query: Dict[str, str], body: bytes) -> Tuple[int, dict]:
        if "network" in query:
            return 200, self.services.occupancy.hourly_payload(
                query["network"], source=query.get("source", "rdns")
            )
        return 200, self.services.occupancy.daily_payload(
            prefix=query.get("prefix")
        )

    def _ingest_day(self, query: Dict[str, str], body: bytes) -> Tuple[int, dict]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(400, f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict) or "day" not in payload:
            raise ServiceError(400, 'request body must be {"day": "YYYY-MM-DD", ...}')
        try:
            day = dt.date.fromisoformat(payload["day"])
        except (TypeError, ValueError):
            raise ServiceError(400, f"invalid day {payload['day']!r} (want YYYY-MM-DD)")
        counts = payload.get("counts")
        if counts is not None and not isinstance(counts, dict):
            raise ServiceError(400, "counts must map /24 prefixes to integers")
        return 200, self.services.dynamicity.ingest(day, counts)

    def _healthz(self, query: Dict[str, str], body: bytes) -> Tuple[int, dict]:
        repo = self.services.dynamicity.snapshots
        return 200, {
            "status": "ok",
            "days": repo.day_count,
            "last_day": repo.days[-1].isoformat() if repo.day_count else None,
            "next_day": repo.next_day.isoformat() if repo.next_day else None,
            "prefixes": len(repo.prefix_table()),
        }

    def _metrics(self, query: Dict[str, str], body: bytes) -> Tuple[int, dict]:
        return 200, self.obs.manifest().to_payload()


def build_app(
    config=None,
    *,
    world: Optional[World] = None,
    obs: Optional[Observability] = None,
) -> ServeApp:
    """Boot a service instance: collect the window, wire the layers.

    ``config`` is a :class:`~repro.core.pipeline.StudyConfig` (defaults
    to the full-scale one); the snapshot series over its dynamicity
    window is collected up front (honouring ``snapshot_workers`` and
    ``snapshot_cache``), after which every query is served from the
    columnar store and ingest extends it one day at a time.
    """
    from repro.core.pipeline import StudyConfig

    config = config or StudyConfig()
    obs = resolve_obs(obs)
    plan = getattr(config, "plan", None)
    shards = getattr(config, "shards", 1)
    if world is None and plan is not None:
        world = plan.build()
    if world is None:
        world = build_world(seed=config.seed, scale=config.scale)
    obs.set_run_info(
        seed=config.seed,
        world_fingerprint=(
            f"plan:{plan.fingerprint()}"
            if plan is not None
            else world.internet.cache_token()
        ),
    )
    workers = config.capped_workers(config.snapshot_workers)
    if plan is not None:
        sharded = ShardedCollector(plan, shards=shards, obs=obs)
        series = sharded.collect(
            config.dynamicity_start,
            config.dynamicity_end,
            workers=workers,
            cache=config.snapshot_cache,
        )
    else:
        collector = SnapshotCollector.openintel_style(world.internet, obs=obs)
        series = collector.collect(
            config.dynamicity_start,
            config.dynamicity_end,
            workers=workers,
            cache=config.snapshot_cache,
        )
    snapshots = SnapshotRepository(
        series, blockfile_path=getattr(config, "serve_blockfile", None)
    )
    campaigns = CampaignRepository(
        world,
        start=config.supplemental_start,
        end=config.supplemental_end,
        cache=config.campaign_cache,
        fault_plan=config.fault_plan,
        plan=plan,
        shards=shards,
        obs=obs,
    )
    services = ServeServices.build(
        snapshots,
        campaigns,
        dynamicity_thresholds=config.dynamicity_thresholds,
        leak_thresholds=config.leak_thresholds,
        leak_sample_days=config.leak_sample_days,
        obs=obs,
    )
    return ServeApp(services, obs=obs)
