"""Minimal asyncio HTTP/1.1 transport for the query service.

Deliberately dependency-free: request-line/header parsing and JSON
response framing over :func:`asyncio.start_server`, nothing more.  The
transport knows nothing about routes — it decodes one request, hands
``(method, path, query, body)`` to the app's synchronous ``dispatch``
and frames whatever ``(status, payload)`` comes back.  Keep-alive
follows HTTP/1.1 defaults (persistent unless ``Connection: close``).

Two ways to run it:

* :func:`run_app` — blocking, for the ``repro serve`` CLI subcommand;
* :class:`ServerThread` — the event loop on a daemon thread with an
  ephemeral port, for tests and the load benchmark.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

#: Upper bound on request bodies; ingest payloads are small.
MAX_BODY_BYTES = 8 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def encode_response(status: int, payload: dict, *, close: bool) -> bytes:
    """Frame one JSON response (sorted keys, so bytes are deterministic)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, str, dict, bytes]]:
    """One request off the wire, or ``None`` on a clean disconnect.

    Raises :class:`ValueError` on malformed framing — the connection
    handler answers 400 and closes.
    """
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, version = request_line.decode("latin-1").strip().split(" ", 2)
    except ValueError as error:
        raise ValueError("malformed request line") from error
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError as error:
        raise ValueError("malformed Content-Length") from error
    if length < 0 or length > MAX_BODY_BYTES:
        raise ValueError(f"unacceptable Content-Length {length}")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, version, headers, body


async def handle_connection(app, reader, writer) -> None:
    """Serve one client connection until it closes (keep-alive loop)."""
    try:
        while True:
            try:
                request = await _read_request(reader)
            except ValueError as error:
                writer.write(encode_response(400, {"error": str(error)}, close=True))
                await writer.drain()
                break
            if request is None:
                break
            method, target, version, headers, body = request
            split = urlsplit(target)
            path = unquote(split.path)
            query = {
                key: values[-1] for key, values in parse_qs(split.query).items()
            }
            status, payload = app.dispatch(method, path, query=query, body=body)
            close = (
                version != "HTTP/1.1"
                or headers.get("connection", "").lower() == "close"
            )
            writer.write(encode_response(status, payload, close=close))
            await writer.drain()
            if close:
                break
    except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
        pass  # client went away mid-request; nothing to answer
    except asyncio.CancelledError:
        pass  # server shutting down (SIGINT) with the connection open
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass


async def serve_app(app, host: str, port: int, *, ready=None, stop=None) -> int:
    """Run the server until ``stop`` (an :class:`asyncio.Event`) fires.

    ``ready``, when given, is called with the bound port once the
    socket is listening — :class:`ServerThread` uses it to publish the
    ephemeral port.  Runs forever when ``stop`` is ``None``.
    """
    server = await asyncio.start_server(
        lambda reader, writer: handle_connection(app, reader, writer), host, port
    )
    bound_port = server.sockets[0].getsockname()[1]
    if ready is not None:
        ready(bound_port)
    async with server:
        if stop is None:
            await server.serve_forever()
        else:
            await stop.wait()
    return bound_port


def run_app(app, host: str = "127.0.0.1", port: int = 8400) -> None:
    """Blocking entry point for the CLI (Ctrl-C to stop)."""
    try:
        asyncio.run(serve_app(app, host, port))
    except KeyboardInterrupt:
        pass


class ServerThread:
    """The service on a daemon thread — tests and benchmarks drive it.

    Binds an ephemeral port by default (``port=0``); :attr:`port` and
    :attr:`base_url` are valid once :meth:`start` returns.  Usable as a
    context manager.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self.host = host
        self.port = port
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve thread failed to bind within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()

        def publish(port: int) -> None:
            self.port = port
            self._ready.set()

        await serve_app(
            self.app, self.host, self.port, ready=publish, stop=self._stop
        )

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
