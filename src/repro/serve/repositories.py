"""Data access for the query service: stores behind repositories.

Following the MAAS service-layer split, repositories are the only
layer that touches storage: :class:`SnapshotRepository` wraps the
collected :class:`~repro.scan.snapshot.SnapshotSeries` (and through it
the columnar :class:`~repro.scan.storage.CountMatrix`), and
:class:`CampaignRepository` wraps the supplemental campaign behind a
:class:`~repro.scan.cache.CampaignCache` so hourly-occupancy queries
replay a previously measured dataset instead of re-simulating it.

Services (:mod:`repro.serve.services`) depend on these classes, never
on the stores directly; handlers (:mod:`repro.serve.app`) depend on
services only.
"""

from __future__ import annotations

import datetime as dt
import ipaddress
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.netsim.internet import World
from repro.netsim.worldplan import WorldPlan
from repro.scan.blockfile import BlockFileReader, append_day_records, write_blockfile
from repro.scan.cache import CampaignCache
from repro.scan.campaign import SupplementalCampaign, SupplementalDataset
from repro.scan.sharded import ShardedCampaign
from repro.scan.snapshot import SnapshotSeries
from repro.scan.storage import CountMatrix, PrefixTable


def normalise_slash24(text: str) -> str:
    """Canonicalise a client-supplied prefix to the '/24 key' form.

    Accepts ``192.0.2.0``, ``192.0.2.0/24`` (also percent-encoded as
    ``192.0.2.0%2F24`` once the HTTP layer has decoded it) and any
    address inside the /24; raises :class:`ValueError` otherwise.
    """
    candidate = text.strip()
    if "/" in candidate:
        network = ipaddress.ip_network(candidate, strict=False)
        if network.prefixlen != 24:
            raise ValueError(f"{text!r} is not a /24 prefix")
        return str(network)
    address = ipaddress.ip_address(candidate)
    return str(ipaddress.ip_network((int(address) & ~0xFF, 24)))


class SnapshotRepository:
    """Read/append access to the collected snapshot series.

    The series' columnar internals (prefix table + count matrix) back
    every read; appends go through the series' own cadence-validated
    ingest, so the repository can never hold an irregular window.

    With ``blockfile_path`` set, the series is re-homed onto an on-disk
    blockfile (:mod:`repro.scan.blockfile`): the matrix is written once
    at boot, mapped read-only, and every count read is a zero-copy view
    into the map instead of heap arrays.  Appends then extend the file
    — new day records land at EOF (:func:`append_day_records`), the old
    records are never rewritten — and the repository remaps to pick the
    new segment up.  Reads are byte-identical to the in-memory mode.
    """

    def __init__(
        self,
        series: SnapshotSeries,
        *,
        blockfile_path: Optional[Union[str, Path]] = None,
    ):
        self._series = series
        self._blockfile_path: Optional[Path] = None
        self._reader: Optional[BlockFileReader] = None
        if blockfile_path is not None:
            self._attach_blockfile(Path(blockfile_path))

    def _attach_blockfile(self, path: Path) -> None:
        """Write the series' matrix to ``path`` and serve reads from it."""
        write_blockfile(path, *self._series.blockfile_parts())
        self._blockfile_path = path
        self._remap()

    def _remap(self) -> None:
        """(Re-)open the blockfile and swap the series onto its views.

        The old mapping is closed only after the new one is live;
        day-count views created from here on read the appended segment.
        """
        assert self._blockfile_path is not None
        reader = BlockFileReader.open(self._blockfile_path)
        self._series._matrix = reader.count_matrix()
        previous, self._reader = self._reader, reader
        if previous is not None:
            previous.close()

    def _append_blockfile(self, day: dt.date) -> None:
        """Append ``day``'s freshly ingested column as an EOF segment."""
        if self._blockfile_path is None:
            return
        matrix = self._series.count_matrix()
        index = self._series.days.index(day)
        known = len(self._reader.prefixes) if self._reader is not None else 0
        append_day_records(
            self._blockfile_path,
            matrix.prefixes.values[known:],
            day.toordinal(),
            matrix.column(index),
            matrix.day_total(index),
        )
        self._remap()

    @property
    def blockfile_path(self) -> Optional[Path]:
        """The backing blockfile, or ``None`` in in-memory mode."""
        return self._blockfile_path

    # -- window ---------------------------------------------------------------

    @property
    def series(self) -> SnapshotSeries:
        """The wrapped series (shared; treat as read-only outside appends)."""
        return self._series

    @property
    def days(self) -> List[dt.date]:
        return self._series.days

    @property
    def day_count(self) -> int:
        return len(self._series)

    @property
    def cadence_days(self) -> int:
        return self._series.cadence_days

    @property
    def next_day(self) -> Optional[dt.date]:
        """The only date the cadence contract will accept next."""
        days = self._series.days
        if not days:
            return None
        return days[-1] + dt.timedelta(days=self._series.cadence_days)

    # -- columnar reads -------------------------------------------------------

    def prefix_table(self) -> PrefixTable:
        return self._series.prefix_table()

    def matrix(self) -> CountMatrix:
        return self._series.count_matrix()

    def history(self, prefix: str) -> Optional[List[int]]:
        """One /24's per-day count history, or ``None`` if never seen."""
        prefix_id = self._series.prefix_table().get(prefix)
        if prefix_id is None:
            return None
        return self._series.count_matrix().row(prefix_id)

    def counts_view(self, day: dt.date) -> Mapping[str, int]:
        return self._series.counts_view(day)

    def daily_totals(self) -> Dict[dt.date, int]:
        return self._series.daily_totals()

    def sample_records(self, days: Sequence[dt.date]) -> List[Tuple[object, str]]:
        return self._series.sample_records(days)

    def stats(self):
        return self._series.stats()

    # -- appends (the incremental-ingest contract) ----------------------------

    def append_derived_day(self, day: dt.date) -> Mapping[str, int]:
        """Derive ``day`` from the simulated world and append it.

        Returns the appended day's counts (the no-copy columnar view),
        which the caller folds into the incremental analyzer.
        """
        self._series._collect_day(day)
        self._append_blockfile(day)
        return self._series.counts_view(day)

    def append_counts(
        self, day: dt.date, counts: Mapping[str, int], ptrs: Optional[Set[str]] = None
    ) -> Mapping[str, int]:
        """Append an externally supplied count column for ``day``."""
        self._series._ingest_day(day, dict(counts), set(ptrs or ()))
        self._append_blockfile(day)
        return self._series.counts_view(day)


class CampaignRepository:
    """Lazy access to the supplemental campaign dataset.

    The dataset is only materialised when an hourly-occupancy query
    needs it; a :class:`~repro.scan.cache.CampaignCache` (when given)
    makes that a replay rather than a re-simulation.  ``last_outcome``
    records whether the materialisation hit the cache, for the
    service layer's cache counters.
    """

    def __init__(
        self,
        world: World,
        *,
        start: dt.date,
        end: dt.date,
        networks: Optional[Sequence[str]] = None,
        cache: Optional[CampaignCache] = None,
        fault_plan=None,
        plan: Optional[WorldPlan] = None,
        shards: int = 1,
        obs=None,
    ):
        self._world = world
        self._start = start
        self._end = end
        self._networks = list(networks) if networks is not None else None
        self._cache = cache
        self._fault_plan = fault_plan
        #: When set, materialisation runs the sharded campaign over the
        #: plan (byte-identical to the single-world run, but the serve
        #: process never holds more than one shard's networks at once).
        self._plan = plan
        self._shards = shards
        self._obs = obs
        self._dataset: Optional[SupplementalDataset] = None
        #: "hit" / "miss" / "memo" after :meth:`dataset`; None before.
        self.last_outcome: Optional[str] = None

    @property
    def window(self) -> Tuple[dt.date, dt.date]:
        return (self._start, self._end)

    def dataset(self) -> SupplementalDataset:
        if self._dataset is not None:
            self.last_outcome = "memo"
            return self._dataset
        fault_kwargs = (
            {"fault_plan": self._fault_plan} if self._fault_plan is not None else {}
        )
        if self._plan is not None:
            campaign = ShardedCampaign(
                self._plan,
                shards=self._shards,
                networks=self._networks,
                obs=self._obs,
                **fault_kwargs,
            )
        else:
            campaign = SupplementalCampaign(
                self._world, networks=self._networks, obs=self._obs, **fault_kwargs
            )
        self._dataset = campaign.run(self._start, self._end, cache=self._cache)
        metrics = campaign.last_metrics
        self.last_outcome = (
            "hit" if metrics is not None and metrics.cache_hit else "miss"
        )
        return self._dataset

    def networks(self) -> List[str]:
        """The networks the campaign measures (for 404 detail)."""
        if self._networks is not None:
            return list(self._networks)
        return sorted(self._world.supplemental)
