"""The leak-analysis query service (the ROADMAP's front door).

A long-running HTTP API over the analysis plane, layered MAAS-style:

* handlers — :class:`~repro.serve.app.ServeApp` (routing, HTTP status
  mapping, per-request observability);
* services — :mod:`repro.serve.services` (dynamicity with incremental
  ingest, leak verdicts, name counts, occupancy);
* repositories — :mod:`repro.serve.repositories` (the only layer that
  touches :class:`~repro.scan.snapshot.SnapshotSeries`,
  :class:`~repro.scan.storage.CountMatrix` or the campaign cache).

``repro serve`` (see :mod:`repro.cli`) boots it; ``docs/API.md``
documents the endpoints and the incremental-ingest contract.
"""

from repro.serve.app import ServeApp, build_app
from repro.serve.http import ServerThread, run_app
from repro.serve.repositories import (
    CampaignRepository,
    SnapshotRepository,
    normalise_slash24,
)
from repro.serve.services import (
    DynamicityService,
    LeakService,
    NamesService,
    OccupancyService,
    ServeServices,
    ServiceError,
    dynamicity_summary,
)

__all__ = [
    "CampaignRepository",
    "DynamicityService",
    "LeakService",
    "NamesService",
    "OccupancyService",
    "ServeApp",
    "ServeServices",
    "ServerThread",
    "ServiceError",
    "SnapshotRepository",
    "build_app",
    "dynamicity_summary",
    "normalise_slash24",
    "run_app",
]
