"""A small, dependency-free text-table renderer."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


class TextTable:
    """Fixed-column table with per-column alignment.

    >>> table = TextTable(["name", "count"], aligns=["<", ">"])
    >>> table.add_row(["alpha", 10])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    name  | count
    ------+------
    alpha |    10
    """

    def __init__(self, headers: Sequence[str], *, aligns: Optional[Sequence[str]] = None):
        self.headers = [str(header) for header in headers]
        if aligns is None:
            aligns = ["<"] * len(self.headers)
        if len(aligns) != len(self.headers):
            raise ValueError("aligns must match headers")
        for align in aligns:
            if align not in ("<", ">", "^"):
                raise ValueError(f"invalid alignment {align!r}")
        self.aligns = list(aligns)
        self._rows: List[List[str]] = []

    def add_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self._rows.append([self._format(cell) for cell in row])

    @staticmethod
    def _format(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:,.1f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [
            " | ".join(
                f"{header:{align}{width}}"
                for header, align, width in zip(self.headers, self.aligns, widths)
            ).rstrip()
        ]
        lines.append("-+-".join("-" * width for width in widths))
        for row in self._rows:
            lines.append(
                " | ".join(
                    f"{cell:{align}{width}}"
                    for cell, align, width in zip(row, self.aligns, widths)
                ).rstrip()
            )
        return "\n".join(lines)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def __str__(self) -> str:
        return self.render()
