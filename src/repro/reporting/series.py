"""ASCII renderers for figure-style data: bars, CDFs, time series.

Renderers never raise on empty or degenerate input: an empty mapping
(or series) renders the ``(no data)`` placeholder, and bar scales are
clamped so an all-zero or all-equal series produces flat bars instead
of a division error.  Fault-injected runs routinely produce empty
per-network slices, and the report must survive them.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

_BAR = "#"

#: Placeholder for renders with nothing to show.
NO_DATA = "(no data)"


def _clamp_peak(peak: float) -> float:
    """A safe bar-scale divisor: all-zero/negative peaks clamp to 1."""
    return peak if peak > 0 else 1.0


def render_bar_chart(
    values: Mapping[object, float],
    *,
    width: int = 50,
    log_note: bool = False,
    sort_desc: bool = False,
) -> str:
    """Horizontal bars, one per key.

    ``sort_desc`` orders by value (largest first); otherwise insertion
    order is preserved (e.g. Figure 2's popularity ordering).
    """
    items: List[Tuple[object, float]] = list(values.items())
    if sort_desc:
        items.sort(key=lambda pair: pair[1], reverse=True)
    if not items:
        return NO_DATA
    peak = _clamp_peak(max(value for _, value in items))
    label_width = max(len(str(key)) for key, _ in items)
    lines = []
    if log_note:
        lines.append("(value scale; the paper plots this log-scaled)")
    for key, value in items:
        bar = _BAR * max(0, int(round(width * value / peak)))
        if value > 0 and not bar:
            bar = _BAR
        lines.append(f"{str(key):<{label_width}} | {bar} {value:,.0f}".rstrip())
    return "\n".join(lines)


def render_cdf(
    points_by_series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    checkpoints: Sequence[float] = (5, 15, 30, 60, 120),
) -> str:
    """Tabulated CDF values at checkpoint x-values, one row per series."""
    if not points_by_series:
        return NO_DATA
    header = "series".ljust(16) + "".join(f"{f'<={int(cp)}m':>9}" for cp in checkpoints)
    lines = [header, "-" * len(header)]
    for name, points in points_by_series.items():
        cells = []
        for checkpoint in checkpoints:
            fraction = 0.0
            for x, y in points:
                if x <= checkpoint:
                    fraction = y
                else:
                    break
            cells.append(f"{100 * fraction:>8.1f}%")
        lines.append(f"{name:<16}" + "".join(cells))
    return "\n".join(lines)


def render_time_series(
    series_by_name: Mapping[str, Mapping[object, float]],
    *,
    samples: int = 26,
    width: int = 40,
) -> str:
    """Downsampled rows of (x, value) per series for longitudinal data.

    Bars scale relative to each series' peak value (``width`` at the
    peak), so large-magnitude series no longer overflow the terminal
    the way the old fixed ``value / 4`` scale did; an all-equal series
    renders full-width bars and an all-zero one renders none.
    """
    if not series_by_name:
        return NO_DATA
    lines = []
    for name, series in series_by_name.items():
        keys = sorted(series)
        if not keys:
            lines.append(f"{name}: {NO_DATA}")
            continue
        peak = _clamp_peak(max(series[key] for key in keys))
        step = max(1, len(keys) // samples)
        sampled = keys[::step]
        lines.append(f"{name}:")
        for key in sampled:
            value = series[key]
            bar = _BAR * max(0, int(round(width * value / peak)))
            lines.append(f"  {key} {value:6.1f} {bar}".rstrip())
    return "\n".join(lines)
