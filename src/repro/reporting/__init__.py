"""Text rendering of the paper's tables and figures.

The benchmark harness prints every reproduced table and figure through
these renderers, so ``pytest benchmarks/`` output can be compared
side-by-side with the paper.
"""

from repro.reporting.tables import TextTable
from repro.reporting.series import render_bar_chart, render_cdf, render_time_series

__all__ = ["TextTable", "render_bar_chart", "render_cdf", "render_time_series"]
