"""Columnar storage for campaign observation streams.

A six-week supplemental campaign emits millions of ICMP and rDNS
observations; keeping each as a frozen dataclass instance costs ~
hundreds of bytes of object overhead per row and thrashes the
allocator.  These column stores keep the same data as parallel
``array`` columns (4-byte addresses, 8-byte timestamps, small-integer
dictionary codes for networks/statuses/hostnames) while presenting the
familiar sequence-of-observations API: ``append``, ``len``, indexing,
iteration.  Observation objects are materialised lazily on access, so
every existing consumer (grouping, tracking, occupancy, persistence)
keeps working unchanged.

The stores are picklable (process-pool transport) and JSON-serialisable
(:meth:`to_payload`/:meth:`from_payload`, the campaign-cache format).
Equality compares *contents*, and also accepts a plain list of
observations on either side, which is what the bit-identical
equivalence tests assert against.
"""

from __future__ import annotations

import heapq
import ipaddress
from array import array
from collections.abc import Sequence
from typing import Dict, Iterator, List, Tuple

from repro.dns.resolver import ResolutionStatus
from repro.scan.observations import IcmpObservation, RdnsObservation

#: 32-bit-capable unsigned typecode ('I' is 4 bytes on CPython, but the
#: C standard only guarantees 2; fall back to 'L' where needed).
_ADDR = "I" if array("I").itemsize >= 4 else "L"

_STATUSES: Tuple[ResolutionStatus, ...] = tuple(ResolutionStatus)
_STATUS_INDEX: Dict[ResolutionStatus, int] = {
    status: index for index, status in enumerate(_STATUSES)
}


class _Interner:
    """A list + reverse index assigning dense ids to repeated strings."""

    __slots__ = ("values", "_index")

    def __init__(self, values: Sequence[str] = ()):
        self.values: List[str] = list(values)
        self._index: Dict[str, int] = {value: i for i, value in enumerate(self.values)}

    def code(self, value: str) -> int:
        index = self._index.get(value)
        if index is None:
            index = len(self.values)
            self.values.append(value)
            self._index[value] = index
        return index


def _merge_entries(stream, order: int):
    """Yield (at, order, index, stream) rows; binds ``stream`` eagerly."""
    ats = stream._ats
    for index in range(len(ats)):
        yield (ats[index], order, index, stream)


class IcmpColumns(Sequence):
    """ICMP observations as (address, at, network) columns."""

    __slots__ = ("_addresses", "_ats", "_network_ids", "_networks")

    def __init__(self):
        self._addresses = array(_ADDR)
        self._ats = array("q")
        self._network_ids = array("H")
        self._networks = _Interner()

    # -- building ------------------------------------------------------------

    def append(self, observation: IcmpObservation) -> None:
        self._addresses.append(int(observation.address))
        self._ats.append(observation.at)
        self._network_ids.append(self._networks.code(observation.network))

    def extend(self, observations) -> None:
        for observation in observations:
            self.append(observation)

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ats)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        return IcmpObservation(
            address=ipaddress.IPv4Address(self._addresses[index]),
            at=self._ats[index],
            network=self._networks.values[self._network_ids[index]],
        )

    def __iter__(self) -> Iterator[IcmpObservation]:
        networks = self._networks.values
        for value, at, network_id in zip(self._addresses, self._ats, self._network_ids):
            yield IcmpObservation(
                address=ipaddress.IPv4Address(value), at=at, network=networks[network_id]
            )

    def __eq__(self, other) -> bool:
        if isinstance(other, IcmpColumns):
            return (
                self._addresses == other._addresses
                and self._ats == other._ats
                and [self._networks.values[i] for i in self._network_ids]
                == [other._networks.values[i] for i in other._network_ids]
            )
        if isinstance(other, Sequence):
            return len(self) == len(other) and all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"IcmpColumns({len(self)} observations)"

    # -- serialisation ---------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "addresses": list(self._addresses),
            "ats": list(self._ats),
            "network_ids": list(self._network_ids),
            "networks": list(self._networks.values),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "IcmpColumns":
        columns = cls()
        columns._addresses = array(_ADDR, payload["addresses"])
        columns._ats = array("q", payload["ats"])
        columns._network_ids = array("H", payload["network_ids"])
        columns._networks = _Interner(payload["networks"])
        return columns

    # -- merging ---------------------------------------------------------------

    @classmethod
    def merged(cls, streams: Sequence["IcmpColumns"]) -> "IcmpColumns":
        """A k-way merge by timestamp; ties keep the stream order given.

        Each per-network stream is already time-ordered (observations
        are appended in event-execution order), so the merge is a
        deterministic function of the inputs — the property that makes
        parallel campaign output bit-identical to serial.
        """
        merged = cls()
        entries = heapq.merge(
            *(_merge_entries(stream, order) for order, stream in enumerate(streams))
        )
        for _, _, index, stream in entries:
            merged._addresses.append(stream._addresses[index])
            merged._ats.append(stream._ats[index])
            merged._network_ids.append(
                merged._networks.code(stream._networks.values[stream._network_ids[index]])
            )
        return merged


class RdnsColumns(Sequence):
    """rDNS observations as (address, at, status, hostname, network) columns."""

    __slots__ = ("_addresses", "_ats", "_status_ids", "_hostname_ids", "_network_ids", "_hostnames", "_networks")

    def __init__(self):
        self._addresses = array(_ADDR)
        self._ats = array("q")
        self._status_ids = array("B")
        self._hostname_ids = array("L")
        self._network_ids = array("H")
        self._hostnames = _Interner([""])  # id 0 = no hostname
        self._networks = _Interner()

    # -- building ------------------------------------------------------------

    def append(self, observation: RdnsObservation) -> None:
        self._addresses.append(int(observation.address))
        self._ats.append(observation.at)
        self._status_ids.append(_STATUS_INDEX[observation.status])
        self._hostname_ids.append(self._hostnames.code(observation.hostname))
        self._network_ids.append(self._networks.code(observation.network))

    def extend(self, observations) -> None:
        for observation in observations:
            self.append(observation)

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ats)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        return RdnsObservation(
            address=ipaddress.IPv4Address(self._addresses[index]),
            at=self._ats[index],
            status=_STATUSES[self._status_ids[index]],
            hostname=self._hostnames.values[self._hostname_ids[index]],
            network=self._networks.values[self._network_ids[index]],
        )

    def __iter__(self) -> Iterator[RdnsObservation]:
        hostnames = self._hostnames.values
        networks = self._networks.values
        for i in range(len(self._ats)):
            yield RdnsObservation(
                address=ipaddress.IPv4Address(self._addresses[i]),
                at=self._ats[i],
                status=_STATUSES[self._status_ids[i]],
                hostname=hostnames[self._hostname_ids[i]],
                network=networks[self._network_ids[i]],
            )

    def __eq__(self, other) -> bool:
        if isinstance(other, RdnsColumns):
            return (
                self._addresses == other._addresses
                and self._ats == other._ats
                and self._status_ids == other._status_ids
                and [self._hostnames.values[i] for i in self._hostname_ids]
                == [other._hostnames.values[i] for i in other._hostname_ids]
                and [self._networks.values[i] for i in self._network_ids]
                == [other._networks.values[i] for i in other._network_ids]
            )
        if isinstance(other, Sequence):
            return len(self) == len(other) and all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"RdnsColumns({len(self)} observations)"

    # -- serialisation ---------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "addresses": list(self._addresses),
            "ats": list(self._ats),
            "status_ids": list(self._status_ids),
            "statuses": [status.value for status in _STATUSES],
            "hostname_ids": list(self._hostname_ids),
            "hostnames": list(self._hostnames.values),
            "network_ids": list(self._network_ids),
            "networks": list(self._networks.values),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RdnsColumns":
        columns = cls()
        columns._addresses = array(_ADDR, payload["addresses"])
        columns._ats = array("q", payload["ats"])
        # Re-map status codes through their values so a reordered enum
        # cannot silently corrupt replayed observations.
        stored = [ResolutionStatus(value) for value in payload["statuses"]]
        columns._status_ids = array(
            "B", (_STATUS_INDEX[stored[code]] for code in payload["status_ids"])
        )
        columns._hostname_ids = array("L", payload["hostname_ids"])
        columns._hostnames = _Interner(payload["hostnames"])
        columns._network_ids = array("H", payload["network_ids"])
        columns._networks = _Interner(payload["networks"])
        return columns

    # -- merging ---------------------------------------------------------------

    @classmethod
    def merged(cls, streams: Sequence["RdnsColumns"]) -> "RdnsColumns":
        """A k-way timestamp merge; see :meth:`IcmpColumns.merged`."""
        merged = cls()
        entries = heapq.merge(
            *(_merge_entries(stream, order) for order, stream in enumerate(streams))
        )
        for _, _, index, stream in entries:
            merged._addresses.append(stream._addresses[index])
            merged._ats.append(stream._ats[index])
            merged._status_ids.append(stream._status_ids[index])
            merged._hostname_ids.append(
                merged._hostnames.code(stream._hostnames.values[stream._hostname_ids[index]])
            )
            merged._network_ids.append(
                merged._networks.code(stream._networks.values[stream._network_ids[index]])
            )
        return merged
