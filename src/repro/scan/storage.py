"""Columnar storage for campaign observation streams.

A six-week supplemental campaign emits millions of ICMP and rDNS
observations; keeping each as a frozen dataclass instance costs ~
hundreds of bytes of object overhead per row and thrashes the
allocator.  These column stores keep the same data as parallel
``array`` columns (4-byte addresses, 8-byte timestamps, small-integer
dictionary codes for networks/statuses/hostnames) while presenting the
familiar sequence-of-observations API: ``append``, ``len``, indexing,
iteration.  Observation objects are materialised lazily on access, so
every existing consumer (grouping, tracking, occupancy, persistence)
keeps working unchanged.

The stores are picklable (process-pool transport) and JSON-serialisable
(:meth:`to_payload`/:meth:`from_payload`, the campaign-cache format).
Equality compares *contents*, and also accepts a plain list of
observations on either side, which is what the bit-identical
equivalence tests assert against.
"""

from __future__ import annotations

import base64
import heapq
import ipaddress
from array import array
from collections.abc import Mapping, Sequence
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dns.resolver import ResolutionStatus
from repro.scan.observations import IcmpObservation, RdnsObservation

#: 32-bit-capable unsigned typecode ('I' is 4 bytes on CPython, but the
#: C standard only guarantees 2; fall back to 'L' where needed).
_ADDR = "I" if array("I").itemsize >= 4 else "L"

#: Cache-payload format version shared by the snapshot and campaign
#: payload families.  Bump when a payload schema changes; readers that
#: cannot migrate treat a mismatch as a miss.
#:
#: * v1 — unversioned snapshot payloads (implicit).
#: * v2 — campaign payloads grew the merged ``metrics`` snapshot;
#:   snapshot payloads still stored ``{day: {prefix: count}}`` dicts.
#: * v3 — snapshot payloads went columnar: the prefix table is stored
#:   once and per-day counts are delta-encoded varint columns
#:   (:func:`encode_count_columns`).  Campaign payloads are unchanged
#:   between v2 and v3, so campaign readers accept both.
#: * v4 — snapshot cache entries went binary: the JSON document keeps
#:   only the metadata (name, networks, cadence, totals) plus a
#:   pointer to a sidecar ``.rbf`` blockfile
#:   (:mod:`repro.scan.blockfile`) holding the prefix table and raw
#:   little-endian ``u32`` count columns, mmap-ed and exposed as
#:   zero-copy views on load.  ``SnapshotSeries.to_payload()`` still
#:   emits the self-contained v3 document (the wire/export format);
#:   v4 exists only as the cache's at-rest representation.  Campaign
#:   payloads are again unchanged.
DATASET_FORMAT_VERSION = 4

#: The self-contained columnar document :meth:`SnapshotSeries.to_payload`
#: emits (prefix table + base64-varint columns inline).  This is the
#: wire/export format and the shape the byte-identity pins compare; the
#: v4 cache representation wraps the same data in a JSON-metadata +
#: blockfile pair instead.
COLUMNAR_PAYLOAD_VERSION = 3

_STATUSES: Tuple[ResolutionStatus, ...] = tuple(ResolutionStatus)
_STATUS_INDEX: Dict[ResolutionStatus, int] = {
    status: index for index, status in enumerate(_STATUSES)
}


class _Interner:
    """A list + reverse index assigning dense ids to repeated strings."""

    __slots__ = ("values", "_index")

    def __init__(self, values: Sequence[str] = ()):
        self.values: List[str] = list(values)
        self._index: Dict[str, int] = {value: i for i, value in enumerate(self.values)}

    def code(self, value: str) -> int:
        index = self._index.get(value)
        if index is None:
            index = len(self.values)
            self.values.append(value)
            self._index[value] = index
        return index


class PrefixTable:
    """Stable string↔int interning for /24 prefix keys.

    IDs are dense and assigned in first-seen order, so a table built
    from a chronologically ingested series is a deterministic function
    of the series — serial, parallel and cache-replayed collections
    produce identical tables, which is what keeps the v3 payload bytes
    (and everything derived from prefix IDs) bit-identical across run
    modes.
    """

    __slots__ = ("values", "_index")

    def __init__(self, values: Sequence[str] = ()):
        #: Interned prefixes in ID order.  Treat as read-only.
        self.values: List[str] = list(values)
        self._index: Dict[str, int] = {value: i for i, value in enumerate(self.values)}

    def intern(self, prefix: str) -> int:
        """The ID for ``prefix``, assigning the next dense ID if new."""
        index = self._index.get(prefix)
        if index is None:
            index = len(self.values)
            self.values.append(prefix)
            self._index[prefix] = index
        return index

    def get(self, prefix: str) -> Optional[int]:
        """The ID for ``prefix``, or ``None`` if it was never interned."""
        return self._index.get(prefix)

    def prefix_for(self, prefix_id: int) -> str:
        return self.values[prefix_id]

    def __len__(self) -> int:
        return len(self.values)

    def __contains__(self, prefix: object) -> bool:
        return prefix in self._index

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def __eq__(self, other) -> bool:
        if isinstance(other, PrefixTable):
            return self.values == other.values
        return NotImplemented

    def __repr__(self) -> str:
        return f"PrefixTable({len(self.values)} prefixes)"


class _DayCountsView(Mapping):
    """A read-only ``{prefix: count}`` view over one day's count column.

    Semantically identical to the dict the row-oriented code kept —
    only prefixes with a non-zero count are present — but backed by the
    shared :class:`CountMatrix` column with no per-call copy.
    """

    __slots__ = ("_table", "_column", "_length")

    def __init__(self, table: PrefixTable, column: "array"):
        self._table = table
        self._column = column
        self._length: Optional[int] = None

    def __getitem__(self, prefix: str) -> int:
        prefix_id = self._table.get(prefix)
        if prefix_id is None or prefix_id >= len(self._column):
            raise KeyError(prefix)
        count = self._column[prefix_id]
        if not count:
            raise KeyError(prefix)
        # int() keeps mmap-backed (NumPy) columns JSON-safe.
        return int(count)

    def __iter__(self) -> Iterator[str]:
        values = self._table.values
        for prefix_id, count in enumerate(self._column):
            if count:
                yield values[prefix_id]

    def __len__(self) -> int:
        if self._length is None:
            self._length = sum(1 for count in self._column if count)
        return self._length

    def __repr__(self) -> str:
        return f"_DayCountsView({len(self)} prefixes)"


class CountMatrix:
    """Per-day dense count columns over interned prefix IDs.

    The columnar twin of ``{date: {prefix: count}}``: one
    ``array('I')`` per day, indexed by :class:`PrefixTable` ID.  A
    column is as long as the table was when its day was appended;
    shorter columns implicitly carry zeroes for later prefixes
    (:meth:`pad` materialises those zeroes in place when an analysis
    pass wants uniform columns).  Per-day totals are accumulated at
    append time so ``daily_totals`` never re-sums.

    A matrix may also be *view-backed* (:meth:`from_columns`): columns
    are then zero-copy ``u32`` views into an mmap-ed blockfile rather
    than heap arrays, so a 100k+-prefix world never has to be resident.
    View columns are read-only; :meth:`pad` materialises a mutable copy
    of any column it must widen, and :meth:`append_day` simply appends
    fresh heap columns alongside the views.  Every scalar accessor
    coerces through ``int()`` so NumPy integers never leak to JSON.
    """

    __slots__ = ("prefixes", "_columns", "_totals", "_source")

    def __init__(self, prefixes: Optional[PrefixTable] = None):
        self.prefixes = prefixes if prefixes is not None else PrefixTable()
        self._columns: List[array] = []
        self._totals: List[int] = []
        #: Optional object owning the buffers behind view columns (a
        #: blockfile reader); held only to pin the mapping's lifetime.
        self._source = None

    # -- building ------------------------------------------------------------

    def append_day(self, counts: Mapping[str, int]) -> None:
        """Intern ``counts``'s prefixes and append a dense column."""
        intern = self.prefixes.intern
        ids = [intern(prefix) for prefix in counts]
        column = array(_ADDR, bytes(array(_ADDR).itemsize * len(self.prefixes)))
        total = 0
        for prefix_id, count in zip(ids, counts.values()):
            column[prefix_id] = count
            total += count
        self._columns.append(column)
        self._totals.append(total)

    @classmethod
    def from_day_dicts(cls, day_dicts: Iterable[Mapping[str, int]]) -> "CountMatrix":
        matrix = cls()
        for counts in day_dicts:
            matrix.append_day(counts)
        return matrix

    @classmethod
    def from_columns(
        cls,
        prefixes: Sequence[str],
        columns: Sequence[Sequence[int]],
        totals: Sequence[int],
        *,
        source=None,
    ) -> "CountMatrix":
        """A matrix over pre-built columns (typically zero-copy views).

        ``columns`` are adopted as-is — NumPy ``frombuffer`` views,
        ``memoryview`` casts or plain ``array`` objects all work.
        ``source`` (e.g. a blockfile reader) is retained so the buffer
        behind the views outlives the caller's handle.
        """
        matrix = cls(PrefixTable(prefixes))
        matrix._columns = list(columns)
        matrix._totals = [int(total) for total in totals]
        matrix._source = source
        return matrix

    # -- access --------------------------------------------------------------

    @property
    def day_count(self) -> int:
        return len(self._columns)

    def column(self, index: int) -> array:
        """Day ``index``'s raw column (may be shorter than the table)."""
        return self._columns[index]

    def count(self, index: int, prefix_id: int) -> int:
        column = self._columns[index]
        return int(column[prefix_id]) if prefix_id < len(column) else 0

    def day_total(self, index: int) -> int:
        return self._totals[index]

    @property
    def totals(self) -> List[int]:
        """Per-day totals in day order.  Treat as read-only."""
        return self._totals

    def day_counts(self, index: int) -> Dict[str, int]:
        """Day ``index`` as a fresh ``{prefix: count}`` dict (non-zero only)."""
        values = self.prefixes.values
        return {
            values[prefix_id]: int(count)
            for prefix_id, count in enumerate(self._columns[index])
            if count
        }

    def day_view(self, index: int) -> _DayCountsView:
        """Day ``index`` as a no-copy read-only mapping."""
        return _DayCountsView(self.prefixes, self._columns[index])

    def row(self, prefix_id: int) -> List[int]:
        """One prefix's count history across all days."""
        return [self.count(index, prefix_id) for index in range(len(self._columns))]

    def pad(self) -> List[array]:
        """Extend every column to the current table size (in place).

        Idempotent; the implied zeroes become explicit so analysis
        sweeps can ``zip`` columns without bounds checks.
        """
        width = len(self.prefixes)
        itemsize = array(_ADDR).itemsize
        for index, column in enumerate(self._columns):
            if len(column) < width:
                if not isinstance(column, array):
                    # View columns (mmap-backed) are read-only; widen a
                    # mutable heap copy in their place.
                    column = array(_ADDR, (int(value) for value in column))
                    self._columns[index] = column
                column.frombytes(bytes(itemsize * (width - len(column))))
        return self._columns

    def __eq__(self, other) -> bool:
        if isinstance(other, CountMatrix):
            return self.day_count == other.day_count and all(
                self.day_counts(index) == other.day_counts(index)
                for index in range(self.day_count)
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"CountMatrix({self.day_count} days × {len(self.prefixes)} prefixes)"


# -- delta/varint codec for count columns ------------------------------------
#
# The v3 snapshot payload stores each day's column as the element-wise
# difference against the previous day's column, zigzag-mapped to
# unsigned and LEB128-varint-packed into base64.  Day-over-day count
# changes are small, so almost every delta is a single byte; decoding
# is one tight pass over bytes instead of re-parsing O(days × prefixes)
# JSON dict keys.


def _encode_varints(values: Iterable[int]) -> bytearray:
    out = bytearray()
    append = out.append
    for value in values:
        # Zigzag: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ...
        value = (value << 1) ^ (value >> 63)
        while value > 0x7F:
            append((value & 0x7F) | 0x80)
            value >>= 7
        append(value)
    return out


def _decode_varints(data: bytes) -> Iterator[int]:
    value = 0
    shift = 0
    for byte in data:
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
            continue
        # Un-zigzag.
        yield (value >> 1) ^ -(value & 1)
        value = 0
        shift = 0
    if shift:
        raise ValueError("truncated varint stream")


def encode_count_columns(matrix: CountMatrix) -> List[str]:
    """Delta-encode a matrix's columns into base64 varint strings.

    Each encoded column starts with its own length (columns grow as new
    prefixes appear), followed by one zigzag varint per element: the
    difference against the previous day's value (implicitly zero for
    the first day and for elements past the previous column's end).
    """
    encoded: List[str] = []
    previous: Sequence[int] = ()
    for index in range(matrix.day_count):
        column = matrix.column(index)
        deltas = bytearray(_encode_varints((len(column),)))
        shared = min(len(column), len(previous))
        # int() guards against unsigned wrap-around when the columns
        # are mmap-backed u32 views (NumPy would compute 2 - 5 mod 2^32).
        values = [int(column[i]) - int(previous[i]) for i in range(shared)]
        values.extend(int(value) for value in column[shared:])
        deltas += _encode_varints(values)
        encoded.append(base64.b64encode(bytes(deltas)).decode("ascii"))
        previous = column
    return encoded


#: Un-zigzag for single-byte varints: 0, 1, 2, 3 -> 0, -1, 1, -2, ...
_UNZIGZAG = [(byte >> 1) ^ -(byte & 1) for byte in range(0x80)]


def decode_count_columns(
    prefixes: Sequence[str], encoded: Sequence[str], totals: Optional[Sequence[int]] = None
) -> CountMatrix:
    """Rebuild a :class:`CountMatrix` from :func:`encode_count_columns`.

    ``totals`` (the payload's cached per-day sums) skips re-summing on
    decode; when absent they are recomputed from the columns.

    Day-over-day deltas are small, so after the leading length varint
    almost every column body is single-byte varints; that common case
    decodes through a table-lookup comprehension, and delta
    accumulation runs through :func:`map`/``operator.add`` — both far
    cheaper than a per-byte Python loop on the warm-cache path.
    """
    from operator import add

    matrix = CountMatrix(PrefixTable(prefixes))
    columns = matrix._columns
    for index, text in enumerate(encoded):
        data = base64.b64decode(text)
        # The leading length varint by hand (lengths routinely exceed
        # one byte); the remaining body then qualifies for the
        # single-byte fast path whenever no delta leaves [-63, 63].
        value = 0
        shift = 0
        position = len(data)
        for position, byte in enumerate(data):
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        else:
            if not data:
                raise ValueError("empty count column")
            raise ValueError("truncated varint stream")
        length = (value >> 1) ^ -(value & 1)
        body = data[position + 1:]
        if not body or max(body) < 0x80:
            values = [_UNZIGZAG[byte] for byte in body]
        else:
            values = list(_decode_varints(body))
        if len(values) != length:
            raise ValueError(
                f"count column {index} declares {length} entries, decoded {len(values)}"
            )
        previous = columns[-1] if columns else ()
        if previous:
            # Deltas are signed; only the reconstructed counts fit the
            # unsigned column array, so accumulate before materialising.
            # map() stops at the shorter operand — exactly the span the
            # two columns share — and new prefixes keep their raw value.
            merged = list(map(add, values, previous))
            merged.extend(values[len(previous):])
            values = merged
        columns.append(array(_ADDR, values))
        matrix._totals.append(
            totals[index] if totals is not None else sum(values)
        )
    return matrix


def _merge_entries(stream, order: int):
    """Yield (at, order, index, stream) rows; binds ``stream`` eagerly."""
    ats = stream._ats
    for index in range(len(ats)):
        yield (ats[index], order, index, stream)


class IcmpColumns(Sequence):
    """ICMP observations as (address, at, network) columns."""

    __slots__ = ("_addresses", "_ats", "_network_ids", "_networks")

    def __init__(self):
        self._addresses = array(_ADDR)
        self._ats = array("q")
        self._network_ids = array("H")
        self._networks = _Interner()

    # -- building ------------------------------------------------------------

    def append(self, observation: IcmpObservation) -> None:
        self._addresses.append(int(observation.address))
        self._ats.append(observation.at)
        self._network_ids.append(self._networks.code(observation.network))

    def extend(self, observations) -> None:
        for observation in observations:
            self.append(observation)

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ats)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        return IcmpObservation(
            address=ipaddress.IPv4Address(self._addresses[index]),
            at=self._ats[index],
            network=self._networks.values[self._network_ids[index]],
        )

    def __iter__(self) -> Iterator[IcmpObservation]:
        networks = self._networks.values
        for value, at, network_id in zip(self._addresses, self._ats, self._network_ids):
            yield IcmpObservation(
                address=ipaddress.IPv4Address(value), at=at, network=networks[network_id]
            )

    def __eq__(self, other) -> bool:
        if isinstance(other, IcmpColumns):
            return (
                self._addresses == other._addresses
                and self._ats == other._ats
                and [self._networks.values[i] for i in self._network_ids]
                == [other._networks.values[i] for i in other._network_ids]
            )
        if isinstance(other, Sequence):
            return len(self) == len(other) and all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"IcmpColumns({len(self)} observations)"

    # -- serialisation ---------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "addresses": list(self._addresses),
            "ats": list(self._ats),
            "network_ids": list(self._network_ids),
            "networks": list(self._networks.values),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "IcmpColumns":
        columns = cls()
        columns._addresses = array(_ADDR, payload["addresses"])
        columns._ats = array("q", payload["ats"])
        columns._network_ids = array("H", payload["network_ids"])
        columns._networks = _Interner(payload["networks"])
        return columns

    # -- merging ---------------------------------------------------------------

    @classmethod
    def merged(cls, streams: Sequence["IcmpColumns"]) -> "IcmpColumns":
        """A k-way merge by timestamp; ties keep the stream order given.

        Each per-network stream is already time-ordered (observations
        are appended in event-execution order), so the merge is a
        deterministic function of the inputs — the property that makes
        parallel campaign output bit-identical to serial.
        """
        merged = cls()
        entries = heapq.merge(
            *(_merge_entries(stream, order) for order, stream in enumerate(streams))
        )
        for _, _, index, stream in entries:
            merged._addresses.append(stream._addresses[index])
            merged._ats.append(stream._ats[index])
            merged._network_ids.append(
                merged._networks.code(stream._networks.values[stream._network_ids[index]])
            )
        return merged


class RdnsColumns(Sequence):
    """rDNS observations as (address, at, status, hostname, network) columns."""

    __slots__ = ("_addresses", "_ats", "_status_ids", "_hostname_ids", "_network_ids", "_hostnames", "_networks")

    def __init__(self):
        self._addresses = array(_ADDR)
        self._ats = array("q")
        self._status_ids = array("B")
        self._hostname_ids = array("L")
        self._network_ids = array("H")
        self._hostnames = _Interner([""])  # id 0 = no hostname
        self._networks = _Interner()

    # -- building ------------------------------------------------------------

    def append(self, observation: RdnsObservation) -> None:
        self._addresses.append(int(observation.address))
        self._ats.append(observation.at)
        self._status_ids.append(_STATUS_INDEX[observation.status])
        self._hostname_ids.append(self._hostnames.code(observation.hostname))
        self._network_ids.append(self._networks.code(observation.network))

    def extend(self, observations) -> None:
        for observation in observations:
            self.append(observation)

    # -- sequence protocol -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ats)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        return RdnsObservation(
            address=ipaddress.IPv4Address(self._addresses[index]),
            at=self._ats[index],
            status=_STATUSES[self._status_ids[index]],
            hostname=self._hostnames.values[self._hostname_ids[index]],
            network=self._networks.values[self._network_ids[index]],
        )

    def __iter__(self) -> Iterator[RdnsObservation]:
        hostnames = self._hostnames.values
        networks = self._networks.values
        for i in range(len(self._ats)):
            yield RdnsObservation(
                address=ipaddress.IPv4Address(self._addresses[i]),
                at=self._ats[i],
                status=_STATUSES[self._status_ids[i]],
                hostname=hostnames[self._hostname_ids[i]],
                network=networks[self._network_ids[i]],
            )

    def __eq__(self, other) -> bool:
        if isinstance(other, RdnsColumns):
            return (
                self._addresses == other._addresses
                and self._ats == other._ats
                and self._status_ids == other._status_ids
                and [self._hostnames.values[i] for i in self._hostname_ids]
                == [other._hostnames.values[i] for i in other._hostname_ids]
                and [self._networks.values[i] for i in self._network_ids]
                == [other._networks.values[i] for i in other._network_ids]
            )
        if isinstance(other, Sequence):
            return len(self) == len(other) and all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"RdnsColumns({len(self)} observations)"

    # -- serialisation ---------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "addresses": list(self._addresses),
            "ats": list(self._ats),
            "status_ids": list(self._status_ids),
            "statuses": [status.value for status in _STATUSES],
            "hostname_ids": list(self._hostname_ids),
            "hostnames": list(self._hostnames.values),
            "network_ids": list(self._network_ids),
            "networks": list(self._networks.values),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RdnsColumns":
        columns = cls()
        columns._addresses = array(_ADDR, payload["addresses"])
        columns._ats = array("q", payload["ats"])
        # Re-map status codes through their values so a reordered enum
        # cannot silently corrupt replayed observations.
        stored = [ResolutionStatus(value) for value in payload["statuses"]]
        columns._status_ids = array(
            "B", (_STATUS_INDEX[stored[code]] for code in payload["status_ids"])
        )
        columns._hostname_ids = array("L", payload["hostname_ids"])
        columns._hostnames = _Interner(payload["hostnames"])
        columns._network_ids = array("H", payload["network_ids"])
        columns._networks = _Interner(payload["networks"])
        return columns

    # -- merging ---------------------------------------------------------------

    @classmethod
    def merged(cls, streams: Sequence["RdnsColumns"]) -> "RdnsColumns":
        """A k-way timestamp merge; see :meth:`IcmpColumns.merged`."""
        merged = cls()
        entries = heapq.merge(
            *(_merge_entries(stream, order) for order, stream in enumerate(streams))
        )
        for _, _, index, stream in entries:
            merged._addresses.append(stream._addresses[index])
            merged._ats.append(stream._ats[index])
            merged._status_ids.append(stream._status_ids[index])
            merged._hostname_ids.append(
                merged._hostnames.code(stream._hostnames.values[stream._hostname_ids[index]])
            )
            merged._network_ids.append(
                merged._networks.code(stream._networks.values[stream._network_ids[index]])
            )
        return merged
