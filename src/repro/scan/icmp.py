"""A ZMap-style ICMP sweeper.

"We use Zmap for the ICMP measurements. Zmap allows us to easily
implement rate limiting and IP address blocklisting. The blocklisting
capability is used to allow subjects to opt-out. ... Zmap only includes
hosts that were reachable in its output." (Section 6.1)
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterable, List, Optional, Set

from repro.netsim.finegrained import NetworkRuntime
from repro.scan.observations import IcmpObservation
from repro.scan.ratelimit import TokenBucket


class IcmpScanner:
    """Sweeps target prefixes against live network runtimes."""

    def __init__(
        self,
        runtimes: Dict[str, NetworkRuntime],
        *,
        rate_limit: Optional[TokenBucket] = None,
        blocklist: Iterable = (),
    ):
        self._runtimes = dict(runtimes)
        self.rate_limit = rate_limit
        self._blocklist: Set[ipaddress.IPv4Address] = set()
        for entry in blocklist:
            self.add_to_blocklist(entry)
        self.probes_sent = 0
        self.probes_suppressed = 0
        self._target_cache: Dict[str, tuple] = {}

    # -- blocklist (the opt-out mechanism) ---------------------------------

    def add_to_blocklist(self, entry) -> None:
        """Opt an address or a whole prefix out of the measurement."""
        try:
            self._blocklist.add(ipaddress.IPv4Address(entry))
        except ValueError:
            network = ipaddress.IPv4Network(entry)
            self._blocklist.update(network)

    def is_blocked(self, address) -> bool:
        return ipaddress.ip_address(address) in self._blocklist

    # -- probing ------------------------------------------------------------

    def _runtime_for(self, address: ipaddress.IPv4Address) -> Optional[NetworkRuntime]:
        for runtime in self._runtimes.values():
            if address in runtime.network.prefix:
                return runtime
        return None

    def probe(self, address, at: int, *, network: str = "") -> Optional[IcmpObservation]:
        """One echo request; an observation only if the host responded."""
        ip = ipaddress.ip_address(address)
        if ip in self._blocklist:
            self.probes_suppressed += 1
            return None
        if self.rate_limit is not None and not self.rate_limit.acquire(at):
            self.probes_suppressed += 1
            return None
        self.probes_sent += 1
        runtime = self._runtime_for(ip)
        if runtime is None or not runtime.is_icmp_responsive(ip):
            return None
        return IcmpObservation(ip, at, network or runtime.network.name)

    def sweep(self, targets: Iterable, at: int, *, network: str = "") -> List[IcmpObservation]:
        """Probe every address in the target prefixes; responders only.

        ``targets`` may mix prefixes and single addresses, like a ZMap
        target list.  The per-target runtime and address list are
        cached: a supplemental campaign sweeps the same prefixes every
        hour for weeks.
        """
        observations: List[IcmpObservation] = []
        for target in targets:
            runtime, addresses = self._target_plan(target)
            for address in addresses:
                if self._blocklist and address in self._blocklist:
                    self.probes_suppressed += 1
                    continue
                if self.rate_limit is not None and not self.rate_limit.acquire(at):
                    self.probes_suppressed += 1
                    continue
                self.probes_sent += 1
                if runtime is not None and runtime.is_icmp_responsive(address):
                    observations.append(
                        IcmpObservation(address, at, network or runtime.network.name)
                    )
        return observations

    def _target_plan(self, target):
        plan = self._target_cache.get(str(target))
        if plan is None:
            addresses = list(self._iter_target(target))
            runtime = self._runtime_for(addresses[0]) if addresses else None
            plan = (runtime, addresses)
            self._target_cache[str(target)] = plan
        return plan

    @staticmethod
    def _iter_target(target):
        try:
            yield ipaddress.IPv4Address(target)
        except ValueError:
            yield from ipaddress.IPv4Network(target)
