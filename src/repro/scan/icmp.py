"""A ZMap-style ICMP sweeper.

"We use Zmap for the ICMP measurements. Zmap allows us to easily
implement rate limiting and IP address blocklisting. The blocklisting
capability is used to allow subjects to opt-out. ... Zmap only includes
hosts that were reachable in its output." (Section 6.1)
"""

from __future__ import annotations

import ipaddress
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.netsim.finegrained import ECHO_LOST, ECHO_REPLY, NetworkRuntime
from repro.scan.observations import IcmpObservation
from repro.scan.ratelimit import TokenBucket


class IcmpScanner:
    """Sweeps target prefixes against live network runtimes.

    ``retries`` is the per-probe retry budget used under fault
    injection: a probe whose echo was *lost* (the host is up, the
    packet dropped — :data:`repro.netsim.finegrained.ECHO_LOST`) is
    re-sent up to ``retries`` extra times before the address is written
    off.  Hosts that are genuinely silent are not retried — in the
    simulation their state cannot change within one probe burst, so
    retrying them would only inflate ``probes_sent`` without changing
    any outcome.  The default budget of 0 preserves ZMap's
    single-probe behaviour exactly.
    """

    def __init__(
        self,
        runtimes: Dict[str, NetworkRuntime],
        *,
        rate_limit: Optional[TokenBucket] = None,
        blocklist: Iterable = (),
        retries: int = 0,
    ):
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self._runtimes = dict(runtimes)
        self.rate_limit = rate_limit
        self.retries = retries
        self._blocked_addresses: Set[ipaddress.IPv4Address] = set()
        #: Opted-out prefixes, kept as (first, last) integer ranges —
        #: never materialised into individual addresses (a /8 opt-out
        #: is two integers, not 16M set entries).
        self._blocked_ranges: List[Tuple[int, int]] = []
        for entry in blocklist:
            self.add_to_blocklist(entry)
        self.probes_sent = 0
        self.probes_suppressed = 0
        #: Probes whose echo was dropped by the fault plan (including
        #: retried ones) / extra probes spent overcoming loss.
        self.echoes_lost = 0
        self.retries_sent = 0
        self._target_cache: Dict[str, list] = {}

    # -- blocklist (the opt-out mechanism) ---------------------------------

    def add_to_blocklist(self, entry) -> None:
        """Opt an address or a whole prefix out of the measurement."""
        try:
            self._blocked_addresses.add(ipaddress.IPv4Address(entry))
        except ValueError:
            network = ipaddress.IPv4Network(entry)
            first = int(network.network_address)
            self._blocked_ranges.append((first, first + network.num_addresses - 1))

    def is_blocked(self, address) -> bool:
        ip = ipaddress.ip_address(address)
        if ip in self._blocked_addresses:
            return True
        if self._blocked_ranges:
            value = int(ip)
            for first, last in self._blocked_ranges:
                if first <= value <= last:
                    return True
        return False

    @property
    def _has_blocklist(self) -> bool:
        return bool(self._blocked_addresses or self._blocked_ranges)

    # -- probing ------------------------------------------------------------

    def _runtime_for(self, address: ipaddress.IPv4Address) -> Optional[NetworkRuntime]:
        for runtime in self._runtimes.values():
            if address in runtime.network.prefix:
                return runtime
        return None

    def _echo(self, runtime: NetworkRuntime, address, at: int) -> bool:
        """Send one probe (plus the retry budget on loss); True on reply."""
        outcome = runtime.echo_outcome(address, at, 0)
        attempt = 0
        while outcome == ECHO_LOST and attempt < self.retries:
            self.echoes_lost += 1
            attempt += 1
            self.probes_sent += 1
            self.retries_sent += 1
            outcome = runtime.echo_outcome(address, at, attempt)
        if outcome == ECHO_LOST:
            self.echoes_lost += 1
        return outcome == ECHO_REPLY

    def probe(self, address, at: int, *, network: str = "") -> Optional[IcmpObservation]:
        """One echo request; an observation only if the host responded."""
        ip = ipaddress.ip_address(address)
        if self._has_blocklist and self.is_blocked(ip):
            self.probes_suppressed += 1
            return None
        if self.rate_limit is not None and not self.rate_limit.acquire(at):
            self.probes_suppressed += 1
            return None
        self.probes_sent += 1
        runtime = self._runtime_for(ip)
        if runtime is None or not self._echo(runtime, ip, at):
            return None
        return IcmpObservation(ip, at, network or runtime.network.name)

    def sweep(self, targets: Iterable, at: int, *, network: str = "") -> List[IcmpObservation]:
        """Probe every address in the target prefixes; responders only.

        ``targets`` may mix prefixes and single addresses, like a ZMap
        target list.  The per-target runtime segments and address lists
        are cached: a supplemental campaign sweeps the same prefixes
        every hour for weeks.  Blocklist semantics are identical to
        :meth:`probe`/:meth:`is_blocked` — prefix opt-outs suppress
        sweep probes too.
        """
        observations: List[IcmpObservation] = []
        check_block = self._has_blocklist
        rate = self.rate_limit
        for target in targets:
            for runtime, addresses in self._target_plan(target):
                if rate is None and not check_block:
                    # Batched segment: with no per-address gatekeeping,
                    # one bulk probe count plus a vectorised presence
                    # scan replaces 256 per-address loop iterations.
                    # Counters and observation order are identical to
                    # the per-address path below.
                    self.probes_sent += len(addresses)
                    if runtime is None:
                        continue
                    label = network or runtime.network.name
                    if runtime.fault_plan is None:
                        observations.extend(
                            IcmpObservation(address, at, label)
                            for address in runtime.echo_batch(addresses)
                        )
                    else:
                        # Loss draws are keyed per (address, time,
                        # attempt); spend them address by address so
                        # retry accounting matches the per-address path.
                        echo = self._echo
                        observations.extend(
                            IcmpObservation(address, at, label)
                            for address in addresses
                            if echo(runtime, address, at)
                        )
                    continue
                for address in addresses:
                    if check_block and self.is_blocked(address):
                        self.probes_suppressed += 1
                        continue
                    if rate is not None and not rate.acquire(at):
                        self.probes_suppressed += 1
                        continue
                    self.probes_sent += 1
                    if runtime is not None and self._echo(runtime, address, at):
                        observations.append(
                            IcmpObservation(address, at, network or runtime.network.name)
                        )
        return observations

    def _target_plan(self, target) -> List[tuple]:
        """(runtime, addresses) segments for one target.

        The runtime is resolved per address and consecutive addresses
        sharing a runtime are grouped, so a target that spans two
        networks attributes each observation to the network that
        actually answered (one cached runtime per *target* mis-credited
        every address beyond the first network).
        """
        plan = self._target_cache.get(str(target))
        if plan is None:
            plan = []
            current_runtime: Optional[NetworkRuntime] = None
            current: List[ipaddress.IPv4Address] = []
            for address in self._iter_target(target):
                runtime = self._runtime_for(address)
                if current and runtime is not current_runtime:
                    plan.append((current_runtime, current))
                    current = []
                current_runtime = runtime
                current.append(address)
            if current:
                plan.append((current_runtime, current))
            self._target_cache[str(target)] = plan
        return plan

    @staticmethod
    def _iter_target(target):
        try:
            yield ipaddress.IPv4Address(target)
        except ValueError:
            yield from ipaddress.IPv4Network(target)

    def export_metrics(self, registry) -> None:
        """Publish probe totals into a :class:`repro.obs.MetricsRegistry`."""
        registry.counter("icmp_probes_sent_total").inc(self.probes_sent)
        registry.counter("icmp_probes_suppressed_total").inc(self.probes_suppressed)
        registry.counter("icmp_echoes_lost_total").inc(self.echoes_lost)
        registry.counter("icmp_retries_total").inc(self.retries_sent)
        if self.rate_limit is not None:
            self.rate_limit.export_metrics(registry, prefix="icmp_ratelimit")
