"""Sharded collection and measurement over a :class:`~repro.netsim.worldplan.WorldPlan`.

The single-world engines (:class:`~repro.scan.snapshot.SnapshotCollector`,
:class:`~repro.scan.campaign.SupplementalCampaign`) hold the entire
simulated Internet in one process, which caps the address space a study
can cover.  The sharded engines here never build the full world at all:
a plan is partitioned into contiguous shards, **worker processes build
only their shard's networks** (sound because every network is a pure
function of the plan entry and the seed — see
:meth:`~repro.netsim.worldplan.WorldPlan.build`), and the coordinating
process merges shard outputs in shard-id order.  Because shards are
contiguous runs of the plan and per-/24 keys are disjoint across
networks, that merge reproduces the exact iteration order of a
single-process run — the result is **bit-identical** for any shard
count, worker count, fault profile, or cache temperature (pinned by
``tests/scan/test_sharded.py``).

Pool shape: shard × day-chunk work units flatten into **one**
budget-sized pool (no nested pools — see
:class:`~repro.scan.parallel.WorkerBudget`), so a machine with W cores
runs W workers total regardless of how shards and chunks multiply.
Workers memoise the shard worlds they build (a handful at a time), so a
worker that receives several chunks of the same shard pays the build
once.

Caching is **plan-level**: keys derive from
:meth:`WorldPlan.fingerprint` — agreed on *before* any world is built —
and deliberately exclude the shard count, so a warm cache written by a
4-shard run hits for a 1-shard run and vice versa (the payloads are
identical bytes).
"""

from __future__ import annotations

import datetime as dt
import time
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.netsim.faults import resolve_fault_plan
from repro.netsim.network import NetworkType
from repro.netsim.simtime import HOUR
from repro.netsim.worldplan import LazyPlanInternet, PlanError, WorldPlan, contiguous_blocks
from repro.obs.metrics import merge_snapshots
from repro.scan.campaign import (
    COMPATIBLE_DATASET_VERSIONS,
    CampaignMetrics,
    NetworkCampaignResult,
    SupplementalDataset,
    _FAULTS_FROM_ENV,
    run_network_campaign,
)
from repro.scan.campaign_parallel import effective_campaign_workers
from repro.scan.parallel import WorkerBudget, chunk_days, worker_cap
from repro.scan.reactive import TABLE2_SCHEDULE, BackoffSchedule
from repro.scan.snapshot import (
    CollectionMetrics,
    SnapshotCollector,
    SnapshotSeries,
    derive_day,
)
from repro.scan.storage import IcmpColumns, RdnsColumns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.internet import World
    from repro.scan.cache import CampaignCache, SnapshotCache

#: Shard worlds memoised per worker process, keyed by
#: (plan fingerprint, shard network names).  Bounded: a worker only
#: ever holds a few shards' networks, never the whole plan.
_SHARD_WORLDS: Dict[Tuple[str, Tuple[str, ...]], "World"] = {}

_SHARD_WORLD_LIMIT = 4


def _shard_world(plan_payload: Dict[str, Any], names: Sequence[str]) -> "World":
    """Build (or reuse) the world slice holding exactly ``names``."""
    plan = WorldPlan.from_payload(plan_payload)
    key = (plan.fingerprint(), tuple(names))
    world = _SHARD_WORLDS.get(key)
    if world is None:
        while len(_SHARD_WORLDS) >= _SHARD_WORLD_LIMIT:
            _SHARD_WORLDS.pop(next(iter(_SHARD_WORLDS)))
        world = plan.build(names)
        _SHARD_WORLDS[key] = world
    return world


# -- snapshot collection ----------------------------------------------------


def _collect_shard_chunk(task):
    """Derive one shard's day-chunk inside a worker process.

    ``task`` is ``(shard_id, names, ordinals)``; the worker state (set
    by :func:`repro.scan.parallel._map_chunks`) carries the plan
    payload and snapshot offset.  Returns ``(shard_id, handle)`` — the
    day results travel as one packed columnar blob
    (:func:`repro.scan.transport.pack_day_chunk`), not pickled dicts.
    """
    import repro.scan.parallel as parallel
    from repro.scan import transport

    assert parallel._WORKER_STATE is not None, "worker state missing"
    plan_payload, at_offset = parallel._WORKER_STATE
    shard_id, names, ordinals = task
    world = _shard_world(plan_payload, names)
    results = []
    for ordinal in ordinals:
        day = dt.date.fromordinal(ordinal)
        counts, ptrs = derive_day(world.internet, None, day, at_offset)
        results.append((ordinal, counts, ptrs))
    return shard_id, transport.publish(transport.pack_day_chunk(results))


class ShardedCollector:
    """Snapshot collection over a plan, fanned out shard by shard.

    Drop-in sibling of :class:`~repro.scan.snapshot.SnapshotCollector`:
    same cadence semantics, same half-open windows, same payloads — a
    ``shards=k`` collection is byte-identical to ``shards=1`` and to a
    plain collector run over the fully built plan world.
    """

    DEFAULT_SNAPSHOT_OFFSET = SnapshotCollector.DEFAULT_SNAPSHOT_OFFSET

    def __init__(
        self,
        plan: WorldPlan,
        name: str = "OpenINTEL",
        *,
        shards: int = 1,
        cadence_days: int = 1,
        at_offset: Optional[int] = DEFAULT_SNAPSHOT_OFFSET,
        fault_token: Optional[str] = None,
        obs=None,
    ):
        if shards < 1:
            raise PlanError(f"shard count must be >= 1, got {shards}")
        if cadence_days < 1:
            raise ValueError("cadence_days must be at least 1")
        self.plan = plan.validate()
        self.name = name
        self.shards = shards
        self.cadence_days = cadence_days
        self.at_offset = at_offset
        #: Key salt only — snapshot *content* never depends on faults
        #: (they model resolver-path failures, not zone state), but the
        #: evaluation matrix passes its cell's fault token so no two
        #: cells can share a cache entry.
        self.fault_token = fault_token
        self.obs = obs
        #: Counters from the most recent :meth:`collect` call.
        self.last_metrics: Optional[CollectionMetrics] = None

    def snapshot_days(self, start: dt.date, end: dt.date) -> List[dt.date]:
        if end <= start:
            raise ValueError("end must be after start")
        return [
            start + dt.timedelta(days=offset)
            for offset in range(0, (end - start).days, self.cadence_days)
        ]

    def _cache_key(self, cache: "SnapshotCache", start: dt.date, end: dt.date) -> str:
        """Plan-level key: no world build, no shard count.

        Fingerprint-keyed so every process holding the plan JSON agrees
        on it up front, and shard-count-free so runs at different shard
        widths share one entry (their payloads are identical bytes).
        """
        return cache.key_for(
            world_token=f"plan:{self.plan.fingerprint()}",
            name=self.name,
            networks=None,
            start=start,
            end=end,
            cadence_days=self.cadence_days,
            at_offset=self.at_offset,
            policy_token=self.plan.policy_token(),
            fault_token=self.fault_token,
        )

    def collect(
        self,
        start: dt.date,
        end: dt.date,
        *,
        workers: Optional[int] = None,
        cache: Optional["SnapshotCache"] = None,
    ) -> SnapshotSeries:
        """Collect ``[start, end)`` across shards and merge in shard order."""
        from repro.obs import resolve_obs
        from repro.scan.parallel import _map_chunks

        obs = resolve_obs(self.obs)
        started = time.perf_counter()
        days = self.snapshot_days(start, end)
        budget = WorkerBudget(workers if workers is not None else worker_cap())
        metrics = CollectionMetrics(workers=budget.total, days=len(days))
        self.last_metrics = metrics

        key: Optional[str] = None
        if cache is not None:
            key = self._cache_key(cache, start, end)
            metrics.cache_key = key
            payload = cache.load(key)
            if payload is not None:
                decode_started = time.perf_counter()
                series = SnapshotSeries.from_payload(payload, LazyPlanInternet(self.plan))
                metrics.cache_hit = True
                metrics.responses = series.stats().total_responses
                metrics.simulate_seconds = time.perf_counter() - decode_started
                metrics.total_seconds = time.perf_counter() - started
                return series

        blocks = self.plan.shard_names(self.shards)
        simulate_started = time.perf_counter()
        plan_payload = self.plan.to_payload()
        # Flatten shard × day-chunk into one task list for a single
        # budget-sized pool: ~2 chunks per worker overall, split evenly
        # across shards.
        per_shard_workers = max(1, budget.total // len(blocks))
        chunks = chunk_days(days, per_shard_workers)
        tasks = [
            (shard_id, tuple(names), tuple(day.toordinal() for day in chunk))
            for shard_id, names in enumerate(blocks)
            for chunk in chunks
        ]
        pool_workers = min(budget.total, len(tasks))
        metrics.effective_workers = pool_workers if pool_workers >= 2 else 1
        obs.record_execution(
            "sharded_snapshot",
            shards=len(blocks),
            tasks=len(tasks),
            pool_workers=metrics.effective_workers,
        )

        derived: Dict[Tuple[int, int], Tuple[Dict[str, int], Set[str]]] = {}
        if metrics.effective_workers > 1:
            from repro.scan import transport

            state = (plan_payload, self.at_offset)
            shard_results = _map_chunks(
                state,
                tasks,
                pool_workers,
                _collect_shard_chunk,
                obs=self.obs,
                section="shard_pool",
            )
            stats = transport.TransportStats()
            for shard_id, handle in shard_results:
                stats.count(handle)
                chunk_result = transport.consume(handle, transport.unpack_day_chunk)
                for ordinal, counts, ptrs in chunk_result:
                    derived[(shard_id, ordinal)] = (counts, ptrs)
            obs.record_execution(
                "shard_pool",
                accumulate=True,
                transport_bytes=stats.transport_bytes,
                spill_bytes=stats.spill_bytes,
            )
            metrics.transport_bytes += stats.transport_bytes
            metrics.spill_bytes += stats.spill_bytes
        else:
            # Serial path: one shard world in memory at a time.
            for shard_id, names in enumerate(blocks):
                world = self.plan.build(names)
                for day in days:
                    derived[(shard_id, day.toordinal())] = derive_day(
                        world.internet, None, day, self.at_offset
                    )

        series = SnapshotSeries(
            self.name,
            LazyPlanInternet(self.plan),
            None,
            at_offset=self.at_offset,
            cadence_days=self.cadence_days,
        )
        for day in days:
            merged: Dict[str, int] = {}
            ptrs: Set[str] = set()
            for shard_id in range(len(blocks)):
                shard_counts, shard_ptrs = derived[(shard_id, day.toordinal())]
                # Per-/24 keys are disjoint across networks (prefixes
                # never overlap), so updating in shard order reproduces
                # the exact insertion order of a full-world derivation.
                merged.update(shard_counts)
                ptrs.update(shard_ptrs)
            series._ingest_day(day, merged, ptrs)
        metrics.simulate_seconds = time.perf_counter() - simulate_started
        metrics.responses = series.stats().total_responses if days else 0

        if cache is not None and key is not None:
            try:
                cache.store_series(key, series)
                metrics.cache_stored = True
            except (OSError, TypeError, ValueError):
                metrics.cache_store_failed = True
        metrics.total_seconds = time.perf_counter() - started
        return series


# -- supplemental campaign --------------------------------------------------


def _campaign_shard_task(task):
    """Run one shard's batch of network campaigns inside a worker.

    ``task`` is ``(shard_id, names, start_ordinal, end_ordinal)``;
    worker state carries the plan payload and campaign parameters.
    Returns ``(shard_id, [per-network result dict, ...], handle)`` —
    the dicts carry the targets/type/size metadata the coordinator
    needs for the merged dataset without ever building the networks
    itself, while the heavy observation columns travel as one packed
    batch blob (:func:`repro.scan.transport.pack_campaign_batch`)
    outside the result pickle.
    """
    from dataclasses import replace

    import repro.scan.parallel as parallel
    from repro.scan import transport

    assert parallel._WORKER_STATE is not None, "worker state missing"
    (
        plan_payload,
        schedule,
        sweep_interval,
        rdns_rate,
        blocklist,
        fault_plan,
    ) = parallel._WORKER_STATE
    shard_id, names, start_ordinal, end_ordinal = task
    world = _shard_world(plan_payload, names)
    start = dt.date.fromordinal(start_ordinal)
    end = dt.date.fromordinal(end_ordinal)
    entries = [
        _network_entry(world, name, start, end,
                       schedule=schedule,
                       sweep_interval=sweep_interval,
                       rdns_rate=rdns_rate,
                       blocklist=blocklist,
                       fault_plan=fault_plan)
        for name in names
    ]
    handle = transport.publish(
        transport.pack_campaign_batch(
            (entry["result"].icmp, entry["result"].rdns) for entry in entries
        )
    )
    for entry in entries:
        entry["result"] = replace(entry["result"], icmp=None, rdns=None)
    return shard_id, entries, handle


def _network_entry(
    world: "World",
    name: str,
    start: dt.date,
    end: dt.date,
    *,
    schedule,
    sweep_interval,
    rdns_rate,
    blocklist,
    fault_plan,
) -> Dict[str, Any]:
    """One network's campaign result plus its merge metadata."""
    result = run_network_campaign(
        world,
        name,
        start,
        end,
        schedule=schedule,
        sweep_interval=sweep_interval,
        rdns_rate=rdns_rate,
        blocklist=blocklist,
        fault_plan=fault_plan,
    )
    subnets = world.supplemental_targets(name)
    return {
        "result": result,
        "targets": [str(subnet.prefix) for subnet in subnets],
        "net_type": world.supplemental[name].net_type.value,
        "size": sum(subnet.prefix.num_addresses for subnet in subnets),
    }


class ShardedCampaign:
    """The supplemental campaign over a plan, one shard batch per task.

    Mirrors :class:`~repro.scan.campaign.SupplementalCampaign` — same
    parameters, same half-open window, same merged dataset — but no
    process ever holds more than one shard's networks.  Networks are
    batched by shard (a work *unit* is a shard batch, not a network:
    see :func:`~repro.scan.campaign_parallel.effective_campaign_workers`)
    and results flatten in shard-id order, which is plan order, which
    is campaign order — so the merged dataset is byte-identical to a
    single-world :class:`SupplementalCampaign` run over the same plan.
    """

    def __init__(
        self,
        plan: WorldPlan,
        *,
        shards: int = 1,
        networks: Optional[Sequence[str]] = None,
        schedule: BackoffSchedule = TABLE2_SCHEDULE,
        sweep_interval: int = HOUR,
        rdns_rate: float = 50.0,
        blocklist=(),
        fault_plan=_FAULTS_FROM_ENV,
        obs=None,
    ):
        if shards < 1:
            raise PlanError(f"shard count must be >= 1, got {shards}")
        self.plan = plan.validate()
        self.shards = shards
        supplemental = plan.supplemental_names
        if networks is None:
            self.network_names = supplemental
        else:
            self.network_names = [name for name in networks if name in supplemental]
        self.schedule = schedule
        self.sweep_interval = sweep_interval
        self.rdns_rate = rdns_rate
        self.blocklist = list(blocklist)
        if fault_plan is _FAULTS_FROM_ENV:
            fault_plan = resolve_fault_plan(None, seed=plan.seed)
        self.fault_plan = fault_plan
        self.obs = obs
        #: Counters from the most recent :meth:`run` call.
        self.last_metrics: Optional[CampaignMetrics] = None

    def cache_key(self, cache: "CampaignCache", start: dt.date, end: dt.date) -> str:
        """Plan-level key (shard-count-free, like the snapshot side)."""
        return cache.key_for(
            world_token=f"plan:{self.plan.fingerprint()}",
            networks=self.network_names,
            start=start,
            end=end,
            schedule_steps=self.schedule.steps,
            schedule_tail=self.schedule.tail_interval,
            sweep_interval=self.sweep_interval,
            rdns_rate=self.rdns_rate,
            blocklist=[str(entry) for entry in self.blocklist],
            fault_token=(
                self.fault_plan.cache_token() if self.fault_plan is not None else None
            ),
            policy_token=self.plan.policy_token(),
        )

    def _shard_batches(self) -> List[List[str]]:
        """Campaign networks partitioned into contiguous shard batches.

        Batching follows the *network list* (already in plan order),
        not the full entry list — a shard whose entries carry no
        supplemental networks contributes no batch.
        """
        return contiguous_blocks(self.network_names, self.shards)

    def run(
        self,
        start: dt.date,
        end: dt.date,
        *,
        workers: Optional[int] = None,
        cache: Optional["CampaignCache"] = None,
    ) -> SupplementalDataset:
        """Measure ``[start, end)`` across shards, merged in shard order."""
        from repro.obs import resolve_obs
        from repro.scan.parallel import _map_chunks

        if end <= start:
            raise ValueError("end must be after start (half-open [start, end) window)")
        if not self.network_names:
            raise PlanError("plan has no supplemental networks to measure")
        obs = resolve_obs(self.obs)
        started = time.perf_counter()
        requested = workers if workers is not None else worker_cap()
        metrics = CampaignMetrics(
            workers=max(1, requested), networks=len(self.network_names)
        )
        if self.fault_plan is not None:
            metrics.fault_profile = self.fault_plan.name
        self.last_metrics = metrics

        key: Optional[str] = None
        if cache is not None:
            key = self.cache_key(cache, start, end)
            metrics.cache_key = key
            payload = cache.load(key)
            if payload is not None and payload.get("version") in COMPATIBLE_DATASET_VERSIONS:
                decode_started = time.perf_counter()
                dataset = SupplementalDataset.from_payload(payload)
                obs.metrics.merge_snapshot(payload.get("metrics") or {})
                metrics.cache_hit = True
                metrics.icmp_observations = len(dataset.icmp)
                metrics.rdns_observations = len(dataset.rdns)
                metrics.simulate_seconds = time.perf_counter() - decode_started
                metrics.total_seconds = time.perf_counter() - started
                return dataset

        batches = self._shard_batches()
        tasks = [
            (shard_id, tuple(names), start.toordinal(), end.toordinal())
            for shard_id, names in enumerate(batches)
        ]
        effective = effective_campaign_workers(requested, len(tasks))
        metrics.effective_workers = effective
        obs.record_execution(
            "sharded_campaign",
            shards=len(batches),
            tasks=len(tasks),
            pool_workers=effective,
        )

        simulate_started = time.perf_counter()
        plan_payload = self.plan.to_payload()
        per_shard: List[List[Dict[str, Any]]]
        if effective > 1:
            state = (
                plan_payload,
                self.schedule,
                self.sweep_interval,
                self.rdns_rate,
                self.blocklist,
                self.fault_plan,
            )
            shard_results = _map_chunks(
                state,
                tasks,
                effective,
                _campaign_shard_task,
                obs=self.obs,
                section="shard_campaign_pool",
            )
            from dataclasses import replace

            from repro.scan import transport

            stats = transport.TransportStats()
            ordered: Dict[int, List[Dict[str, Any]]] = {}
            for shard_id, entries, handle in shard_results:
                stats.count(handle)
                columns = transport.consume(
                    handle, transport.unpack_campaign_batch
                )
                for entry, (icmp, rdns) in zip(entries, columns):
                    entry["result"] = replace(
                        entry["result"], icmp=icmp, rdns=rdns
                    )
                ordered[shard_id] = entries
            obs.record_execution(
                "shard_campaign_pool",
                accumulate=True,
                transport_bytes=stats.transport_bytes,
                spill_bytes=stats.spill_bytes,
            )
            metrics.transport_bytes += stats.transport_bytes
            metrics.spill_bytes += stats.spill_bytes
            per_shard = [ordered[shard_id] for shard_id in range(len(batches))]
        else:
            per_shard = []
            for shard_id, names in enumerate(batches):
                world = _shard_world(plan_payload, names)
                per_shard.append(
                    [
                        _network_entry(
                            world, name, start, end,
                            schedule=self.schedule,
                            sweep_interval=self.sweep_interval,
                            rdns_rate=self.rdns_rate,
                            blocklist=self.blocklist,
                            fault_plan=self.fault_plan,
                        )
                        for name in names
                    ]
                )

        entries = [entry for shard in per_shard for entry in shard]
        results: List[NetworkCampaignResult] = [entry["result"] for entry in entries]
        dataset = SupplementalDataset(
            start=start,
            end=end,
            icmp=IcmpColumns.merged([result.icmp for result in results]),
            rdns=RdnsColumns.merged([result.rdns for result in results]),
            targets_by_network={
                result.network: list(entry["targets"])
                for result, entry in zip(results, entries)
            },
            network_types={
                result.network: NetworkType(entry["net_type"])
                for result, entry in zip(results, entries)
            },
            target_sizes={
                result.network: int(entry["size"])
                for result, entry in zip(results, entries)
            },
        )
        merged_metrics = merge_snapshots(result.metrics for result in results)
        obs.metrics.merge_snapshot(merged_metrics)
        metrics.simulate_seconds = time.perf_counter() - simulate_started
        metrics.icmp_observations = len(dataset.icmp)
        metrics.rdns_observations = len(dataset.rdns)
        metrics.sweeps_run = sum(result.sweeps_run for result in results)
        metrics.events_run = sum(result.events_run for result in results)
        metrics.per_network_seconds = {
            result.network: result.seconds for result in results
        }
        for result in results:
            for counter, value in result.counters.items():
                metrics.fault_counters[counter] = (
                    metrics.fault_counters.get(counter, 0) + value
                )

        if cache is not None and key is not None:
            payload = dataset.to_payload()
            payload["metrics"] = merged_metrics
            cache.store(key, payload)
            metrics.cache_stored = True
        metrics.total_seconds = time.perf_counter() - started
        return dataset
