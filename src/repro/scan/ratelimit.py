"""Token-bucket rate limiting on simulation time.

Both measurement instruments rate-limit: ZMap "allows us to easily
implement rate limiting", and the rDNS engine "rate-limit[s] requests
to authoritative name servers to reduce the impact of our measurement"
(Section 6.1).
"""

from __future__ import annotations


class TokenBucket:
    """A classic token bucket driven by explicit timestamps.

    ``rate`` tokens accrue per second up to ``burst``.  ``acquire(now)``
    consumes a token if available; ``delay_until_available(now)`` tells
    a scheduler when to retry.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._updated_at = 0.0
        #: Out-of-order timestamps seen (clock skew / event-merge
        #: reordering).  Each is clamped to the last refill time rather
        #: than crashing the scan, but counted so callers can audit.
        self.clock_skew_events = 0
        #: Acquire outcomes, for the observability layer.
        self.acquired = 0
        self.denied = 0

    def _refill(self, now: float) -> None:
        if now < self._updated_at:
            # Merged observation streams can replay a slightly older
            # timestamp; treat it as "no time has passed" and move on.
            self.clock_skew_events += 1
            return
        elapsed = now - self._updated_at
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated_at = now

    def acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` at time ``now`` if the bucket allows it."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            self.acquired += 1
            return True
        self.denied += 1
        return False

    def delay_until_available(self, now: float, tokens: float = 1.0) -> float:
        """Seconds from ``now`` until ``tokens`` will be available."""
        self._refill(now)
        if self._tokens >= tokens:
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        return self._tokens

    def export_metrics(self, registry, *, prefix: str = "ratelimit") -> None:
        """Publish acquire/deny/skew totals into a metrics registry."""
        registry.counter(f"{prefix}_acquired_total").inc(self.acquired)
        registry.counter(f"{prefix}_denied_total").inc(self.denied)
        registry.counter(f"{prefix}_clock_skew_total").inc(self.clock_skew_events)
