"""The reverse-DNS lookup engine.

"For the rDNS measurement we use custom-built software wrapping
dnspython. We rate-limit requests to authoritative name servers ...
We query the authoritative name server for the IP address in question
directly, to make sure we get a fresh answer (i.e., not from a cache)."
(Section 6.1)
"""

from __future__ import annotations

import ipaddress
from collections import Counter
from typing import List, Optional

from repro.dns.resolver import ResolutionStatus, StubResolver
from repro.scan.observations import RdnsObservation
from repro.scan.ratelimit import TokenBucket


class RdnsLookupEngine:
    """Issues PTR lookups through a stub resolver, with rate limiting."""

    def __init__(self, resolver: StubResolver, *, rate_limit: Optional[TokenBucket] = None):
        self.resolver = resolver
        self.rate_limit = rate_limit
        self.lookups_performed = 0
        self.lookups_suppressed = 0
        #: Wire-level attempts (including retries) and attempts that
        #: timed out, summed across all lookups.
        self.attempts_made = 0
        self.timeouts_seen = 0
        self.status_counts: Counter = Counter()

    def lookup(self, address, at: int, *, network: str = "") -> Optional[RdnsObservation]:
        """One PTR lookup; ``None`` only when rate-limited away."""
        if isinstance(address, ipaddress.IPv4Address):
            ip = address
        else:
            ip = ipaddress.ip_address(address)
        if self.rate_limit is not None and not self.rate_limit.acquire(at):
            self.lookups_suppressed += 1
            return None
        self.lookups_performed += 1
        before = self.resolver.timeouts_seen
        result = self.resolver.resolve_ptr(ip, at=at, network=network)
        self.attempts_made += result.attempts
        self.timeouts_seen += self.resolver.timeouts_seen - before
        self.status_counts[result.status] += 1
        return RdnsObservation(
            address=ip,
            at=at,
            status=result.status,
            hostname=result.hostname or "",
            network=network,
        )

    def lookup_batch(
        self, addresses, at: int, *, network: str = ""
    ) -> List[Optional[RdnsObservation]]:
        """PTR lookups for a sweep's worth of addresses, in input order.

        Semantically identical to calling :meth:`lookup` per address —
        the rate limiter is consulted once per lookup (the whole batch
        shares its token state at ``at``), counters advance the same
        way, and fault/failure draws stay per-address inside the
        resolver — so batch and per-address callers produce the same
        observations bit for bit.  Suppressed lookups appear as ``None``
        placeholders to keep the result aligned with the input.
        """
        rate = self.rate_limit
        resolver = self.resolver
        status_counts = self.status_counts
        observations: List[Optional[RdnsObservation]] = []
        append = observations.append
        for address in addresses:
            if isinstance(address, ipaddress.IPv4Address):
                ip = address
            else:
                ip = ipaddress.ip_address(address)
            if rate is not None and not rate.acquire(at):
                self.lookups_suppressed += 1
                append(None)
                continue
            self.lookups_performed += 1
            before = resolver.timeouts_seen
            result = resolver.resolve_ptr(ip, at=at, network=network)
            self.attempts_made += result.attempts
            self.timeouts_seen += resolver.timeouts_seen - before
            status_counts[result.status] += 1
            append(
                RdnsObservation(
                    address=ip,
                    at=at,
                    status=result.status,
                    hostname=result.hostname or "",
                    network=network,
                )
            )
        return observations

    def export_metrics(self, registry) -> None:
        """Publish lookup/rcode totals (and the bucket's counters)."""
        registry.counter("rdns_lookups_total").inc(self.lookups_performed)
        registry.counter("rdns_lookups_suppressed_total").inc(self.lookups_suppressed)
        registry.counter("rdns_attempts_total").inc(self.attempts_made)
        registry.counter("rdns_timeouts_total").inc(self.timeouts_seen)
        rcodes = registry.counter("rdns_rcode_total")
        for status in sorted(self.status_counts, key=lambda s: s.value):
            rcodes.labels(rcode=status.value).inc(self.status_counts[status])
            rcodes.inc(self.status_counts[status])
        if self.rate_limit is not None:
            self.rate_limit.export_metrics(registry, prefix="rdns_ratelimit")
        self.resolver.export_metrics(registry)

    @property
    def error_rate(self) -> float:
        """Share of lookups that did not return a PTR record."""
        if not self.lookups_performed:
            return 0.0
        errors = sum(
            count
            for status, count in self.status_counts.items()
            if status is not ResolutionStatus.NOERROR
        )
        return errors / self.lookups_performed
