"""Saving and loading supplemental datasets.

A campaign over weeks of simulated time is worth keeping: this module
persists a :class:`~repro.scan.campaign.SupplementalDataset` as a
directory of CSVs (the format the paper's tooling writes) plus a JSON
metadata file, and loads it back for offline analysis.
"""

from __future__ import annotations

import datetime as dt
import json
from pathlib import Path
from typing import Union

from repro.netsim.network import NetworkType
from repro.scan.campaign import SupplementalDataset
from repro.scan.observations import (
    read_icmp_csv,
    read_rdns_csv,
    write_icmp_csv,
    write_rdns_csv,
)

PathLike = Union[str, Path]

_META_FILE = "dataset.json"
_ICMP_FILE = "icmp.csv"
_RDNS_FILE = "rdns.csv"
FORMAT_VERSION = 1


def save_dataset(dataset: SupplementalDataset, directory: PathLike) -> Path:
    """Write the dataset into ``directory`` (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    write_icmp_csv(path / _ICMP_FILE, dataset.icmp)
    write_rdns_csv(path / _RDNS_FILE, dataset.rdns)
    meta = {
        "format_version": FORMAT_VERSION,
        "start": dataset.start.isoformat(),
        "end": dataset.end.isoformat(),
        "targets_by_network": dataset.targets_by_network,
        "network_types": {
            name: net_type.value for name, net_type in dataset.network_types.items()
        },
        "target_sizes": dataset.target_sizes,
    }
    (path / _META_FILE).write_text(json.dumps(meta, indent=2, sort_keys=True))
    return path


def load_dataset(directory: PathLike) -> SupplementalDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(directory)
    meta_path = path / _META_FILE
    if not meta_path.exists():
        raise FileNotFoundError(f"{meta_path} not found; not a saved dataset")
    meta = json.loads(meta_path.read_text())
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version {version!r}")
    return SupplementalDataset(
        start=dt.date.fromisoformat(meta["start"]),
        end=dt.date.fromisoformat(meta["end"]),
        icmp=read_icmp_csv(path / _ICMP_FILE),
        rdns=read_rdns_csv(path / _RDNS_FILE),
        targets_by_network={
            name: list(prefixes) for name, prefixes in meta["targets_by_network"].items()
        },
        network_types={
            name: NetworkType(value) for name, value in meta["network_types"].items()
        },
        target_sizes={name: int(size) for name, size in meta.get("target_sizes", {}).items()},
    )
