"""Binary, mmap-able columnar container for snapshot count matrices.

The cache's v3 payload round-trips every count through base64-varint
text inside JSON: compact, but decoding is parse-bound — every warm
cache hit re-runs a varint loop over the whole matrix.  The blockfile
is the v4 answer: counts live on disk exactly as the little-endian
``u32`` words the :class:`~repro.scan.storage.CountMatrix` holds in
memory, padded to 64-byte boundaries, so a warm read is ``mmap`` plus
``numpy.frombuffer`` — memory bandwidth, not parse speed — and the
matrix never has to be resident at all for mmap-backed consumers.

On-disk layout (all integers little-endian)::

    FILE HEADER (64 bytes)
      0   magic           4s   b"RBF1"
      4   format_version  u16  currently 1
      6   flags           u16  reserved, 0
      8   alignment       u16  64
      10  reserved        u16  0
      12  reserved        u32  0
      16  record_count    u64  advisory; readers scan to EOF
      24  reserved        32x  zero
      56  header_crc32    u32  crc32 of bytes [0, 56)
      60  reserved        u32  0

    RECORD (header 64 bytes, 64-byte aligned, body immediately after)
      0   magic           4s   b"RBRC"
      4   record_type     u16  1 = PREFIXES, 2 = DAY, 3 = PTRS
      6   reserved        u16  0
      8   body_length     u64  exact body bytes (pre-padding)
      16  body_crc32      u32  crc32 of the body bytes
      20  reserved        u32  0
      24  aux1            u64  PREFIXES/PTRS: string count · DAY: day ordinal
      32  aux2            u64  PREFIXES/PTRS: 0            · DAY: element count
      40  aux3            u64  PREFIXES/PTRS: 0            · DAY: column total
      48  reserved        8x   zero
      56  header_crc32    u32  crc32 of record header bytes [0, 56)
      60  reserved        u32  0
      <body, zero-padded to the next 64-byte boundary>

A ``PREFIXES`` record appends newline-joined UTF-8 prefix strings to
the interned prefix table (first-seen order, the determinism anchor
shared with :class:`~repro.scan.storage.PrefixTable`).  A ``DAY``
record's body is the raw ``<u4`` count column for one day; its length
may trail the prefix table (ragged columns, exactly as in memory).
A ``PTRS`` record carries the series' unique PTR names (sorted,
newline-joined UTF-8).  PTR bodies are *lazy*: :meth:`_scan` only
notes their spans, and the strings are decoded on the first
:meth:`BlockFileReader.unique_ptrs` call — warm count reads never pay
for name parsing, while :attr:`BlockFileReader.unique_ptr_count`
(from ``aux1``) stays O(1).

Appending a day is "write new records at EOF": record headers carry
their own CRC, so a reader that mapped the shorter file is untouched
and a torn append is detected (and truncated away by
:meth:`BlockFileReader.open` in repair mode or reported by
``repro cache verify``).

Zero-copy views come from ``numpy.frombuffer`` over the mapping; when
NumPy is unavailable the stdlib fallback casts a ``memoryview`` to
``"I"`` — bit-identical values (both read the same little-endian words;
the cast path is guarded for the rare big-endian host by an explicit
byte-order check that falls back to copying through ``array``).
"""
from __future__ import annotations

import io
import mmap
import os
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import BinaryIO, List, Optional, Sequence, Tuple, Union

try:  # pragma: no cover - exercised via whichever branch the host has
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

MAGIC = b"RBF1"
RECORD_MAGIC = b"RBRC"
BLOCKFILE_VERSION = 1
ALIGNMENT = 64
HEADER_SIZE = 64
RECORD_HEADER_SIZE = 64

RECORD_PREFIXES = 1
RECORD_DAY = 2
RECORD_PTRS = 3

_HEADER = struct.Struct("<4sHHHHIQ32xI4x")
_RECORD = struct.Struct("<4sHHQIIQQQ8xI4x")

#: File suffix used by the snapshot cache for v4 sidecar blockfiles.
SUFFIX = ".rbf"


class BlockFileError(ValueError):
    """A structurally invalid, truncated, or corrupt blockfile."""


def _pad(length: int) -> int:
    """Bytes of zero padding after ``length`` to reach the next boundary."""
    return (-length) % ALIGNMENT


def _pack_header(record_count: int) -> bytes:
    head = _HEADER.pack(
        MAGIC, BLOCKFILE_VERSION, 0, ALIGNMENT, 0, 0, record_count, 0
    )
    crc = zlib.crc32(head[:56])
    return head[:56] + struct.pack("<I4x", crc)


def _pack_record_header(
    record_type: int, body: bytes, aux1: int, aux2: int, aux3: int
) -> bytes:
    head = _RECORD.pack(
        RECORD_MAGIC,
        record_type,
        0,
        len(body),
        zlib.crc32(body),
        0,
        aux1,
        aux2,
        aux3,
        0,
    )
    crc = zlib.crc32(head[:56])
    return head[:56] + struct.pack("<I4x", crc)


def _column_bytes(column: Sequence[int]) -> bytes:
    """A count column as raw little-endian ``u4`` words."""
    if _np is not None and isinstance(column, _np.ndarray):
        return column.astype("<u4", copy=False).tobytes()
    if isinstance(column, memoryview):
        return column.tobytes() if sys.byteorder == "little" else _swap(column)
    arr = column if isinstance(column, array) else array("I", (int(v) for v in column))
    data = arr.tobytes()
    if arr.itemsize == 4:
        return data if sys.byteorder == "little" else data[::-1]  # pragma: no cover
    # 8-byte "I" platforms do not exist on CPython, but stay correct:
    return struct.pack(f"<{len(arr)}I", *arr)  # pragma: no cover


def _swap(view: memoryview) -> bytes:  # pragma: no cover - big-endian only
    arr = array("I", view.tobytes())
    arr.byteswap()
    return arr.tobytes()


def encode_records(
    prefixes: Sequence[str],
    days: Sequence[int],
    columns: Sequence[Sequence[int]],
    totals: Sequence[int],
    ptrs: Optional[Sequence[str]] = None,
) -> bytes:
    """The full blockfile byte string for a matrix (header + records)."""
    if len(days) != len(columns) or len(days) != len(totals):
        raise ValueError("days, columns and totals must be parallel sequences")
    out = io.BytesIO()
    record_count = (1 if prefixes else 0) + (1 if ptrs else 0) + len(days)
    out.write(_pack_header(record_count))
    if prefixes:
        body = "\n".join(prefixes).encode("utf-8")
        out.write(_pack_record_header(RECORD_PREFIXES, body, len(prefixes), 0, 0))
        out.write(body)
        out.write(b"\0" * _pad(len(body)))
    if ptrs:
        body = "\n".join(ptrs).encode("utf-8")
        out.write(_pack_record_header(RECORD_PTRS, body, len(ptrs), 0, 0))
        out.write(body)
        out.write(b"\0" * _pad(len(body)))
    for ordinal, column, total in zip(days, columns, totals):
        body = _column_bytes(column)
        out.write(
            _pack_record_header(
                RECORD_DAY, body, int(ordinal), len(column), int(total)
            )
        )
        out.write(body)
        out.write(b"\0" * _pad(len(body)))
    return out.getvalue()


def write_blockfile(
    path: Union[str, Path],
    prefixes: Sequence[str],
    days: Sequence[int],
    columns: Sequence[Sequence[int]],
    totals: Sequence[int],
    ptrs: Optional[Sequence[str]] = None,
) -> int:
    """Atomically write a blockfile; returns the byte size written.

    The write goes to ``<path>.tmp`` and is published with
    ``os.replace`` — racing writers each publish a complete file and
    the last rename wins, exactly like the JSON cache entries.
    """
    target = Path(path)
    blob = encode_records(prefixes, days, columns, totals, ptrs)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, target)
    return len(blob)


def append_day_records(
    path: Union[str, Path],
    new_prefixes: Sequence[str],
    ordinal: int,
    column: Sequence[int],
    total: int,
) -> int:
    """Append one day (and any newly interned prefixes) at EOF.

    Returns the bytes appended.  Existing records are never rewritten,
    so readers holding a mapping of the shorter file are unaffected.
    """
    out = io.BytesIO()
    if new_prefixes:
        body = "\n".join(new_prefixes).encode("utf-8")
        out.write(_pack_record_header(RECORD_PREFIXES, body, len(new_prefixes), 0, 0))
        out.write(body)
        out.write(b"\0" * _pad(len(body)))
    body = _column_bytes(column)
    out.write(
        _pack_record_header(RECORD_DAY, body, int(ordinal), len(column), int(total))
    )
    out.write(body)
    out.write(b"\0" * _pad(len(body)))
    blob = out.getvalue()
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        if handle.tell() % ALIGNMENT:
            raise BlockFileError(
                f"{path}: size {handle.tell()} is not {ALIGNMENT}-byte aligned; "
                "refusing to append to a torn file"
            )
        handle.write(blob)
        handle.flush()
    return len(blob)


def _u32_view(buffer, offset: int, count: int):
    """A zero-copy (or bit-identical fallback) ``u32`` view into a buffer."""
    if _np is not None:
        return _np.frombuffer(buffer, dtype="<u4", count=count, offset=offset)
    view = memoryview(buffer)[offset : offset + 4 * count]
    if sys.byteorder == "little":
        return view.cast("I")
    arr = array("I", view.tobytes())  # pragma: no cover - big-endian only
    arr.byteswap()
    return arr


class BlockFileReader:
    """A validated, read-only view over one blockfile.

    ``prefixes``, ``days``, ``totals`` are plain Python lists; each
    entry of ``columns`` is a zero-copy ``u32`` view into the mapping
    (NumPy array or ``memoryview`` cast).  The reader object keeps the
    mapping alive; views taken from it remain valid for its lifetime
    (and, because both ``numpy.frombuffer`` and ``memoryview`` hold a
    reference to their buffer, beyond it).
    """

    def __init__(
        self,
        path: Path,
        buffer,
        mapping: Optional[mmap.mmap],
        handle: Optional[BinaryIO],
    ):
        self.path = path
        self._buffer = buffer
        self._mmap = mapping
        self._handle = handle
        self.prefixes: List[str] = []
        self.days: List[int] = []
        self.totals: List[int] = []
        self.columns: List[Sequence[int]] = []
        #: PTR-record spans, decoded lazily: (body_offset, body_len, count)
        self._ptr_spans: List[Tuple[int, int, int]] = []
        #: (record_type, header_offset, body_offset, body_length, body_crc)
        self._records: List[Tuple[int, int, int, int, int]] = []
        self._scan()

    # -- construction --------------------------------------------------

    @classmethod
    def open(cls, path: Union[str, Path], *, use_mmap: bool = True) -> "BlockFileReader":
        """Map (or read) ``path`` and validate header + record headers.

        Body CRCs are *not* checked here — that is the cheap warm path.
        Call :meth:`verify` for a full integrity sweep.
        """
        target = Path(path)
        handle: Optional[BinaryIO] = None
        mapping: Optional[mmap.mmap] = None
        try:
            handle = open(target, "rb")
        except OSError as exc:
            raise BlockFileError(f"{target}: cannot open blockfile: {exc}") from exc
        try:
            if use_mmap:
                try:
                    mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                    buffer = mapping
                except (ValueError, OSError):
                    # Empty file or mmap-hostile filesystem: fall back.
                    buffer = handle.read()
            else:
                buffer = handle.read()
            return cls(target, buffer, mapping, handle if mapping is not None else None)
        except Exception:
            if mapping is not None:
                # A failed _scan may have exported views over the
                # mapping already; they pin it, so closing can raise.
                # The mapping is freed once the views are collected.
                try:
                    mapping.close()
                except BufferError:
                    pass
            handle.close()
            raise
        finally:
            if mapping is None and handle is not None:
                handle.close()

    # -- validation ----------------------------------------------------

    def _scan(self) -> None:
        buf = self._buffer
        size = len(buf)
        if size < HEADER_SIZE:
            raise BlockFileError(f"{self.path}: truncated header ({size} bytes)")
        (magic, version, _flags, alignment, _r0, _r1, _count, header_crc) = (
            _HEADER.unpack_from(buf, 0)
        )
        if magic != MAGIC:
            raise BlockFileError(f"{self.path}: bad magic {magic!r}")
        if version != BLOCKFILE_VERSION:
            raise BlockFileError(
                f"{self.path}: unsupported blockfile version {version}"
            )
        if alignment != ALIGNMENT:
            raise BlockFileError(f"{self.path}: unsupported alignment {alignment}")
        if zlib.crc32(bytes(buf[:56])) != header_crc:
            raise BlockFileError(f"{self.path}: file header checksum mismatch")
        offset = HEADER_SIZE
        while offset < size:
            if offset + RECORD_HEADER_SIZE > size:
                raise BlockFileError(
                    f"{self.path}: truncated record header at offset {offset}"
                )
            (
                rmagic,
                rtype,
                _pad0,
                body_len,
                body_crc,
                _pad1,
                aux1,
                aux2,
                aux3,
                header_crc,
            ) = _RECORD.unpack_from(buf, offset)
            if rmagic != RECORD_MAGIC:
                raise BlockFileError(
                    f"{self.path}: bad record magic at offset {offset}"
                )
            if zlib.crc32(bytes(buf[offset : offset + 56])) != header_crc:
                raise BlockFileError(
                    f"{self.path}: record header checksum mismatch at offset {offset}"
                )
            body_offset = offset + RECORD_HEADER_SIZE
            if body_offset + body_len > size:
                raise BlockFileError(
                    f"{self.path}: record body truncated at offset {offset}"
                )
            if rtype == RECORD_PREFIXES:
                body = bytes(buf[body_offset : body_offset + body_len])
                if zlib.crc32(body) != body_crc:
                    raise BlockFileError(
                        f"{self.path}: prefix table checksum mismatch at "
                        f"offset {offset}"
                    )
                strings = body.decode("utf-8").split("\n") if body else []
                if len(strings) != aux1:
                    raise BlockFileError(
                        f"{self.path}: prefix record declares {aux1} strings "
                        f"but carries {len(strings)}"
                    )
                self.prefixes.extend(strings)
            elif rtype == RECORD_DAY:
                if body_len != 4 * aux2:
                    raise BlockFileError(
                        f"{self.path}: day record at offset {offset} declares "
                        f"{aux2} elements but {body_len} body bytes"
                    )
                self.days.append(int(aux1))
                self.totals.append(int(aux3))
                self.columns.append(_u32_view(buf, body_offset, int(aux2)))
            elif rtype == RECORD_PTRS:
                # Lazy: note the span only — names are decoded on the
                # first unique_ptrs() call, never on the warm count path.
                self._ptr_spans.append((body_offset, int(body_len), int(aux1)))
            else:
                raise BlockFileError(
                    f"{self.path}: unknown record type {rtype} at offset {offset}"
                )
            self._records.append((rtype, offset, body_offset, body_len, body_crc))
            offset = body_offset + body_len + _pad(body_len)
        if len(self.prefixes) != len(set(self.prefixes)):
            raise BlockFileError(f"{self.path}: duplicate interned prefixes")
        width = len(self.prefixes)
        for column in self.columns:
            if len(column) > width:
                raise BlockFileError(
                    f"{self.path}: day column wider ({len(column)}) than the "
                    f"prefix table ({width})"
                )

    def verify(self) -> int:
        """Check every body CRC; returns the record count on success."""
        buf = self._buffer
        for rtype, offset, body_offset, body_len, body_crc in self._records:
            body = bytes(buf[body_offset : body_offset + body_len])
            if zlib.crc32(body) != body_crc:
                kind = {
                    RECORD_PREFIXES: "prefix table",
                    RECORD_PTRS: "ptr table",
                }.get(rtype, "day column")
                raise BlockFileError(
                    f"{self.path}: {kind} body checksum mismatch at offset {offset}"
                )
        return len(self._records)

    # -- accessors -----------------------------------------------------

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def unique_ptr_count(self) -> int:
        """Total PTR names across PTRS records — O(1), no body decode."""
        return sum(count for _, _, count in self._ptr_spans)

    def unique_ptrs(self) -> set:
        """Decode every PTRS record body into one set of names."""
        names: set = set()
        for body_offset, body_len, count in self._ptr_spans:
            body = bytes(self._buffer[body_offset : body_offset + body_len])
            strings = body.decode("utf-8").split("\n") if body else []
            if len(strings) != count:
                raise BlockFileError(
                    f"{self.path}: ptr record declares {count} strings "
                    f"but carries {len(strings)}"
                )
            names.update(strings)
        return names

    def count_matrix(self):
        """The file's contents as a view-backed ``CountMatrix``.

        The matrix holds a reference to this reader, keeping the
        mapping alive for as long as any view column is reachable.
        """
        from .storage import CountMatrix

        return CountMatrix.from_columns(
            self.prefixes, self.columns, self.totals, source=self
        )

    def close(self) -> None:
        """Release the mapping (views taken earlier keep it alive)."""
        if self._mmap is not None:
            # Views exported from the mmap pin it; closing would raise
            # BufferError while any are alive, so only close when free.
            try:
                self._mmap.close()
            except BufferError:
                pass
            self._mmap = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "BlockFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
