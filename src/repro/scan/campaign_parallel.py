"""Process-pool fan-out for the supplemental campaign.

The campaign is embarrassingly parallel across networks: each of the
nine supplemental networks owns its runtime, sweeper, authoritative
server and RNG streams (all keyed by ``RngStreams.fresh`` labels), so
:func:`~repro.scan.campaign.run_network_campaign` is a deterministic
function of (world, network, window, parameters) no matter which
process runs it.  :func:`run_networks` ships one network per task to a
process pool and returns results in campaign order; the caller merges
the streams with the same deterministic timestamp merge the serial
path uses, so parallel output is bit-identical to serial (pinned by
``tests/scan/test_campaign_parallel_cache.py``).

On platforms with ``fork`` (Linux, macOS pre-3.14 semantics aside),
workers inherit the built world through copy-on-write memory — no
pickling at all.  Elsewhere the world is pickled once and shipped via
the pool initializer, exactly like :mod:`repro.scan.parallel`.

:func:`effective_campaign_workers` implements the never-slower rule:
the pool is capped at the machine's core count and the number of
networks, and a single-core host (or single-network campaign) falls
back to the serial loop rather than paying pool overhead for nothing.
"""

from __future__ import annotations

import datetime as dt
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.scan.parallel import worker_cap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scan.campaign import NetworkCampaignResult, SupplementalCampaign

#: Per-worker state: (world, schedule, sweep_interval, rdns_rate,
#: blocklist, fault_plan).  Fork workers inherit it from the parent;
#: spawn workers get it from the pool initializer.
_WORKER_STATE: Optional[Tuple[object, object, int, float, list, object]] = None


def effective_campaign_workers(requested: int, work_units: int) -> int:
    """Cap the requested pool size so parallelism never loses to serial.

    ``work_units`` is the number of tasks actually submitted to the
    pool — per-network campaigns for a plain supplemental run, per-shard
    batches for a sharded run.  Capping at the *network* count (the
    historical behaviour) starved shard-batched runs, where one
    submission carries many networks: a 2-batch run over 9 networks
    must size the pool by its 2 submissions, not its 9 networks.
    More workers than work units just idle; more workers than the
    machine-wide :func:`~repro.scan.parallel.worker_cap` just
    context-switch.  Anything that caps to one means "run serial".
    """
    if requested < 2 or work_units < 2:
        return 1
    capped = min(requested, worker_cap(), work_units)
    return capped if capped >= 2 else 1


def _init_worker(blob: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(blob)


def _run_one(task: Tuple[str, str, str]):
    """Run one network's campaign inside a worker process.

    The heavy observation columns are packed into one columnar blob
    and published out-of-band (:mod:`repro.scan.transport`); only a
    lightweight result shell plus the
    :class:`~repro.scan.transport.BlobHandle` ride the result pickle.
    """
    from dataclasses import replace

    from repro.scan import transport
    from repro.scan.campaign import run_network_campaign

    assert _WORKER_STATE is not None, "worker state missing (initializer did not run)"
    world, schedule, sweep_interval, rdns_rate, blocklist, fault_plan = _WORKER_STATE
    name, start_iso, end_iso = task
    result = run_network_campaign(
        world,
        name,
        dt.date.fromisoformat(start_iso),
        dt.date.fromisoformat(end_iso),
        schedule=schedule,
        sweep_interval=sweep_interval,
        rdns_rate=rdns_rate,
        blocklist=blocklist,
        fault_plan=fault_plan,
    )
    handle = transport.publish(
        transport.pack_campaign_columns(result.icmp, result.rdns)
    )
    return replace(result, icmp=None, rdns=None), handle


def run_networks(
    campaign: "SupplementalCampaign",
    start: dt.date,
    end: dt.date,
    *,
    workers: int,
    metrics=None,
) -> List["NetworkCampaignResult"]:
    """Run every campaign network on a process pool, in campaign order.

    Raises ``ValueError`` if the platform lacks ``fork`` and the world
    cannot be pickled (worlds from
    :func:`repro.netsim.internet.build_world` always can).  ``metrics``
    (a :class:`~repro.scan.campaign.CampaignMetrics`) receives the
    result-transport byte totals.
    """
    global _WORKER_STATE
    from repro.scan import transport

    if workers < 2:
        raise ValueError("run_networks needs at least 2 workers; use run() for serial")

    state = (
        campaign.world,
        campaign.schedule,
        campaign.sweep_interval,
        campaign.rdns_rate,
        list(campaign.blocklist),
        campaign.fault_plan,
    )
    tasks = [
        (name, start.isoformat(), end.isoformat()) for name in campaign.network_names
    ]
    max_workers = min(workers, len(tasks))
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    if campaign.obs is not None:
        campaign.obs.record_execution(
            "campaign_pool",
            transport="fork" if use_fork else "spawn",
            tasks=len(tasks),
            pool_workers=max_workers,
        )

    transport.ensure_parent_tracker()
    if use_fork:
        # Fork workers inherit the world via copy-on-write: zero
        # serialisation cost, which is what makes small worlds still
        # worth parallelising.
        _WORKER_STATE = state
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=multiprocessing.get_context("fork"),
            ) as pool:
                shells = list(pool.map(_run_one, tasks))
        finally:
            _WORKER_STATE = None
        return _hydrate(campaign, shells, metrics)

    try:
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ValueError(
            "parallel campaign requires a picklable world; "
            f"pickling failed: {exc!r}"
        ) from exc
    with ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_init_worker,
        initargs=(blob,),
    ) as pool:
        shells = list(pool.map(_run_one, tasks))
    return _hydrate(campaign, shells, metrics)


def _hydrate(
    campaign: "SupplementalCampaign", shells, metrics
) -> List["NetworkCampaignResult"]:
    """Re-attach each result's observation columns from its blob."""
    from dataclasses import replace

    from repro.scan import transport

    stats = transport.TransportStats()
    results: List["NetworkCampaignResult"] = []
    for shell, handle in shells:
        stats.count(handle)
        icmp, rdns = transport.consume(handle, transport.unpack_campaign_columns)
        results.append(replace(shell, icmp=icmp, rdns=rdns))
    if campaign.obs is not None:
        campaign.obs.record_execution(
            "campaign_pool",
            accumulate=True,
            transport_bytes=stats.transport_bytes,
            spill_bytes=stats.spill_bytes,
        )
    if metrics is not None:
        metrics.transport_bytes += stats.transport_bytes
        metrics.spill_bytes += stats.spill_bytes
    return results
