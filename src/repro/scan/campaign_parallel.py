"""Process-pool fan-out for the supplemental campaign.

The campaign is embarrassingly parallel across networks: each of the
nine supplemental networks owns its runtime, sweeper, authoritative
server and RNG streams (all keyed by ``RngStreams.fresh`` labels), so
:func:`~repro.scan.campaign.run_network_campaign` is a deterministic
function of (world, network, window, parameters) no matter which
process runs it.  :func:`run_networks` ships one network per task to a
process pool and returns results in campaign order; the caller merges
the streams with the same deterministic timestamp merge the serial
path uses, so parallel output is bit-identical to serial (pinned by
``tests/scan/test_campaign_parallel_cache.py``).

On platforms with ``fork`` (Linux, macOS pre-3.14 semantics aside),
workers inherit the built world through copy-on-write memory — no
pickling at all.  Elsewhere the world is pickled once and shipped via
the pool initializer, exactly like :mod:`repro.scan.parallel`.

:func:`effective_campaign_workers` implements the never-slower rule:
the pool is capped at the machine's core count and the number of
networks, and a single-core host (or single-network campaign) falls
back to the serial loop rather than paying pool overhead for nothing.
"""

from __future__ import annotations

import datetime as dt
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.scan.parallel import worker_cap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scan.campaign import NetworkCampaignResult, SupplementalCampaign

#: Per-worker state: (world, schedule, sweep_interval, rdns_rate,
#: blocklist, fault_plan).  Fork workers inherit it from the parent;
#: spawn workers get it from the pool initializer.
_WORKER_STATE: Optional[Tuple[object, object, int, float, list, object]] = None


def effective_campaign_workers(requested: int, work_units: int) -> int:
    """Cap the requested pool size so parallelism never loses to serial.

    ``work_units`` is the number of tasks actually submitted to the
    pool — per-network campaigns for a plain supplemental run, per-shard
    batches for a sharded run.  Capping at the *network* count (the
    historical behaviour) starved shard-batched runs, where one
    submission carries many networks: a 2-batch run over 9 networks
    must size the pool by its 2 submissions, not its 9 networks.
    More workers than work units just idle; more workers than the
    machine-wide :func:`~repro.scan.parallel.worker_cap` just
    context-switch.  Anything that caps to one means "run serial".
    """
    if requested < 2 or work_units < 2:
        return 1
    capped = min(requested, worker_cap(), work_units)
    return capped if capped >= 2 else 1


def _init_worker(blob: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(blob)


def _run_one(task: Tuple[str, str, str]) -> "NetworkCampaignResult":
    """Run one network's campaign inside a worker process."""
    from repro.scan.campaign import run_network_campaign

    assert _WORKER_STATE is not None, "worker state missing (initializer did not run)"
    world, schedule, sweep_interval, rdns_rate, blocklist, fault_plan = _WORKER_STATE
    name, start_iso, end_iso = task
    return run_network_campaign(
        world,
        name,
        dt.date.fromisoformat(start_iso),
        dt.date.fromisoformat(end_iso),
        schedule=schedule,
        sweep_interval=sweep_interval,
        rdns_rate=rdns_rate,
        blocklist=blocklist,
        fault_plan=fault_plan,
    )


def run_networks(
    campaign: "SupplementalCampaign",
    start: dt.date,
    end: dt.date,
    *,
    workers: int,
) -> List["NetworkCampaignResult"]:
    """Run every campaign network on a process pool, in campaign order.

    Raises ``ValueError`` if the platform lacks ``fork`` and the world
    cannot be pickled (worlds from
    :func:`repro.netsim.internet.build_world` always can).
    """
    global _WORKER_STATE
    if workers < 2:
        raise ValueError("run_networks needs at least 2 workers; use run() for serial")

    state = (
        campaign.world,
        campaign.schedule,
        campaign.sweep_interval,
        campaign.rdns_rate,
        list(campaign.blocklist),
        campaign.fault_plan,
    )
    tasks = [
        (name, start.isoformat(), end.isoformat()) for name in campaign.network_names
    ]
    max_workers = min(workers, len(tasks))
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    if campaign.obs is not None:
        campaign.obs.record_execution(
            "campaign_pool",
            transport="fork" if use_fork else "spawn",
            tasks=len(tasks),
            pool_workers=max_workers,
        )

    if use_fork:
        # Fork workers inherit the world via copy-on-write: zero
        # serialisation cost, which is what makes small worlds still
        # worth parallelising.
        _WORKER_STATE = state
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=multiprocessing.get_context("fork"),
            ) as pool:
                return list(pool.map(_run_one, tasks))
        finally:
            _WORKER_STATE = None

    try:
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ValueError(
            "parallel campaign requires a picklable world; "
            f"pickling failed: {exc!r}"
        ) from exc
    with ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_init_worker,
        initargs=(blob,),
    ) as pool:
        return list(pool.map(_run_one, tasks))
