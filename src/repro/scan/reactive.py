"""The reactive fine-grained measurement (Section 6.1, Figure 5).

An hourly ICMP sweep detects clients joining or leaving a network.  A
newly seen client triggers a *spot* rDNS lookup (to record the PTR
value) and a reactive ping follow with the Table 2 back-off schedule:

    12 times in the 1st hour at  5-minute intervals
     6 times in the 2nd hour at 10-minute intervals
     3 times in the 3rd hour at 20-minute intervals
     2 times in the 4th hour at 30-minute intervals
    until the client goes offline at 60-minute intervals

Once the client stops responding, the same schedule drives reactive
rDNS lookups until the PTR record is observed removed (NXDOMAIN) — the
moment that, related to the last successful ping, yields the lingering
times of Figure 7.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dns.resolver import ResolutionStatus
from repro.netsim.engine import SimulationEngine
from repro.netsim.simtime import HOUR, MINUTE
from repro.scan.icmp import IcmpScanner
from repro.scan.observations import IcmpObservation, RdnsObservation
from repro.scan.rdns import RdnsLookupEngine


@dataclass(frozen=True)
class BackoffSchedule:
    """The probe-interval schedule of the paper's Table 2."""

    steps: Tuple[Tuple[int, int], ...] = (
        (12, 5 * MINUTE),
        (6, 10 * MINUTE),
        (3, 20 * MINUTE),
        (2, 30 * MINUTE),
    )
    tail_interval: int = 60 * MINUTE

    def intervals(self, *, max_tail: Optional[int] = None) -> Iterator[int]:
        """All probe intervals in order; the tail repeats.

        ``max_tail`` bounds the number of tail repetitions (None means
        unbounded, as for the ICMP follow that runs until the client
        goes offline).
        """
        for count, interval in self.steps:
            for _ in range(count):
                yield interval
        emitted = 0
        while max_tail is None or emitted < max_tail:
            yield self.tail_interval
            emitted += 1

    def total_scheduled_duration(self) -> int:
        """Seconds covered by the fixed (non-tail) part of the schedule."""
        return sum(count * interval for count, interval in self.steps)


TABLE2_SCHEDULE = BackoffSchedule()


class ReactiveMonitor:
    """Orchestrates hourly sweeps and per-client reactive follows."""

    def __init__(
        self,
        engine: SimulationEngine,
        scanner: IcmpScanner,
        rdns: RdnsLookupEngine,
        *,
        schedule: BackoffSchedule = TABLE2_SCHEDULE,
        sweep_interval: int = HOUR,
        phase1_extra_lookups: int = 1,
        max_rdns_tail: int = 12,
    ):
        self.engine = engine
        self.scanner = scanner
        self.rdns = rdns
        self.schedule = schedule
        self.sweep_interval = sweep_interval
        self.phase1_extra_lookups = phase1_extra_lookups
        self.max_rdns_tail = max_rdns_tail
        self.icmp_observations: List[IcmpObservation] = []
        self.rdns_observations: List[RdnsObservation] = []
        self._targets: List[Tuple[str, List[str]]] = []
        self._online: Dict[ipaddress.IPv4Address, str] = {}
        self._follow_generation: Dict[ipaddress.IPv4Address, int] = {}
        self._end: int = 0
        self.sweeps_run = 0
        #: Reactive follows started: ICMP chains on appearance, rDNS
        #: chains on disappearance (Figure 5's two phases).
        self.icmp_follows_started = 0
        self.rdns_follows_started = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self, targets_by_network: Dict[str, List[str]], *, end: int) -> None:
        """Begin sweeping; the first sweep runs immediately."""
        self._targets = [(name, list(prefixes)) for name, prefixes in targets_by_network.items()]
        self._end = end
        self.engine.schedule(self.engine.now, self._sweep)

    # -- hourly sweep -----------------------------------------------------------

    def _sweep(self) -> None:
        now = self.engine.now
        self.sweeps_run += 1
        responders: Dict[ipaddress.IPv4Address, str] = {}
        for network_name, prefixes in self._targets:
            for observation in self.scanner.sweep(prefixes, now, network=network_name):
                responders[observation.address] = network_name
                self.icmp_observations.append(observation)
        # Both maps are dicts, so membership is O(1) per probe; building
        # throwaway sets of every online address each hourly sweep was a
        # measurable share of campaign time on long runs.
        online = self._online
        appeared = sorted(address for address in responders if address not in online)
        disappeared = sorted(address for address in online if address not in responders)
        # Spot lookups for the sweep's new clients go through the
        # batched rDNS path, one call per contiguous same-network run
        # (networks own disjoint prefixes, so sorted addresses cluster).
        # Lookup order — and therefore every rate-limit and fault draw —
        # matches the per-address loop exactly; only the follow-up
        # scheduling moves after the run's lookups, and it draws
        # nothing.
        total = len(appeared)
        start = 0
        while start < total:
            network = responders[appeared[start]]
            stop = start + 1
            while stop < total and responders[appeared[stop]] == network:
                stop += 1
            run = appeared[start:stop]
            for observation in self.rdns.lookup_batch(run, now, network=network):
                if observation is not None:
                    self.rdns_observations.append(observation)
            for address in run:
                self._on_client_appeared(address, network, spot_done=True)
            start = stop
        for address in disappeared:
            self._on_client_disappeared(address, online[address])
        next_at = now + self.sweep_interval
        if next_at <= self._end:
            self.engine.schedule(next_at, self._sweep)

    def _bump_generation(self, address: ipaddress.IPv4Address) -> int:
        generation = self._follow_generation.get(address, 0) + 1
        self._follow_generation[address] = generation
        return generation

    def _jitter(self, address: ipaddress.IPv4Address) -> int:
        """Per-address desynchronisation of the reactive follow.

        A real sweep takes minutes to traverse the target list, so
        per-address probe chains are not locked to the sweep's hour
        grid.  Deterministic (hash-of-address) jitter reproduces that:
        tail-phase probes interleave with sweeps, which is what keeps
        most departures sharply bracketed (the Table 5 reliability
        share).
        """
        return (int(address) * 2654435761) % 1740

    # -- phase 1: client appeared ------------------------------------------------

    def _on_client_appeared(
        self, address: ipaddress.IPv4Address, network: str, *, spot_done: bool = False
    ) -> None:
        self._online[address] = network
        generation = self._bump_generation(address)
        # Spot rDNS measurement to record the PTR value (already issued
        # by the sweep's batched lookup when ``spot_done``).
        if not spot_done:
            self._do_rdns(address, network)
        for extra in range(self.phase1_extra_lookups):
            at = self.engine.now + (extra + 1) * 5 * MINUTE
            if at <= self._end:
                self.engine.schedule(at, lambda a=address, n=network: self._do_rdns(a, n))
        self.icmp_follows_started += 1
        self._schedule_icmp_follow(
            address,
            network,
            generation,
            self.schedule.intervals(),
            initial_delay=self._jitter(address),
        )

    def _schedule_icmp_follow(
        self,
        address: ipaddress.IPv4Address,
        network: str,
        generation: int,
        intervals: Iterator[int],
        initial_delay: int = 0,
    ) -> None:
        try:
            interval = next(intervals)
        except StopIteration:  # pragma: no cover - tail is unbounded
            return
        at = self.engine.now + interval + initial_delay

        def probe() -> None:
            if self._follow_generation.get(address) != generation:
                return  # superseded by a newer appearance
            observation = self.scanner.probe(address, self.engine.now, network=network)
            if observation is not None:
                self.icmp_observations.append(observation)
                self._schedule_icmp_follow(address, network, generation, intervals)
            else:
                self._on_client_disappeared(address, network)

        if at <= self._end:
            self.engine.schedule(at, probe)

    # -- phase 3: client disappeared ------------------------------------------------

    def _on_client_disappeared(self, address: ipaddress.IPv4Address, network: str) -> None:
        self._online.pop(address, None)
        generation = self._bump_generation(address)
        # Start frequent rDNS measurement right at offline detection
        # (Figure 5); if the record is already gone, the follow is done.
        immediate = self._do_rdns(address, network)
        if immediate is not None and immediate.status is ResolutionStatus.NXDOMAIN:
            return
        self.rdns_follows_started += 1
        self._schedule_rdns_follow(
            address,
            network,
            generation,
            self.schedule.intervals(max_tail=self.max_rdns_tail),
        )

    def _schedule_rdns_follow(
        self,
        address: ipaddress.IPv4Address,
        network: str,
        generation: int,
        intervals: Iterator[int],
    ) -> None:
        try:
            interval = next(intervals)
        except StopIteration:
            return  # inconclusive: the record outlived our patience
        at = self.engine.now + interval

        def lookup() -> None:
            if self._follow_generation.get(address) != generation:
                return
            observation = self._do_rdns(address, network)
            if observation is not None and observation.status is ResolutionStatus.NXDOMAIN:
                return  # record removed: the follow is complete
            self._schedule_rdns_follow(address, network, generation, intervals)

        if at <= self._end:
            self.engine.schedule(at, lookup)

    def _do_rdns(self, address: ipaddress.IPv4Address, network: str) -> Optional[RdnsObservation]:
        observation = self.rdns.lookup(address, self.engine.now, network=network)
        if observation is not None:
            self.rdns_observations.append(observation)
        return observation

    def export_metrics(self, registry) -> None:
        """Publish sweep/follow totals into a metrics registry."""
        registry.counter("reactive_sweeps_total").inc(self.sweeps_run)
        registry.counter("reactive_icmp_follows_total").inc(self.icmp_follows_started)
        registry.counter("reactive_rdns_follows_total").inc(self.rdns_follows_started)
        registry.counter("reactive_icmp_observations_total").inc(len(self.icmp_observations))
        registry.counter("reactive_rdns_observations_total").inc(len(self.rdns_observations))
