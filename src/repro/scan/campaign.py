"""The supplemental measurement campaign (Sections 6.1-6.2).

Ties together the fine-grained network runtimes, the ZMap-style
sweeper, the rDNS engine and the reactive monitor against the nine
selected networks, and packages the result as a
:class:`SupplementalDataset` — the input to the grouping and timing
analyses (Tables 3-5, Figures 6-8 and 11).
"""

from __future__ import annotations

import datetime as dt
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dns.resolver import ResolutionStatus
from repro.netsim.engine import SimulationEngine
from repro.netsim.finegrained import NetworkRuntime, build_runtimes
from repro.netsim.internet import World
from repro.netsim.network import NetworkType
from repro.netsim.simtime import DAY, HOUR, date_of, from_date
from repro.scan.icmp import IcmpScanner
from repro.scan.observations import IcmpObservation, RdnsObservation
from repro.scan.ratelimit import TokenBucket
from repro.scan.rdns import RdnsLookupEngine
from repro.scan.reactive import TABLE2_SCHEDULE, BackoffSchedule, ReactiveMonitor

#: The paper's nine selected networks, in Table 4 order.
SUPPLEMENTAL_NETWORKS = [
    "Academic-A",
    "Academic-B",
    "Academic-C",
    "Enterprise-A",
    "Enterprise-B",
    "Enterprise-C",
    "ISP-A",
    "ISP-B",
    "ISP-C",
]


@dataclass
class SupplementalDataset:
    """Everything the supplemental campaign measured.

    ``start``/``end`` echo the half-open ``[start, end)`` window the
    campaign ran over: ``end`` itself was *not* measured (same
    convention as :meth:`repro.scan.snapshot.SnapshotCollector.collect`).
    """

    start: dt.date
    end: dt.date
    icmp: List[IcmpObservation]
    rdns: List[RdnsObservation]
    targets_by_network: Dict[str, List[str]]
    network_types: Dict[str, NetworkType]
    target_sizes: Dict[str, int] = field(default_factory=dict)

    # -- Table 3 ---------------------------------------------------------------

    def icmp_stats(self) -> Tuple[int, int]:
        """(total responses, unique addresses) for the ICMP instrument."""
        return len(self.icmp), len({obs.address for obs in self.icmp})

    def rdns_stats(self) -> Tuple[int, int, int]:
        """(total responses, unique addresses, unique PTRs) for rDNS."""
        unique_addresses = {obs.address for obs in self.rdns}
        unique_ptrs = {obs.hostname for obs in self.rdns if obs.ok}
        return len(self.rdns), len(unique_addresses), len(unique_ptrs)

    # -- Table 4 ---------------------------------------------------------------

    def responsive_addresses(self, network: str) -> int:
        return len({obs.address for obs in self.icmp if obs.network == network})

    def table4_rows(self) -> List[Tuple[str, str, str, int, float]]:
        """(network, type, targeted space, addresses observed, percent)."""
        rows = []
        for name in self.targets_by_network:
            observed = self.responsive_addresses(name)
            size = self.target_sizes.get(name, 0)
            percent = 100.0 * observed / size if size else 0.0
            rows.append(
                (
                    name,
                    self.network_types[name].value,
                    ", ".join(self.targets_by_network[name]),
                    observed,
                    percent,
                )
            )
        return rows

    # -- Figure 6 ----------------------------------------------------------------

    def rdns_outcomes_by_day(self) -> Dict[dt.date, Counter]:
        """Per-day counts of each resolution status."""
        by_day: Dict[dt.date, Counter] = defaultdict(Counter)
        for observation in self.rdns:
            by_day[date_of(observation.at)][observation.status] += 1
        return dict(by_day)

    def error_rows(self) -> List[Tuple[dt.date, int, int, int, int]]:
        """(day, total, nxdomain, servfail, timeout) rows, day-ordered.

        NXDOMAIN is counted separately because in this measurement it
        is "a bit more nuanced" than an error: it is often the removal
        signal itself (Section 6.2).
        """
        rows = []
        for day, counts in sorted(self.rdns_outcomes_by_day().items()):
            rows.append(
                (
                    day,
                    sum(counts.values()),
                    counts.get(ResolutionStatus.NXDOMAIN, 0),
                    counts.get(ResolutionStatus.SERVFAIL, 0),
                    counts.get(ResolutionStatus.TIMEOUT, 0),
                )
            )
        return rows


class SupplementalCampaign:
    """Runs the supplemental measurement against a built world."""

    def __init__(
        self,
        world: World,
        *,
        networks: Optional[Iterable[str]] = None,
        schedule: BackoffSchedule = TABLE2_SCHEDULE,
        sweep_interval: int = HOUR,
        rdns_rate: float = 50.0,
        blocklist: Iterable = (),
    ):
        self.world = world
        # Default to every supplemental-flagged network in the world
        # (for the standard world, that is the Table 4 nine, in order).
        candidates = list(networks) if networks is not None else list(world.supplemental)
        self.network_names = [name for name in candidates if name in world.supplemental]
        self.schedule = schedule
        self.sweep_interval = sweep_interval
        self.rdns_rate = rdns_rate
        self.blocklist = list(blocklist)
        self.engine: Optional[SimulationEngine] = None
        self.runtimes: Dict[str, NetworkRuntime] = {}
        self.monitor: Optional[ReactiveMonitor] = None

    def _targets(self) -> Dict[str, List[str]]:
        targets: Dict[str, List[str]] = {}
        for name in self.network_names:
            subnets = self.world.supplemental_targets(name)
            targets[name] = [str(subnet.prefix) for subnet in subnets]
        return targets

    def run(self, start: dt.date, end: dt.date) -> SupplementalDataset:
        """Simulate and measure the half-open period ``[start, end)``.

        The last measured day is ``end - 1 day``; ``end`` itself is
        excluded, matching
        :meth:`repro.scan.snapshot.SnapshotCollector.collect` (the two
        entry points historically disagreed: collection was half-open
        while the campaign was inclusive, so "the same window" covered
        different days depending on the instrument).
        """
        if end <= start:
            raise ValueError("end must be after start (half-open [start, end) window)")
        last_day = end - dt.timedelta(days=1)
        engine = SimulationEngine(start=from_date(start))
        self.engine = engine
        networks = [self.world.supplemental[name] for name in self.network_names]
        self.runtimes = build_runtimes(networks, engine)
        for name, runtime in self.runtimes.items():
            runtime.start(start, last_day)

        scanner = IcmpScanner(self.runtimes, blocklist=self.blocklist)
        rdns = RdnsLookupEngine(
            self.world.internet.resolver(),
            rate_limit=TokenBucket(self.rdns_rate, self.rdns_rate * 10),
        )
        end_ts = from_date(last_day) + DAY - 1
        monitor = ReactiveMonitor(
            engine,
            scanner,
            rdns,
            schedule=self.schedule,
            sweep_interval=self.sweep_interval,
        )
        self.monitor = monitor
        targets = self._targets()
        monitor.start(targets, end=end_ts)
        engine.run_until(end_ts)

        target_sizes = {
            name: sum(
                subnet.prefix.num_addresses for subnet in self.world.supplemental_targets(name)
            )
            for name in self.network_names
        }
        return SupplementalDataset(
            start=start,
            end=end,
            icmp=monitor.icmp_observations,
            rdns=monitor.rdns_observations,
            targets_by_network=targets,
            network_types={
                name: self.world.supplemental[name].net_type for name in self.network_names
            },
            target_sizes=target_sizes,
        )
