"""The supplemental measurement campaign (Sections 6.1-6.2).

Ties together the fine-grained network runtimes, the ZMap-style
sweeper, the rDNS engine and the reactive monitor against the nine
selected networks, and packages the result as a
:class:`SupplementalDataset` — the input to the grouping and timing
analyses (Tables 3-5, Figures 6-8 and 11).

The campaign is embarrassingly parallel across networks: each of the
nine has its own :class:`~repro.netsim.finegrained.NetworkRuntime`,
sweeper state, authoritative server and observation streams, with no
cross-network coupling.  :func:`run_network_campaign` therefore runs
*one* network on its own :class:`~repro.netsim.engine.SimulationEngine`;
the serial path loops it over the networks, the parallel path
(:mod:`repro.scan.campaign_parallel`) fans the same function out over
a process pool, and both merge the per-network streams with the same
deterministic timestamp merge — so parallel output is bit-identical to
serial.  A completed dataset can also be persisted in a
:class:`~repro.scan.cache.CampaignCache`, making warm runs skip the
six-week simulation entirely.

Rate limiting is per authoritative server: every network's rDNS engine
gets its own token bucket, matching the paper's "rate-limit requests
to authoritative name servers" (each Table 4 network runs its own).
"""

from __future__ import annotations

import datetime as dt
import time
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dns.resolver import ResolutionStatus
from repro.netsim.engine import SimulationEngine
from repro.netsim.faults import FaultPlan, resolve_fault_plan
from repro.netsim.finegrained import build_runtimes
from repro.netsim.internet import World
from repro.netsim.network import NetworkType
from repro.netsim.simtime import DAY, HOUR, date_of, from_date
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.scan.icmp import IcmpScanner
from repro.scan.observations import IcmpObservation, RdnsObservation
from repro.scan.ratelimit import TokenBucket
from repro.scan.rdns import RdnsLookupEngine
from repro.scan.reactive import TABLE2_SCHEDULE, BackoffSchedule, ReactiveMonitor
from repro.scan.storage import DATASET_FORMAT_VERSION, IcmpColumns, RdnsColumns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scan.cache import CampaignCache

#: Campaign payload versions this reader accepts.  The canonical
#: :data:`~repro.scan.storage.DATASET_FORMAT_VERSION` moved to
#: ``scan/storage.py`` when v3 made *snapshot* payloads columnar; the
#: campaign schema is unchanged across v2–v4 (the v4 blockfile bump is
#: snapshot-only too), so older entries stay valid hits rather than
#: forcing a cold re-simulation.
COMPATIBLE_DATASET_VERSIONS = (2, 3, DATASET_FORMAT_VERSION)

#: The paper's nine selected networks, in Table 4 order.
SUPPLEMENTAL_NETWORKS = [
    "Academic-A",
    "Academic-B",
    "Academic-C",
    "Enterprise-A",
    "Enterprise-B",
    "Enterprise-C",
    "ISP-A",
    "ISP-B",
    "ISP-C",
]


@dataclass
class CampaignMetrics:
    """Lightweight counters for one :meth:`SupplementalCampaign.run` call.

    ``workers`` echoes the request; ``effective_workers`` is what
    actually ran after the never-slower fallback (serial when the host
    has no spare cores or too few networks).  ``simulate_seconds``
    covers simulation (or payload decoding on a cache hit);
    ``total_seconds`` the whole call including cache I/O.
    """

    workers: int = 1
    effective_workers: int = 1
    networks: int = 0
    icmp_observations: int = 0
    rdns_observations: int = 0
    sweeps_run: int = 0
    events_run: int = 0
    cache_hit: bool = False
    cache_key: Optional[str] = None
    cache_stored: bool = False
    #: Bytes of worker results that crossed the process boundary as
    #: packed columnar blobs instead of pickled column objects; zero on
    #: serial (and cache-hit) runs.  Reported under
    #: ``timings.execution`` only — run-shape, not science.
    transport_bytes: int = 0
    #: The subset of :attr:`transport_bytes` that spilled to temp files
    #: rather than shared memory.
    spill_bytes: int = 0
    simulate_seconds: float = 0.0
    total_seconds: float = 0.0
    per_network_seconds: Dict[str, float] = field(default_factory=dict)
    #: Name of the active fault plan (``None`` = clean run).
    fault_profile: Optional[str] = None
    #: Summed instrument counters (probes sent/lost, retries, rDNS
    #: attempts/timeouts, clock-skew clamps) across all networks.
    fault_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def observations(self) -> int:
        return self.icmp_observations + self.rdns_observations

    def describe(self) -> str:
        source = "cache" if self.cache_hit else f"{self.effective_workers} worker(s)"
        return (
            f"{self.networks} network(s) via {source} in "
            f"{self.total_seconds:.2f}s ({self.icmp_observations:,} ICMP + "
            f"{self.rdns_observations:,} rDNS observations, "
            f"{self.events_run:,} events)"
        )


@dataclass
class SupplementalDataset:
    """Everything the supplemental campaign measured.

    ``start``/``end`` echo the half-open ``[start, end)`` window the
    campaign ran over: ``end`` itself was *not* measured (same
    convention as :meth:`repro.scan.snapshot.SnapshotCollector.collect`).

    ``icmp``/``rdns`` are sequence-of-observation views backed by the
    columnar stores of :mod:`repro.scan.storage` when produced by a
    campaign run (plain lists are also accepted, e.g. when rebuilding
    from CSV): iterate or index them exactly like lists.
    """

    start: dt.date
    end: dt.date
    icmp: Sequence[IcmpObservation]
    rdns: Sequence[RdnsObservation]
    targets_by_network: Dict[str, List[str]]
    network_types: Dict[str, NetworkType]
    target_sizes: Dict[str, int] = field(default_factory=dict)

    # -- Table 3 ---------------------------------------------------------------

    def icmp_stats(self) -> Tuple[int, int]:
        """(total responses, unique addresses) for the ICMP instrument."""
        return len(self.icmp), len({obs.address for obs in self.icmp})

    def rdns_stats(self) -> Tuple[int, int, int]:
        """(total responses, unique addresses, unique PTRs) for rDNS."""
        unique_addresses = {obs.address for obs in self.rdns}
        unique_ptrs = {obs.hostname for obs in self.rdns if obs.ok}
        return len(self.rdns), len(unique_addresses), len(unique_ptrs)

    # -- Table 4 ---------------------------------------------------------------

    def responsive_addresses(self, network: str) -> int:
        return len({obs.address for obs in self.icmp if obs.network == network})

    def table4_rows(self) -> List[Tuple[str, str, str, int, float]]:
        """(network, type, targeted space, addresses observed, percent)."""
        rows = []
        for name in self.targets_by_network:
            observed = self.responsive_addresses(name)
            size = self.target_sizes.get(name, 0)
            percent = 100.0 * observed / size if size else 0.0
            rows.append(
                (
                    name,
                    self.network_types[name].value,
                    ", ".join(self.targets_by_network[name]),
                    observed,
                    percent,
                )
            )
        return rows

    # -- Figure 6 ----------------------------------------------------------------

    def rdns_outcomes_by_day(self) -> Dict[dt.date, Counter]:
        """Per-day counts of each resolution status."""
        by_day: Dict[dt.date, Counter] = defaultdict(Counter)
        for observation in self.rdns:
            by_day[date_of(observation.at)][observation.status] += 1
        return dict(by_day)

    def error_rows(self) -> List[Tuple[dt.date, int, int, int, int]]:
        """(day, total, nxdomain, servfail, timeout) rows, day-ordered.

        NXDOMAIN is counted separately because in this measurement it
        is "a bit more nuanced" than an error: it is often the removal
        signal itself (Section 6.2).
        """
        rows = []
        for day, counts in sorted(self.rdns_outcomes_by_day().items()):
            rows.append(
                (
                    day,
                    sum(counts.values()),
                    counts.get(ResolutionStatus.NXDOMAIN, 0),
                    counts.get(ResolutionStatus.SERVFAIL, 0),
                    counts.get(ResolutionStatus.TIMEOUT, 0),
                )
            )
        return rows

    def error_class_rows(
        self,
    ) -> List[Tuple[dt.date, int, int, int, int, int, int]]:
        """(day, total, noerror, nxdomain, servfail, timeout, refused).

        The full Figure-6 error-class breakdown, one row per measured
        day.  Unlike :meth:`error_rows` (whose 5-tuple shape predates
        fault injection and is kept stable for existing consumers),
        this includes successful lookups and the REFUSED class, so
        the columns sum to the total.
        """
        rows = []
        for day, counts in sorted(self.rdns_outcomes_by_day().items()):
            rows.append(
                (
                    day,
                    sum(counts.values()),
                    counts.get(ResolutionStatus.NOERROR, 0),
                    counts.get(ResolutionStatus.NXDOMAIN, 0),
                    counts.get(ResolutionStatus.SERVFAIL, 0),
                    counts.get(ResolutionStatus.TIMEOUT, 0),
                    counts.get(ResolutionStatus.REFUSED, 0),
                )
            )
        return rows

    # -- cache serialisation -------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-serialisable snapshot of the whole dataset."""
        icmp = self.icmp if isinstance(self.icmp, IcmpColumns) else _as_icmp_columns(self.icmp)
        rdns = self.rdns if isinstance(self.rdns, RdnsColumns) else _as_rdns_columns(self.rdns)
        return {
            "version": DATASET_FORMAT_VERSION,
            "start": self.start.isoformat(),
            "end": self.end.isoformat(),
            "icmp": icmp.to_payload(),
            "rdns": rdns.to_payload(),
            "targets_by_network": self.targets_by_network,
            "network_types": {
                name: net_type.value for name, net_type in self.network_types.items()
            },
            "target_sizes": self.target_sizes,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SupplementalDataset":
        """Rebuild a dataset from :meth:`to_payload` output."""
        return cls(
            start=dt.date.fromisoformat(payload["start"]),
            end=dt.date.fromisoformat(payload["end"]),
            icmp=IcmpColumns.from_payload(payload["icmp"]),
            rdns=RdnsColumns.from_payload(payload["rdns"]),
            targets_by_network={
                name: list(prefixes)
                for name, prefixes in payload["targets_by_network"].items()
            },
            network_types={
                name: NetworkType(value)
                for name, value in payload["network_types"].items()
            },
            target_sizes={name: int(size) for name, size in payload["target_sizes"].items()},
        )


def _as_icmp_columns(observations: Iterable[IcmpObservation]) -> IcmpColumns:
    columns = IcmpColumns()
    columns.extend(observations)
    return columns


def _as_rdns_columns(observations: Iterable[RdnsObservation]) -> RdnsColumns:
    columns = RdnsColumns()
    columns.extend(observations)
    return columns


@dataclass
class NetworkCampaignResult:
    """One network's share of the campaign (picklable worker output)."""

    network: str
    icmp: IcmpColumns
    rdns: RdnsColumns
    sweeps_run: int
    events_run: int
    seconds: float
    #: Instrument counters (probe/lookup/retry/loss totals); empty on
    #: clean runs for backwards-compatible equality.
    counters: Dict[str, int] = field(default_factory=dict)
    #: This network's :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
    #: — deterministic, picklable, merged across networks in campaign
    #: order so serial and parallel runs publish identical totals.
    metrics: Dict = field(default_factory=dict)


def run_network_campaign(
    world: World,
    name: str,
    start: dt.date,
    end: dt.date,
    *,
    schedule: BackoffSchedule = TABLE2_SCHEDULE,
    sweep_interval: int = HOUR,
    rdns_rate: float = 50.0,
    blocklist: Iterable = (),
    fault_plan: Optional[FaultPlan] = None,
) -> NetworkCampaignResult:
    """Measure one network over the half-open ``[start, end)`` window.

    The unit of campaign parallelism: everything here — engine, runtime,
    sweeper, resolver, rate-limit bucket — is private to the network, so
    the result is a deterministic function of (world, name, window,
    parameters) regardless of which process runs it or in what order.
    A ``fault_plan`` keeps that property: every loss/outage draw is a
    stateless keyed hash, so faults are identical under any execution
    order or process split.
    """
    started = time.perf_counter()
    last_day = end - dt.timedelta(days=1)
    engine = SimulationEngine(start=from_date(start))
    network = world.supplemental[name]
    # Baseline for delta accounting: in a serial campaign successive
    # networks share one world (and its authoritative server), so the
    # absolute counters mix networks; the delta is this run's share and
    # matches what a fresh forked worker would count.
    server_baseline = network.server.metrics_snapshot()
    runtimes = build_runtimes([network], engine, fault_plan=fault_plan)
    runtimes[name].start(start, last_day)

    if fault_plan is not None:
        scanner = IcmpScanner(
            runtimes, blocklist=blocklist, retries=fault_plan.icmp_retry_budget
        )
        resolver = world.internet.resolver(
            retries=fault_plan.rdns_retry_budget,
            backoff_base=fault_plan.rdns_backoff_base,
            fault_plan=fault_plan,
        )
    else:
        scanner = IcmpScanner(runtimes, blocklist=blocklist)
        resolver = world.internet.resolver()
    rdns = RdnsLookupEngine(
        resolver,
        rate_limit=TokenBucket(rdns_rate, rdns_rate * 10),
    )
    end_ts = from_date(last_day) + DAY - 1
    monitor = ReactiveMonitor(
        engine,
        scanner,
        rdns,
        schedule=schedule,
        sweep_interval=sweep_interval,
    )
    # Columnar stores are drop-in append targets for the monitor.
    monitor.icmp_observations = IcmpColumns()
    monitor.rdns_observations = RdnsColumns()
    targets = {name: [str(subnet.prefix) for subnet in world.supplemental_targets(name)]}
    monitor.start(targets, end=end_ts)
    engine.run_until(end_ts)
    counters: Dict[str, int] = {}
    if fault_plan is not None:
        counters = {
            "probes_sent": scanner.probes_sent,
            "probes_suppressed": scanner.probes_suppressed,
            "echoes_lost": scanner.echoes_lost,
            "icmp_retries": scanner.retries_sent,
            "lookups": rdns.lookups_performed,
            "rdns_attempts": rdns.attempts_made,
            "rdns_timeouts": rdns.timeouts_seen,
            "clock_skew_events": (
                rdns.rate_limit.clock_skew_events if rdns.rate_limit else 0
            ),
        }
    registry = MetricsRegistry()
    scanner.export_metrics(registry)
    rdns.export_metrics(registry)
    monitor.export_metrics(registry)
    engine.export_metrics(registry)
    network.server.export_metrics(registry, snapshot=server_baseline)
    return NetworkCampaignResult(
        network=name,
        icmp=monitor.icmp_observations,
        rdns=monitor.rdns_observations,
        sweeps_run=monitor.sweeps_run,
        events_run=engine.events_run,
        seconds=time.perf_counter() - started,
        counters=counters,
        metrics=registry.snapshot(),
    )


#: Sentinel distinguishing "fault_plan not given" (consult the
#: ``REPRO_FAULT_PROFILE`` environment variable) from an explicit
#: ``fault_plan=None`` (force a clean run).
_FAULTS_FROM_ENV = object()


class SupplementalCampaign:
    """Runs the supplemental measurement against a built world."""

    def __init__(
        self,
        world: World,
        *,
        networks: Optional[Iterable[str]] = None,
        schedule: BackoffSchedule = TABLE2_SCHEDULE,
        sweep_interval: int = HOUR,
        rdns_rate: float = 50.0,
        blocklist: Iterable = (),
        fault_plan=_FAULTS_FROM_ENV,
        obs=None,
    ):
        self.world = world
        #: Optional :class:`repro.obs.Observability` handle; spans,
        #: deterministic counters and run-shape details are recorded
        #: there (no-op when ``None``).
        self.obs = obs
        # Default to every supplemental-flagged network in the world
        # (for the standard world, that is the Table 4 nine, in order).
        candidates = list(networks) if networks is not None else list(world.supplemental)
        self.network_names = [name for name in candidates if name in world.supplemental]
        self.schedule = schedule
        self.sweep_interval = sweep_interval
        self.rdns_rate = rdns_rate
        self.blocklist = list(blocklist)
        if fault_plan is _FAULTS_FROM_ENV:
            fault_plan = resolve_fault_plan(None, seed=world.rngs.seed)
        self.fault_plan: Optional[FaultPlan] = fault_plan
        #: Counters from the most recent :meth:`run` call.
        self.last_metrics: Optional[CampaignMetrics] = None

    def _targets(self) -> Dict[str, List[str]]:
        targets: Dict[str, List[str]] = {}
        for name in self.network_names:
            subnets = self.world.supplemental_targets(name)
            targets[name] = [str(subnet.prefix) for subnet in subnets]
        return targets

    def cache_key(self, cache: "CampaignCache", start: dt.date, end: dt.date) -> str:
        """The cache key one ``run(start, end)`` would use.

        The fault plan token is folded in only when a plan is active,
        so clean runs keep exactly the keys they had before fault
        injection existed (cached datasets stay valid).
        """
        return cache.key_for(
            world_token=self.world.internet.cache_token(),
            networks=self.network_names,
            start=start,
            end=end,
            schedule_steps=self.schedule.steps,
            schedule_tail=self.schedule.tail_interval,
            sweep_interval=self.sweep_interval,
            rdns_rate=self.rdns_rate,
            blocklist=[str(entry) for entry in self.blocklist],
            fault_token=(
                self.fault_plan.cache_token() if self.fault_plan is not None else None
            ),
        )

    def run(
        self,
        start: dt.date,
        end: dt.date,
        *,
        workers: int = 1,
        cache: Optional["CampaignCache"] = None,
    ) -> SupplementalDataset:
        """Simulate and measure the half-open period ``[start, end)``.

        The last measured day is ``end - 1 day``; ``end`` itself is
        excluded, matching
        :meth:`repro.scan.snapshot.SnapshotCollector.collect` (the two
        entry points historically disagreed: collection was half-open
        while the campaign was inclusive, so "the same window" covered
        different days depending on the instrument).

        ``workers > 1`` fans networks out over a process pool;
        ``cache`` consults and fills an on-disk
        :class:`~repro.scan.cache.CampaignCache`.  Both are
        bit-identical to the serial, uncached run.  Timing and cache
        counters land in :attr:`last_metrics`.

        When the campaign carries an observability handle, the run is
        traced as a ``campaign.run`` span with one ``campaign.network``
        child per network, the merged per-network counters land in the
        metrics registry (replayed from the cached payload on a hit, so
        warm manifests match cold ones), and run-shape details
        (workers, cache traffic) are recorded under
        ``timings.execution``.
        """
        from repro.obs import resolve_obs

        obs = resolve_obs(self.obs)
        cache_baseline = cache.execution_snapshot() if cache is not None else None
        with obs.span("campaign.run") as span:
            dataset = self._run(start, end, workers=workers, cache=cache, obs=obs)
            metrics = self.last_metrics
            span.set("networks", metrics.networks)
            span.set("icmp_observations", metrics.icmp_observations)
            span.set("rdns_observations", metrics.rdns_observations)
            # One child span per network regardless of cache outcome:
            # the structure is deterministic, only the wall seconds
            # (zero on a replay) land in the timings section.
            for name in self.network_names:
                obs.tracer.add_span(
                    "campaign.network",
                    labels={"network": name},
                    seconds=metrics.per_network_seconds.get(name, 0.0),
                )
        obs.record_execution(
            "campaign",
            workers=metrics.workers,
            effective_workers=metrics.effective_workers,
            cache_hit=metrics.cache_hit,
            cache_stored=metrics.cache_stored,
            transport_bytes=metrics.transport_bytes,
            spill_bytes=metrics.spill_bytes,
        )
        if cache is not None:
            cache.export_metrics(obs, section="campaign", baseline=cache_baseline)
        return dataset

    def _run(
        self,
        start: dt.date,
        end: dt.date,
        *,
        workers: int,
        cache: Optional["CampaignCache"],
        obs,
    ) -> SupplementalDataset:
        if end <= start:
            raise ValueError("end must be after start (half-open [start, end) window)")
        started = time.perf_counter()
        metrics = CampaignMetrics(
            workers=max(1, workers), networks=len(self.network_names)
        )
        if self.fault_plan is not None:
            metrics.fault_profile = self.fault_plan.name
        self.last_metrics = metrics

        key: Optional[str] = None
        if cache is not None:
            key = self.cache_key(cache, start, end)
            metrics.cache_key = key
            payload = cache.load(key)
            if payload is not None and payload.get("version") in COMPATIBLE_DATASET_VERSIONS:
                decode_started = time.perf_counter()
                dataset = SupplementalDataset.from_payload(payload)
                obs.metrics.merge_snapshot(payload.get("metrics") or {})
                metrics.cache_hit = True
                metrics.icmp_observations = len(dataset.icmp)
                metrics.rdns_observations = len(dataset.rdns)
                metrics.simulate_seconds = time.perf_counter() - decode_started
                metrics.total_seconds = time.perf_counter() - started
                return dataset

        simulate_started = time.perf_counter()
        results = self._run_networks(start, end, workers, metrics)
        dataset = self._merge(start, end, results)
        # Per-network registries merge in fixed campaign order, so the
        # totals are identical whether networks ran serial or fanned
        # out (and, via the cached copy below, on later replays).
        merged_metrics = merge_snapshots(result.metrics for result in results)
        obs.metrics.merge_snapshot(merged_metrics)
        metrics.simulate_seconds = time.perf_counter() - simulate_started
        metrics.icmp_observations = len(dataset.icmp)
        metrics.rdns_observations = len(dataset.rdns)
        metrics.sweeps_run = sum(result.sweeps_run for result in results)
        metrics.events_run = sum(result.events_run for result in results)
        metrics.per_network_seconds = {
            result.network: result.seconds for result in results
        }
        for result in results:
            for counter, value in result.counters.items():
                metrics.fault_counters[counter] = (
                    metrics.fault_counters.get(counter, 0) + value
                )

        if cache is not None and key is not None:
            payload = dataset.to_payload()
            payload["metrics"] = merged_metrics
            cache.store(key, payload)
            metrics.cache_stored = True
        metrics.total_seconds = time.perf_counter() - started
        return dataset

    # -- execution -------------------------------------------------------------

    def _run_networks(
        self,
        start: dt.date,
        end: dt.date,
        workers: int,
        metrics: CampaignMetrics,
    ) -> List[NetworkCampaignResult]:
        from repro.scan.campaign_parallel import effective_campaign_workers, run_networks

        effective = effective_campaign_workers(workers, len(self.network_names))
        metrics.effective_workers = effective
        if effective > 1:
            return run_networks(self, start, end, workers=effective, metrics=metrics)
        return [
            run_network_campaign(
                self.world,
                name,
                start,
                end,
                schedule=self.schedule,
                sweep_interval=self.sweep_interval,
                rdns_rate=self.rdns_rate,
                blocklist=self.blocklist,
                fault_plan=self.fault_plan,
            )
            for name in self.network_names
        ]

    def _merge(
        self,
        start: dt.date,
        end: dt.date,
        results: Sequence[NetworkCampaignResult],
    ) -> SupplementalDataset:
        """Combine per-network streams into one dataset, deterministically."""
        targets = self._targets()
        target_sizes = {
            name: sum(
                subnet.prefix.num_addresses for subnet in self.world.supplemental_targets(name)
            )
            for name in self.network_names
        }
        return SupplementalDataset(
            start=start,
            end=end,
            icmp=IcmpColumns.merged([result.icmp for result in results]),
            rdns=RdnsColumns.merged([result.rdns for result in results]),
            targets_by_network=targets,
            network_types={
                name: self.world.supplemental[name].net_type for name in self.network_names
            },
            target_sizes=target_sizes,
        )
