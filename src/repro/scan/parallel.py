"""Process-pool fan-out for snapshot collection.

A multi-year full-address-space series visits thousands of simulated
days, and every day is derived independently: all randomness comes from
``RngStreams.fresh(label, ..., day.toordinal())`` streams, so the order
in which days are evaluated — or the process that evaluates them —
cannot change the outcome.  That makes day-chunk parallelism safe:
:func:`collect_days` splits the day list into contiguous chunks,
derives chunks concurrently, and merges the results in chronological
order.  The merged series is bit-identical to a serial run (the
equivalence regression test in ``tests/scan/test_parallel_cache.py``
pins this).

Two transport paths keep the fixed cost low.  Where ``fork`` is
available (Linux), workers inherit the :class:`~repro.netsim.internet.Internet`
through copy-on-write memory — no pickling at all.  Elsewhere the world
is pickled once and shipped via the pool initializer.  Results travel
the other way as packed columnar blobs through
:mod:`repro.scan.transport` (shared memory by default): a worker
returns a :class:`~repro.scan.transport.BlobHandle` instead of pickled
per-day dicts, and the parent unpacks straight out of the shared
buffer — the serialize-merge tax that used to make small-chunk
parallelism slower than serial is gone.

:func:`effective_workers` implements the never-slower rule: short
windows don't amortise pool start-up, so the pool size is capped by
the day count (at least :data:`MIN_DAYS_PER_WORKER` days per worker)
and the machine's core count; a cap of one means "stay serial".  The
historic behaviour — honouring ``workers=4`` for a 60-day window on a
single-core host — ran at 0.6x serial throughput.
"""

from __future__ import annotations

import datetime as dt
import math
import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scan.snapshot import SnapshotCollector, SnapshotSeries

#: Below this many days per worker, pool start-up and per-task
#: overhead outweigh the concurrency win; shrink the pool instead.
MIN_DAYS_PER_WORKER = 8

#: Per-worker state: (internet, network_names, at_offset).  Fork
#: workers inherit it from the parent; spawn workers get it from the
#: pool initializer.  Worker processes are single-purpose, so a module
#: global is the simplest way to pay the set-up cost once per worker.
_WORKER_STATE: Optional[Tuple[object, Optional[List[str]], Optional[int]]] = None


#: Default ceiling on automatic pool sizing.  Large shard runs want the
#: whole machine; ``REPRO_MAX_WORKERS`` lifts (or lowers) the ceiling.
DEFAULT_WORKER_CEILING = 8


def worker_cap() -> int:
    """The machine-wide ceiling for any pool this process creates.

    ``REPRO_MAX_WORKERS`` overrides everything — including the core
    count, which is an explicit opt-in to oversubscription (useful to
    exercise real pools on small CI hosts).  Without it, the cap is the
    core count, bounded by :data:`DEFAULT_WORKER_CEILING`.
    """
    env = os.environ.get("REPRO_MAX_WORKERS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError as exc:
            raise ValueError(f"REPRO_MAX_WORKERS must be an integer, got {env!r}") from exc
        if value < 1:
            raise ValueError(f"REPRO_MAX_WORKERS must be >= 1, got {value}")
        return value
    return min(os.cpu_count() or 1, DEFAULT_WORKER_CEILING)


def default_workers() -> int:
    """A sensible worker count: the machine-wide :func:`worker_cap`."""
    return worker_cap()


def effective_workers(requested: int, day_count: int) -> int:
    """Cap the requested pool size so parallelism never loses to serial.

    More workers than the :func:`worker_cap` just context-switch; more
    workers than ``day_count / MIN_DAYS_PER_WORKER`` spend their time on
    pool start-up.  Anything that caps to one means "run serial".
    """
    if requested < 2 or day_count < 2 * MIN_DAYS_PER_WORKER:
        return 1
    capped = min(
        requested,
        worker_cap(),
        day_count // MIN_DAYS_PER_WORKER,
    )
    return capped if capped >= 2 else 1


class WorkerBudget:
    """One worker budget shared between nested pool levels.

    Sharded collection has two natural pool levels — across shards and
    across day-chunks within a shard.  Sizing each level independently
    oversubscribes the machine (outer × inner processes); a budget makes
    the split explicit: ``split(outer_tasks)`` returns the outer pool
    size and the per-task inner allowance whose product never exceeds
    the total.
    """

    def __init__(self, total: Optional[int] = None):
        if total is None:
            total = worker_cap()
        if total < 1:
            raise ValueError(f"worker budget must be >= 1, got {total}")
        self.total = total

    def split(self, outer_tasks: int) -> Tuple[int, int]:
        """(outer pool size, inner workers per outer task)."""
        if outer_tasks < 1:
            return 1, self.total
        outer = min(self.total, outer_tasks)
        inner = max(1, self.total // outer)
        return outer, inner

    def __repr__(self) -> str:
        return f"WorkerBudget(total={self.total})"


def _init_worker(blob: bytes) -> None:
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(blob)


def _collect_chunk(ordinals: List[int]):
    """Derive one contiguous chunk of days inside a worker process.

    Returns a :class:`~repro.scan.transport.BlobHandle` over the packed
    day results — the parent unpacks via
    :func:`~repro.scan.transport.unpack_day_chunk`.
    """
    from repro.scan import transport
    from repro.scan.snapshot import derive_day

    assert _WORKER_STATE is not None, "worker state missing (initializer did not run)"
    internet, network_names, at_offset = _WORKER_STATE
    results = []
    for ordinal in ordinals:
        day = dt.date.fromordinal(ordinal)
        counts, ptrs = derive_day(internet, network_names, day, at_offset)
        results.append((ordinal, counts, ptrs))
    return transport.publish(transport.pack_day_chunk(results))


def _records_chunk(ordinals: List[int]):
    """Derive one chunk of full per-day record lists inside a worker.

    Addresses travel as raw 32-bit ints in a packed column; the parent
    rebuilds ``IPv4Address`` objects on ingestion.
    """
    from repro.scan import transport

    assert _WORKER_STATE is not None, "worker state missing (initializer did not run)"
    internet, network_names, at_offset = _WORKER_STATE
    if network_names is None:
        networks = internet.networks
    else:
        networks = [internet.network(name) for name in network_names]
    results = []
    for ordinal in ordinals:
        day = dt.date.fromordinal(ordinal)
        records = [
            (int(address), hostname)
            for network in networks
            for address, hostname in network.records_on(day, at_offset=at_offset)
        ]
        results.append((ordinal, records))
    return transport.publish(transport.pack_record_chunk(results))


def chunk_days(days: Sequence[dt.date], workers: int) -> List[List[dt.date]]:
    """Split ``days`` into contiguous chunks, ~2 per worker.

    A couple of chunks per worker keeps the pool busy when chunks take
    uneven time (weekday/weekend day mixes differ in cost) without
    paying per-day task overhead; finer splits measurably lose to the
    fixed cost per task on small worlds.
    """
    if not days:
        return []
    target = max(1, math.ceil(len(days) / (workers * 2)))
    return [list(days[index:index + target]) for index in range(0, len(days), target)]


def collect_days(
    collector: "SnapshotCollector",
    days: Sequence[dt.date],
    *,
    workers: int,
    obs=None,
    metrics=None,
) -> "SnapshotSeries":
    """Collect ``days`` for ``collector`` on a process pool.

    Raises ``ValueError`` if the platform lacks ``fork`` and the world
    cannot be pickled (worlds built by
    :func:`repro.netsim.internet.build_world` always can).  ``obs`` (an
    :class:`repro.obs.Observability` handle) receives the pool shape —
    transport, chunk and worker counts, result-blob bytes — under
    ``timings.execution``; those vary with the host, never the
    collected series.  ``metrics`` (a
    :class:`~repro.scan.snapshot.CollectionMetrics`) additionally
    receives the ``transport_bytes``/``spill_bytes`` totals.
    """
    global _WORKER_STATE
    from repro.obs import resolve_obs
    from repro.scan import transport
    from repro.scan.snapshot import SnapshotSeries

    if workers < 2:
        raise ValueError("collect_days needs at least 2 workers; use collect() for serial")

    series = SnapshotSeries(
        collector.name,
        collector.internet,
        collector.networks,
        at_offset=collector.at_offset,
        cadence_days=collector.cadence_days,
    )
    chunks = [
        [day.toordinal() for day in chunk] for chunk in chunk_days(days, workers)
    ]
    network_names = list(collector.networks) if collector.networks is not None else None
    state = (collector.internet, network_names, collector.at_offset)
    max_workers = min(workers, len(chunks))
    handles = _map_chunks(
        state, chunks, max_workers, _collect_chunk, obs=obs, section="snapshot_pool"
    )
    stats = transport.TransportStats()
    for handle in handles:
        stats.count(handle)
        _ingest(series, [transport.consume(handle, transport.unpack_day_chunk)])
    _record_transport(obs, "snapshot_pool", stats, metrics)
    return series


def sample_day_records(
    internet,
    network_names: Optional[Sequence[str]],
    days: Sequence[dt.date],
    *,
    at_offset: Optional[int],
    workers: int,
    obs=None,
) -> List[Tuple[object, str]]:
    """Derive full per-day record lists for ``days`` on a process pool.

    The fan-out behind :meth:`repro.scan.snapshot.SnapshotSeries.sample_records`:
    day-chunks derive concurrently and merge chronologically, so the
    flattened record stream is bit-identical to a serial
    ``records_on`` walk (derivation is deterministic per day).  The
    returned records are *not* deduplicated — the caller owns that, so
    serial and parallel paths share one dedup pass.
    """
    import ipaddress

    from repro.scan import transport

    if workers < 2:
        raise ValueError("sample_day_records needs at least 2 workers")
    chunks = [[day.toordinal() for day in chunk] for chunk in chunk_days(days, workers)]
    state = (internet, list(network_names) if network_names is not None else None, at_offset)
    max_workers = min(workers, len(chunks))
    handles = _map_chunks(
        state, chunks, max_workers, _records_chunk, obs=obs, section="sample_pool"
    )
    stats = transport.TransportStats()
    records: List[Tuple[object, str]] = []
    for handle in handles:
        stats.count(handle)
        for _, day_records in transport.consume(handle, transport.unpack_record_chunk):
            records.extend(
                (ipaddress.IPv4Address(value), hostname)
                for value, hostname in day_records
            )
    _record_transport(obs, "sample_pool", stats, None)
    return records


def _map_chunks(
    state: Tuple[object, Optional[List[str]], Optional[int]],
    chunks: List[List[int]],
    max_workers: int,
    task,
    *,
    obs=None,
    section: str,
) -> List[object]:
    """Run ``task`` over ``chunks`` on a pool, preserving chunk order.

    Shared transport for every day-chunk fan-out.  Where ``fork`` is
    available workers inherit ``state`` through copy-on-write memory;
    elsewhere it is pickled once into the pool initializer.  ``obs``
    receives the pool shape under ``timings.execution``.
    """
    global _WORKER_STATE
    from repro.obs import resolve_obs
    from repro.scan.transport import ensure_parent_tracker

    ensure_parent_tracker()
    use_fork = "fork" in multiprocessing.get_all_start_methods()
    resolve_obs(obs).record_execution(
        section,
        transport="fork" if use_fork else "spawn",
        chunks=len(chunks),
        pool_workers=max_workers,
    )

    if use_fork:
        # Fork workers inherit the world via copy-on-write: the pickle
        # round-trip the old implementation paid per run is gone.
        _WORKER_STATE = state
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=multiprocessing.get_context("fork"),
            ) as pool:
                return list(pool.map(task, chunks))
        finally:
            _WORKER_STATE = None

    try:
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ValueError(
            "parallel collection requires a picklable world; "
            f"pickling the Internet failed: {exc!r}"
        ) from exc
    with ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=_init_worker,
        initargs=(blob,),
    ) as pool:
        return list(pool.map(task, chunks))


def _record_transport(obs, section: str, stats, metrics) -> None:
    """Fold a pool's result-transport byte counts into obs and metrics.

    These are run-shape numbers (a serial run moves zero bytes), so
    they live under ``timings.execution`` — never in the deterministic
    manifest sections.
    """
    from repro.obs import resolve_obs

    resolve_obs(obs).record_execution(
        section,
        accumulate=True,
        transport_bytes=stats.transport_bytes,
        spill_bytes=stats.spill_bytes,
    )
    if metrics is not None:
        metrics.transport_bytes += stats.transport_bytes
        metrics.spill_bytes += stats.spill_bytes


def _ingest(series: "SnapshotSeries", chunk_results) -> None:
    # map() preserves chunk order, so ingestion stays chronological and
    # the merged series is identical to a serial pass.
    for chunk_result in chunk_results:
        for ordinal, counts, ptrs in chunk_result:
            series._ingest_day(dt.date.fromordinal(ordinal), counts, ptrs)
