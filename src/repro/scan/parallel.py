"""Process-pool fan-out for snapshot collection.

A multi-year full-address-space series visits thousands of simulated
days, and every day is derived independently: all randomness comes from
``RngStreams.fresh(label, ..., day.toordinal())`` streams, so the order
in which days are evaluated — or the process that evaluates them —
cannot change the outcome.  That makes day-chunk parallelism safe:
:func:`collect_days` splits the day list into contiguous chunks, ships
the pickled :class:`~repro.netsim.internet.Internet` to each worker
once (pool initializer), derives chunks concurrently, and merges the
results in chronological order.  The merged series is bit-identical to
a serial run (the equivalence regression test in
``tests/scan/test_parallel_cache.py`` pins this).
"""

from __future__ import annotations

import datetime as dt
import math
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scan.snapshot import SnapshotCollector, SnapshotSeries

#: Per-worker state, installed by the pool initializer.  Worker
#: processes are single-purpose, so a module global is the simplest
#: way to pay the world-unpickling cost once per worker.
_WORKER_STATE: Optional[Tuple[object, Optional[List[str]], Optional[int]]] = None


def default_workers() -> int:
    """A sensible worker count: the CPUs available, capped at 8."""
    return min(os.cpu_count() or 1, 8)


def _init_worker(
    internet_blob: bytes,
    network_names: Optional[List[str]],
    at_offset: Optional[int],
) -> None:
    global _WORKER_STATE
    internet = pickle.loads(internet_blob)
    _WORKER_STATE = (internet, network_names, at_offset)


def _collect_chunk(
    ordinals: List[int],
) -> List[Tuple[int, Dict[str, int], Set[str]]]:
    """Derive one contiguous chunk of days inside a worker process."""
    from repro.scan.snapshot import derive_day

    assert _WORKER_STATE is not None, "worker initializer did not run"
    internet, network_names, at_offset = _WORKER_STATE
    results = []
    for ordinal in ordinals:
        day = dt.date.fromordinal(ordinal)
        counts, ptrs = derive_day(internet, network_names, day, at_offset)
        results.append((ordinal, counts, ptrs))
    return results


def chunk_days(days: Sequence[dt.date], workers: int) -> List[List[dt.date]]:
    """Split ``days`` into contiguous chunks, ~4 per worker.

    Several chunks per worker keeps the pool busy when chunks take
    uneven time (weekday/weekend day mixes differ in cost) without
    paying per-day task overhead.
    """
    if not days:
        return []
    target = max(1, math.ceil(len(days) / (workers * 4)))
    return [list(days[index:index + target]) for index in range(0, len(days), target)]


def collect_days(
    collector: "SnapshotCollector",
    days: Sequence[dt.date],
    *,
    workers: int,
) -> "SnapshotSeries":
    """Collect ``days`` for ``collector`` on a process pool.

    Raises ``ValueError`` if the world cannot be pickled (worlds built
    by :func:`repro.netsim.internet.build_world` always can).
    """
    from repro.scan.snapshot import SnapshotSeries

    if workers < 2:
        raise ValueError("collect_days needs at least 2 workers; use collect() for serial")
    try:
        blob = pickle.dumps(collector.internet, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise ValueError(
            "parallel collection requires a picklable world; "
            f"pickling the Internet failed: {exc!r}"
        ) from exc

    series = SnapshotSeries(
        collector.name,
        collector.internet,
        collector.networks,
        at_offset=collector.at_offset,
        cadence_days=collector.cadence_days,
    )
    chunks = [
        [day.toordinal() for day in chunk] for chunk in chunk_days(days, workers)
    ]
    network_names = list(collector.networks) if collector.networks is not None else None
    with ProcessPoolExecutor(
        max_workers=min(workers, len(chunks)),
        initializer=_init_worker,
        initargs=(blob, network_names, collector.at_offset),
    ) as pool:
        # map() preserves chunk order, so ingestion stays chronological
        # and the merged series is identical to a serial pass.
        for chunk_result in pool.map(_collect_chunk, chunks):
            for ordinal, counts, ptrs in chunk_result:
                series._ingest_day(dt.date.fromordinal(ordinal), counts, ptrs)
    return series
