"""Full-address-space rDNS snapshot collectors.

Models the two measurement platforms of Section 3: OpenINTEL collects
*daily* snapshots, Rapid7's Project Sonar *weekly* ones ("a single
weekday every week").  The paper consumes these as given datasets; the
collector therefore reads zone state in bulk rather than replaying
billions of PTR queries, while the reactive instrument
(:mod:`repro.scan.reactive`) exercises the full resolver path.

Collection windows are **half-open** ``[start, end)`` throughout:
``start`` is always collected (cadence permitting), ``end`` never is.

Multi-year windows are expensive to simulate serially, so
:meth:`SnapshotCollector.collect` can fan day-chunks out over a process
pool (``workers=N``, see :mod:`repro.scan.parallel`) and consult an
on-disk :class:`~repro.scan.cache.SnapshotCache` so repeated studies
pay for each simulation once.  Per-day derivation draws only from
``RngStreams.fresh(label, ..., day.toordinal())`` streams, which makes
results independent of evaluation order: parallel and cached
collection are bit-identical to serial.
"""

from __future__ import annotations

import datetime as dt
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.netsim.internet import Internet
from repro.netsim.network import Network
from repro.netsim.simtime import days_between
from repro.scan.storage import (
    COLUMNAR_PAYLOAD_VERSION,
    DATASET_FORMAT_VERSION,
    CountMatrix,
    PrefixTable,
    decode_count_columns,
    encode_count_columns,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scan.cache import SnapshotCache


@dataclass(frozen=True)
class SnapshotStats:
    """One row of the paper's Table 1."""

    name: str
    start_date: dt.date
    end_date: dt.date
    snapshots: int
    total_responses: int
    unique_ptrs: int


@dataclass
class CollectionMetrics:
    """Lightweight counters for one ``collect`` call.

    ``workers`` echoes the request; ``effective_workers`` is what
    actually ran after the never-slower fallback (see
    :func:`repro.scan.parallel.effective_workers`).
    ``simulate_seconds`` covers day derivation (or payload decoding on
    a cache hit); ``total_seconds`` the whole call including cache I/O.
    """

    workers: int = 1
    effective_workers: int = 1
    days: int = 0
    responses: int = 0
    cache_hit: bool = False
    cache_key: Optional[str] = None
    cache_stored: bool = False
    #: True when a legacy (pre-columnar) payload was decoded and the
    #: entry was transparently rewritten in the v3 format.
    cache_migrated: bool = False
    #: True when a cache store failed mid-write (its partial ``*.tmp``
    #: file was cleaned up — see ``_JsonFileCache.tmp_cleanups``); the
    #: collection itself still succeeded, only persistence was lost.
    cache_store_failed: bool = False
    #: Bytes of worker results that crossed the process boundary as
    #: packed columnar blobs (shared-memory segments or inline bytes)
    #: instead of pickled dicts.  Zero for serial runs.  Run-shape
    #: detail, so it is reported under ``timings.execution``, never in
    #: the deterministic manifest sections.
    transport_bytes: int = 0
    #: The subset of :attr:`transport_bytes` that went through on-disk
    #: spill files rather than shared memory (``REPRO_POOL_TRANSPORT=
    #: spill`` or a shared-memory publish failure).
    spill_bytes: int = 0
    simulate_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def days_per_second(self) -> float:
        return self.days / self.total_seconds if self.total_seconds > 0 else 0.0

    def describe(self) -> str:
        source = "cache" if self.cache_hit else f"{self.effective_workers} worker(s)"
        return (
            f"{self.days} snapshot day(s) via {source} in "
            f"{self.total_seconds:.2f}s ({self.days_per_second:.1f} days/s, "
            f"{self.responses:,} responses)"
        )


@dataclass
class SampleMetrics:
    """Counters for one :meth:`SnapshotSeries.sample_records` call."""

    workers: int = 1
    effective_workers: int = 1
    days: int = 0
    raw_records: int = 0
    unique_records: int = 0
    total_seconds: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.unique_records:,} unique of {self.raw_records:,} records "
            f"over {self.days} day(s) via {self.effective_workers} worker(s) "
            f"in {self.total_seconds:.2f}s"
        )


def derive_day(
    internet: Internet,
    network_names: Optional[Sequence[str]],
    day: dt.date,
    at_offset: Optional[int],
) -> Tuple[Dict[str, int], Set[str]]:
    """One day's (/24 counts, PTR hostnames) — the unit of collection.

    Shared by the serial path and the worker processes of
    :mod:`repro.scan.parallel`; determinism of this function is what
    guarantees parallel results are bit-identical to serial ones.
    """
    if network_names is None:
        networks: List[Network] = internet.networks
    else:
        networks = [internet.network(name) for name in network_names]
    counts: Dict[str, int] = {}
    ptrs: Set[str] = set()
    for network in networks:
        for key, count in network.counts_by_slash24(day, at_offset=at_offset).items():
            counts[key] = counts.get(key, 0) + count
        for _, hostname in network.records_on(day, at_offset=at_offset):
            ptrs.add(hostname)
    return counts, ptrs


class LazyPtrSet:
    """Unique PTR names backed by a blockfile's PTRS records.

    Installed by :meth:`SnapshotSeries.from_payload` for v4 cache
    pairs: ``len()`` answers from the record headers without decoding
    a single name (the warm-stats path), while any real set operation
    — iteration, membership, :meth:`update` — materialises the names
    from the sidecar first.
    """

    def __init__(self, reader):
        self._reader = reader
        self._names: Optional[Set[str]] = None

    def _materialise(self) -> Set[str]:
        if self._names is None:
            self._names = self._reader.unique_ptrs()
        return self._names

    def __len__(self) -> int:
        if self._names is None:
            return self._reader.unique_ptr_count
        return len(self._names)

    def __iter__(self):
        return iter(self._materialise())

    def __contains__(self, name) -> bool:
        return name in self._materialise()

    def add(self, name: str) -> None:
        self._materialise().add(name)

    def update(self, names) -> None:
        self._materialise().update(names)


class SnapshotSeries:
    """The output of one collector over one period.

    Per-day /24 counts are materialised eagerly (they feed the
    dynamicity heuristic) and held columnar — a shared
    :class:`~repro.scan.storage.PrefixTable` plus one dense count
    column per day (:class:`~repro.scan.storage.CountMatrix`); the
    dict-shaped accessors below are thin views over those columns.
    Full per-day record sets are re-derived on demand from the
    deterministic simulation, mirroring how one would re-read raw
    snapshot files from disk.
    """

    def __init__(
        self,
        name: str,
        internet: Internet,
        networks: Optional[Sequence[str]] = None,
        *,
        at_offset: Optional[int] = None,
        cadence_days: int = 1,
    ):
        if cadence_days < 1:
            raise ValueError("cadence_days must be at least 1")
        self.name = name
        self._internet = internet
        self._network_names = list(networks) if networks is not None else None
        self._at_offset = at_offset
        self._cadence_days = cadence_days
        self._days: List[dt.date] = []
        self._day_index: Dict[dt.date, int] = {}
        self._matrix = CountMatrix()
        self._total_responses = 0
        self._unique_ptrs: Set[str] = set()
        #: Counters from the most recent :meth:`sample_records` call.
        self.last_sample_metrics: Optional["SampleMetrics"] = None

    # -- collection (used by SnapshotCollector) ------------------------------

    def _networks(self) -> List[Network]:
        if self._network_names is None:
            return self._internet.networks
        return [self._internet.network(name) for name in self._network_names]

    def _collect_day(self, day: dt.date) -> None:
        counts, ptrs = derive_day(self._internet, self._network_names, day, self._at_offset)
        self._ingest_day(day, counts, ptrs)

    def _ingest_day(self, day: dt.date, counts: Dict[str, int], ptrs: Set[str]) -> None:
        """Append one derived day, enforcing order and cadence."""
        if self._days:
            gap = (day - self._days[-1]).days
            if gap <= 0:
                raise ValueError(f"{self.name}: day {day} is not after {self._days[-1]}")
            if gap != self._cadence_days:
                raise ValueError(
                    f"{self.name}: snapshot spacing {gap}d contradicts the "
                    f"declared cadence of {self._cadence_days}d"
                )
        self._day_index[day] = len(self._days)
        self._matrix.append_day(counts)
        self._total_responses += self._matrix.day_total(self._day_index[day])
        self._unique_ptrs.update(ptrs)
        self._days.append(day)

    # -- access ------------------------------------------------------------------

    @property
    def days(self) -> List[dt.date]:
        return list(self._days)

    @property
    def cadence_days(self) -> int:
        """The collector's declared cadence (1 = daily, 7 = weekly).

        Declared at construction and validated against the actual
        snapshot spacing as days are ingested — a single-snapshot
        weekly series still reports 7, where the old first-two-days
        inference silently returned 1.
        """
        return self._cadence_days

    def inferred_cadence_days(self) -> Optional[int]:
        """Spacing of the first two snapshots (consistency check only)."""
        if len(self._days) < 2:
            return None
        return (self._days[1] - self._days[0]).days

    def counts_by_slash24(self, day: dt.date) -> Dict[str, int]:
        """Day's /24 counts as a fresh dict (callers may mutate it)."""
        return self._matrix.day_counts(self._day_index[day])

    def counts_view(self, day: dt.date) -> Mapping[str, int]:
        """Day's /24 counts as a no-copy read-only mapping.

        The view is backed directly by the series' count column —
        analysis loops that only read (the dynamicity heuristic, the
        occupancy series) use this to skip the per-day dict copy that
        :meth:`counts_by_slash24` pays for mutability.
        """
        return self._matrix.day_view(self._day_index[day])

    def count_matrix(self) -> CountMatrix:
        """The interned columnar store itself (shared, treat as read-only).

        Columnar consumers — :class:`repro.core.dynamicity.DynamicityAnalyzer`
        walks count columns by prefix ID — take this instead of
        re-assembling ``{date: {prefix: count}}`` dicts.
        """
        return self._matrix

    def prefix_table(self) -> PrefixTable:
        """The series' interned prefix table (shared with the matrix)."""
        return self._matrix.prefixes

    def daily_totals(self) -> Dict[dt.date, int]:
        """Per-day response totals (accumulated at ingest, never re-summed)."""
        return dict(zip(self._days, self._matrix.totals))

    def records_on(self, day: dt.date) -> Iterator[Tuple[object, str]]:
        """Re-derive the full (address, hostname) set for a collected day."""
        if day not in self._day_index:
            raise KeyError(f"{self.name} holds no snapshot for {day}")
        for network in self._networks():
            yield from network.records_on(day, at_offset=self._at_offset)

    def sample_records(
        self,
        days: Optional[Sequence[dt.date]] = None,
        *,
        workers: int = 1,
        obs=None,
    ) -> List[Tuple[object, str]]:
        """One deduplicated (address, hostname) sample over ``days``.

        The shared derivation pass behind the leak funnel: every
        (network, day) record list is derived exactly once — reusing
        the per-network day caches — and records are deduplicated in
        first-seen order, so downstream consumers no longer re-walk
        ``records_on`` day by day.  ``workers > 1`` fans day-chunks
        over the same process pool as collection (capped by
        :func:`repro.scan.parallel.effective_workers`); the merged
        sample is bit-identical to the serial pass.  Counters land in
        :attr:`last_sample_metrics`, and when ``obs`` (an
        :class:`repro.obs.Observability` handle) is given the pass is
        traced as a ``snapshot.sample`` span with deterministic record
        counters.
        """
        from repro.obs import resolve_obs
        from repro.scan.parallel import effective_workers, sample_day_records

        obs = resolve_obs(obs)
        sample_days = list(days) if days is not None else list(self._days)
        for day in sample_days:
            if day not in self._day_index:
                raise KeyError(f"{self.name} holds no snapshot for {day}")
        started = time.perf_counter()
        metrics = SampleMetrics(workers=max(1, workers), days=len(sample_days))
        metrics.effective_workers = effective_workers(workers, len(sample_days))
        self.last_sample_metrics = metrics

        with obs.span("snapshot.sample", collector=self.name) as span:
            if metrics.effective_workers > 1:
                raw = sample_day_records(
                    self._internet,
                    self._network_names,
                    sample_days,
                    at_offset=self._at_offset,
                    workers=metrics.effective_workers,
                    obs=obs,
                )
            else:
                raw = (
                    record
                    for day in sample_days
                    for network in self._networks()
                    for record in network.records_on(day, at_offset=self._at_offset)
                )
            seen: Set[Tuple[object, str]] = set()
            records: List[Tuple[object, str]] = []
            for record in raw:
                if record not in seen:
                    seen.add(record)
                    records.append(record)
                metrics.raw_records += 1
            metrics.unique_records = len(records)
            span.set("days", metrics.days)
            span.set("raw_records", metrics.raw_records)
            span.set("unique_records", metrics.unique_records)
            obs.metrics.counter("snapshot_sample_records_total").inc(metrics.raw_records)
            obs.metrics.counter("snapshot_sample_unique_total").inc(metrics.unique_records)
        metrics.total_seconds = time.perf_counter() - started
        obs.record_execution(
            "snapshot_sample",
            workers=metrics.workers,
            effective_workers=metrics.effective_workers,
        )
        return records

    def stats(self) -> SnapshotStats:
        return SnapshotStats(
            name=self.name,
            start_date=self._days[0],
            end_date=self._days[-1],
            snapshots=len(self._days),
            total_responses=self._total_responses,
            unique_ptrs=len(self._unique_ptrs),
        )

    def __len__(self) -> int:
        return len(self._days)

    # -- cache serialisation -------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-serialisable snapshot of the collected state.

        The self-contained columnar document
        (:data:`~repro.scan.storage.COLUMNAR_PAYLOAD_VERSION`, v3): the
        interned prefix table is stored once and each day's counts are
        a delta-encoded varint column
        (:func:`~repro.scan.storage.encode_count_columns`), so a warm
        decode no longer re-parses ``O(days × prefixes)`` JSON dict
        keys.  This remains the wire/export format; the *cache* stores
        series as v4 blockfile pairs via
        :meth:`~repro.scan.cache.SnapshotCache.store_series` (see
        :meth:`to_cache_payload`).
        """
        return {
            "version": COLUMNAR_PAYLOAD_VERSION,
            "name": self.name,
            "networks": self._network_names,
            "at_offset": self._at_offset,
            "cadence_days": self._cadence_days,
            "days": [day.isoformat() for day in self._days],
            "prefixes": list(self._matrix.prefixes.values),
            "columns": encode_count_columns(self._matrix),
            "daily_totals": list(self._matrix.totals),
            "total_responses": self._total_responses,
            "unique_ptrs": sorted(self._unique_ptrs),
        }

    def blockfile_parts(self) -> Tuple[List[str], List[int], list, List[int]]:
        """``(prefixes, day_ordinals, columns, totals)`` for the blockfile.

        Columns are handed out as-is (heap arrays or zero-copy views),
        so re-encoding an mmap-backed series never materialises the
        matrix.
        """
        matrix = self._matrix
        return (
            list(matrix.prefixes.values),
            [day.toordinal() for day in self._days],
            [matrix.column(index) for index in range(matrix.day_count)],
            list(matrix.totals),
        )

    def sorted_unique_ptrs(self) -> List[str]:
        """The unique PTR names in sorted order (for the PTRS record)."""
        return sorted(self._unique_ptrs)

    def to_cache_payload(self, blockfile: str, sha256: str, nbytes: int) -> dict:
        """The v4 cache JSON document referencing a sidecar blockfile.

        The count data *and* the unique PTR names live in the ``.rbf``
        sidecar (:mod:`repro.scan.blockfile`); this document carries
        only the metadata plus the sidecar's name, size and SHA-256
        (checked by ``repro cache verify``).  ``unique_ptr_count`` is
        denormalised here so inspection tools can report it without
        touching the sidecar; decoders take it from the PTRS record
        headers instead.
        """
        return {
            "version": DATASET_FORMAT_VERSION,
            "name": self.name,
            "networks": self._network_names,
            "at_offset": self._at_offset,
            "cadence_days": self._cadence_days,
            "days": [day.isoformat() for day in self._days],
            "blockfile": blockfile,
            "blockfile_sha256": sha256,
            "blockfile_bytes": nbytes,
            "total_responses": self._total_responses,
            "unique_ptr_count": len(self._unique_ptrs),
        }

    @classmethod
    def from_payload(cls, payload: dict, internet: Internet) -> "SnapshotSeries":
        """Rebuild a series from :meth:`to_payload` output.

        ``internet`` must be the world the payload was derived from —
        ``records_on`` re-derives full record sets from it.  The cache
        layer guarantees this by keying entries on
        :meth:`~repro.netsim.internet.Internet.cache_token`.

        Payloads from earlier eras are migrated transparently: v2
        (``version`` absent or ``<= 2``, per-day ``{prefix: count}``
        JSON dicts) and v3 (inline varint columns) both decode here,
        and the collector additionally rewrites such cache entries as
        v4 blockfile pairs so later reads take the zero-copy path.  A
        v4 payload must carry ``blockfile_path`` (injected by
        :meth:`~repro.scan.cache.SnapshotCache.load`); its matrix is
        mmap-backed — count columns are views into the file.
        """
        series = cls(
            payload["name"],
            internet,
            payload["networks"],
            at_offset=payload["at_offset"],
            cadence_days=payload["cadence_days"],
        )
        series._days = [dt.date.fromisoformat(text) for text in payload["days"]]
        series._day_index = {day: index for index, day in enumerate(series._days)}
        if payload.get("version", 2) >= 4:
            from repro.scan.blockfile import BlockFileReader

            reader = BlockFileReader.open(payload["blockfile_path"])
            if reader.days != [day.toordinal() for day in series._days]:
                raise ValueError(
                    f"blockfile day ordinals disagree with the payload's "
                    f"{len(series._days)} declared days"
                )
            series._matrix = reader.count_matrix()
            series._unique_ptrs = LazyPtrSet(reader)
        elif payload.get("version", 2) >= 3:
            series._matrix = decode_count_columns(
                payload["prefixes"], payload["columns"], payload.get("daily_totals")
            )
        else:
            # v2 era: one JSON dict per day.  Interning in day order
            # reproduces the exact prefix table a fresh collection
            # builds, so a migrated entry re-encodes byte-identically.
            series._matrix = CountMatrix.from_day_dicts(
                {prefix: int(count) for prefix, count in payload["counts"][text].items()}
                for text in payload["days"]
            )
        if series._matrix.day_count != len(series._days):
            raise ValueError(
                f"payload carries {series._matrix.day_count} count columns "
                f"for {len(series._days)} days"
            )
        series._total_responses = int(payload["total_responses"])
        if "unique_ptrs" in payload:
            series._unique_ptrs = set(payload["unique_ptrs"])
        # else: v4 pair — the lazy sidecar-backed set installed above.
        return series


def legacy_dict_payload(series: "SnapshotSeries") -> dict:
    """Encode ``series`` in the pre-columnar (v2) payload format.

    Retained as the executable definition of the legacy schema: the
    migration round-trip tests and the warm-decode benchmark use it to
    produce authentic v2 payloads without keeping old cache files
    around.
    """
    return {
        "name": series.name,
        "networks": series._network_names,
        "at_offset": series._at_offset,
        "cadence_days": series._cadence_days,
        "days": [day.isoformat() for day in series._days],
        "counts": {
            day.isoformat(): series.counts_by_slash24(day) for day in series._days
        },
        "total_responses": series._total_responses,
        "unique_ptrs": sorted(series._unique_ptrs),
    }


class SnapshotCollector:
    """Collects a snapshot series at a fixed cadence."""

    #: Second-of-day at which the daily sweep samples PTR state.  A
    #: snapshot is a point-in-time measurement: an evening-only client
    #: whose one-hour lease expired by noon has no record to observe.
    DEFAULT_SNAPSHOT_OFFSET = 12 * 3600

    def __init__(
        self,
        internet: Internet,
        name: str,
        *,
        cadence_days: int = 1,
        networks: Optional[Sequence[str]] = None,
        at_offset: Optional[int] = DEFAULT_SNAPSHOT_OFFSET,
        obs=None,
    ):
        if cadence_days < 1:
            raise ValueError("cadence_days must be at least 1")
        self.internet = internet
        self.name = name
        self.cadence_days = cadence_days
        self.networks = networks
        self.at_offset = at_offset
        #: Optional :class:`repro.obs.Observability` handle; spans and
        #: counters are recorded there (no-op when ``None``).
        self.obs = obs
        #: Counters from the most recent :meth:`collect` call.
        self.last_metrics: Optional[CollectionMetrics] = None

    @classmethod
    def openintel_style(cls, internet: Internet, **kwargs) -> "SnapshotCollector":
        """Daily snapshots (OpenINTEL collects daily)."""
        return cls(internet, "OpenINTEL", cadence_days=1, **kwargs)

    @classmethod
    def rapid7_style(cls, internet: Internet, **kwargs) -> "SnapshotCollector":
        """Weekly snapshots (Rapid7 collects one weekday every week)."""
        return cls(internet, "Rapid7 Sonar", cadence_days=7, **kwargs)

    def snapshot_days(self, start: dt.date, end: dt.date) -> List[dt.date]:
        """The days a collection over ``[start, end)`` snapshots."""
        if end <= start:
            raise ValueError("end must be after start")
        return [
            day
            for index, day in enumerate(days_between(start, end))
            if index % self.cadence_days == 0
        ]

    def collect(
        self,
        start: dt.date,
        end: dt.date,
        *,
        workers: int = 1,
        cache: Optional["SnapshotCache"] = None,
    ) -> SnapshotSeries:
        """Collect all snapshots in the half-open window ``[start, end)``.

        ``workers > 1`` fans day-chunks out over a process pool;
        ``cache`` consults and fills an on-disk
        :class:`~repro.scan.cache.SnapshotCache`.  Both produce results
        bit-identical to a serial, uncached run.  The pool is capped by
        :func:`repro.scan.parallel.effective_workers` so a ``workers``
        request can never run slower than serial (short windows and
        single-core hosts fall back); the cap actually used is recorded
        in :attr:`CollectionMetrics.effective_workers`.  Timing and
        cache counters land in :attr:`last_metrics`; when the collector
        carries an :class:`repro.obs.Observability` handle, the call is
        traced as a ``snapshot.collect`` span, deterministic counts
        land in the metrics registry and run-shape details (workers,
        cache traffic) under ``timings.execution``.
        """
        from repro.obs import resolve_obs

        obs = resolve_obs(self.obs)
        cache_baseline = cache.execution_snapshot() if cache is not None else None
        with obs.span("snapshot.collect", collector=self.name) as span:
            series = self._collect(start, end, workers=workers, cache=cache)
            metrics = self.last_metrics
            span.set("days", metrics.days)
            span.set("responses", metrics.responses)
            span.set("cadence_days", self.cadence_days)
            obs.metrics.counter("snapshot_days_total").inc(metrics.days)
            obs.metrics.counter("snapshot_responses_total").inc(metrics.responses)
        obs.record_execution(
            "snapshot",
            workers=metrics.workers,
            effective_workers=metrics.effective_workers,
            cache_hit=metrics.cache_hit,
            transport_bytes=metrics.transport_bytes,
            spill_bytes=metrics.spill_bytes,
        )
        if cache is not None:
            cache.export_metrics(obs, section="snapshot", baseline=cache_baseline)
        return series

    def _collect(
        self,
        start: dt.date,
        end: dt.date,
        *,
        workers: int,
        cache: Optional["SnapshotCache"],
    ) -> SnapshotSeries:
        from repro.scan.parallel import effective_workers

        started = time.perf_counter()
        days = self.snapshot_days(start, end)
        metrics = CollectionMetrics(workers=max(1, workers), days=len(days))
        metrics.effective_workers = effective_workers(workers, len(days))
        self.last_metrics = metrics

        key: Optional[str] = None
        if cache is not None:
            key = cache.key_for(
                world_token=self.internet.cache_token(),
                name=self.name,
                networks=self.networks,
                start=start,
                end=end,
                cadence_days=self.cadence_days,
                at_offset=self.at_offset,
            )
            metrics.cache_key = key
            payload = cache.load(key)
            if payload is not None:
                simulate_started = time.perf_counter()
                series = SnapshotSeries.from_payload(payload, self.internet)
                metrics.cache_hit = True
                metrics.responses = series.stats().total_responses
                metrics.simulate_seconds = time.perf_counter() - simulate_started
                if payload.get("version", 2) < DATASET_FORMAT_VERSION:
                    # Transparent migration: rewrite the legacy entry
                    # as a v4 blockfile pair so the next warm read is
                    # mmap + frombuffer instead of varint/dict parsing.
                    # Best-effort — the decoded series is already good,
                    # so a failed rewrite only costs the fast path.
                    try:
                        cache.store_series(key, series)
                        metrics.cache_migrated = True
                    except (OSError, TypeError, ValueError):
                        metrics.cache_store_failed = True
                metrics.total_seconds = time.perf_counter() - started
                return series

        simulate_started = time.perf_counter()
        if metrics.effective_workers > 1:
            from repro.scan.parallel import collect_days

            series = collect_days(
                self,
                days,
                workers=metrics.effective_workers,
                obs=self.obs,
                metrics=metrics,
            )
        else:
            series = SnapshotSeries(
                self.name,
                self.internet,
                self.networks,
                at_offset=self.at_offset,
                cadence_days=self.cadence_days,
            )
            for day in days:
                series._collect_day(day)
        metrics.simulate_seconds = time.perf_counter() - simulate_started
        metrics.responses = series.stats().total_responses if days else 0

        if cache is not None and key is not None:
            # Best-effort: losing the cache write (full disk, bad
            # payload) must not lose the freshly collected series.
            try:
                cache.store_series(key, series)
                metrics.cache_stored = True
            except (OSError, TypeError, ValueError):
                metrics.cache_store_failed = True
        metrics.total_seconds = time.perf_counter() - started
        return series
