"""Full-address-space rDNS snapshot collectors.

Models the two measurement platforms of Section 3: OpenINTEL collects
*daily* snapshots, Rapid7's Project Sonar *weekly* ones ("a single
weekday every week").  The paper consumes these as given datasets; the
collector therefore reads zone state in bulk rather than replaying
billions of PTR queries, while the reactive instrument
(:mod:`repro.scan.reactive`) exercises the full resolver path.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.netsim.internet import Internet
from repro.netsim.network import Network
from repro.netsim.simtime import days_between


@dataclass(frozen=True)
class SnapshotStats:
    """One row of the paper's Table 1."""

    name: str
    start_date: dt.date
    end_date: dt.date
    snapshots: int
    total_responses: int
    unique_ptrs: int


class SnapshotSeries:
    """The output of one collector over one period.

    Per-day /24 counts are materialised eagerly (they feed the
    dynamicity heuristic); full per-day record sets are re-derived on
    demand from the deterministic simulation, mirroring how one would
    re-read raw snapshot files from disk.
    """

    def __init__(
        self,
        name: str,
        internet: Internet,
        networks: Optional[Sequence[str]] = None,
        *,
        at_offset: Optional[int] = None,
    ):
        self.name = name
        self._internet = internet
        self._network_names = list(networks) if networks is not None else None
        self._at_offset = at_offset
        self._days: List[dt.date] = []
        self._counts: Dict[dt.date, Dict[str, int]] = {}
        self._total_responses = 0
        self._unique_ptrs: set = set()

    # -- collection (used by SnapshotCollector) ------------------------------

    def _networks(self) -> List[Network]:
        if self._network_names is None:
            return self._internet.networks
        return [self._internet.network(name) for name in self._network_names]

    def _collect_day(self, day: dt.date) -> None:
        counts: Dict[str, int] = {}
        for network in self._networks():
            for key, count in network.counts_by_slash24(day, at_offset=self._at_offset).items():
                counts[key] = counts.get(key, 0) + count
            for _, hostname in network.records_on(day, at_offset=self._at_offset):
                self._unique_ptrs.add(hostname)
        self._counts[day] = counts
        self._total_responses += sum(counts.values())
        self._days.append(day)

    # -- access ------------------------------------------------------------------

    @property
    def days(self) -> List[dt.date]:
        return list(self._days)

    @property
    def cadence_days(self) -> int:
        if len(self._days) < 2:
            return 1
        return (self._days[1] - self._days[0]).days

    def counts_by_slash24(self, day: dt.date) -> Dict[str, int]:
        return dict(self._counts[day])

    def daily_totals(self) -> Dict[dt.date, int]:
        return {day: sum(self._counts[day].values()) for day in self._days}

    def records_on(self, day: dt.date) -> Iterator[Tuple[object, str]]:
        """Re-derive the full (address, hostname) set for a collected day."""
        if day not in self._counts:
            raise KeyError(f"{self.name} holds no snapshot for {day}")
        for network in self._networks():
            yield from network.records_on(day, at_offset=self._at_offset)

    def stats(self) -> SnapshotStats:
        return SnapshotStats(
            name=self.name,
            start_date=self._days[0],
            end_date=self._days[-1],
            snapshots=len(self._days),
            total_responses=self._total_responses,
            unique_ptrs=len(self._unique_ptrs),
        )

    def __len__(self) -> int:
        return len(self._days)


class SnapshotCollector:
    """Collects a snapshot series at a fixed cadence."""

    #: Second-of-day at which the daily sweep samples PTR state.  A
    #: snapshot is a point-in-time measurement: an evening-only client
    #: whose one-hour lease expired by noon has no record to observe.
    DEFAULT_SNAPSHOT_OFFSET = 12 * 3600

    def __init__(
        self,
        internet: Internet,
        name: str,
        *,
        cadence_days: int = 1,
        networks: Optional[Sequence[str]] = None,
        at_offset: Optional[int] = DEFAULT_SNAPSHOT_OFFSET,
    ):
        if cadence_days < 1:
            raise ValueError("cadence_days must be at least 1")
        self.internet = internet
        self.name = name
        self.cadence_days = cadence_days
        self.networks = networks
        self.at_offset = at_offset

    @classmethod
    def openintel_style(cls, internet: Internet, **kwargs) -> "SnapshotCollector":
        """Daily snapshots (OpenINTEL collects daily)."""
        return cls(internet, "OpenINTEL", cadence_days=1, **kwargs)

    @classmethod
    def rapid7_style(cls, internet: Internet, **kwargs) -> "SnapshotCollector":
        """Weekly snapshots (Rapid7 collects one weekday every week)."""
        return cls(internet, "Rapid7 Sonar", cadence_days=7, **kwargs)

    def collect(self, start: dt.date, end: dt.date) -> SnapshotSeries:
        """Collect all snapshots in [start, end)."""
        if end <= start:
            raise ValueError("end must be after start")
        series = SnapshotSeries(
            self.name, self.internet, self.networks, at_offset=self.at_offset
        )
        for index, day in enumerate(days_between(start, end)):
            if index % self.cadence_days == 0:
                series._collect_day(day)
        return series
