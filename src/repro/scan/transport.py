"""Columnar result transport for process-pool workers.

Pool workers used to return plain Python structures — per-day
``{prefix: count}`` dicts, PTR string sets, whole observation column
objects — which the executor pickled in the worker and unpickled in
the parent.  At shard scale that serialize-merge tax exceeded the work
being parallelised (``BENCH_shards.json`` recorded 0.74x "speedup" at
4 workers).  This module replaces the pickle round-trip with packed
columnar blobs: a worker flattens its results into one contiguous byte
string (raw little-endian integer columns plus newline-joined string
pools), publishes it out-of-band, and returns only a tiny
:class:`BlobHandle`.  The parent unpacks straight out of the shared
buffer — for counts, two ``frombuffer`` views and a ``zip`` — and the
rebuilt dicts preserve the worker's insertion order exactly, so prefix
interning (and therefore every downstream byte) is identical to a
serial run.

Three transports, selected by ``REPRO_POOL_TRANSPORT``:

* ``shm`` (default where available) — the blob lives in a
  ``multiprocessing.shared_memory`` segment; only its name and size
  cross the process boundary.  The parent parses directly from the
  mapped buffer, then closes and unlinks the segment.
* ``inline`` — the blob rides the normal result pickle as one
  ``bytes`` object (still one memcpy-friendly buffer instead of a
  million small objects; the universal fallback).
* ``spill`` — the blob is written to a temp file
  (``REPRO_POOL_SPILL_DIR`` overrides the directory) and only the path
  returns; for results bigger than comfortable shared-memory use.

A failed shared-memory publish (tiny ``/dev/shm``, exotic platform)
degrades to ``inline`` silently — the handle says what actually
happened, and the collectors surface the split as ``transport_bytes``
/ ``spill_bytes`` counters.
"""

from __future__ import annotations

import os
import struct
import sys
import tempfile
from array import array
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, TypeVar

try:  # pragma: no cover - exercised via whichever branch the host has
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

TRANSPORT_ENV = "REPRO_POOL_TRANSPORT"
SPILL_DIR_ENV = "REPRO_POOL_SPILL_DIR"

_MAGIC = b"RTB1"

T = TypeVar("T")


def _shm_available() -> bool:
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - always present on CPython >= 3.8
        return False
    return True


def ensure_parent_tracker() -> None:
    """Start the multiprocessing resource tracker in *this* process.

    Call before creating a pool whose workers publish shared-memory
    segments.  Without it, a fork child that creates the first segment
    spawns its own tracker, and that tracker unlinks the segment the
    moment the worker exits — before the parent ever opens it.  With
    the tracker already running here, children inherit it; the
    worker's register and the parent's unlink pair up in one place,
    and segments survive pool shutdown until consumed (and are still
    swept if the whole process dies).
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker API unavailable
        pass


def configured_transport() -> str:
    """The transport this process publishes with (env override first)."""
    env = os.environ.get(TRANSPORT_ENV, "").strip().lower()
    if env:
        if env not in ("shm", "inline", "spill"):
            raise ValueError(
                f"{TRANSPORT_ENV} must be one of shm/inline/spill, got {env!r}"
            )
        return env
    return "shm" if _shm_available() else "inline"


@dataclass
class BlobHandle:
    """A cheap-to-pickle reference to one published result blob."""

    kind: str  # "inline" | "shm" | "file"
    size: int
    data: Optional[bytes] = None
    name: Optional[str] = None
    path: Optional[str] = None


def publish(blob: bytes, transport: Optional[str] = None) -> BlobHandle:
    """Put ``blob`` where the parent can reach it; return the handle."""
    if transport is None:
        transport = configured_transport()
    size = len(blob)
    if transport == "shm":
        try:
            from multiprocessing import shared_memory

            segment = shared_memory.SharedMemory(create=True, size=max(1, size))
            segment.buf[:size] = blob
            segment.close()
            return BlobHandle(kind="shm", size=size, name=segment.name)
        except (OSError, ValueError):
            return BlobHandle(kind="inline", size=size, data=blob)
    if transport == "spill":
        spill_dir = os.environ.get(SPILL_DIR_ENV) or None
        fd, path = tempfile.mkstemp(prefix="repro-spill-", suffix=".blob", dir=spill_dir)
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        return BlobHandle(kind="file", size=size, path=path)
    return BlobHandle(kind="inline", size=size, data=blob)


def consume(handle: BlobHandle, parser: Callable[[memoryview], T]) -> T:
    """Run ``parser`` over the blob behind ``handle``, then release it.

    Shared-memory segments are parsed in place (no copy into the
    parent's heap beyond what the parser materialises) and unlinked
    afterwards; spill files are deleted after reading.
    """
    if handle.kind == "shm":
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(name=handle.name)
        try:
            view = memoryview(segment.buf)[: handle.size]
            try:
                return parser(view)
            finally:
                view.release()
        finally:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
    if handle.kind == "file":
        with open(handle.path, "rb") as stream:
            blob = stream.read()
        try:
            os.unlink(handle.path)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        return parser(memoryview(blob))
    return parser(memoryview(handle.data))


class TransportStats:
    """Byte counters a consumer accumulates over a batch of handles."""

    __slots__ = ("transport_bytes", "spill_bytes")

    def __init__(self) -> None:
        self.transport_bytes = 0
        self.spill_bytes = 0

    def count(self, handle: BlobHandle) -> None:
        self.transport_bytes += handle.size
        if handle.kind == "file":
            self.spill_bytes += handle.size


# -- primitive framing -------------------------------------------------------

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


class _Writer:
    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: List[bytes] = [_MAGIC]

    def u32(self, value: int) -> None:
        self._parts.append(_U32.pack(value))

    def u64(self, value: int) -> None:
        self._parts.append(_U64.pack(value))

    def raw(self, data: bytes) -> None:
        self._parts.append(_U64.pack(len(data)))
        self._parts.append(data)

    def u32_column(self, values: Sequence[int]) -> None:
        """A length-prefixed little-endian ``u32`` column."""
        self.u32(len(values))
        if _np is not None and isinstance(values, _np.ndarray):
            self._parts.append(values.astype("<u4", copy=False).tobytes())
            return
        arr = values if isinstance(values, array) else array("I", values)
        if sys.byteorder != "little" or arr.itemsize != 4:  # pragma: no cover
            self._parts.append(struct.pack(f"<{len(arr)}I", *arr))
        else:
            self._parts.append(arr.tobytes())

    def typed_column(self, column: array) -> None:
        """An ``array`` column with its typecode (same-machine framing).

        Worker and parent share one machine and interpreter build, so
        ``tobytes``/``frombytes`` round-trips exactly — the same
        contract the previous pickle transport relied on.
        """
        self._parts.append(column.typecode.encode("ascii"))
        self.raw(column.tobytes())

    def strings(self, values: Sequence[str]) -> None:
        """A string pool: newline-joined UTF-8 (the hot path), or a
        length-prefixed stream when a value embeds a newline."""
        if any("\n" in value for value in values):
            self._parts.append(b"\x01")
            self.u32(len(values))
            for value in values:
                self.raw(value.encode("utf-8"))
            return
        self._parts.append(b"\x00")
        self.u32(len(values))
        self.raw("\n".join(values).encode("utf-8"))

    def getvalue(self) -> bytes:
        return b"".join(self._parts)


class _Reader:
    __slots__ = ("_view", "_offset")

    def __init__(self, view: memoryview) -> None:
        self._view = view
        if bytes(view[:4]) != _MAGIC:
            raise ValueError("bad transport blob magic")
        self._offset = 4

    def u32(self) -> int:
        value = _U32.unpack_from(self._view, self._offset)[0]
        self._offset += 4
        return value

    def u64(self) -> int:
        value = _U64.unpack_from(self._view, self._offset)[0]
        self._offset += 8
        return value

    def raw(self) -> memoryview:
        length = self.u64()
        data = self._view[self._offset : self._offset + length]
        self._offset += length
        return data

    def u32_list(self) -> List[int]:
        count = self.u32()
        data = self._view[self._offset : self._offset + 4 * count]
        self._offset += 4 * count
        if _np is not None:
            return _np.frombuffer(data, dtype="<u4").tolist()
        if sys.byteorder != "little":  # pragma: no cover - big-endian only
            return list(struct.unpack(f"<{count}I", data))
        arr = array("I")
        arr.frombytes(data)
        return arr.tolist()

    def typed_column(self) -> array:
        typecode = bytes(self._view[self._offset : self._offset + 1]).decode("ascii")
        self._offset += 1
        column = array(typecode)
        column.frombytes(self.raw())
        return column

    def strings(self) -> List[str]:
        mode = self._view[self._offset]
        self._offset += 1
        count = self.u32()
        if mode == 1:
            return [str(self.raw(), "utf-8") for _ in range(count)]
        text = str(self.raw(), "utf-8")
        if not count:
            return []
        values = text.split("\n")
        if len(values) != count:
            raise ValueError(
                f"string pool declares {count} values, decoded {len(values)}"
            )
        return values


# -- day-count chunks (snapshot collection) ----------------------------------


def pack_day_chunk(results: Sequence[Tuple[int, Dict[str, int], Set[str]]]) -> bytes:
    """Pack ``(ordinal, {prefix: count}, {ptr, ...})`` day results.

    Prefixes are interned into one chunk-local pool in first-seen
    (dict-insertion) order and each day stores parallel ``u32``
    id/count columns, so unpacking rebuilds every dict with exactly
    the iteration order the worker produced — the property that keeps
    parent-side prefix interning bit-identical to a serial run.
    """
    writer = _Writer()
    pool: Dict[str, int] = {}
    per_day: List[Tuple[int, List[int], List[int], List[str]]] = []
    for ordinal, counts, ptrs in results:
        ids = []
        for prefix in counts:
            code = pool.get(prefix)
            if code is None:
                code = len(pool)
                pool[prefix] = code
            ids.append(code)
        per_day.append((ordinal, ids, list(counts.values()), sorted(ptrs)))
    writer.u32(len(per_day))
    writer.strings(list(pool))
    for ordinal, ids, values, ptrs in per_day:
        writer.u64(ordinal)
        writer.u32_column(ids)
        writer.u32_column(values)
        writer.strings(ptrs)
    return writer.getvalue()


def unpack_day_chunk(view: memoryview) -> List[Tuple[int, Dict[str, int], Set[str]]]:
    reader = _Reader(view)
    day_count = reader.u32()
    pool = reader.strings()
    results = []
    for _ in range(day_count):
        ordinal = reader.u64()
        ids = reader.u32_list()
        values = reader.u32_list()
        if len(ids) != len(values):
            raise ValueError("day chunk id/count columns disagree")
        counts = {pool[code]: value for code, value in zip(ids, values)}
        ptrs = set(reader.strings())
        results.append((ordinal, counts, ptrs))
    return results


# -- record chunks (full per-day record sampling) ----------------------------


def pack_record_chunk(results: Sequence[Tuple[int, List[Tuple[int, str]]]]) -> bytes:
    """Pack ``(ordinal, [(address_int, hostname), ...])`` day results."""
    writer = _Writer()
    writer.u32(len(results))
    for ordinal, records in results:
        writer.u64(ordinal)
        writer.u32_column([address for address, _ in records])
        writer.strings([hostname for _, hostname in records])
    return writer.getvalue()


def unpack_record_chunk(view: memoryview) -> List[Tuple[int, List[Tuple[int, str]]]]:
    reader = _Reader(view)
    results = []
    for _ in range(reader.u32()):
        ordinal = reader.u64()
        addresses = reader.u32_list()
        hostnames = reader.strings()
        if len(addresses) != len(hostnames):
            raise ValueError("record chunk address/hostname columns disagree")
        results.append((ordinal, list(zip(addresses, hostnames))))
    return results


# -- observation columns (campaign fan-out) ----------------------------------


def pack_icmp_columns(columns) -> bytes:
    """Flatten an :class:`~repro.scan.storage.IcmpColumns` store."""
    writer = _Writer()
    writer.typed_column(columns._addresses)
    writer.typed_column(columns._ats)
    writer.typed_column(columns._network_ids)
    writer.strings(columns._networks.values)
    return writer.getvalue()


def unpack_icmp_columns(view: memoryview):
    from repro.scan.storage import IcmpColumns, _Interner

    reader = _Reader(view)
    columns = IcmpColumns()
    columns._addresses = reader.typed_column()
    columns._ats = reader.typed_column()
    columns._network_ids = reader.typed_column()
    columns._networks = _Interner(reader.strings())
    return columns


def pack_rdns_columns(columns) -> bytes:
    """Flatten an :class:`~repro.scan.storage.RdnsColumns` store.

    Status ids travel raw: worker and parent run the same interpreter
    image, so the enum table is identical on both sides (the JSON
    payload path keeps the value-remapping defence for at-rest data).
    """
    writer = _Writer()
    writer.typed_column(columns._addresses)
    writer.typed_column(columns._ats)
    writer.typed_column(columns._status_ids)
    writer.typed_column(columns._hostname_ids)
    writer.typed_column(columns._network_ids)
    writer.strings(columns._hostnames.values)
    writer.strings(columns._networks.values)
    return writer.getvalue()


def pack_campaign_columns(icmp, rdns) -> bytes:
    """One blob carrying a network result's ICMP and rDNS columns."""
    writer = _Writer()
    writer.raw(pack_icmp_columns(icmp))
    writer.raw(pack_rdns_columns(rdns))
    return writer.getvalue()


def unpack_campaign_columns(view: memoryview):
    reader = _Reader(view)
    icmp = unpack_icmp_columns(reader.raw())
    rdns = unpack_rdns_columns(reader.raw())
    return icmp, rdns


def pack_campaign_batch(column_pairs) -> bytes:
    """One blob for a shard batch: ``[(icmp, rdns), ...]`` in order."""
    writer = _Writer()
    pairs = list(column_pairs)
    writer.u32(len(pairs))
    for icmp, rdns in pairs:
        writer.raw(pack_campaign_columns(icmp, rdns))
    return writer.getvalue()


def unpack_campaign_batch(view: memoryview):
    reader = _Reader(view)
    return [unpack_campaign_columns(reader.raw()) for _ in range(reader.u32())]


def unpack_rdns_columns(view: memoryview):
    from repro.scan.storage import RdnsColumns, _Interner

    reader = _Reader(view)
    columns = RdnsColumns()
    columns._addresses = reader.typed_column()
    columns._ats = reader.typed_column()
    columns._status_ids = reader.typed_column()
    columns._hostname_ids = reader.typed_column()
    columns._network_ids = reader.typed_column()
    columns._hostnames = _Interner(reader.strings())
    columns._networks = _Interner(reader.strings())
    return columns
