"""Measurement infrastructure.

Implements the three data-collection instruments of the paper:

* :mod:`repro.scan.snapshot` — full-address-space rDNS snapshot
  collectors at daily (OpenINTEL-style) and weekly (Rapid7-style)
  cadence (Section 3, Table 1);
* :mod:`repro.scan.icmp` — a ZMap-style ICMP sweeper with rate limiting
  and an opt-out blocklist (Section 6.1);
* :mod:`repro.scan.reactive` — the reactive fine-grained measurement
  with the Table 2 back-off schedule, orchestrated per Figure 5;
* :mod:`repro.scan.campaign` — the supplemental campaign tying the
  above together against the nine selected networks.
"""

from repro.scan.observations import (
    IcmpObservation,
    RdnsObservation,
    read_icmp_csv,
    read_rdns_csv,
    write_icmp_csv,
    write_rdns_csv,
)
from repro.scan.ratelimit import TokenBucket
from repro.scan.cache import CampaignCache, SnapshotCache
from repro.scan.icmp import IcmpScanner
from repro.scan.parallel import WorkerBudget, default_workers, worker_cap
from repro.scan.rdns import RdnsLookupEngine
from repro.scan.snapshot import (
    CollectionMetrics,
    SampleMetrics,
    SnapshotCollector,
    SnapshotSeries,
    SnapshotStats,
)
from repro.scan.reactive import BackoffSchedule, ReactiveMonitor
from repro.scan.campaign import (
    CampaignMetrics,
    SupplementalCampaign,
    SupplementalDataset,
    run_network_campaign,
)
from repro.scan.storage import (
    DATASET_FORMAT_VERSION,
    CountMatrix,
    IcmpColumns,
    PrefixTable,
    RdnsColumns,
)
from repro.scan.persistence import load_dataset, save_dataset
from repro.scan.sharded import ShardedCampaign, ShardedCollector

__all__ = [
    "BackoffSchedule",
    "CampaignCache",
    "CampaignMetrics",
    "CollectionMetrics",
    "CountMatrix",
    "DATASET_FORMAT_VERSION",
    "IcmpColumns",
    "IcmpObservation",
    "IcmpScanner",
    "PrefixTable",
    "RdnsColumns",
    "RdnsLookupEngine",
    "RdnsObservation",
    "ReactiveMonitor",
    "SampleMetrics",
    "SnapshotCache",
    "SnapshotCollector",
    "SnapshotSeries",
    "SnapshotStats",
    "ShardedCampaign",
    "ShardedCollector",
    "SupplementalCampaign",
    "SupplementalDataset",
    "TokenBucket",
    "WorkerBudget",
    "default_workers",
    "worker_cap",
    "run_network_campaign",
    "load_dataset",
    "read_icmp_csv",
    "read_rdns_csv",
    "save_dataset",
    "write_icmp_csv",
    "write_rdns_csv",
]
