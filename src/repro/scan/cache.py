"""On-disk caches for collected snapshot series and campaign datasets.

Repeated studies and the benchmark harness re-simulate the same
windows over and over; the caches make each simulation a one-time cost
across processes and sessions.

Layout: one JSON file per entry under the cache root, named by a
SHA-256 **key** over everything that determines the entry's content.
For snapshot series (:class:`SnapshotCache`):

* the world fingerprint (:meth:`repro.netsim.internet.Internet.cache_token`
  — covers the seed, scale and every network/subnet spec),
* the collector name and network restriction,
* the half-open ``[start, end)`` window,
* the cadence and snapshot ``at_offset``,
* the cache *key* format version (:data:`FORMAT_VERSION`).

Key versioning is deliberately separate from payload versioning
(:data:`repro.scan.storage.DATASET_FORMAT_VERSION`): a payload schema
bump does **not** change the key, so entries written under the old
schema still *hit* and are migrated on read — snapshot readers decode
legacy v2 dict and v3 varint payloads and rewrite the entry as a v4
blockfile pair, and the campaign reader accepts all schema versions
unchanged.  Bumping
:data:`FORMAT_VERSION` instead would orphan every existing entry and
force a cold re-simulation.

For supplemental campaign datasets (:class:`CampaignCache`): the world
fingerprint, the network list, the window, the reactive backoff
schedule (steps and tail), the sweep interval, the rDNS rate limit and
the blocklist.

Changing any of these (a different seed, a widened window, a new
schedule) therefore *misses* and re-simulates — stale reuse is
impossible by construction.  Explicit invalidation is still available
via :meth:`invalidate` and :meth:`clear` (or the CLI's
``--clear-snapshot-cache`` / ``--clear-campaign-cache``).

Default roots live under ``~/.cache/repro-rdns/`` (``snapshots`` and
``campaigns``), overridable with the ``REPRO_SNAPSHOT_CACHE`` /
``REPRO_CAMPAIGN_CACHE`` environment variables or the constructor
argument.
"""

from __future__ import annotations

import datetime as dt
import hashlib
import json
import os
import pathlib
import tempfile
from typing import List, Optional, Sequence, Tuple

#: Version of the cache *key* material.  Bump only when the keying
#: scheme itself changes (every old entry then misses).  Payload schema
#: changes are versioned inside the payload
#: (:data:`repro.scan.storage.DATASET_FORMAT_VERSION`) and migrated on
#: read instead, so warm caches survive format bumps.
FORMAT_VERSION = 1

CACHE_ENV_VAR = "REPRO_SNAPSHOT_CACHE"
CAMPAIGN_CACHE_ENV_VAR = "REPRO_CAMPAIGN_CACHE"


def default_cache_root() -> pathlib.Path:
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-rdns" / "snapshots"


def default_campaign_cache_root() -> pathlib.Path:
    override = os.environ.get(CAMPAIGN_CACHE_ENV_VAR)
    if override:
        return pathlib.Path(override)
    return pathlib.Path.home() / ".cache" / "repro-rdns" / "campaigns"


class _JsonFileCache:
    """Shared mechanics: one ``<key>.json`` per entry, atomic writes."""

    def __init__(self, root: pathlib.Path):
        self.root = root
        #: Traffic counters for the observability layer.  They describe
        #: *this process's* cache usage (hits/misses/stores) plus the
        #: corrupt entries it repaired, so they belong in the run
        #: manifest's ``timings.execution`` section — equivalent runs
        #: legitimately differ here (a warm run hits, a cold run
        #: misses).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_entries = 0
        #: ``*.tmp`` files unlinked after a failed store — non-zero
        #: means a serialisation or rename raised mid-write and the
        #: partial file was cleaned up rather than leaked.
        self.tmp_cleanups = 0

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    # -- access --------------------------------------------------------------

    def load(self, key: str) -> Optional[dict]:
        """The stored payload, or ``None`` on a miss or corrupt entry.

        A corrupt entry (torn write, disk error, truncated JSON) is
        *repaired*, not just skipped: the file is deleted and counted
        in :attr:`corrupt_entries`, so the next :meth:`store` rewrites
        it cleanly.  Leaving it in place meant every later run paid the
        decode failure and re-fetched forever.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, OSError):
            self.corrupt_entries += 1
            self.misses += 1
            self.invalidate(key)
            return None
        self.hits += 1
        return payload

    def store(self, key: str, payload: dict) -> pathlib.Path:
        """Atomically persist a payload (write-temp-then-rename).

        Any failure between creating the temp file and the atomic
        ``os.replace`` — unserialisable payload, full disk, the rename
        itself — unlinks the partial ``*.tmp`` file (counted in
        :attr:`tmp_cleanups`) before the exception propagates, so a
        failed store can never leak temp files into the cache root.
        :attr:`stores` counts *successful* stores only.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.root, suffix=".tmp", delete=False, encoding="utf-8"
        )
        committed = False
        try:
            with handle:
                json.dump(payload, handle)
            os.replace(handle.name, path)
            committed = True
        finally:
            if not committed:
                self.tmp_cleanups += 1
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
        self.stores += 1
        return path

    # -- invalidation --------------------------------------------------------

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        try:
            self.path_for(key).unlink()
            return True
        except FileNotFoundError:
            return False
        except OSError:
            return False

    def clear(self) -> int:
        """Drop everything; returns entries plus orphans removed.

        Each entry counts once regardless of how many files represent
        it on disk (a v4 pair's ``*.rbf`` sidecar is swept silently
        with its ``*.json`` document).  Orphaned ``*.tmp`` files left
        behind by writers that crashed between creating the temp file
        and the atomic rename count individually — they are leaks, not
        entries, and the old ``*.json``-only glob kept them forever.
        """
        removed = 0
        if not self.root.is_dir():
            return removed
        for pattern in ("*.json", "*.rbf", "*.tmp"):
            for path in self.root.glob(pattern):
                try:
                    path.unlink()
                    removed += pattern != "*.rbf"
                except OSError:
                    pass
        return removed

    def entries(self) -> List[str]:
        """Keys currently stored (sorted, for stable output)."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))

    # -- observability -------------------------------------------------------

    def execution_snapshot(self) -> dict:
        """Traffic counters for the manifest's ``timings.execution``
        section (hit/miss/store/corrupt counts vary run to run by
        design, so they are kept out of the deterministic metrics)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_entries": self.corrupt_entries,
            "tmp_cleanups": self.tmp_cleanups,
        }

    def export_metrics(self, obs, *, section: str, baseline: Optional[dict] = None) -> None:
        """Record this cache's traffic under ``timings.execution``.

        ``baseline`` (an earlier :meth:`execution_snapshot`) restricts
        the export to traffic since that snapshot, so repeated
        collections against one cache don't double count.
        ``cache_corrupt_entries`` is the headline counter: non-zero
        means this run found and repaired torn entries.
        """
        snapshot = self.execution_snapshot()
        baseline = baseline or {}
        obs.record_execution(
            section,
            accumulate=True,
            **{
                f"cache_{key}": value - baseline.get(key, 0)
                for key, value in snapshot.items()
            },
        )


class SnapshotCache(_JsonFileCache):
    """A content-keyed store of collected snapshot series.

    Since payload format v4 an entry is a *pair* of files: the
    ``<key>.json`` document holds the metadata (name, networks, days,
    totals) plus a pointer to a ``<key>.rbf`` sidecar blockfile
    (:mod:`repro.scan.blockfile`) carrying the prefix table and raw
    count columns.  :meth:`store_series` writes the pair (blockfile
    first, JSON last — the JSON rename is the commit point, so a torn
    writer can only ever leave an unreferenced sidecar behind, never a
    referenced-but-missing one).  :meth:`load` validates the sidecar's
    header and record checksums and repairs the whole entry if either
    half is corrupt or missing.  Pre-v4 entries remain single JSON
    files and are migrated on read by the collector.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        super().__init__(pathlib.Path(root) if root is not None else default_cache_root())

    def blockfile_path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.rbf"

    def load(self, key: str) -> Optional[dict]:
        """The stored payload, with the v4 sidecar validated and resolved.

        For v4 entries the sidecar blockfile is opened once to check
        its header and per-record checksums (bodies are not hashed —
        that is :meth:`~repro.scan.blockfile.BlockFileReader.verify`'s
        job, exposed via ``repro cache verify``), and its absolute path
        is injected as ``payload["blockfile_path"]`` for the decoder.
        A missing or structurally corrupt sidecar repairs the entry
        exactly like torn JSON: both files are deleted, the read counts
        as a miss, and the next store rewrites the pair.
        """
        payload = super().load(key)
        if payload is None or payload.get("version", 2) < 4:
            return payload
        from .blockfile import BlockFileError, BlockFileReader

        path = self.root / payload.get("blockfile", f"{key}.rbf")
        try:
            reader = BlockFileReader.open(path)
            reader.close()
        except (BlockFileError, OSError):
            self.hits -= 1
            self.misses += 1
            self.corrupt_entries += 1
            self.invalidate(key)
            return None
        payload["blockfile_path"] = str(path)
        return payload

    def store_series(self, key: str, series) -> pathlib.Path:
        """Persist a series as a v4 blockfile + JSON metadata pair.

        The sidecar is written through a unique temp file and renamed
        into place before the JSON document (itself atomic), so racing
        writers — who by construction serialise identical bytes for a
        given key — each publish a complete pair and the last rename
        wins.  A failure on either half cleans up its temp file
        (counted in :attr:`tmp_cleanups`) before propagating.
        """
        from .blockfile import encode_records

        self.root.mkdir(parents=True, exist_ok=True)
        prefixes, ordinals, columns, totals = series.blockfile_parts()
        blob = encode_records(
            prefixes, ordinals, columns, totals, series.sorted_unique_ptrs()
        )
        digest = hashlib.sha256(blob).hexdigest()
        target = self.blockfile_path_for(key)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        committed = False
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, target)
            committed = True
        finally:
            if not committed:
                self.tmp_cleanups += 1
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        return self.store(
            key, series.to_cache_payload(target.name, digest, len(blob))
        )

    def invalidate(self, key: str) -> bool:
        """Drop one entry — both the JSON document and its sidecar."""
        removed = super().invalidate(key)
        try:
            self.blockfile_path_for(key).unlink()
        except OSError:
            pass
        return removed

    @staticmethod
    def key_for(
        *,
        world_token: str,
        name: str,
        networks: Optional[Sequence[str]],
        start: dt.date,
        end: dt.date,
        cadence_days: int,
        at_offset: Optional[int],
        policy_token: Optional[str] = None,
        fault_token: Optional[str] = None,
    ) -> str:
        fields = {
            "version": FORMAT_VERSION,
            "world": world_token,
            "name": name,
            "networks": list(networks) if networks is not None else None,
            "start": start.isoformat(),
            "end": end.isoformat(),
            "cadence_days": cadence_days,
            "at_offset": at_offset,
        }
        # Evaluation-matrix cells fold their policy and fault-plan
        # identity in explicitly, so no two cells can ever share an
        # entry; both default to None so every pre-existing key is
        # unchanged.
        if policy_token is not None:
            fields["policy"] = policy_token
        if fault_token is not None:
            fields["faults"] = fault_token
        material = json.dumps(fields, sort_keys=True)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()


class CampaignCache(_JsonFileCache):
    """A content-keyed store of :meth:`SupplementalDataset.to_payload` blobs."""

    def __init__(self, root: Optional[os.PathLike] = None):
        super().__init__(
            pathlib.Path(root) if root is not None else default_campaign_cache_root()
        )

    @staticmethod
    def key_for(
        *,
        world_token: str,
        networks: Sequence[str],
        start: dt.date,
        end: dt.date,
        schedule_steps: Sequence[Tuple[int, int]],
        schedule_tail: int,
        sweep_interval: int,
        rdns_rate: float,
        blocklist: Sequence[str],
        fault_token: Optional[str] = None,
        policy_token: Optional[str] = None,
    ) -> str:
        fields = {
            "version": FORMAT_VERSION,
            "world": world_token,
            "networks": list(networks),
            "start": start.isoformat(),
            "end": end.isoformat(),
            "schedule_steps": [list(step) for step in schedule_steps],
            "schedule_tail": schedule_tail,
            "sweep_interval": sweep_interval,
            "rdns_rate": rdns_rate,
            "blocklist": sorted(blocklist),
        }
        # Only fault-injected runs carry the token: keeping it out of
        # clean-run material preserves every pre-fault cache key.  The
        # policy token (plans that declare update_policy entries) works
        # the same way.
        if fault_token is not None:
            fields["faults"] = fault_token
        if policy_token is not None:
            fields["policy"] = policy_token
        material = json.dumps(fields, sort_keys=True)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()
