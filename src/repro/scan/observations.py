"""Measurement observations and their CSV persistence.

"Both Zmap and our custom-built software write the results as CSV
files to disk" (Section 6.1).  The merge key the paper uses — IP
address plus a five-minute truncated timestamp — is precomputed on
every observation.
"""

from __future__ import annotations

import csv
import ipaddress
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Union

from repro.dns.resolver import ResolutionStatus
from repro.netsim.simtime import MINUTE, truncate

TRUNCATION = 5 * MINUTE

PathLike = Union[str, Path]


@dataclass(frozen=True)
class IcmpObservation:
    """One ICMP echo response (ZMap output lists responders only)."""

    address: ipaddress.IPv4Address
    at: int
    network: str = ""

    @property
    def truncated_at(self) -> int:
        return truncate(self.at, TRUNCATION)


@dataclass(frozen=True)
class RdnsObservation:
    """One reverse-DNS lookup outcome (success or error)."""

    address: ipaddress.IPv4Address
    at: int
    status: ResolutionStatus
    hostname: str = ""
    network: str = ""

    @property
    def truncated_at(self) -> int:
        return truncate(self.at, TRUNCATION)

    @property
    def ok(self) -> bool:
        return self.status is ResolutionStatus.NOERROR


_ICMP_FIELDS = ["address", "at", "network"]
_RDNS_FIELDS = ["address", "at", "status", "hostname", "network"]


def write_icmp_csv(path: PathLike, observations: Iterable[IcmpObservation]) -> int:
    """Write ICMP observations; returns the number of rows."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_ICMP_FIELDS)
        for observation in observations:
            writer.writerow([observation.address, observation.at, observation.network])
            count += 1
    return count


def read_icmp_csv(path: PathLike) -> List[IcmpObservation]:
    observations = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            observations.append(
                IcmpObservation(
                    address=ipaddress.IPv4Address(row["address"]),
                    at=int(row["at"]),
                    network=row.get("network", ""),
                )
            )
    return observations


def write_rdns_csv(path: PathLike, observations: Iterable[RdnsObservation]) -> int:
    """Write rDNS observations; returns the number of rows."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_RDNS_FIELDS)
        for observation in observations:
            writer.writerow(
                [
                    observation.address,
                    observation.at,
                    observation.status.value,
                    observation.hostname,
                    observation.network,
                ]
            )
            count += 1
    return count


def read_rdns_csv(path: PathLike) -> List[RdnsObservation]:
    observations = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            observations.append(
                RdnsObservation(
                    address=ipaddress.IPv4Address(row["address"]),
                    at=int(row["at"]),
                    status=ResolutionStatus(row["status"]),
                    hostname=row.get("hostname", ""),
                    network=row.get("network", ""),
                )
            )
    return observations
