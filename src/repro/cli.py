"""Command-line interface.

``rdns-privacy`` exposes the reproduction's main workflows:

* ``study``    — run the snapshot-based pipeline (Sections 4-5): the
  dynamicity heuristic, leak identification and the type breakdown;
* ``campaign`` — run the supplemental measurement (Section 6) and
  print Tables 3-5, optionally writing raw observations to CSV;
* ``track``    — follow a given name's devices (Section 7.1);
* ``heist``    — recommend the quietest hour (Section 7.3);
* ``audit``    — grade each network's rDNS exposure (Section 8);
* ``evaluate`` — the countermeasure evaluation matrix (Section 8):
  sweep IPAM policies × world plans × fault profiles, rank privacy
  exposure against operational utility, and optionally write the
  machine-readable ``eval_matrix.json``;
* ``snapshot`` — dump one day's PTR records, OpenINTEL-style;
* ``cache``    — inspect/verify/migrate the on-disk caches: report
  entry format versions, checksum v4 blockfile sidecars, and rewrite
  pre-v4 snapshot entries as blockfile pairs in place;
* ``serve``    — the long-running leak-analysis query service
  (:mod:`repro.serve`): per-prefix dynamicity, leak verdicts, name
  counts and occupancy over HTTP, with ``POST /ingest/day`` folding
  new snapshot days in incrementally.

(``supplemental`` is an alias for ``campaign``, matching the paper's
name for the measurement.)

Every command takes ``--seed`` so results are reproducible.  The
global ``--metrics-out PATH`` writes a run manifest (deterministic
metrics + spans, wall-clock under ``timings``) after the command;
``--trace`` prints the span tree.  ``REPRO_METRICS_OUT`` is the
environment equivalent of ``--metrics-out``.
"""

from __future__ import annotations

import argparse
import datetime as dt
import pathlib
import sys
from typing import List, Optional

from repro.core import DeviceTracker, HeistPlanner, audit_by_network
from repro.core.pipeline import ReproductionStudy, StudyConfig
from repro.eval import (
    MatrixSpec,
    default_worlds,
    render_ranked_report,
    run_matrix,
    write_matrix_json,
)
from repro.ipam.policy import POLICY_NAMES
from repro.netsim.faults import FAULT_PROFILES, resolve_fault_plan
from repro.netsim.internet import WorldScale, build_world
from repro.netsim.spec import build_world_from_file
from repro.netsim.worldplan import WorldPlan, synthetic_plan
from repro.netsim.network import NetworkType
from repro.netsim.personas import BRIAN_HOSTNAME_LABELS
from repro.obs import NULL_OBS, Observability, metrics_out_path
from repro.reporting import TextTable
from repro.scan import (
    CampaignCache,
    ShardedCampaign,
    SnapshotCache,
    SupplementalCampaign,
    write_icmp_csv,
    write_rdns_csv,
)


def _parse_date(text: str) -> dt.date:
    try:
        return dt.date.fromisoformat(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid date {text!r} (want YYYY-MM-DD)") from exc


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid integer {text!r}") from exc
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer (got {value})")
    return value


def _is_cadence_error(error: ValueError) -> bool:
    """Does this ValueError describe irregular snapshot spacing?

    Matches both `_infer_cadence`'s mixed-spacing complaint and the
    ingest-time cadence contract violations raised by
    ``SnapshotSeries`` / ``IncrementalDynamicityAnalyzer``.
    """
    text = str(error)
    return "mixed snapshot spacing" in text or "contradicts the declared cadence" in text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rdns-privacy",
        description="Reproduction toolkit for 'Saving Brian's Privacy' (IMC 2022).",
    )
    parser.add_argument("--seed", type=int, default=42, help="world seed (default 42)")
    parser.add_argument(
        "--quick", action="store_true", help="use the small test-scale world and short windows"
    )
    parser.add_argument(
        "--spec", help="build the world from a JSON spec file instead of the built-in one"
    )
    parser.add_argument(
        "--plan",
        metavar="PATH",
        default=None,
        help=(
            "build the world from a WorldPlan JSON file (see the 'plan' "
            "command); enables the sharded collection/campaign engines"
        ),
    )
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help=(
            "partition a --plan world into N contiguous shards; workers build "
            "only their shard's networks and results merge byte-identically "
            "(default 1)"
        ),
    )
    parser.add_argument(
        "--max-workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "machine-wide ceiling for every process pool (shard, day-chunk "
            "and campaign levels share one budget); equivalent to setting "
            "REPRO_MAX_WORKERS"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool workers for snapshot collection and the supplemental "
            "campaign (default 1 = serial; capped so it can never run slower)"
        ),
    )
    parser.add_argument(
        "--snapshot-cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "enable the on-disk snapshot cache; optional DIR overrides the "
            "default root (~/.cache/repro-rdns/snapshots, or $REPRO_SNAPSHOT_CACHE)"
        ),
    )
    parser.add_argument(
        "--clear-snapshot-cache",
        action="store_true",
        help="drop every cached snapshot series, then continue",
    )
    parser.add_argument(
        "--campaign-cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "enable the on-disk campaign cache; optional DIR overrides the "
            "default root (~/.cache/repro-rdns/campaigns, or $REPRO_CAMPAIGN_CACHE)"
        ),
    )
    parser.add_argument(
        "--clear-campaign-cache",
        action="store_true",
        help="drop every cached campaign dataset, then continue",
    )
    parser.add_argument(
        "--timings", action="store_true", help="print collection timing and cache counters"
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "write a JSON run manifest (metrics, spans, run info; wall-clock "
            "only under its 'timings' section) after the command; the "
            "REPRO_METRICS_OUT environment variable is the fallback"
        ),
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the per-stage span tree (wall seconds per stage) after the command",
    )
    parser.add_argument(
        "--fault-profile",
        choices=FAULT_PROFILES,
        default=None,
        help=(
            "inject deterministic measurement-plane faults (packet loss, DNS "
            "timeouts/SERVFAILs, outages) into the supplemental campaign; "
            "default none (the REPRO_FAULT_PROFILE environment variable is "
            "consulted when the flag is absent, and an explicit 'none' "
            "overrides it)"
        ),
    )
    # Not required at the argparse level: --clear-snapshot-cache or
    # --clear-campaign-cache may be the whole invocation.  main()
    # rejects a missing command otherwise.
    commands = parser.add_subparsers(dest="command", required=False)

    # All --start/--end windows are half-open: --end itself is not measured.
    study = commands.add_parser(
        "study", help="dynamicity + leak identification (Sections 4-5)"
    )
    study.add_argument(
        "--leak-sample-days",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "how many trailing collected days feed the leak matcher "
            "(default: the StudyConfig value, 7); the sample is derived "
            "in one shared pass, fanned over --workers"
        ),
    )

    def _add_campaign_args(campaign) -> None:
        campaign.add_argument("--start", type=_parse_date, default=dt.date(2021, 11, 1))
        campaign.add_argument(
            "--end", type=_parse_date, default=dt.date(2021, 11, 8), help="exclusive end date"
        )
        campaign.add_argument(
            "--networks", nargs="*", default=None, help="subset of Table-4 networks"
        )
        campaign.add_argument("--icmp-csv", help="write raw ICMP observations here")
        campaign.add_argument("--rdns-csv", help="write raw rDNS observations here")
        campaign.add_argument("--save-dir", help="persist the whole dataset to this directory")
        campaign.add_argument(
            "--error-report",
            action="store_true",
            help=(
                "print the per-day rDNS error-class breakdown (Figure 6); "
                "printed automatically when a fault profile is active"
            ),
        )

    _add_campaign_args(
        commands.add_parser("campaign", help="supplemental measurement (Section 6)")
    )
    _add_campaign_args(
        commands.add_parser("supplemental", help="alias for 'campaign' (the paper's name)")
    )

    track = commands.add_parser("track", help="follow a given name's devices (Section 7.1)")
    track.add_argument("name", help="given name to follow, e.g. brian")
    track.add_argument("--network", default="Academic-A")
    track.add_argument("--start", type=_parse_date, default=dt.date(2021, 11, 1))
    track.add_argument(
        "--end", type=_parse_date, default=dt.date(2021, 11, 15), help="exclusive end date"
    )

    heist = commands.add_parser("heist", help="find the quietest hour (Section 7.3)")
    heist.add_argument("--network", default="Academic-A")
    heist.add_argument("--start", type=_parse_date, default=dt.date(2021, 11, 1))
    heist.add_argument(
        "--end", type=_parse_date, default=dt.date(2021, 11, 8), help="exclusive end date"
    )
    heist.add_argument("--source", choices=("rdns", "icmp"), default="rdns")

    audit = commands.add_parser(
        "audit", help="score each network's rDNS exposure (Section 8 mitigation aid)"
    )
    audit.add_argument("--start", type=_parse_date, default=dt.date(2021, 11, 1))
    audit.add_argument(
        "--end", type=_parse_date, default=dt.date(2021, 11, 4), help="exclusive end date"
    )
    audit.add_argument("--networks", nargs="*", default=None)

    snapshot = commands.add_parser("snapshot", help="dump one day's PTR records")
    snapshot.add_argument("--date", type=_parse_date, default=dt.date(2021, 3, 1))
    snapshot.add_argument("--network", default=None, help="restrict to one network")
    snapshot.add_argument("--limit", type=int, default=50)

    serve = commands.add_parser(
        "serve", help="run the leak-analysis query service (HTTP, Ctrl-C to stop)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8400, help="bind port (default 8400)")
    serve.add_argument(
        "--leak-sample-days",
        type=_positive_int,
        default=None,
        metavar="N",
        help="trailing collected days feeding /leaks and /names (default 7)",
    )
    serve.add_argument(
        "--blockfile",
        metavar="PATH",
        default=None,
        help=(
            "back the snapshot store with an mmap-ed blockfile at PATH: "
            "written once at boot, served zero-copy, and POST /ingest/day "
            "appends a segment instead of rewriting (default: in-memory)"
        ),
    )

    evaluate = commands.add_parser(
        "evaluate",
        help=(
            "countermeasure evaluation matrix: sweep IPAM policies × worlds × "
            "fault profiles, rank privacy exposure vs operational utility "
            "(Section 8)"
        ),
    )
    evaluate.add_argument(
        "--policies",
        nargs="+",
        choices=POLICY_NAMES,
        default=list(POLICY_NAMES),
        metavar="POLICY",
        help=f"policy axis (default: all of {', '.join(POLICY_NAMES)})",
    )
    evaluate.add_argument(
        "--worlds",
        nargs="+",
        default=None,
        metavar="LABEL",
        help=(
            "world axis labels (default: the stock 'campus' and 'multi16' "
            "worlds; with --plan, the single world 'plan')"
        ),
    )
    evaluate.add_argument(
        "--fault-profiles",
        nargs="+",
        choices=FAULT_PROFILES,
        default=["none"],
        metavar="PROFILE",
        help="fault-profile axis (default: none only)",
    )
    evaluate.add_argument(
        "--slash16s",
        type=_positive_int,
        default=4,
        help="width of the stock multi16 world (default 4 /16s)",
    )
    evaluate.add_argument(
        "--people",
        type=_positive_int,
        default=12,
        help="population per multi16 network (default 12)",
    )
    evaluate.add_argument(
        "--leak-sample-days",
        type=_positive_int,
        default=None,
        metavar="N",
        help="trailing collected days feeding the given-name matcher (default 7)",
    )
    evaluate.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the machine-readable eval_matrix.json here",
    )
    evaluate.add_argument(
        "--report-out",
        metavar="PATH",
        default=None,
        help="also write the ranked report (exactly as printed) to this file",
    )

    cache = commands.add_parser(
        "cache", help="inspect, verify or migrate on-disk cache entries"
    )
    cache.add_argument(
        "action",
        choices=("inspect", "verify", "migrate"),
        help=(
            "inspect: list entries with their payload format versions; "
            "verify: checksum every v4 blockfile sidecar (full body CRC + "
            "SHA-256) and exit non-zero on damage; migrate: rewrite pre-v4 "
            "snapshot entries as v4 blockfile pairs in place"
        ),
    )

    plan = commands.add_parser(
        "plan", help="generate a synthetic multi-/16 WorldPlan JSON for sharded runs"
    )
    plan.add_argument("--out", required=True, metavar="PATH", help="write the plan JSON here")
    plan.add_argument(
        "--slash16s",
        type=_positive_int,
        default=4,
        help="how many /16 networks the plan spans (each is 256 /24s; default 4)",
    )
    plan.add_argument(
        "--people", type=_positive_int, default=12, help="population per network (default 12)"
    )
    plan.add_argument(
        "--zone-layout",
        choices=("flat", "delegated"),
        default="delegated",
        help="reverse-zone layout for every network (default delegated per-/24 children)",
    )
    plan.add_argument(
        "--supplemental-every",
        type=int,
        default=2,
        help="every Nth academic network joins the supplemental campaign (0 = none)",
    )

    return parser


def _plan(args) -> Optional[WorldPlan]:
    if getattr(args, "plan", None):
        return WorldPlan.load(args.plan)
    return None


def _world(args):
    plan = _plan(args)
    if plan is not None:
        return plan.build()
    if getattr(args, "spec", None):
        return build_world_from_file(args.spec)
    scale = WorldScale.small() if args.quick else None
    return build_world(seed=args.seed, scale=scale)


def _snapshot_cache(args) -> Optional[SnapshotCache]:
    if args.snapshot_cache is None:
        return None
    return SnapshotCache(args.snapshot_cache or None)


def _campaign_cache(args) -> Optional[CampaignCache]:
    if args.campaign_cache is None:
        return None
    return CampaignCache(args.campaign_cache or None)


def _fault_plan(args):
    """The fault plan for this invocation (flag, then environment)."""
    return resolve_fault_plan(args.fault_profile, seed=args.seed)


def _obs(args) -> Observability:
    """The observability handle ``main`` attached (no-op otherwise)."""
    return getattr(args, "obs", None) or NULL_OBS


def _print_error_report(dataset, out) -> None:
    table = TextTable(
        ["Day", "Total", "NOERROR", "NXDOMAIN", "SERVFAIL", "TIMEOUT", "REFUSED"],
        aligns=["<", ">", ">", ">", ">", ">", ">"],
    )
    for day, total, noerror, nxdomain, servfail, timeout, refused in dataset.error_class_rows():
        table.add_row([day.isoformat(), total, noerror, nxdomain, servfail, timeout, refused])
    print("\nrDNS error classes by day (Figure 6):", file=out)
    print(table.render(), file=out)


def _print_campaign_timings(campaign, out) -> None:
    metrics = campaign.last_metrics
    if metrics is None:
        return
    print(f"[timings] supplemental campaign: {metrics.describe()}", file=out)
    if metrics.cache_key is not None:
        outcome = "hit" if metrics.cache_hit else (
            "miss, stored" if metrics.cache_stored else "miss"
        )
        print(f"[timings] campaign cache {outcome} (key {metrics.cache_key[:12]}…)", file=out)


def _study_config(args) -> StudyConfig:
    """One StudyConfig from the shared flags (study and serve)."""
    config = StudyConfig.quick(args.seed) if args.quick else StudyConfig(seed=args.seed)
    config.plan = _plan(args)
    config.shards = args.shards
    config.max_workers = args.max_workers
    config.snapshot_workers = args.workers
    config.snapshot_cache = _snapshot_cache(args)
    config.campaign_workers = args.workers
    config.campaign_cache = _campaign_cache(args)
    config.fault_plan = _fault_plan(args)
    if getattr(args, "leak_sample_days", None) is not None:
        config.leak_sample_days = args.leak_sample_days
    if getattr(args, "blockfile", None) is not None:
        config.serve_blockfile = args.blockfile
    return config


def cmd_study(args, out) -> int:
    config = _study_config(args)
    study = ReproductionStudy(config, obs=_obs(args))
    try:
        report = study.dynamicity()
    except ValueError as error:
        if not _is_cadence_error(error):
            raise
        print(f"error: irregular snapshot series — {error}", file=sys.stderr)
        return 2
    print(
        f"Dynamicity ({config.dynamicity_start} .. {config.dynamicity_end}): "
        f"{report.dynamic_count} of {report.total_observed} observed /24s are dynamic",
        file=out,
    )
    leaks = study.leaks()
    print(f"\nIdentified identity-leaking networks: {len(leaks.identified)}", file=out)
    table = TextTable(["Suffix", "Records", "Unique names", "Ratio"], aligns=["<", ">", ">", ">"])
    for suffix in leaks.identified:
        stats = leaks.stats_for(suffix)
        table.add_row([suffix, stats.records, stats.unique_name_count, round(stats.ratio, 2)])
    print(table.render(), file=out)
    breakdown = study.type_breakdown()
    print("\nType breakdown (Figure 4):", file=out)
    for net_type in NetworkType:
        print(f"  {net_type.value:<12s} {breakdown[net_type]:5.1f}%", file=out)
    if args.timings and study.collection_metrics is not None:
        metrics = study.collection_metrics
        print(f"\n[timings] snapshot collection: {metrics.describe()}", file=out)
        if metrics.cache_key is not None:
            outcome = "hit" if metrics.cache_hit else (
                "miss, stored" if metrics.cache_stored else "miss"
            )
            if metrics.cache_migrated:
                outcome += ", payload migrated to columnar"
            print(f"[timings] snapshot cache {outcome} (key {metrics.cache_key[:12]}…)", file=out)
        sample = study.daily_series().last_sample_metrics
        if sample is not None:
            print(f"[timings] leak sample: {sample.describe()}", file=out)
    return 0


def cmd_campaign(args, out) -> int:
    obs = _obs(args)
    plan = _fault_plan(args)
    world_plan = _plan(args)
    if world_plan is not None:
        # Sharded path: no full world build in this process.
        obs.set_run_info(
            world_fingerprint=f"plan:{world_plan.fingerprint()}",
            fault_profile=plan.name if plan is not None else None,
        )
        campaign = ShardedCampaign(
            world_plan,
            shards=args.shards,
            networks=args.networks,
            fault_plan=plan,
            obs=obs,
        )
    else:
        world = _world(args)
        obs.set_run_info(
            world_fingerprint=world.internet.cache_token(),
            fault_profile=plan.name if plan is not None else None,
        )
        campaign = SupplementalCampaign(
            world, networks=args.networks, fault_plan=plan, obs=obs
        )
    try:
        dataset = campaign.run(
            args.start, args.end, workers=args.workers, cache=_campaign_cache(args)
        )
    except ValueError as error:
        if not _is_cadence_error(error):
            raise
        print(f"error: irregular snapshot series — {error}", file=sys.stderr)
        return 2
    icmp_total, icmp_unique = dataset.icmp_stats()
    rdns_total, rdns_unique, rdns_ptrs = dataset.rdns_stats()
    print(
        f"Campaign {args.start}..{args.end}: {icmp_total:,} ICMP responses "
        f"({icmp_unique} addresses); {rdns_total:,} rDNS lookups "
        f"({rdns_unique} addresses, {rdns_ptrs} unique PTRs)",
        file=out,
    )
    table = TextTable(["Network", "Type", "Observed", "Percent"], aligns=["<", "<", ">", ">"])
    for name, net_type, _, observed, percent in dataset.table4_rows():
        table.add_row([name, net_type, observed, round(percent, 1)])
    print(table.render(), file=out)
    if plan is not None or args.error_report:
        _print_error_report(dataset, out)
    if plan is not None:
        metrics = campaign.last_metrics
        counters = metrics.fault_counters if metrics is not None else {}
        print(
            f"\nFault profile '{plan.name}' active: "
            f"{counters.get('echoes_lost', 0):,} echoes lost "
            f"({counters.get('icmp_retries', 0):,} ICMP retries), "
            f"{counters.get('rdns_timeouts', 0):,} rDNS timeouts over "
            f"{counters.get('rdns_attempts', 0):,} attempts",
            file=out,
        )
    if args.icmp_csv:
        rows = write_icmp_csv(args.icmp_csv, dataset.icmp)
        print(f"wrote {rows:,} ICMP rows to {args.icmp_csv}", file=out)
    if args.rdns_csv:
        rows = write_rdns_csv(args.rdns_csv, dataset.rdns)
        print(f"wrote {rows:,} rDNS rows to {args.rdns_csv}", file=out)
    if args.save_dir:
        from repro.scan.persistence import save_dataset

        path = save_dataset(dataset, args.save_dir)
        print(f"saved dataset to {path}", file=out)
    if args.timings:
        _print_campaign_timings(campaign, out)
    return 0


def cmd_track(args, out) -> int:
    world = _world(args)
    plan = _fault_plan(args)
    campaign = SupplementalCampaign(
        world, networks=[args.network], fault_plan=plan, obs=_obs(args)
    )
    dataset = campaign.run(args.start, args.end)
    tracker = DeviceTracker(dataset.rdns)
    days = (args.end - args.start).days
    labels = BRIAN_HOSTNAME_LABELS if args.name.lower() == "brian" and args.network == "Academic-A" else None
    matrix = tracker.presence_matrix(
        args.name,
        args.start,
        days,
        network=args.network,
        labels=labels,
        mark_unknown=plan is not None,
    )
    if not any(any(row) for row in matrix.values()):
        print(f"no devices matching {args.name!r} observed on {args.network}", file=out)
        return 1
    print(f"Devices containing {args.name!r} on {args.network}, {args.start}..{args.end}:", file=out)
    for label in sorted(matrix):
        cells = "".join(
            "#" if seen else ("?" if seen is None else ".") for seen in matrix[label]
        )
        print(f"  {label:24s} {cells}", file=out)
    if plan is not None and any(None in row for row in matrix.values()):
        print("  ('?' = not seen on a day with failed lookups: coverage gap, not absence)", file=out)
    return 0


def cmd_heist(args, out) -> int:
    world = _world(args)
    fault_plan = _fault_plan(args)
    campaign = SupplementalCampaign(
        world, networks=[args.network], fault_plan=fault_plan, obs=_obs(args)
    )
    dataset = campaign.run(args.start, args.end)
    planner = HeistPlanner(dataset, args.network)
    plan = planner.plan(source=args.source, weekdays_only=True)
    print(f"Quietest weekday hour on {args.network}: {plan.hour_of_day:02d}:00 "
          f"(avg {plan.average_activity:.1f} active clients, by {args.source})", file=out)
    peak = max(plan.activity_by_hour.values()) or 1.0
    for hour in range(24):
        value = plan.activity_by_hour.get(hour, 0.0)
        bar = "#" * int(round(24 * value / peak))
        print(f"  {hour:02d}:00 {value:7.1f} {bar}", file=out)
    if fault_plan is not None:
        print(
            f"  (fault profile '{fault_plan.name}' active: each hourly average "
            f"rests on >= {plan.min_samples()} measured hours)",
            file=out,
        )
    return 0


def cmd_snapshot(args, out) -> int:
    world = _world(args)
    if args.network is not None:
        records = world.internet.network(args.network).records_on(args.date, at_offset=12 * 3600)
    else:
        records = world.internet.records_on(args.date, at_offset=12 * 3600)
    shown = 0
    for address, hostname in records:
        print(f"{address}\t{hostname}", file=out)
        shown += 1
        if shown >= args.limit:
            print(f"... (truncated at {args.limit} records; raise --limit)", file=out)
            break
    if shown == 0:
        print("(no records)", file=out)
    return 0


def cmd_audit(args, out) -> int:
    world = _world(args)
    campaign = SupplementalCampaign(
        world, networks=args.networks, fault_plan=_fault_plan(args), obs=_obs(args)
    )
    dataset = campaign.run(args.start, args.end)
    reports = audit_by_network(dataset.rdns)
    table = TextTable(
        ["Network", "Grade", "Identity", "Dynamics", "Trackability", "Records"],
        aligns=["<", "^", ">", ">", ">", ">"],
    )
    for network, report in reports.items():
        table.add_row(
            [
                network,
                report.grade(),
                round(report.identity_score, 2),
                round(report.dynamics_score, 2),
                round(report.trackability_score, 2),
                report.records_observed,
            ]
        )
    print(table.render(), file=out)
    worst = max(reports.values(), key=lambda r: r.overall, default=None)
    if worst is not None and worst.named_hostnames:
        print("\nSample identity-carrying hostnames:", file=out)
        for hostname in worst.named_hostnames[:5]:
            print(f"  {hostname}", file=out)
    return 0


def _read_cache_entry(cache, key: str):
    """One entry's raw JSON document, or ``None`` if unreadable.

    Reads the file directly rather than via ``cache.load`` so a broken
    entry is *reported*, never silently repaired out from under the
    user mid-inspection.
    """
    import json

    try:
        with cache.path_for(key).open("r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None


def cmd_cache(args, out) -> int:
    import hashlib

    from repro.scan.blockfile import BlockFileError, BlockFileReader
    from repro.scan.snapshot import SnapshotSeries
    from repro.scan.storage import DATASET_FORMAT_VERSION

    cache = _snapshot_cache(args) or SnapshotCache()
    keys = cache.entries()

    if args.action == "inspect":
        print(f"snapshot cache {cache.root}: {len(keys)} entry(ies)", file=out)
        if keys:
            table = TextTable(
                ["Key", "Version", "Days", "Blockfile", "Bytes"],
                aligns=["<", ">", ">", "<", ">"],
            )
            for key in keys:
                payload = _read_cache_entry(cache, key)
                if payload is None:
                    table.add_row([key[:12] + "…", "corrupt", "-", "-", "-"])
                    continue
                version = payload.get("version", 2)
                table.add_row(
                    [
                        key[:12] + "…",
                        version,
                        len(payload.get("days", ())),
                        payload.get("blockfile", "-") if version >= 4 else "-",
                        payload.get("blockfile_bytes", "-") if version >= 4 else "-",
                    ]
                )
            print(table.render(), file=out)
        campaign = _campaign_cache(args) or CampaignCache()
        campaign_keys = campaign.entries()
        print(
            f"campaign cache {campaign.root}: {len(campaign_keys)} entry(ies)",
            file=out,
        )
        if campaign_keys:
            table = TextTable(["Key", "Version", "Networks"], aligns=["<", ">", ">"])
            for key in campaign_keys:
                payload = _read_cache_entry(campaign, key)
                if payload is None:
                    table.add_row([key[:12] + "…", "corrupt", "-"])
                    continue
                table.add_row(
                    [
                        key[:12] + "…",
                        payload.get("version", 2),
                        len(payload.get("targets_by_network", ())),
                    ]
                )
            print(table.render(), file=out)
        return 0

    if args.action == "verify":
        failures = 0
        for key in keys:
            payload = _read_cache_entry(cache, key)
            if payload is None:
                print(f"  {key[:12]}… ERROR: unreadable JSON document", file=out)
                failures += 1
                continue
            version = payload.get("version", 2)
            if version < 4:
                print(f"  {key[:12]}… v{version} OK (inline payload, no sidecar)", file=out)
                continue
            path = cache.root / payload.get("blockfile", f"{key}.rbf")
            try:
                blob = path.read_bytes()
            except OSError as error:
                print(f"  {key[:12]}… ERROR: missing sidecar ({error})", file=out)
                failures += 1
                continue
            digest = hashlib.sha256(blob).hexdigest()
            expected = payload.get("blockfile_sha256")
            if expected is not None and digest != expected:
                print(f"  {key[:12]}… ERROR: sidecar SHA-256 mismatch", file=out)
                failures += 1
                continue
            try:
                with BlockFileReader.open(path) as reader:
                    reader.verify()
                    day_count = len(reader.days)
            except BlockFileError as error:
                print(f"  {key[:12]}… ERROR: {error}", file=out)
                failures += 1
                continue
            print(
                f"  {key[:12]}… v{version} OK "
                f"({day_count} day(s), {len(blob):,} bytes, CRCs + SHA-256 good)",
                file=out,
            )
        print(
            f"verified {len(keys)} entry(ies) in {cache.root}: "
            f"{failures} failure(s)",
            file=out,
        )
        return 1 if failures else 0

    # migrate: rewrite pre-v4 entries as blockfile pairs, in place.
    migrated = current = failed = 0
    for key in keys:
        payload = cache.load(key)
        if payload is None:
            print(f"  {key[:12]}… corrupt entry repaired (removed)", file=out)
            failed += 1
            continue
        version = payload.get("version", 2)
        if version >= DATASET_FORMAT_VERSION:
            current += 1
            continue
        try:
            # Decoding never touches the world, so no internet handle
            # is needed for an offline rewrite.
            series = SnapshotSeries.from_payload(payload, None)
            cache.store_series(key, series)
        except (OSError, KeyError, TypeError, ValueError) as error:
            print(f"  {key[:12]}… ERROR: {type(error).__name__}: {error}", file=out)
            failed += 1
            continue
        migrated += 1
        print(f"  {key[:12]}… v{version} -> v{DATASET_FORMAT_VERSION}", file=out)
    print(
        f"migrated {migrated} entry(ies) in {cache.root} "
        f"({current} already v{DATASET_FORMAT_VERSION}, {failed} failure(s))",
        file=out,
    )
    return 1 if failed else 0


def cmd_plan(args, out) -> int:
    plan = synthetic_plan(
        args.seed,
        slash16s=args.slash16s,
        people=args.people,
        zone_layout=args.zone_layout,
        supplemental_every=args.supplemental_every,
    )
    plan.save(args.out)
    print(
        f"wrote plan {plan.fingerprint()[:12]}… to {args.out}: "
        f"{len(plan.entries)} networks ({args.slash16s * 256:,} /24s of "
        f"address space), {len(plan.supplemental_names)} supplemental",
        file=out,
    )
    return 0


def cmd_serve(args, out) -> int:
    from repro.serve import build_app, run_app

    config = _study_config(args)
    # build_app derives the world from config (seed + scale) itself;
    # only a --spec world needs to be built here and handed over.
    world = build_world_from_file(args.spec) if args.spec else None
    obs = _obs(args)
    print(
        f"collecting {config.dynamicity_start}..{config.dynamicity_end} "
        f"(seed {args.seed}) ...",
        file=out,
        flush=True,
    )
    try:
        app = build_app(config, world=world, obs=obs)
    except ValueError as error:
        if not _is_cadence_error(error):
            raise
        print(f"error: irregular snapshot series — {error}", file=sys.stderr)
        return 2
    repo = app.services.dynamicity.snapshots
    print(
        f"serving {repo.day_count} day(s), {len(repo.prefix_table())} /24 "
        f"prefix(es) on http://{args.host}:{args.port} (Ctrl-C to stop)",
        file=out,
        flush=True,
    )
    run_app(app, args.host, args.port)
    return 0


def cmd_evaluate(args, out) -> int:
    config = _study_config(args)
    plan = _plan(args)
    if plan is not None:
        worlds = {"plan": plan}
    else:
        worlds = default_worlds(args.seed, slash16s=args.slash16s, people=args.people)
    if args.worlds is not None:
        unknown = [label for label in args.worlds if label not in worlds]
        if unknown:
            raise ValueError(
                f"unknown world label(s): {', '.join(unknown)} "
                f"(available: {', '.join(worlds)})"
            )
        worlds = {label: worlds[label] for label in args.worlds}
    spec = MatrixSpec(
        worlds=worlds,
        policies=tuple(args.policies),
        faults=tuple(args.fault_profiles),
        dynamicity_start=config.dynamicity_start,
        dynamicity_end=config.dynamicity_end,
        supplemental_start=config.supplemental_start,
        supplemental_end=config.supplemental_end,
        leak_sample_days=config.leak_sample_days,
        dynamicity_thresholds=config.dynamicity_thresholds,
    ).validate()

    result = run_matrix(
        spec,
        workers=config.capped_workers(args.workers),
        snapshot_cache=config.snapshot_cache,
        campaign_cache=config.campaign_cache,
        obs=_obs(args),
    )

    cells = spec.cells()
    print(
        f"evaluated {len(cells)} cell(s): {len(worlds)} world(s) × "
        f"{len(spec.policies)} policy(ies) × {len(spec.faults)} fault "
        f"profile(s), {result.workers} worker(s)",
        file=out,
    )
    report = render_ranked_report(result)
    print(report, file=out)
    if args.timings:
        snapshot_hits = sum(1 for r in result.results if r.snapshot_cache_hit)
        campaign_hits = sum(1 for r in result.results if r.campaign_cache_hit)
        print(
            f"[timings] matrix: {result.total_seconds:.2f}s; cache hits "
            f"{snapshot_hits}/{len(result.results)} snapshot, "
            f"{campaign_hits}/{len(result.results)} campaign",
            file=out,
        )
    if args.report_out:
        target = pathlib.Path(args.report_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(report + "\n", encoding="utf-8")
        print(f"wrote ranked report to {target}", file=out)
    if args.out:
        target = write_matrix_json(args.out, result)
        print(f"wrote eval matrix payload to {target}", file=out)
    return 0


_COMMANDS = {
    "cache": cmd_cache,
    "plan": cmd_plan,
    "evaluate": cmd_evaluate,
    "study": cmd_study,
    "serve": cmd_serve,
    "audit": cmd_audit,
    "campaign": cmd_campaign,
    "supplemental": cmd_campaign,
    "track": cmd_track,
    "heist": cmd_heist,
    "snapshot": cmd_snapshot,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    out = out or sys.stdout
    if args.max_workers is not None:
        # One shared ceiling for every pool this process (and its
        # workers) creates — see repro.scan.parallel.worker_cap.
        import os

        os.environ["REPRO_MAX_WORKERS"] = str(args.max_workers)
    manifest_path = args.metrics_out or metrics_out_path()
    if manifest_path or args.trace:
        args.obs = Observability()
        args.obs.set_run_info(
            seed=args.seed,
            # The alias maps to the same command (and the same manifest).
            command="campaign" if args.command == "supplemental" else args.command,
        )
    else:
        args.obs = None
    if args.clear_snapshot_cache:
        cache = _snapshot_cache(args) or SnapshotCache()
        removed = cache.clear()
        print(f"cleared {removed} cached snapshot series from {cache.root}", file=out)
    if args.clear_campaign_cache:
        cache = _campaign_cache(args) or CampaignCache()
        removed = cache.clear()
        print(f"cleared {removed} cached campaign datasets from {cache.root}", file=out)
    if args.command is None:
        if args.clear_snapshot_cache or args.clear_campaign_cache:
            return 0
        parser.error(
            "a command is required (or --clear-snapshot-cache/--clear-campaign-cache)"
        )
    try:
        status = _COMMANDS[args.command](args, out)
    except ValueError as error:
        # Bad user input (e.g. an empty half-open window) — report it
        # like an argument error instead of a traceback.
        print(f"{parser.prog}: error: {error}", file=sys.stderr)
        return 2
    if args.obs is not None:
        if args.trace:
            rendered = args.obs.tracer.render()
            if rendered:
                print("\n[trace]", file=out)
                print(rendered, file=out)
        if manifest_path:
            args.obs.write_manifest(manifest_path)
            print(f"wrote run manifest to {manifest_path}", file=out)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
