"""rdns-privacy: a reproduction of "Saving Brian's Privacy: the Perils
of Privacy Exposure through Reverse DNS" (van der Toorn et al., IMC 2022).

The package splits into the *substrate* — everything the paper's
measurements run against — and the *analysis* the paper contributes:

=================  ==========================================================
``repro.dns``      reverse-DNS machinery: names, wire format, zones with
                   dynamic update, authoritative servers, stub resolver
``repro.dhcp``     DHCP: options (Host Name / Client FQDN / RFC 7844),
                   leases, pools, server and client state machines
``repro.ipam``     the DHCP-to-DNS bridge and its update policies
``repro.netsim``   the simulated Internet: people, devices, schedules,
                   networks, worlds
``repro.scan``     measurement instruments: snapshots, ICMP sweeps, the
                   reactive back-off campaign
``repro.core``     the paper's analyses: dynamicity, leak identification,
                   grouping/timing, tracking, occupancy
``repro.datasets`` given names and term lexicons
``repro.reporting`` text renderers for the reproduced tables and figures
=================  ==========================================================

Entry points::

    from repro import ReproductionStudy, StudyConfig, build_world

    study = ReproductionStudy(StudyConfig(seed=42))
    study.leaks().identified         # the paper's "197 networks" (scaled)
    study.lingering().fraction_within(60)   # ~0.9 (Section 6.2)
"""

from repro.core.pipeline import ReproductionStudy, StudyConfig
from repro.netsim.internet import World, WorldScale, build_world

__version__ = "1.0.0"

__all__ = [
    "ReproductionStudy",
    "StudyConfig",
    "World",
    "WorldScale",
    "__version__",
    "build_world",
]
