"""The matrix runner: execute every cell, serially or on a pool.

Each cell runs the same two-stage pipeline a study does — snapshot
collection over the dynamicity window, then the supplemental campaign
— through the sharded engines (:mod:`repro.scan.sharded`), and is
scored in the worker that ran it.  Parallel execution fans whole cells
out over the existing :class:`~repro.scan.parallel.WorkerBudget`
process-pool transport (:func:`~repro.scan.parallel._map_chunks`);
because a cell is scored from nothing but its own plan, windows and
caches, and results are re-ordered by cell index, a parallel sweep is
**byte-identical** to a serial one.

Cache safety: each cell's plan carries its policy (distinct
fingerprint + ``policy_token``) and each collector/campaign carries
the cell's fault token, so no two cells can ever share a snapshot or
campaign cache entry — and a warm rerun of the same spec hits every
cell's entries.

Observability: the coordinator emits deterministic per-cell counters
(``eval_cells_total`` labelled by world/policy/faults, and
``eval_flagged_cells_total``) in cell order — identical for serial and
parallel runs — while pool shape and wall-clock go to the
non-deterministic ``timings.execution`` section.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.eval.matrix import MatrixCell, MatrixSpec
from repro.eval.scoring import CellScore, score_cell, score_from_payload
from repro.netsim.faults import plan_from_profile
from repro.netsim.worldplan import WorldPlan
from repro.obs import resolve_obs
from repro.scan.cache import CampaignCache, SnapshotCache
from repro.scan.parallel import WorkerBudget, worker_cap
from repro.scan.sharded import ShardedCampaign, ShardedCollector


@dataclass
class CellResult:
    """One executed cell: its score plus cache-key provenance."""

    cell: MatrixCell
    score: CellScore
    snapshot_cache_key: Optional[str] = None
    campaign_cache_key: Optional[str] = None
    snapshot_cache_hit: bool = False
    campaign_cache_hit: bool = False


@dataclass
class MatrixResult:
    """The whole sweep, in cell order."""

    spec: MatrixSpec
    results: List[CellResult]
    workers: int = 1
    total_seconds: float = 0.0


def _spec_state(spec: MatrixSpec, snapshot_root: Optional[str], campaign_root: Optional[str]) -> Tuple:
    """The picklable per-run state shared by every cell task."""
    return (
        spec.dynamicity_start.toordinal(),
        spec.dynamicity_end.toordinal(),
        spec.supplemental_start.toordinal(),
        spec.supplemental_end.toordinal(),
        spec.leak_sample_days,
        spec.dynamicity_thresholds,
        spec.track_min_days,
        spec.identity_norm,
        spec.dynamics_norm,
        snapshot_root,
        campaign_root,
    )


def _cell_task(spec: MatrixSpec, cell: MatrixCell) -> Tuple:
    """One cell's picklable work item."""
    return (
        cell.index,
        cell.world,
        cell.policy,
        cell.faults,
        spec.plan_for(cell).to_payload(),
    )


def _evaluate_cell(state: Tuple, task: Tuple) -> Dict[str, Any]:
    """Run + score one cell (shared by the serial and pooled paths).

    Everything the cell needs arrives through ``state``/``task`` plain
    values; everything it returns is a JSON-able dict — the same bytes
    whether this executes inline or inside a worker process.
    """
    import datetime as dt

    (
        dyn_start_ord,
        dyn_end_ord,
        sup_start_ord,
        sup_end_ord,
        leak_sample_days,
        dynamicity_thresholds,
        track_min_days,
        identity_norm,
        dynamics_norm,
        snapshot_root,
        campaign_root,
    ) = state
    index, world_label, policy, faults, plan_payload = task

    plan = WorldPlan.from_payload(plan_payload)
    cell = MatrixCell(index, world_label, policy, faults)
    # A throwaway single-world spec carrying just the scoring knobs the
    # worker needs; axes stay with the coordinator.
    spec = MatrixSpec(
        worlds={world_label: plan},
        policies=(policy,),
        faults=(faults,),
        dynamicity_start=dt.date.fromordinal(dyn_start_ord),
        dynamicity_end=dt.date.fromordinal(dyn_end_ord),
        supplemental_start=dt.date.fromordinal(sup_start_ord),
        supplemental_end=dt.date.fromordinal(sup_end_ord),
        leak_sample_days=leak_sample_days,
        dynamicity_thresholds=dynamicity_thresholds,
        track_min_days=track_min_days,
        identity_norm=identity_norm,
        dynamics_norm=dynamics_norm,
    )

    fault_plan = plan_from_profile(faults, seed=plan.seed) if faults != "none" else None
    fault_token = fault_plan.cache_token() if fault_plan is not None else None

    snapshot_cache = SnapshotCache(snapshot_root) if snapshot_root else None
    campaign_cache = CampaignCache(campaign_root) if campaign_root else None

    collector = ShardedCollector(plan, shards=1, fault_token=fault_token)
    series = collector.collect(
        spec.dynamicity_start,
        spec.dynamicity_end,
        workers=1,
        cache=snapshot_cache,
    )
    # Fault plan always explicit (None = clean), never the environment:
    # the matrix axis owns the decision.
    campaign = ShardedCampaign(plan, shards=1, fault_plan=fault_plan)
    dataset = campaign.run(
        spec.supplemental_start,
        spec.supplemental_end,
        workers=1,
        cache=campaign_cache,
    )

    score = score_cell(cell, spec, series, dataset)
    collect_metrics = collector.last_metrics
    campaign_metrics = campaign.last_metrics
    return {
        "index": index,
        "score": score.to_payload(),
        "snapshot_cache_key": collect_metrics.cache_key if collect_metrics else None,
        "campaign_cache_key": campaign_metrics.cache_key if campaign_metrics else None,
        "snapshot_cache_hit": bool(collect_metrics and collect_metrics.cache_hit),
        "campaign_cache_hit": bool(campaign_metrics and campaign_metrics.cache_hit),
    }


def _pooled_cell_task(task: Tuple) -> Dict[str, Any]:
    """Worker entry point: state arrives via the pool initializer."""
    import repro.scan.parallel as parallel

    assert parallel._WORKER_STATE is not None, "worker state missing"
    return _evaluate_cell(parallel._WORKER_STATE, task)


def run_matrix(
    spec: MatrixSpec,
    *,
    workers: Optional[int] = None,
    snapshot_cache: Optional[SnapshotCache] = None,
    campaign_cache: Optional[CampaignCache] = None,
    obs=None,
) -> MatrixResult:
    """Execute every cell of ``spec`` and return ordered results.

    ``workers`` bounds the cell-level process pool (``None`` defers to
    :func:`~repro.scan.parallel.worker_cap`); caches are passed by
    *root path* into workers so every process shares the on-disk
    namespace.  Output is byte-identical for any worker count.
    """
    from repro.scan.parallel import _map_chunks

    spec.validate()
    obs = resolve_obs(obs)
    started = time.perf_counter()
    cells = spec.cells()
    budget = WorkerBudget(workers if workers is not None else worker_cap())
    pool_workers = min(budget.total, len(cells))

    snapshot_root = str(snapshot_cache.root) if snapshot_cache is not None else None
    campaign_root = str(campaign_cache.root) if campaign_cache is not None else None
    state = _spec_state(spec, snapshot_root, campaign_root)
    tasks = [_cell_task(spec, cell) for cell in cells]

    with obs.span("eval_matrix") as span:
        if pool_workers >= 2:
            raw = _map_chunks(
                state,
                tasks,
                pool_workers,
                _pooled_cell_task,
                obs=obs,
                section="eval_pool",
            )
        else:
            raw = [_evaluate_cell(state, task) for task in tasks]
        by_index = {entry["index"]: entry for entry in raw}
        results: List[CellResult] = []
        for cell in cells:
            entry = by_index[cell.index]
            results.append(
                CellResult(
                    cell=cell,
                    score=score_from_payload(entry["score"]),
                    snapshot_cache_key=entry["snapshot_cache_key"],
                    campaign_cache_key=entry["campaign_cache_key"],
                    snapshot_cache_hit=entry["snapshot_cache_hit"],
                    campaign_cache_hit=entry["campaign_cache_hit"],
                )
            )
        span.set("cells", len(results))

    # Deterministic per-cell counters, in cell order (serial == parallel).
    flagged = 0
    for result in results:
        obs.metrics.counter("eval_cells_total").labels(
            world=result.cell.world,
            policy=result.cell.policy,
            faults=result.cell.faults,
        ).inc()
        if result.score.flags:
            flagged += 1
            obs.metrics.counter("eval_flagged_cells_total").inc()
    total_seconds = time.perf_counter() - started
    obs.record_execution(
        "eval_matrix",
        cells=len(results),
        flagged_cells=flagged,
        pool_workers=pool_workers if pool_workers >= 2 else 1,
        total_seconds=total_seconds,
    )
    return MatrixResult(
        spec=spec,
        results=results,
        workers=pool_workers if pool_workers >= 2 else 1,
        total_seconds=total_seconds,
    )
