"""Countermeasure evaluation: policy × world × fault matrix runs.

The harness behind ``repro evaluate`` (and the ported ablation
benchmarks): sweep IPAM DNS-update policies across world plans and
fault profiles, run the full collection + campaign pipeline per cell,
score privacy exposure against operational utility, and emit a ranked
report plus ``results/eval_matrix.json``.  See :mod:`repro.eval.matrix`
for cell identity (and why no two cells can share a cache entry),
:mod:`repro.eval.scoring` for the score definitions and
:mod:`repro.eval.report` for the output formats.
"""

from repro.eval.matrix import (
    MatrixCell,
    MatrixSpec,
    ablation_plan,
    campus_plan,
    default_worlds,
    quick_spec,
    spec_with_windows,
)
from repro.eval.report import (
    MATRIX_PAYLOAD_VERSION,
    matrix_payload,
    ranked,
    render_ranked_report,
    write_matrix_json,
)
from repro.eval.runner import CellResult, MatrixResult, run_matrix
from repro.eval.scoring import CellScore, score_cell, score_from_payload

__all__ = [
    "CellResult",
    "CellScore",
    "MATRIX_PAYLOAD_VERSION",
    "MatrixCell",
    "MatrixResult",
    "MatrixSpec",
    "ablation_plan",
    "campus_plan",
    "default_worlds",
    "matrix_payload",
    "quick_spec",
    "ranked",
    "render_ranked_report",
    "run_matrix",
    "score_cell",
    "score_from_payload",
    "spec_with_windows",
    "write_matrix_json",
]
