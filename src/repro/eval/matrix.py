"""The countermeasure evaluation matrix: policy × world × faults.

The paper's mitigation discussion (Section 8) asks what an outside
observer can still learn once a network changes its DNS-update
practice.  A :class:`MatrixSpec` turns that question into a sweep:
every combination of an IPAM policy (:data:`repro.ipam.policy.POLICY_NAMES`),
a world plan (:mod:`repro.netsim.worldplan`) and a fault profile
(:data:`repro.netsim.faults.FAULT_PROFILES`) is one *cell*, and each
cell runs the full collection + supplemental-campaign pipeline before
being scored on privacy exposure versus operational utility
(:mod:`repro.eval.scoring`).

Cell identity is load-bearing: the cell's plan is the base world plan
with ``update_policy`` stamped on every eligible entry
(:meth:`~repro.netsim.worldplan.WorldPlan.with_update_policy`), so two
cells that differ in policy differ in plan fingerprint — and therefore
in every snapshot/campaign cache key.  The fault profile is folded
into both cache keys as well (the campaign via the fault plan's own
token, the snapshot side via the collector's ``fault_token`` salt), so
**no two matrix cells can ever share a cache entry**.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dynamicity import DynamicityThresholds
from repro.ipam.policy import POLICY_NAMES
from repro.netsim.faults import FAULT_PROFILES, FaultPlan, plan_from_profile
from repro.netsim.worldplan import PlanError, WorldPlan, synthetic_plan


@dataclass(frozen=True)
class MatrixCell:
    """One (world, policy, faults) combination, in sweep order."""

    index: int
    world: str
    policy: str
    faults: str

    @property
    def cell_id(self) -> str:
        return f"{self.world}/{self.policy}/{self.faults}"


@dataclass
class MatrixSpec:
    """The full sweep definition: axes, windows and scoring knobs.

    ``worlds`` maps a short label to a *base* plan (no ``update_policy``
    entries); :meth:`plan_for` stamps the cell's policy onto a copy.
    Axis order is deterministic — worlds in insertion order, policies
    and fault profiles as given — and :meth:`cells` enumerates
    world-major, then policy, then faults, which is also the order the
    runner reports results in.
    """

    worlds: Dict[str, WorldPlan]
    policies: Sequence[str] = POLICY_NAMES
    faults: Sequence[str] = ("none",)
    dynamicity_start: dt.date = dt.date(2021, 1, 1)
    dynamicity_end: dt.date = dt.date(2021, 1, 22)
    supplemental_start: dt.date = dt.date(2021, 11, 1)
    supplemental_end: dt.date = dt.date(2021, 11, 4)
    #: How many trailing collected days feed the given-name matcher.
    leak_sample_days: int = 7
    dynamicity_thresholds: DynamicityThresholds = field(
        default_factory=DynamicityThresholds
    )
    #: A device label is "trackable" once seen on this many distinct days.
    track_min_days: int = 2
    #: Normalisers for the exposure composite (how many leaked names /
    #: dynamic prefixes / trackable devices count as fully exposed).
    identity_norm: int = 6
    dynamics_norm: int = 4

    def validate(self) -> "MatrixSpec":
        if not self.worlds:
            raise PlanError("matrix needs at least one world plan")
        if not self.policies:
            raise PlanError("matrix needs at least one policy")
        if not self.faults:
            raise PlanError("matrix needs at least one fault profile")
        for policy in self.policies:
            if policy not in POLICY_NAMES:
                raise PlanError(
                    f"unknown policy {policy!r} (want one of {POLICY_NAMES})"
                )
        for profile in self.faults:
            if profile not in FAULT_PROFILES:
                raise PlanError(
                    f"unknown fault profile {profile!r}"
                    f" (want one of {FAULT_PROFILES})"
                )
        for label, plan in self.worlds.items():
            plan.validate()
            if not plan.supplemental_names:
                raise PlanError(
                    f"world {label!r} has no supplemental networks — the "
                    "matrix cannot run its measurement campaign"
                )
        return self

    def cells(self) -> List[MatrixCell]:
        """Every cell, world-major then policy then faults."""
        cells: List[MatrixCell] = []
        for world in self.worlds:
            for policy in self.policies:
                for profile in self.faults:
                    cells.append(
                        MatrixCell(len(cells), world, policy, profile)
                    )
        return cells

    def plan_for(self, cell: MatrixCell) -> WorldPlan:
        """The cell's plan: the base world with the cell's policy stamped."""
        return self.worlds[cell.world].with_update_policy(cell.policy)

    def fault_plan_for(self, cell: MatrixCell) -> Optional[FaultPlan]:
        """The cell's fault plan (``None`` for the clean profile).

        Always explicit — the matrix axis decides, never the
        ``REPRO_FAULT_PROFILE`` environment variable, so a sweep is
        reproducible regardless of the launching shell.
        """
        if cell.faults == "none":
            return None
        base = self.worlds[cell.world]
        return plan_from_profile(cell.faults, seed=base.seed)

    def axes_payload(self) -> Dict[str, object]:
        return {
            "worlds": {
                label: plan.fingerprint() for label, plan in self.worlds.items()
            },
            "policies": list(self.policies),
            "faults": list(self.faults),
        }


# -- stock worlds -----------------------------------------------------------


def campus_plan(seed: int = 7, *, people: int = 60) -> WorldPlan:
    """A single-campus world whose only records are policy-driven.

    One academic /16 with a dynamic-clients education /24 and nothing
    else — no server or infrastructure subnets — so every published
    record traces back to the DNS-update policy under evaluation.
    Under ``no-update`` the zone is genuinely empty, which is what
    keeps the four ablation verdicts crisp (static-template and
    no-update must show *zero* observable dynamics).
    """
    entries = [
        {
            "kind": "academic",
            "name": "campus",
            "prefix": "10.0.0.0/16",
            "suffix": "campus.ablation.edu",
            "education_prefix": "10.0.10.0/24",
            "staff": people // 2,
            "students": people - people // 2,
            "residents": 0,
            "supplemental": True,
        }
    ]
    return WorldPlan(seed, entries).validate()


def ablation_plan(seed: int = 99) -> WorldPlan:
    """The ported ablation-benchmark world (one 60-person campus)."""
    return campus_plan(seed, people=60)


def default_worlds(seed: int = 0, *, slash16s: int = 4, people: int = 12) -> Dict[str, WorldPlan]:
    """The stock world axis: a bespoke campus + a synthetic multi-/16.

    ``campus`` isolates the policy signal (every record is
    policy-driven); ``multi16`` exercises the sweep at plan scale —
    mixed network kinds, delegated child zones, RFC 2317 subnets and
    background space whose dynamics are *not* policy-coupled.
    """
    return {
        "campus": campus_plan(seed + 7),
        "multi16": synthetic_plan(seed, slash16s=slash16s, people=people),
    }


def quick_spec(
    seed: int = 0,
    *,
    worlds: Optional[Dict[str, WorldPlan]] = None,
    policies: Sequence[str] = POLICY_NAMES,
    faults: Sequence[str] = ("none", "mild"),
) -> MatrixSpec:
    """A small matrix over short windows (tests, CI smoke)."""
    return MatrixSpec(
        worlds=worlds if worlds is not None else default_worlds(seed),
        policies=tuple(policies),
        faults=tuple(faults),
    ).validate()


def spec_with_windows(
    spec: MatrixSpec,
    *,
    dynamicity: Optional[Tuple[dt.date, dt.date]] = None,
    supplemental: Optional[Tuple[dt.date, dt.date]] = None,
) -> MatrixSpec:
    """A copy of ``spec`` with different measurement windows."""
    changes = {}
    if dynamicity is not None:
        changes["dynamicity_start"], changes["dynamicity_end"] = dynamicity
    if supplemental is not None:
        changes["supplemental_start"], changes["supplemental_end"] = supplemental
    return replace(spec, **changes)
