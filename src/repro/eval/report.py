"""Ranked reporting for the evaluation matrix.

Two consumers, one source of truth: the human-readable ranked
:class:`~repro.reporting.tables.TextTable` (most-exposed cell first —
the report answers "which practice leaks most, and what does fixing it
cost?") and the machine-readable ``eval_matrix.json`` payload.  Both
render from the same ordered :class:`~repro.eval.runner.CellResult`
list, so they can never disagree.

Ranking is deterministic: exposure descending, then utility
descending, then cell id — no wall-clock, no float formatting
surprises — which is what lets CI diff the rendered report against a
committed golden.  Degenerate statistics render as ``n/a`` and the
cell's flags appear in the last column; a flagged row is information,
not an error.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List

from repro.core.stats import Interval
from repro.eval.matrix import MatrixSpec
from repro.eval.runner import CellResult, MatrixResult
from repro.reporting.tables import TextTable

#: Schema version of the ``eval_matrix.json`` payload.
MATRIX_PAYLOAD_VERSION = 1

REPORT_COLUMNS = (
    "Rank",
    "World",
    "Policy",
    "Faults",
    "Verdict",
    "Names",
    "Dyn24s",
    "Track",
    "LingerMed(m)",
    "Success",
    "Fresh",
    "Exposure",
    "Utility",
    "Flags",
)


def ranked(results: List[CellResult]) -> List[CellResult]:
    """Cells ordered worst-exposure-first (deterministic tiebreaks)."""
    return sorted(
        results,
        key=lambda result: (
            -result.score.exposure,
            -result.score.utility,
            result.score.cell_id,
        ),
    )


def _estimate(interval: Interval, *, percent: bool = False, digits: int = 1) -> str:
    if interval.degenerate or interval.estimate != interval.estimate:
        return "n/a"
    value = interval.estimate * 100.0 if percent else interval.estimate
    return f"{value:.{digits}f}%" if percent else f"{value:.{digits}f}"


def render_ranked_report(result: MatrixResult) -> str:
    """The ranked TextTable over every cell of the sweep."""
    table = TextTable(
        list(REPORT_COLUMNS),
        aligns=["<"] * 5 + [">"] * 8 + ["<"],
    )
    for rank, cell_result in enumerate(ranked(result.results), start=1):
        score = cell_result.score
        table.add_row(
            [
                rank,
                score.world,
                score.policy,
                score.faults,
                score.verdict,
                score.unique_names,
                score.dynamic_24s,
                score.trackable_devices,
                _estimate(score.lingering_median),
                _estimate(score.resolution_success, percent=True),
                _estimate(score.ptr_freshness, percent=True),
                f"{score.exposure:.3f}",
                f"{score.utility:.3f}",
                ",".join(score.flags) if score.flags else "-",
            ]
        )
    return table.render()


def matrix_payload(result: MatrixResult) -> Dict[str, object]:
    """The deterministic ``eval_matrix.json`` document.

    ``cells`` follow sweep order (world-major); ``ranking`` lists cell
    ids in report order.  Per-cell cache keys are included so a later
    run can audit exactly which entries a sweep read or wrote.
    """
    spec: MatrixSpec = result.spec
    return {
        "version": MATRIX_PAYLOAD_VERSION,
        "axes": spec.axes_payload(),
        "windows": {
            "dynamicity": [
                spec.dynamicity_start.isoformat(),
                spec.dynamicity_end.isoformat(),
            ],
            "supplemental": [
                spec.supplemental_start.isoformat(),
                spec.supplemental_end.isoformat(),
            ],
        },
        "scoring": {
            "leak_sample_days": spec.leak_sample_days,
            "track_min_days": spec.track_min_days,
            "identity_norm": spec.identity_norm,
            "dynamics_norm": spec.dynamics_norm,
        },
        "cells": [
            {
                **cell_result.score.to_payload(),
                "cache": {
                    "snapshot_key": cell_result.snapshot_cache_key,
                    "campaign_key": cell_result.campaign_cache_key,
                },
            }
            for cell_result in result.results
        ],
        "ranking": [
            cell_result.score.cell_id for cell_result in ranked(result.results)
        ],
    }


def write_matrix_json(path, result: MatrixResult) -> pathlib.Path:
    """Persist :func:`matrix_payload` (stable key order, trailing newline)."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = matrix_payload(result)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return target
